"""Model summaries: per-layer tables and roofline classification.

Human-facing diagnostics over the channel-space graph: a layer table (shape,
params, FLOPs, arithmetic intensity) and a roofline classification of each
layer on a given device — the paper's framing of convolutions as
compute-bound and normalization as bandwidth-bound (Sec. 2.1) made
quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..costmodel.flops import conv_flops
from ..costmodel.memory import BYTES_PER_ELEMENT
from ..costmodel.time import DeviceModel
from ..nn.graph import ModelGraph
from ..nn.module import Module


@dataclass
class LayerSummary:
    """One row of the model summary table."""

    name: str
    kind: str
    in_channels: int
    out_channels: int
    out_hw: int
    params: int
    flops: float                # inference FLOPs per sample
    activation_bytes: float     # output feature map bytes per sample
    arithmetic_intensity: float  # FLOPs per byte moved

    def bound(self, device: DeviceModel) -> str:
        """Roofline classification on ``device``: compute vs bandwidth."""
        ridge = device.peak_flops / device.mem_bandwidth
        return "compute" if self.arithmetic_intensity >= ridge else "memory"


def summarize(model: Module) -> List[LayerSummary]:
    """Per-layer summary of the model's *current* (possibly pruned) state."""
    graph: ModelGraph = model.graph
    rows: List[LayerSummary] = []
    for node in graph.active_convs():
        k, c, r, s = node.conv.weight.data.shape
        fl = conv_flops(node)
        in_hw = node.out_hw * node.conv.stride
        bytes_moved = (c * in_hw * in_hw + k * node.out_hw * node.out_hw
                       + k * c * r * s) * BYTES_PER_ELEMENT
        rows.append(LayerSummary(
            name=node.name, kind=f"conv{r}x{s}", in_channels=c,
            out_channels=k, out_hw=node.out_hw,
            params=node.conv.weight.data.size,
            flops=fl,
            activation_bytes=k * node.out_hw ** 2 * BYTES_PER_ELEMENT,
            arithmetic_intensity=fl / bytes_moved))
        if node.bn is not None:
            elems = k * node.out_hw ** 2
            bn_bytes = 2 * elems * BYTES_PER_ELEMENT
            rows.append(LayerSummary(
                name=f"{node.name}.bn", kind="batchnorm", in_channels=k,
                out_channels=k, out_hw=node.out_hw, params=2 * k,
                flops=5.0 * elems,
                activation_bytes=elems * BYTES_PER_ELEMENT,
                arithmetic_intensity=5.0 * elems / bn_bytes))
    for lin in graph.linears:
        w = lin.linear.weight.data
        fl = 2.0 * w.size
        bytes_moved = (w.size + w.shape[0] + w.shape[1]) * BYTES_PER_ELEMENT
        rows.append(LayerSummary(
            name=lin.name, kind="linear", in_channels=w.shape[1],
            out_channels=w.shape[0], out_hw=1, params=w.size, flops=fl,
            activation_bytes=w.shape[0] * BYTES_PER_ELEMENT,
            arithmetic_intensity=fl / bytes_moved))
    return rows


def summary_table(model: Module,
                  device: DeviceModel | None = None) -> str:
    """Render :func:`summarize` as an aligned text table."""
    rows = summarize(model)
    headers = ["layer", "kind", "in", "out", "hw", "params", "MFLOPs",
               "AI (FLOP/B)"]
    if device is not None:
        headers.append("bound")
    widths = [len(h) for h in headers]
    body = []
    for r in rows:
        cells = [r.name, r.kind, str(r.in_channels), str(r.out_channels),
                 str(r.out_hw), str(r.params), f"{r.flops / 1e6:.2f}",
                 f"{r.arithmetic_intensity:.2f}"]
        if device is not None:
            cells.append(r.bound(device))
        body.append(cells)
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "-+-".join("-" * w for w in widths)]
    for cells in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
    total_params = sum(r.params for r in rows)
    total_flops = sum(r.flops for r in rows)
    lines.append(f"total: {total_params} params, "
                 f"{total_flops / 1e6:.2f} MFLOPs/sample")
    return "\n".join(lines)
