"""Diagnostics: per-layer summaries and roofline classification."""

from .summary import LayerSummary, summarize, summary_table

__all__ = ["LayerSummary", "summarize", "summary_table"]
