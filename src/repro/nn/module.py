"""Module/Parameter system (a compact PyTorch-``nn`` analogue).

Parameters are :class:`~repro.tensor.Tensor` objects with
``requires_grad=True``.  A crucial design point for PruneTrain: parameter
*objects* survive network reconfiguration — channel surgery replaces
``param.data`` (and the optimizer's momentum buffer, keyed by parameter
identity) with channel-sliced arrays, so "all training variables of the
remaining channels are kept as is" (Sec. 4.2) falls out naturally.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor, workspace


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a :class:`Module`."""

    def __init__(self, data: np.ndarray, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for network components.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__``; those are discovered by attribute scan, so there is no
    registration boilerplate.
    """

    def __init__(self) -> None:
        self.training = True

    # -- forward ---------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    # -- traversal -------------------------------------------------------
    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        def walk(name: str, value):
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    yield from walk(f"{name}.{i}", item)

        for key, value in vars(self).items():
            yield from walk(key, value)

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self.named_children():
            sub = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(sub)

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_parameters(self, prefix: str = ""
                         ) -> Iterator[Tuple[str, Parameter]]:
        seen: set[int] = set()
        for mod_name, mod in self.named_modules(prefix):
            for key, value in vars(mod).items():
                if isinstance(value, Parameter) and id(value) not in seen:
                    seen.add(id(value))
                    yield (f"{mod_name}.{key}" if mod_name else key), value

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total learnable scalar count."""
        return sum(p.data.size for p in self.parameters())

    # -- mode ------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # -- (de)serialization -------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameters and buffers, keyed by dotted path."""
        out: Dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            out[name] = p.data.copy()
        for mod_name, mod in self.named_modules():
            for key, value in vars(mod).items():
                if isinstance(value, np.ndarray):
                    path = f"{mod_name}.{key}" if mod_name else key
                    out[path] = value.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays saved by :meth:`state_dict` (shapes must match)."""
        params = dict(self.named_parameters())
        buffers: Dict[str, Tuple[Module, str]] = {}
        for mod_name, mod in self.named_modules():
            for key, value in vars(mod).items():
                if isinstance(value, np.ndarray):
                    path = f"{mod_name}.{key}" if mod_name else key
                    buffers[path] = (mod, key)
        for name, arr in state.items():
            if name in params:
                if params[name].data.shape != arr.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{params[name].data.shape} vs {arr.shape}")
                params[name].data = arr.copy()
            elif name in buffers:
                mod, key = buffers[name]
                setattr(mod, key, arr.copy())
            else:
                raise KeyError(f"unexpected state entry {name!r}")
        # Parameter/buffer arrays were just reassigned: any compiled step
        # plan holding references to the old arrays is now stale, even
        # though every shape is unchanged (checkpoint restore).
        workspace.invalidate_plans()
