"""Channel-space structural graph of a CNN.

PruneTrain's reconfiguration (Sec. 4.2) has to respect inter-layer dimension
consistency: "we only prune the intersection of the sparsified channels of
any two adjacent layers", and for short-cut networks the **channel union**
rule keeps "the union of all dense channels" of every conv sharing a residual
node (Fig. 5c).

Both rules are the same statement once the network is described in terms of
*channel spaces*: every activation tensor lives in a space; a convolution
reads one space and writes another; an elementwise add forces its operands
into the same space (the residual node).  A channel of a space may be pruned
iff **every** conv writing the space has sparsified that output channel and
**every** conv/linear reading the space has sparsified that input channel.

- For a plain conv chain (VGG), each interior space has exactly one writer
  and one reader -> the rule degenerates to the paper's adjacent-layer
  intersection.
- For a residual stage, the stage's shared node is one space touched by many
  convs -> the rule is exactly the channel union.

Models in :mod:`repro.nn.resnet` / :mod:`repro.nn.vgg` build this graph at
construction time; :mod:`repro.prune.reconfigure` consumes it to perform
surgery, and :mod:`repro.costmodel` walks it to count FLOPs/bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .layers import BatchNorm2d, Conv2d, Linear


@dataclass
class Space:
    """One channel space (an equivalence class of activation channel dims)."""

    sid: int
    size: int
    frozen: bool = False  # RGB input & class-logit spaces are never pruned
    name: str = ""


@dataclass
class ConvNode:
    """A convolution plus its (optional) following BatchNorm."""

    name: str
    conv: Conv2d
    bn: Optional[BatchNorm2d]
    in_space: int
    out_space: int
    #: Output spatial size this conv produces at the model's native input
    #: resolution — recorded at build time so the cost model needs no
    #: forward pass.
    out_hw: int = 0
    #: Residual-path id this conv belongs to (None = trunk/shortcut).  Used
    #: for layer removal: a fully-sparse conv kills its whole path.
    path: Optional[int] = None


@dataclass
class LinearNode:
    """A fully connected layer (reads a space channel-per-feature after GAP)."""

    name: str
    linear: Linear
    in_space: int
    out_space: int


@dataclass
class ResidualPath:
    """A prunable residual branch (e.g. conv1-conv2-conv3 of a bottleneck).

    ``block`` must expose an ``active`` boolean the forward pass respects;
    deactivating it removes the path (the paper's layer removal, Tab. 3).
    """

    pid: int
    name: str
    block: object
    conv_names: List[str]


class ModelGraph:
    """Structural description of a model for pruning/cost accounting."""

    def __init__(self) -> None:
        self.spaces: Dict[int, Space] = {}
        self.convs: List[ConvNode] = []
        self.linears: List[LinearNode] = []
        self.paths: Dict[int, ResidualPath] = {}
        self._next_sid = 0
        self._next_pid = 0

    # -- construction ------------------------------------------------------
    def new_space(self, size: int, frozen: bool = False,
                  name: str = "") -> int:
        sid = self._next_sid
        self._next_sid += 1
        self.spaces[sid] = Space(sid, size, frozen, name)
        return sid

    def add_conv(self, name: str, conv: Conv2d, bn: Optional[BatchNorm2d],
                 in_space: int, out_space: int, out_hw: int,
                 path: Optional[int] = None) -> ConvNode:
        if self.spaces[in_space].size != conv.in_channels:
            raise ValueError(f"{name}: in_space size "
                             f"{self.spaces[in_space].size} != conv "
                             f"in_channels {conv.in_channels}")
        if self.spaces[out_space].size != conv.out_channels:
            raise ValueError(f"{name}: out_space size "
                             f"{self.spaces[out_space].size} != conv "
                             f"out_channels {conv.out_channels}")
        node = ConvNode(name, conv, bn, in_space, out_space, out_hw, path)
        self.convs.append(node)
        return node

    def add_linear(self, name: str, linear: Linear, in_space: int,
                   out_space: int) -> LinearNode:
        node = LinearNode(name, linear, in_space, out_space)
        self.linears.append(node)
        return node

    def new_path(self, name: str, block: object,
                 conv_names: List[str]) -> int:
        pid = self._next_pid
        self._next_pid += 1
        self.paths[pid] = ResidualPath(pid, name, block, conv_names)
        return pid

    # -- queries -------------------------------------------------------------
    def writers(self, sid: int) -> List[ConvNode]:
        """Convs whose output lives in space ``sid`` (active paths only)."""
        return [c for c in self.convs
                if c.out_space == sid and self._active(c)]

    def readers(self, sid: int) -> List[ConvNode]:
        return [c for c in self.convs
                if c.in_space == sid and self._active(c)]

    def linear_readers(self, sid: int) -> List[LinearNode]:
        return [l for l in self.linears if l.in_space == sid]

    def active_convs(self) -> List[ConvNode]:
        return [c for c in self.convs if self._active(c)]

    def _active(self, node: ConvNode) -> bool:
        if node.path is None:
            return True
        return bool(getattr(self.paths[node.path].block, "active", True))

    def conv_by_name(self, name: str) -> ConvNode:
        for c in self.convs:
            if c.name == name:
                return c
        raise KeyError(name)

    def removed_layers(self) -> int:
        """Number of conv layers eliminated by residual-path removal."""
        return sum(len(p.conv_names) for p in self.paths.values()
                   if not getattr(p.block, "active", True))

    def total_conv_layers(self) -> int:
        return len(self.convs)

    def validate(self) -> None:
        """Check dimensional consistency of the whole graph (cheap; used in
        tests and after every surgery).  Convs of removed paths are skipped:
        their modules are detached and no longer tracked."""
        for c in self.convs:
            if not self._active(c):
                continue
            if c.conv.in_channels != self.spaces[c.in_space].size:
                raise AssertionError(f"{c.name}: in dim drifted")
            if c.conv.out_channels != self.spaces[c.out_space].size:
                raise AssertionError(f"{c.name}: out dim drifted")
            if c.bn is not None and c.bn.num_features != c.conv.out_channels:
                raise AssertionError(f"{c.name}: bn dim drifted")
        for l in self.linears:
            if l.linear.in_features != self.spaces[l.in_space].size:
                raise AssertionError(f"{l.name}: linear in dim drifted")
