"""Neural-network layer/module system and the paper's model zoo."""

from .graph import ConvNode, LinearNode, ModelGraph, ResidualPath, Space
from .layers import (AvgPool2d, BatchNorm2d, Conv2d, Flatten, GlobalAvgPool,
                     Linear, MaxPool2d, ReLU, Sequential)
from .module import Module, Parameter
from .resnet import (BasicBlock, Bottleneck, ResNet, resnet20, resnet32,
                     resnet50_cifar, resnet50_imagenet, resnet56,
                     wide_resnet16)
from .vgg import VGG, VGG_PLANS, vgg11, vgg13

__all__ = [
    "Module", "Parameter",
    "Conv2d", "BatchNorm2d", "Linear", "ReLU", "MaxPool2d", "AvgPool2d",
    "GlobalAvgPool", "Flatten", "Sequential",
    "ModelGraph", "Space", "ConvNode", "LinearNode", "ResidualPath",
    "ResNet", "BasicBlock", "Bottleneck",
    "resnet20", "resnet32", "resnet56", "resnet50_cifar", "resnet50_imagenet",
    "wide_resnet16",
    "VGG", "VGG_PLANS", "vgg11", "vgg13",
]
