"""VGG-11/13 with batch normalization (the paper's plain-chain CNNs).

VGG has no short-cut connections, so its channel-space graph is a simple
chain: each interior space has exactly one writer and one reader, and the
pruning rule reduces to the paper's adjacent-layer channel intersection.
The classifier is global-average-pool + a single FC, the standard compact
CIFAR-VGG head (and the prunable one — a flattened 512*H*W head would pin
the last conv's channel space to spatial positions).
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from ..tensor import Tensor
from ..tensor.workspace import config as _engine
from .graph import ModelGraph
from .layers import (BatchNorm2d, Conv2d, GlobalAvgPool, Linear, MaxPool2d,
                     ReLU)
from .module import Module

#: Layer plans: ints are conv widths, "M" is a 2x2 max-pool.
VGG_PLANS = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M",
              512, 512, "M"],
}


class VGG(Module):
    """Plain conv-BN-ReLU chain with interleaved max-pools."""

    def __init__(self, plan: List[Union[int, str]], num_classes: int,
                 input_hw: int = 32, in_channels: int = 3,
                 width_mult: float = 1.0, seed: int = 0, name: str = "vgg"):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.name = name
        self.num_classes = num_classes
        self.input_hw = input_hw
        self.in_channels = in_channels
        g = ModelGraph()
        self.graph = g

        space = g.new_space(in_channels, frozen=True, name="input")
        hw = input_hw
        self.features: List[Module] = []
        ci = 0
        in_ch = in_channels
        for item in plan:
            if item == "M":
                # Skip pools that would shrink below 1x1 (small-input runs);
                # matches the functional pooling's identity-on-undersize rule.
                if hw >= 2:
                    self.features.append(MaxPool2d(2))
                    hw //= 2
                continue
            out_ch = max(1, int(round(item * width_mult)))
            conv = Conv2d(in_ch, out_ch, 3, 1, 1, rng=rng)
            bn = BatchNorm2d(out_ch)
            out_space = g.new_space(out_ch, name=f"conv{ci}")
            g.add_conv(f"conv{ci}", conv, bn, space, out_space, hw)
            self.features.extend([conv, bn, ReLU()])
            space, in_ch = out_space, out_ch
            ci += 1

        self.pool = GlobalAvgPool()
        logits = g.new_space(num_classes, frozen=True, name="logits")
        self.fc = Linear(in_ch, num_classes, rng=rng)
        g.add_linear("fc", self.fc, space, logits)
        g.validate()

    def forward(self, x: Tensor) -> Tensor:
        out = x
        i, n = 0, len(self.features)
        while i < n:
            layer = self.features[i]
            # Fuse every conv-BN-ReLU triple's tail when the engine allows.
            if (_engine.fused_bnrelu and isinstance(layer, BatchNorm2d)
                    and i + 1 < n and isinstance(self.features[i + 1], ReLU)):
                out = layer(out, relu=True)
                i += 2
                continue
            out = layer(out)
            i += 1
        return self.fc(self.pool(out))


def vgg11(num_classes: int = 10, width_mult: float = 1.0, seed: int = 0,
          input_hw: int = 32) -> VGG:
    """VGG-11 with BN."""
    return VGG(VGG_PLANS["vgg11"], num_classes, input_hw,
               width_mult=width_mult, seed=seed, name="vgg11")


def vgg13(num_classes: int = 10, width_mult: float = 1.0, seed: int = 0,
          input_hw: int = 32) -> VGG:
    """VGG-13 with BN."""
    return VGG(VGG_PLANS["vgg13"], num_classes, input_hw,
               width_mult=width_mult, seed=seed, name="vgg13")
