"""ResNet family used in the paper: ResNet-20/32/56 (basic blocks, CIFAR) and
ResNet-50 (bottleneck blocks, CIFAR and ImageNet stems).

Every model builds its :class:`~repro.nn.graph.ModelGraph` at construction:
residual stages share a single junction channel-space (the paper's Fig. 5
"residual blocks sharing the same node"), which is what makes the
channel-union pruning rule exact.

``width_mult`` scales all channel counts so experiments fit a CPU budget; the
architecture (depth, stage structure, stride pattern) is unchanged, and the
analytic cost models operate on whatever widths are in play.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..tensor import Tensor
from ..tensor import functional as F
from ..tensor.workspace import config as _engine
from .graph import ModelGraph
from .layers import (BatchNorm2d, Conv2d, GlobalAvgPool, Linear, MaxPool2d,
                     ReLU)
from .module import Module


def _scale(c: int, width_mult: float) -> int:
    return max(1, int(round(c * width_mult)))


def _bn_relu(bn: BatchNorm2d, relu: ReLU, x: Tensor) -> Tensor:
    """BN followed by ReLU, fused into one kernel when the engine allows."""
    if _engine.fused_bnrelu:
        return bn(x, relu=True)
    return relu(bn(x))


def _join(relu: ReLU, out: Tensor, shortcut: Tensor) -> Tensor:
    """Residual join ``relu(out + shortcut)``, fused when the engine allows
    (the ``fused_bnrelu`` switch governs all elementwise kernel fusion)."""
    if _engine.fused_bnrelu:
        return F.add_relu(out, shortcut)
    return relu(out + shortcut)


class BasicBlock(Module):
    """Two 3x3 convs with a shortcut (ResNet-20/32/56 building block)."""

    def __init__(self, in_ch: int, out_ch: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        self.active = True
        self.conv1 = Conv2d(in_ch, out_ch, 3, stride, 1, rng=rng)
        self.bn1 = BatchNorm2d(out_ch)
        self.conv2 = Conv2d(out_ch, out_ch, 3, 1, 1, rng=rng)
        self.bn2 = BatchNorm2d(out_ch)
        self.relu = ReLU()
        self.proj: Optional[Conv2d] = None
        self.proj_bn: Optional[BatchNorm2d] = None
        if stride != 1 or in_ch != out_ch:
            self.proj = Conv2d(in_ch, out_ch, 1, stride, 0, rng=rng)
            self.proj_bn = BatchNorm2d(out_ch)

    def forward(self, x: Tensor) -> Tensor:
        shortcut = x
        if self.proj is not None:
            shortcut = self.proj_bn(self.proj(x))
        if not self.active:
            return self.relu(shortcut)
        out = _bn_relu(self.bn1, self.relu, self.conv1(x))
        out = self.bn2(self.conv2(out))
        return _join(self.relu, out, shortcut)


class Bottleneck(Module):
    """1x1 -> 3x3 -> 1x1 bottleneck (ResNet-50 building block)."""

    def __init__(self, in_ch: int, mid_ch: int, out_ch: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        self.active = True
        self.conv1 = Conv2d(in_ch, mid_ch, 1, 1, 0, rng=rng)
        self.bn1 = BatchNorm2d(mid_ch)
        self.conv2 = Conv2d(mid_ch, mid_ch, 3, stride, 1, rng=rng)
        self.bn2 = BatchNorm2d(mid_ch)
        self.conv3 = Conv2d(mid_ch, out_ch, 1, 1, 0, rng=rng)
        self.bn3 = BatchNorm2d(out_ch)
        self.relu = ReLU()
        self.proj: Optional[Conv2d] = None
        self.proj_bn: Optional[BatchNorm2d] = None
        if stride != 1 or in_ch != out_ch:
            self.proj = Conv2d(in_ch, out_ch, 1, stride, 0, rng=rng)
            self.proj_bn = BatchNorm2d(out_ch)

    def forward(self, x: Tensor) -> Tensor:
        shortcut = x
        if self.proj is not None:
            shortcut = self.proj_bn(self.proj(x))
        if not self.active:
            return self.relu(shortcut)
        out = _bn_relu(self.bn1, self.relu, self.conv1(x))
        out = _bn_relu(self.bn2, self.relu, self.conv2(out))
        out = self.bn3(self.conv3(out))
        return _join(self.relu, out, shortcut)


class ResNet(Module):
    """Configurable ResNet with a full channel-space graph.

    Parameters
    ----------
    block_counts: blocks per stage (3 stages for CIFAR, 4 for ImageNet stem).
    widths: junction width per stage (post-expansion for bottlenecks).
    bottleneck: use :class:`Bottleneck` blocks (mid width = width / 4).
    num_classes, input_hw, in_channels: task geometry.
    imagenet_stem: stride-2 stem conv + 2x2 max-pool (for larger inputs).
    """

    def __init__(self, block_counts: List[int], widths: List[int],
                 bottleneck: bool, num_classes: int, input_hw: int = 32,
                 in_channels: int = 3, width_mult: float = 1.0,
                 imagenet_stem: bool = False, seed: int = 0,
                 name: str = "resnet"):
        super().__init__()
        rng = np.random.default_rng(seed)
        widths = [_scale(w, width_mult) for w in widths]
        self.name = name
        self.num_classes = num_classes
        self.input_hw = input_hw
        self.in_channels = in_channels
        g = ModelGraph()
        self.graph = g

        rgb = g.new_space(in_channels, frozen=True, name="input")
        hw = input_hw
        # Bottleneck nets (ResNet-50) keep the classic thin stem: the first
        # block's projection conv expands to the stage width.
        stem_ch = max(1, widths[0] // 4) if bottleneck else widths[0]
        stem_stride = 2 if imagenet_stem else 1
        self.stem = Conv2d(in_channels, stem_ch, 3, stem_stride, 1, rng=rng)
        self.stem_bn = BatchNorm2d(stem_ch)
        self.stem_relu = ReLU()
        hw //= stem_stride
        self.stem_pool = MaxPool2d(2) if imagenet_stem else None

        # Stage 1 junction == stem output space (identity shortcut into the
        # first block when in_ch == out_ch and stride 1).  The stem conv's
        # out_hw is recorded *before* the stem max-pool.
        junction = g.new_space(stem_ch, name="stage0")
        g.add_conv("stem", self.stem, self.stem_bn, rgb, junction, hw)
        if imagenet_stem:
            hw //= 2

        self.stages: List[List[Module]] = []
        for si, (n_blocks, w) in enumerate(zip(block_counts, widths)):
            stage: List[Module] = []
            for bi in range(n_blocks):
                stride = 2 if (si > 0 and bi == 0) else 1
                in_space = junction
                in_ch = g.spaces[in_space].size
                if stride != 1 or in_ch != w:
                    junction = g.new_space(w, name=f"stage{si + 1}")
                hw //= stride
                bname = f"s{si}b{bi}"
                if bottleneck:
                    mid = max(1, w // 4)
                    blk = Bottleneck(in_ch, mid, w, stride, rng)
                    m1 = g.new_space(mid, name=f"{bname}.m1")
                    m2 = g.new_space(mid, name=f"{bname}.m2")
                    pid = g.new_path(bname, blk,
                                     [f"{bname}.conv1", f"{bname}.conv2",
                                      f"{bname}.conv3"])
                    g.add_conv(f"{bname}.conv1", blk.conv1, blk.bn1,
                               in_space, m1, hw * stride
                               if stride > 1 else hw, path=pid)
                    g.add_conv(f"{bname}.conv2", blk.conv2, blk.bn2,
                               m1, m2, hw, path=pid)
                    g.add_conv(f"{bname}.conv3", blk.conv3, blk.bn3,
                               m2, junction, hw, path=pid)
                else:
                    blk = BasicBlock(in_ch, w, stride, rng)
                    m1 = g.new_space(w, name=f"{bname}.m1")
                    pid = g.new_path(bname, blk,
                                     [f"{bname}.conv1", f"{bname}.conv2"])
                    g.add_conv(f"{bname}.conv1", blk.conv1, blk.bn1,
                               in_space, m1, hw, path=pid)
                    g.add_conv(f"{bname}.conv2", blk.conv2, blk.bn2,
                               m1, junction, hw, path=pid)
                if blk.proj is not None:
                    g.add_conv(f"{bname}.proj", blk.proj, blk.proj_bn,
                               in_space, junction, hw)
                stage.append(blk)
            self.stages.append(stage)

        self.pool = GlobalAvgPool()
        logits = g.new_space(num_classes, frozen=True, name="logits")
        self.fc = Linear(g.spaces[junction].size, num_classes, rng=rng)
        g.add_linear("fc", self.fc, junction, logits)
        g.validate()

    def forward(self, x: Tensor) -> Tensor:
        out = _bn_relu(self.stem_bn, self.stem_relu, self.stem(x))
        if self.stem_pool is not None:
            out = self.stem_pool(out)
        for stage in self.stages:
            for block in stage:
                out = block(out)
        return self.fc(self.pool(out))


def resnet20(num_classes: int = 10, width_mult: float = 1.0, seed: int = 0,
             input_hw: int = 32) -> ResNet:
    """ResNet-20 (3 stages x 3 basic blocks)."""
    return ResNet([3, 3, 3], [16, 32, 64], False, num_classes, input_hw,
                  width_mult=width_mult, seed=seed, name="resnet20")


def resnet32(num_classes: int = 10, width_mult: float = 1.0, seed: int = 0,
             input_hw: int = 32) -> ResNet:
    """ResNet-32 (3 stages x 5 basic blocks) — paper's CIFAR workhorse."""
    return ResNet([5, 5, 5], [16, 32, 64], False, num_classes, input_hw,
                  width_mult=width_mult, seed=seed, name="resnet32")


def resnet56(num_classes: int = 10, width_mult: float = 1.0, seed: int = 0,
             input_hw: int = 32) -> ResNet:
    """ResNet-56 (3 stages x 9 basic blocks) — the AMC comparison model."""
    return ResNet([9, 9, 9], [16, 32, 64], False, num_classes, input_hw,
                  width_mult=width_mult, seed=seed, name="resnet56")


def resnet50_cifar(num_classes: int = 10, width_mult: float = 1.0,
                   seed: int = 0, input_hw: int = 32) -> ResNet:
    """Bottleneck ResNet-50 with a CIFAR stem ([3,4,6,3] blocks)."""
    return ResNet([3, 4, 6, 3], [256, 512, 1024, 2048], True, num_classes,
                  input_hw, width_mult=width_mult, seed=seed,
                  name="resnet50")


def resnet50_imagenet(num_classes: int = 1000, width_mult: float = 1.0,
                      seed: int = 0, input_hw: int = 224) -> ResNet:
    """Bottleneck ResNet-50 with a down-sampling stem for large inputs."""
    return ResNet([3, 4, 6, 3], [256, 512, 1024, 2048], True, num_classes,
                  input_hw, width_mult=width_mult, imagenet_stem=True,
                  seed=seed, name="resnet50-imagenet")


def wide_resnet16(num_classes: int = 10, widen: int = 4,
                  width_mult: float = 1.0, seed: int = 0,
                  input_hw: int = 32) -> ResNet:
    """WRN-16-k (Zagoruyko & Komodakis) — a short-cut CNN variant the paper
    lists among channel union's targets.  Basic blocks, 3 stages x 2 blocks,
    widths ``16k/32k/64k``."""
    widths = [16 * widen, 32 * widen, 64 * widen]
    return ResNet([2, 2, 2], widths, False, num_classes, input_hw,
                  width_mult=width_mult, seed=seed,
                  name=f"wrn16-{widen}")
