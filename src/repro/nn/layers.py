"""Core layers: Conv2d, BatchNorm2d, Linear, activations, pooling, Flatten.

Every layer stores its structural dimensions as plain attributes
(``in_channels`` / ``out_channels`` / ...) which the PruneTrain surgery code
updates when channels are removed — the layer objects are *reconfigurable in
place*.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor
from ..tensor import functional as F
from . import init as _init
from .module import Module, Parameter


class Conv2d(Module):
    """2-D convolution over NCHW tensors.

    Bias defaults to off (every conv in the paper's models is followed by a
    BatchNorm which subsumes the bias).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            _init.conv_init(out_channels, in_channels, kernel_size,
                            kernel_size, rng))
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class BatchNorm2d(Module):
    """Per-channel batch normalization with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)

    def forward(self, x: Tensor, relu: bool = False) -> Tensor:
        """Normalize ``x``; ``relu=True`` fuses the following rectifier into
        the same kernel (used by the models when
        ``workspace.config.fused_bnrelu`` is on)."""
        return F.batch_norm(x, self.weight, self.bias, self.running_mean,
                            self.running_var, self.momentum, self.eps,
                            self.training, relu=relu)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with ``W`` shaped ``(out, in)``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_init.linear_init(out_features, in_features,
                                                  rng))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class MaxPool2d(Module):
    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size)

    def __repr__(self) -> str:
        return f"MaxPool2d({self.kernel_size})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size)

    def __repr__(self) -> str:
        return f"AvgPool2d({self.kernel_size})"


class GlobalAvgPool(Module):
    """Spatial mean pooling ``(N, C, H, W) -> (N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool(x)

    def __repr__(self) -> str:
        return "GlobalAvgPool()"


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def __repr__(self) -> str:
        return "Flatten()"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in self.layers)
        return f"Sequential({inner})"
