"""Weight initializers (Kaiming/He for ReLU networks, as in the paper's models)."""

from __future__ import annotations

import numpy as np


def kaiming_normal(shape: tuple, fan_in: int,
                   rng: np.random.Generator) -> np.ndarray:
    """He-normal init: ``N(0, sqrt(2/fan_in))``, float32."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def conv_init(out_channels: int, in_channels: int, kh: int, kw: int,
              rng: np.random.Generator) -> np.ndarray:
    """Kaiming init for a ``(K, C, R, S)`` filter bank."""
    fan_in = in_channels * kh * kw
    return kaiming_normal((out_channels, in_channels, kh, kw), fan_in, rng)


def linear_init(out_features: int, in_features: int,
                rng: np.random.Generator) -> np.ndarray:
    """Kaiming init for a ``(out, in)`` weight matrix."""
    return kaiming_normal((out_features, in_features), in_features, rng)
