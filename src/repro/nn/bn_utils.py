"""BatchNorm running-statistic recalibration.

On short schedules the EMA running statistics lag the fast-moving weights;
in deep bottleneck networks the per-layer mismatch compounds and eval-mode
logits explode.  The standard remedy (as in stochastic weight averaging's
``update_bn``) is to recompute the running statistics as a *cumulative
average* over a few forward passes of training data just before evaluation.
This touches no learnable state and is architecture-agnostic: it walks the
module tree for BatchNorm2d layers.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..tensor import Tensor, no_grad
from .layers import BatchNorm2d
from .module import Module


def recalibrate_bn(model: Module, batches: Iterable[np.ndarray]) -> int:
    """Recompute BN running stats as the average over ``batches``.

    Returns the number of batches processed (0 leaves the model untouched).
    The model's training/eval mode is restored afterwards.
    """
    bns = [m for m in model.modules() if isinstance(m, BatchNorm2d)]
    if not bns:
        return 0
    saved_momentum = [bn.momentum for bn in bns]
    was_training = getattr(model, "training", True)
    n = 0
    model.train()
    try:
        with no_grad():
            for i, xb in enumerate(batches):
                if i == 0:
                    for bn in bns:
                        bn.running_mean[:] = 0.0
                        bn.running_var[:] = 0.0
                for bn in bns:
                    bn.momentum = 1.0 / (i + 1)  # cumulative average
                model(Tensor(xb))
                n += 1
    finally:
        for bn, mom in zip(bns, saved_momentum):
            bn.momentum = mom
        model.train(was_training)
    return n
