"""Checkpointing for dynamically reconfigured models.

A PruneTrain checkpoint is not just weights: the architecture itself changes
during training (channels removed, residual paths deactivated), so loading
requires replaying the recorded *structure* onto a freshly built model
before the weights fit.  A checkpoint stores:

- every parameter and buffer (the model's ``state_dict``),
- the per-space channel counts and the set of removed residual paths,
- optionally the optimizer's momentum buffers (keyed by parameter name),
- a free-form ``extra`` dict (epoch counters, λ, RNG seeds, ...).

Loading builds the model with the caller's factory (original dense
architecture), deactivates recorded paths, slices every space down to the
recorded size, and then loads the arrays.  Channel identity inside a space
is irrelevant at that point — the weights come from the checkpoint.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..nn.graph import ModelGraph
from ..nn.module import Module
from ..optim.sgd import SGD
from ..prune.reconfigure import apply_space_masks

FORMAT_VERSION = 1


def save_checkpoint(path: str, model: Module,
                    optimizer: Optional[SGD] = None,
                    extra: Optional[Dict] = None) -> None:
    """Serialize model (+optimizer) to a single ``.npz`` file."""
    graph: ModelGraph = model.graph
    arrays: Dict[str, np.ndarray] = {}
    for name, arr in model.state_dict().items():
        arrays[f"state/{name}"] = arr
    if optimizer is not None:
        for name, p in model.named_parameters():
            buf = optimizer.state_for(p)
            if buf is not None:
                arrays[f"momentum/{name}"] = buf
    meta = {
        "format_version": FORMAT_VERSION,
        "space_sizes": {str(sid): sp.size
                        for sid, sp in graph.spaces.items()},
        "inactive_paths": [p.name for p in graph.paths.values()
                           if not getattr(p.block, "active", True)],
        "extra": extra or {},
    }
    if optimizer is not None:
        meta["optimizer"] = {"lr": optimizer.lr,
                             "momentum": optimizer.momentum,
                             "weight_decay": optimizer.weight_decay}
    arrays["meta.json"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path, **arrays)


def load_checkpoint(path: str, model_factory: Callable[[], Module],
                    with_optimizer: bool = False
                    ) -> Tuple[Module, Optional[SGD], Dict]:
    """Rebuild a (possibly pruned) model from a checkpoint.

    ``model_factory`` must construct the *original* architecture (same
    factory and arguments used before training).  Returns
    ``(model, optimizer_or_None, extra)``.
    """
    data = np.load(path if path.endswith(".npz") else path + ".npz")
    meta = json.loads(bytes(data["meta.json"]).decode())
    if meta["format_version"] != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version "
                         f"{meta['format_version']}")
    model = model_factory()
    graph: ModelGraph = model.graph

    # 1. replay layer removal
    inactive = set(meta["inactive_paths"])
    for p in graph.paths.values():
        if p.name in inactive:
            p.block.active = False
            for attr in ("conv1", "bn1", "conv2", "bn2", "conv3", "bn3"):
                if hasattr(p.block, attr):
                    setattr(p.block, attr, None)

    # 2. replay channel pruning (first-k masks; identity is arbitrary
    #    because the checkpoint supplies the weights)
    masks = {}
    for sid, sp in graph.spaces.items():
        size = int(meta["space_sizes"][str(sid)])
        keep = np.zeros(sp.size, dtype=bool)
        keep[:size] = True
        masks[sid] = keep
    apply_space_masks(model, masks)
    graph.validate()

    # 3. load arrays
    state = {key[len("state/"):]: data[key]
             for key in data.files if key.startswith("state/")}
    model.load_state_dict(state)

    optimizer = None
    if with_optimizer:
        if "optimizer" not in meta:
            raise ValueError("checkpoint has no optimizer state")
        cfg = meta["optimizer"]
        optimizer = SGD(model.parameters(), lr=cfg["lr"],
                        momentum=cfg["momentum"],
                        weight_decay=cfg["weight_decay"])
        params = dict(model.named_parameters())
        for key in data.files:
            if key.startswith("momentum/"):
                name = key[len("momentum/"):]
                if name in params:
                    optimizer.set_state_for(params[name], data[key])
    return model, optimizer, meta["extra"]
