"""Checkpointing for dynamically reconfigured models.

A PruneTrain checkpoint is not just weights: the architecture itself changes
during training (channels removed, residual paths deactivated), so loading
requires replaying the recorded *structure* onto a freshly built model
before the weights fit.

Format version 2 additionally captures the **full training-run state** so a
killed run can resume *bit-exactly*: model architecture and optimizer state
co-evolve under PruneTrain (momentum is sliced in lock-step with channel
surgery, λ and the pruning threshold are derived at step 1, and the
mini-batch grows as pruning frees memory), so a lossy checkpoint cannot
reproduce an uninterrupted run's dynamics.  A v2 checkpoint stores:

- every parameter and buffer (the model's ``state_dict``),
- the per-space channel counts and the set of removed residual paths,
- optionally the optimizer's momentum buffers (keyed by parameter name)
  plus its hyperparameters,
- optionally a ``train_state`` dict (JSON-serializable) produced by the
  trainer: loader RNG stream + batch size, LR-schedule position (epoch
  counter), ``lr_scale``, derived λ / pruning threshold, cumulative FLOPs,
  the :class:`~repro.train.metrics.RunLog` so far, prune reports, ...
- optionally extra named arrays (``arrays``) for state that is naturally an
  ndarray (e.g. :class:`~repro.prune.tracker.ChannelTracker` history),
- a free-form ``extra`` dict.

Writes are **atomic**: the archive is written to a temporary sibling file
and moved into place with :func:`os.replace`, so a crash mid-write never
corrupts the previous checkpoint (at worst it leaves a ``*.tmp.npz`` file
behind, which loading and :func:`latest_checkpoint` ignore).

Version 1 checkpoints (weights + structure + momentum only) still load;
they simply carry no ``train_state``.

Loading builds the model with the caller's factory (original dense
architecture), deactivates recorded paths, slices every space down to the
recorded size, and then loads the arrays.  Channel identity inside a space
is irrelevant at that point — the weights come from the checkpoint.
"""

from __future__ import annotations

import io
import json
import os
import re
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..nn.graph import ModelGraph
from ..nn.module import Module
from ..optim.sgd import SGD
from ..prune.reconfigure import apply_space_masks

FORMAT_VERSION = 2
#: versions :func:`load_checkpoint` / :func:`restore_checkpoint` accept
SUPPORTED_VERSIONS = (1, 2)

#: filename pattern of periodic run checkpoints (see ``latest_checkpoint``)
_CKPT_RE = re.compile(r"^ckpt-ep(\d+)\.npz$")


def _normalize(path: str) -> str:
    return path if path.endswith(".npz") else path + ".npz"


def _atomic_savez(path: str, arrays: Dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` atomically: temp sibling file + ``os.replace``."""
    path = _normalize(path)
    tmp = path + ".tmp.npz"
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
    os.replace(tmp, path)


def _pack_blobs(model: Module, optimizer: Optional[SGD] = None,
                extra: Optional[Dict] = None,
                train_state: Optional[Dict] = None,
                arrays: Optional[Dict[str, np.ndarray]] = None
                ) -> Dict[str, np.ndarray]:
    """Build the checkpoint's named-array dict (shared by file and bytes
    serialization — one packing routine, two transports)."""
    graph: ModelGraph = model.graph
    blobs: Dict[str, np.ndarray] = {}
    for name, arr in model.state_dict().items():
        blobs[f"state/{name}"] = arr
    if optimizer is not None:
        for name, p in model.named_parameters():
            buf = optimizer.state_for(p)
            if buf is not None:
                blobs[f"momentum/{name}"] = buf
    meta = {
        "format_version": FORMAT_VERSION,
        "space_sizes": {str(sid): sp.size
                        for sid, sp in graph.spaces.items()},
        "inactive_paths": [p.name for p in graph.paths.values()
                           if not getattr(p.block, "active", True)],
        "extra": extra or {},
    }
    if optimizer is not None:
        meta["optimizer"] = {"lr": optimizer.lr,
                             "momentum": optimizer.momentum,
                             "weight_decay": optimizer.weight_decay}
    if train_state is not None:
        meta["train_state"] = train_state
    blobs["meta.json"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8)
    for key, arr in (arrays or {}).items():
        if key.startswith(("state/", "momentum/")) or key == "meta.json":
            raise ValueError(f"reserved checkpoint key {key!r}")
        blobs[key] = np.asarray(arr)
    return blobs


def save_checkpoint(path: str, model: Module,
                    optimizer: Optional[SGD] = None,
                    extra: Optional[Dict] = None,
                    train_state: Optional[Dict] = None,
                    arrays: Optional[Dict[str, np.ndarray]] = None,
                    atomic: bool = True) -> None:
    """Serialize model (+optimizer, +run state) to a single ``.npz`` file.

    ``train_state`` must be JSON-serializable (the trainers build it via
    :meth:`repro.train.Trainer.save_run_checkpoint`); ``arrays`` holds
    additional named ndarrays (keys must not collide with the reserved
    ``state/``, ``momentum/``, ``meta.json`` namespaces).
    """
    blobs = _pack_blobs(model, optimizer, extra, train_state, arrays)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    if atomic:
        _atomic_savez(path, blobs)
    else:
        np.savez(path, **blobs)


def dumps_state(model: Module, optimizer: Optional[SGD] = None) -> bytes:
    """Serialize a checkpoint to bytes (same format as :func:`save_checkpoint`).

    This is the transport the elastic data-parallel engine uses to resync
    worker replicas after a pruning reconfiguration: the coordinator ships
    exactly a checkpoint — recorded structure plus every array — so a
    replica resync is bit-equivalent to a checkpoint round-trip.
    """
    buf = io.BytesIO()
    np.savez(buf, **_pack_blobs(model, optimizer))
    return buf.getvalue()


# -- loading ----------------------------------------------------------------

def _parse(data):
    meta = json.loads(bytes(data["meta.json"]).decode())
    if meta["format_version"] not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported checkpoint version "
                         f"{meta['format_version']}")
    return data, meta


def _read(path: str):
    return _parse(np.load(_normalize(path)))


def _replay_structure(model: Module, meta: Dict) -> None:
    """Replay recorded layer removal + channel pruning onto a dense model."""
    graph: ModelGraph = model.graph

    # 1. layer removal
    inactive = set(meta["inactive_paths"])
    for p in graph.paths.values():
        if p.name in inactive:
            p.block.active = False
            for attr in ("conv1", "bn1", "conv2", "bn2", "conv3", "bn3"):
                if hasattr(p.block, attr):
                    setattr(p.block, attr, None)

    # 2. channel pruning (first-k masks; identity is arbitrary because the
    #    checkpoint supplies the weights)
    masks = {}
    for sid, sp in graph.spaces.items():
        size = int(meta["space_sizes"][str(sid)])
        keep = np.zeros(sp.size, dtype=bool)
        keep[:size] = True
        masks[sid] = keep
    apply_space_masks(model, masks)
    graph.validate()


def _load_model_arrays(model: Module, data) -> None:
    state = {key[len("state/"):]: data[key]
             for key in data.files if key.startswith("state/")}
    model.load_state_dict(state)


def _load_momentum(optimizer: SGD, model: Module, data) -> None:
    params = dict(model.named_parameters())
    for key in data.files:
        if key.startswith("momentum/"):
            name = key[len("momentum/"):]
            if name in params:
                optimizer.set_state_for(params[name], data[key])


def load_checkpoint(path: str, model_factory: Callable[[], Module],
                    with_optimizer: bool = False
                    ) -> Tuple[Module, Optional[SGD], Dict]:
    """Rebuild a (possibly pruned) model from a checkpoint.

    ``model_factory`` must construct the *original* architecture (same
    factory and arguments used before training).  Returns
    ``(model, optimizer_or_None, extra)``.  Accepts format versions 1 and 2.
    """
    data, meta = _read(path)
    model = model_factory()
    _replay_structure(model, meta)
    _load_model_arrays(model, data)

    optimizer = None
    if with_optimizer:
        if "optimizer" not in meta:
            raise ValueError("checkpoint has no optimizer state")
        cfg = meta["optimizer"]
        optimizer = SGD(model.parameters(), lr=cfg["lr"],
                        momentum=cfg["momentum"],
                        weight_decay=cfg["weight_decay"])
        _load_momentum(optimizer, model, data)
    return model, optimizer, meta["extra"]


def restore_checkpoint(path: str, model: Module,
                       optimizer: Optional[SGD] = None
                       ) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Restore a checkpoint **in place** into an existing model (+optimizer).

    This is the resume path: the trainer already owns a freshly built model
    (original dense architecture) and an optimizer attached to its
    parameters.  The recorded structure is replayed onto ``model`` (the
    parameter *objects* survive surgery, so the optimizer stays attached),
    the arrays are loaded, and the optimizer's hyperparameters + momentum
    buffers are restored with stale per-parameter state purged.

    Returns ``(meta, arrays)`` where ``meta`` is the full metadata dict
    (including ``"train_state"`` when present, i.e. format >= 2) and
    ``arrays`` maps every non-reserved array key (e.g. ``tracker/...``) to
    its ndarray.
    """
    return _restore_into(*_read(path), model, optimizer)


def loads_state(blob: bytes, model: Module,
                optimizer: Optional[SGD] = None
                ) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """In-place restore from bytes produced by :func:`dumps_state`.

    Identical semantics to :func:`restore_checkpoint`, minus the file.
    Structure replay is *monotone* (spaces only shrink, paths only
    deactivate under PruneTrain), so the target model may be either the
    original dense architecture or any earlier point of the same pruning
    trajectory — which is exactly the state of an elastic worker's replica
    at resync time.
    """
    return _restore_into(*_parse(np.load(io.BytesIO(blob))), model,
                         optimizer)


def _restore_into(data, meta: Dict, model: Module,
                  optimizer: Optional[SGD] = None
                  ) -> Tuple[Dict, Dict[str, np.ndarray]]:
    _replay_structure(model, meta)
    _load_model_arrays(model, data)
    if optimizer is not None:
        optimizer.sync_params(model.parameters())
        if "optimizer" in meta:
            cfg = meta["optimizer"]
            optimizer.lr = float(cfg["lr"])
            optimizer.momentum = float(cfg["momentum"])
            optimizer.weight_decay = float(cfg["weight_decay"])
        _load_momentum(optimizer, model, data)
    arrays = {key: data[key] for key in data.files
              if not key.startswith(("state/", "momentum/"))
              and key != "meta.json"}
    return meta, arrays


def read_meta(path: str) -> Dict:
    """Read a checkpoint's metadata dict without touching any model.

    Cheap pre-flight for auto-resume: callers can verify the file parses
    and carries a ``"train_state"`` *before* mutating a live trainer, so a
    stale/incompatible checkpoint never leaves a run half-restored.
    """
    _, meta = _read(path)
    return meta


def latest_checkpoint(directory: str) -> Optional[str]:
    """Path of the newest periodic checkpoint in ``directory`` (or None).

    Recognizes the trainers' ``ckpt-ep<NNNNN>.npz`` naming and picks the
    highest epoch.  Partial ``*.tmp.npz`` files from an interrupted write
    are ignored.
    """
    if not os.path.isdir(directory):
        return None
    best: Tuple[int, Optional[str]] = (-1, None)
    for fname in os.listdir(directory):
        m = _CKPT_RE.match(fname)
        if m and int(m.group(1)) > best[0]:
            best = (int(m.group(1)), os.path.join(directory, fname))
    return best[1]


def checkpoint_path(directory: str, epoch: int) -> str:
    """Canonical periodic-checkpoint path for ``epoch`` (0-based, completed)."""
    return os.path.join(directory, f"ckpt-ep{epoch:05d}.npz")


def prune_old_checkpoints(directory: str, keep: int) -> int:
    """Delete all but the newest ``keep`` periodic checkpoints; returns the
    number removed.  ``keep <= 0`` disables retention (keep everything)."""
    if keep <= 0 or not os.path.isdir(directory):
        return 0
    found = []
    for fname in os.listdir(directory):
        m = _CKPT_RE.match(fname)
        if m:
            found.append((int(m.group(1)), os.path.join(directory, fname)))
    found.sort()
    removed = 0
    for _, fpath in found[:-keep] if len(found) > keep else []:
        try:
            os.remove(fpath)
            removed += 1
        except OSError:  # pragma: no cover - racing cleanup is best-effort
            pass
    return removed
