"""Persistence: checkpoints that survive dynamic reconfiguration."""

from .checkpoint import (FORMAT_VERSION, checkpoint_path, latest_checkpoint,
                         load_checkpoint, prune_old_checkpoints, read_meta,
                         restore_checkpoint, save_checkpoint)

__all__ = ["save_checkpoint", "load_checkpoint", "restore_checkpoint",
           "latest_checkpoint", "checkpoint_path", "prune_old_checkpoints",
           "read_meta", "FORMAT_VERSION"]
