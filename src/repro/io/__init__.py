"""Persistence: checkpoints that survive dynamic reconfiguration."""

from .checkpoint import (FORMAT_VERSION, checkpoint_path, dumps_state,
                         latest_checkpoint, load_checkpoint, loads_state,
                         prune_old_checkpoints, read_meta, restore_checkpoint,
                         save_checkpoint)

__all__ = ["save_checkpoint", "load_checkpoint", "restore_checkpoint",
           "dumps_state", "loads_state",
           "latest_checkpoint", "checkpoint_path", "prune_old_checkpoints",
           "read_meta", "FORMAT_VERSION"]
