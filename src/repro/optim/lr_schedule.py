"""Learning-rate schedules.

The paper trains with the He et al. step schedule (decay 10x at fixed
fractions of training).  A schedule here returns a *base* LR per epoch; the
trainer multiplies it by the dynamic mini-batch scaling factor (Sec. 4.3),
keeping the two mechanisms composable and independent, exactly as in
Algorithm 1 where ``UpdateMiniBatch`` adjusts both ``Msize`` and ``LR``.
"""

from __future__ import annotations

from typing import Sequence


class LRSchedule:
    """Base class: map epoch index -> base learning rate."""

    def lr_at(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Fixed learning rate for every epoch (fine-tuning phases)."""

    def __init__(self, lr: float):
        self.lr = float(lr)

    def lr_at(self, epoch: int) -> float:
        return self.lr


class StepLR(LRSchedule):
    """Piecewise-constant decay: multiply by ``gamma`` at each milestone.

    ``StepLR(0.1, [91, 136], 0.1)`` is the classic CIFAR ResNet schedule.
    """

    def __init__(self, base_lr: float, milestones: Sequence[int],
                 gamma: float = 0.1):
        self.base_lr = float(base_lr)
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = float(gamma)

    def lr_at(self, epoch: int) -> float:
        lr = self.base_lr
        for m in self.milestones:
            if epoch >= m:
                lr *= self.gamma
        return lr


def milestones_for(total_epochs: int,
                   fractions: Sequence[float] = (0.5, 0.75)) -> list:
    """He-style milestones at fixed fractions of the training run."""
    return [max(1, int(round(total_epochs * f))) for f in fractions]
