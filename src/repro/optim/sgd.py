"""SGD with momentum and (decoupled) L2 weight decay.

Two PruneTrain-specific requirements shape this implementation:

1. **Momentum buffers are keyed by parameter identity** and exposed through
   :meth:`SGD.state_for`, so channel surgery can slice the momentum of pruned
   parameters in lock-step with the weights ("all training variables of the
   remaining channels are kept as is", Sec. 4.2).
2. **The learning rate is mutable mid-training** (:attr:`SGD.lr`) for the
   dynamic mini-batch adjustment's linear LR scaling rule.

Updates are fully in-place (per the optimization guides): no per-step
allocation beyond the gradient arrays autograd already produced.  The two
per-parameter temporaries of the naive formulation (``wd * w`` and
``lr * v``) are staged through a per-parameter scratch buffer cached on the
optimizer (parameters are tiny, so a dict lookup beats the workspace pool's
acquire/release bookkeeping here), so a steady-state step allocates nothing
at all.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter
from ..profiler import PROFILER as _P


class SGD:
    """Stochastic gradient descent: ``v = m*v + g + wd*w; w -= lr*v``."""

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.9, weight_decay: float = 0.0):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("no parameters to optimize")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}
        self._scratch: Dict[int, np.ndarray] = {}

    def state_for(self, param: Parameter) -> Optional[np.ndarray]:
        """Momentum buffer of ``param`` (None until first step)."""
        return self._velocity.get(id(param))

    def sync_params(self, params: Iterable[Parameter]) -> None:
        """Replace the parameter list and purge state of departed params.

        Network reconfiguration (layer removal) drops parameters from the
        model; their ``_velocity``/``_scratch`` entries must go with them.
        Both dicts are keyed by ``id(param)``, so a stale entry is not just a
        leak: once the dead parameter is garbage-collected its id can be
        recycled by a *new* parameter, silently attaching the dead
        parameter's momentum to it.  Purging here is safe against that
        hazard because the old parameter objects are still alive (referenced
        by the previous ``self.params`` list) until this method returns, so
        live and stale ids cannot collide.
        """
        params = list(params)
        if not params:
            raise ValueError("no parameters to optimize")
        live = {id(p) for p in params}
        for state in (self._velocity, self._scratch):
            for pid in [k for k in state if k not in live]:
                del state[pid]
        self.params = params

    def set_state_for(self, param: Parameter, buf: np.ndarray) -> None:
        """Replace a momentum buffer (used by pruning surgery)."""
        if buf.shape != param.data.shape:
            raise ValueError(
                f"momentum shape {buf.shape} != param shape {param.data.shape}")
        self._velocity[id(param)] = np.ascontiguousarray(
            buf, dtype=param.data.dtype)

    def step(self) -> None:
        """Apply one update using the gradients accumulated in ``p.grad``."""
        prof = _P.enabled
        if prof:
            t0 = time.perf_counter()
        wd, momentum, lr = self.weight_decay, self.momentum, self.lr
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            pid = id(p)
            scratch = self._scratch.get(pid)
            if scratch is None or scratch.shape != p.data.shape:
                scratch = np.empty_like(p.data)
                self._scratch[pid] = scratch
            if wd:
                # in-place fused: g <- g + wd * w (no wd*w temporary)
                np.multiply(p.data, wd, out=scratch)
                g += scratch
            v = self._velocity.get(pid)
            if v is None:
                v = np.zeros_like(p.data)
                self._velocity[pid] = v
            v *= momentum
            v += g
            # w <- w - lr * v (no lr*v temporary)
            np.multiply(v, lr, out=scratch)
            p.data -= scratch
        if prof:
            _P.add("sgd_step", time.perf_counter() - t0, 0)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def scale_lr(self, factor: float) -> None:
        """Multiply the learning rate (dynamic mini-batch linear scaling)."""
        self.lr *= factor
