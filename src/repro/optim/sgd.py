"""SGD with momentum and (decoupled) L2 weight decay.

Two PruneTrain-specific requirements shape this implementation:

1. **Momentum buffers are keyed by parameter identity** and exposed through
   :meth:`SGD.state_for`, so channel surgery can slice the momentum of pruned
   parameters in lock-step with the weights ("all training variables of the
   remaining channels are kept as is", Sec. 4.2).
2. **The learning rate is mutable mid-training** (:attr:`SGD.lr`) for the
   dynamic mini-batch adjustment's linear LR scaling rule.

Updates are fully in-place (per the optimization guides): no per-step
allocation beyond the gradient arrays autograd already produced.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter


class SGD:
    """Stochastic gradient descent: ``v = m*v + g + wd*w; w -= lr*v``."""

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.9, weight_decay: float = 0.0):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("no parameters to optimize")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def state_for(self, param: Parameter) -> Optional[np.ndarray]:
        """Momentum buffer of ``param`` (None until first step)."""
        return self._velocity.get(id(param))

    def set_state_for(self, param: Parameter, buf: np.ndarray) -> None:
        """Replace a momentum buffer (used by pruning surgery)."""
        if buf.shape != param.data.shape:
            raise ValueError(
                f"momentum shape {buf.shape} != param shape {param.data.shape}")
        self._velocity[id(param)] = np.ascontiguousarray(
            buf, dtype=param.data.dtype)

    def step(self) -> None:
        """Apply one update using the gradients accumulated in ``p.grad``."""
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                # in-place fused: g <- g + wd * w
                g += self.weight_decay * p.data
            v = self._velocity.get(id(p))
            if v is None:
                v = np.zeros_like(p.data)
                self._velocity[id(p)] = v
            v *= self.momentum
            v += g
            p.data -= self.lr * v

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def scale_lr(self, factor: float) -> None:
        """Multiply the learning rate (dynamic mini-batch linear scaling)."""
        self.lr *= factor
