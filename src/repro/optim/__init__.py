"""Optimizers and learning-rate schedules."""

from .lr_schedule import ConstantLR, LRSchedule, StepLR, milestones_for
from .sgd import SGD

__all__ = ["SGD", "LRSchedule", "ConstantLR", "StepLR", "milestones_for"]
