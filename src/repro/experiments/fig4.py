"""Fig. 4 — per-channel max|w| trajectories: sparsified channels rarely revive.

Trains ResNet-50 with group lasso while tracking the three convolutions of
one bottleneck residual path, with ``zero_sparse=False`` so the dynamics are
unmanipulated.  Reports the trajectory matrices (the paper's heatmaps) and
revival statistics: channels that crossed below the threshold and later rose
above ``10x threshold``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .configs import Scale
from .runner import get_runs

MODEL = "resnet50"
DATASET = "cifar10s"
TRACKED = ("s1b0.conv1", "s1b0.conv2", "s1b0.conv3")


def run(scale: Scale, ratio: float = 0.25) -> Dict:
    runs = get_runs(scale)
    key, log = runs.prunetrain(MODEL, DATASET, ratio=ratio,
                               track_convs=TRACKED, zero_sparse=False,
                               need_model=True)
    trainer = runs.trainer_for(key)
    threshold = trainer.threshold
    out: Dict = {"threshold": threshold, "matrices": {}, "revivals": {},
                 "final_acc": log.final_val_acc}
    for name in TRACKED:
        mat = trainer.tracker.matrix(name)
        stats = trainer.tracker.revival_stats(name, threshold=threshold)
        out["matrices"][name] = mat
        out["revivals"][name] = {
            "channels": stats.channels,
            "ever_sparse": stats.ever_sparse,
            "revived": stats.revived,
            "revival_rate": stats.revival_rate,
            "max_post_sparse_value": stats.max_post_sparse_value,
        }
    return out


def report(result: Dict) -> str:
    lines = [f"== Fig. 4: channel weight trajectories "
             f"(threshold {result['threshold']:.1e}) =="]
    for name, rev in result["revivals"].items():
        mat = result["matrices"][name]
        sparse_final = (mat[-1] < result["threshold"]).mean() if len(mat) \
            else 0.0
        lines.append(
            f"  {name}: {rev['channels']} channels, "
            f"{rev['ever_sparse']} sparsified, {rev['revived']} revived "
            f"(rate {100 * rev['revival_rate']:.1f}%), "
            f"final sparse fraction {100 * sparse_final:.0f}%, "
            f"max post-sparse value {rev['max_post_sparse_value']:.2e}")
    return "\n".join(lines)
