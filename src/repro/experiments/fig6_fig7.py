"""Fig. 6 & Fig. 7 — channel union vs channel gating.

Fig. 6: normalized inference FLOPs of the two schemes across pruning
intensities, for ResNet-32 and ResNet-50.  The paper's finding: the union's
redundant lanes cost only 1-6% extra FLOPs, independent of depth.

Fig. 7: *measured* per-residual-block execution time of the two schemes on
our engine.  Gating runs strictly fewer FLOPs but pays for the select/
scatter tensor reshaping (real memory copies); union runs index-free.  The
paper measures union ~1.9x faster on average; our CPU engine reproduces the
qualitative ranking (copies are expensive relative to the saved GEMM work).

Sparsity construction: these two figures characterize *execution* of a
pruned model at controlled pruning intensities, not learning, so sparsity
patterns are constructed directly: at intensity p, interior path channels
are sparsified consistently (prunable by union) with probability p, and each
conv additionally sparsifies private lanes (exploitable only by gating) with
probability p/2 — matching the structure group-lasso training produces
(most sparsity agrees across adjacent layers; a modest remainder does not).
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from ..costmodel import V100, DeviceModel, inference_flops
from ..nn import resnet32, resnet50_cifar
from ..prune import (GatedPathRunner, UnionPathRunner, all_path_plans,
                     zero_sparsified_groups)
from ..tensor import Tensor, no_grad
from .configs import Scale
from .format import series, table

INTENSITIES = (0.2, 0.35, 0.5, 0.65, 0.8)


def _apply_pattern(model, intensity: float, seed: int = 0) -> None:
    """Sparsify a fresh model at the given intensity (see module docstring)."""
    rng = np.random.default_rng(seed)
    g = model.graph
    # union-prunable sparsity: whole-space kills
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < intensity
        kill[0] = False
        for node in g.writers(sid):
            node.conv.weight.data[kill] = 0.0
            if node.bn is not None:
                node.bn.weight.data[kill] = 0.0
                node.bn.bias.data[kill] = 0.0
        for node in g.readers(sid):
            node.conv.weight.data[:, kill] = 0.0
    # gating-only sparsity: *one-sided* lanes inside residual paths.  A
    # channel zeroed on only one side of an interior edge (or in only one
    # junction member) is kept by union (not all members agree) but skipped
    # by gating — exactly the redundancy the union trades for index-free
    # execution.  Probability intensity/4 per side keeps the union premium
    # small, as group-lasso training produces (paper: 1-6%).
    for path in g.paths.values():
        nodes = [g.conv_by_name(n) for n in path.conv_names]
        for a, b in zip(nodes[:-1], nodes[1:]):
            extra_a = rng.random(a.conv.out_channels) < intensity / 4
            extra_a[0] = False
            a.conv.weight.data[extra_a] = 0.0
            if a.bn is not None:
                a.bn.weight.data[extra_a] = 0.0
                a.bn.bias.data[extra_a] = 0.0
            extra_b = rng.random(b.conv.in_channels) < intensity / 4
            extra_b[0] = False
            b.conv.weight.data[:, extra_b] = 0.0
        # junction-side: the path's first conv ignores some junction
        # channels other members still use
        first = nodes[0]
        extra_in = rng.random(first.conv.in_channels) < intensity / 4
        extra_in[0] = False
        first.conv.weight.data[:, extra_in] = 0.0


def run_fig6(scale: Scale) -> Dict:
    """Normalized inference FLOPs, union vs gating, per intensity."""
    out: Dict = {"intensities": list(INTENSITIES), "models": {}}
    for name, factory in [("resnet32", resnet32), ("resnet50",
                                                   resnet50_cifar)]:
        rows = []
        for p in INTENSITIES:
            m = factory(10, width_mult=scale.width_mult, input_hw=scale.hw)
            dense = inference_flops(m.graph)
            _apply_pattern(m, p)
            union = inference_flops(m.graph, mode="union")
            gating = inference_flops(m.graph, mode="gating")
            rows.append({"intensity": p, "union": union / dense,
                         "gating": gating / dense,
                         "gap": (union - gating) / dense})
        out["models"][name] = rows
    return out


def run_fig7(scale: Scale, batch: int = 8, repeats: int = 3,
             device: DeviceModel = V100) -> Dict:
    """Per-block time, union vs gating — modeled on a GPU and measured on
    our CPU engine.

    The paper's Fig. 7 ranking (union faster despite more FLOPs) is a *GPU*
    phenomenon: the select/scatter reshaping streams whole feature maps
    through memory, and the gated convs run at narrow, low-utilization
    channel counts.  Our calibrated device model prices exactly those
    effects (``gating = conv@gating_dims + reshape traffic``,
    ``union = conv@union_dims``).  The CPU engine's raw wall-clock is also
    reported for transparency — on a CPU, BLAS GEMM time dominates and
    copies are comparatively free, so the measured ranking *inverts*; the
    benchmark asserts the modeled GPU ranking and merely records the CPU
    one.
    """
    m = resnet50_cifar(10, width_mult=scale.width_mult, input_hw=scale.hw)
    _apply_pattern(m, 0.5)
    zero_sparsified_groups(m.graph)
    m.eval()
    g = m.graph
    results: List[Dict] = []
    plans = all_path_plans(g)
    with no_grad():
        for pid, path in g.paths.items():
            if not getattr(path.block, "active", True):
                continue
            first = g.conv_by_name(path.conv_names[0])
            cin = g.spaces[first.in_space].size
            in_hw = first.out_hw * first.conv.stride
            x = Tensor(np.random.default_rng(pid).normal(
                size=(batch, cin, in_hw, in_hw)).astype(np.float32))
            union = UnionPathRunner(g, path)
            gated = GatedPathRunner(g, path)
            tu = _time_best(lambda: union.forward(x), repeats)
            tg = _time_best(lambda: gated.forward(x), repeats)
            mu, mg = _model_block_times(g, path, plans[pid], batch, device)
            results.append({
                "block": path.name,
                "union_ms": tu * 1e3, "gating_ms": tg * 1e3,
                "cpu_speedup": tg / tu if tu > 0 else float("nan"),
                "model_union_ms": mu * 1e3, "model_gating_ms": mg * 1e3,
                "model_speedup": mg / mu if mu > 0 else float("nan"),
            })
    return {"blocks": results,
            "device": device.name,
            "mean_cpu_speedup": float(np.mean(
                [r["cpu_speedup"] for r in results])),
            "mean_speedup": float(np.mean(
                [r["model_speedup"] for r in results]))}


def _model_block_times(g, path, plan, batch: int, device: DeviceModel):
    """Modeled (union, gating) seconds for one residual path on ``device``."""
    union_t = 0.0
    gating_t = 0.0
    nodes = [g.conv_by_name(n) for n in path.conv_names]
    for node, cp in zip(nodes, plan.convs):
        k, c, r, s = node.conv.weight.data.shape
        rows = batch * node.out_hw ** 2
        fl_union = 2.0 * k * c * r * s * node.out_hw ** 2 * batch
        union_t += fl_union / (device.peak_flops
                               * device.utilization(c, k, rows))
        ci, co = cp.in_idx.size, cp.out_idx.size
        fl_gate = 2.0 * co * ci * r * s * node.out_hw ** 2 * batch
        gating_t += fl_gate / (device.peak_flops
                               * device.utilization(ci, co, rows))
    # Reshaping cost: the select layer reads the selected input channels and
    # writes a fresh contiguous tensor; the scatter writes a full
    # junction-sized tensor.  Index-driven access is non-coalesced on a GPU
    # (~2x effective traffic), and each reshape is an extra kernel launch —
    # both effects are part of the paper's measured "tensor reshaping" bars.
    first, last = nodes[0], nodes[-1]
    in_hw = first.out_hw * first.conv.stride
    gather_bytes = 2 * batch * plan.gather_idx.size * in_hw ** 2 * 4
    scatter_bytes = batch * (plan.scatter_idx.size
                             + plan.junction_out) * last.out_hw ** 2 * 4
    noncoalesced = 2.0
    gating_t += noncoalesced * (gather_bytes + scatter_bytes) \
        / device.mem_bandwidth
    gating_t += 2 * device.layer_overhead  # select + scatter launches
    return union_t, gating_t


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def report_fig6(result: Dict) -> str:
    lines = []
    for name, rows in result["models"].items():
        lines.append(table(
            ["intensity", "union FLOPs", "gating FLOPs", "union extra"],
            [[r["intensity"], f"{r['union']:.3f}", f"{r['gating']:.3f}",
              f"{100 * r['gap']:.1f}%"] for r in rows],
            title=f"== Fig. 6: normalized inference FLOPs ({name}) =="))
        lines.append("")
    return "\n".join(lines)


def report_fig7(result: Dict) -> str:
    dev = result["device"]
    rows = [[r["block"],
             f"{r['model_union_ms']:.3f}", f"{r['model_gating_ms']:.3f}",
             f"{r['model_speedup']:.2f}x",
             f"{r['union_ms']:.2f}", f"{r['gating_ms']:.2f}"]
            for r in result["blocks"]]
    t = table(["block", f"{dev} union ms", f"{dev} gating ms",
               f"{dev} speedup", "cpu union ms", "cpu gating ms"], rows,
              title=f"== Fig. 7: per-block time, union vs gating "
                    f"(modeled {dev} + measured CPU) ==")
    return t + (f"\nmean union speedup over gating on {dev} (modeled): "
                f"{result['mean_speedup']:.2f}x; on this CPU (measured): "
                f"{result['mean_cpu_speedup']:.2f}x — the GPU ranking is "
                f"the paper's (reshaping + narrow-dim utilization); the "
                f"CPU inverts it because BLAS GEMM dominates and copies "
                f"are cheap")
