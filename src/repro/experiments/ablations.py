"""Ablations of DESIGN.md's called-out design choices.

1. **Global λ vs per-group size scaling** — the paper argues a single global
   coefficient prioritizes compute reduction (early layers, few channels,
   big features) over parameter reduction.
2. **Eq.-3 λ setup vs fixed λ guesses** — the paper's systematic setup
   should land in the "good" operating region on the first try, where naive
   fixed choices either barely prune or destroy accuracy.
3. **Linear LR scaling on dynamic batch growth** — dropping the LR rescale
   when the batch grows should hurt accuracy (the mechanism's correctness
   depends on the coupled adjustment).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..costmodel import inference_flops
from .configs import Scale, epochs_for
from .format import pct, table
from .runner import get_runs

MODEL = "resnet32"
DATASET = "cifar10s"


def run_penalty_scaling(scale: Scale, ratio: float = 0.25) -> Dict:
    """Global-λ vs size-scaled penalty: compare FLOPs vs params reduction."""
    runs = get_runs(scale)
    _, dense = runs.dense(MODEL, DATASET)
    _, glob = runs.prunetrain(MODEL, DATASET, ratio=ratio)
    _, scaled = runs.prunetrain(MODEL, DATASET, ratio=ratio,
                                per_group_size_scaling=True)
    rows = []
    for name, log in [("global λ", glob), ("size-scaled", scaled)]:
        rows.append({
            "variant": name,
            "flops_ratio": log.final_inference_flops
            / dense.final_inference_flops,
            "param_ratio": log.records[-1].params / dense.records[-1].params,
            "acc": log.final_val_acc,
        })
    return {"rows": rows, "dense_acc": dense.final_val_acc}


def run_lambda_setup(scale: Scale) -> Dict:
    """Eq.-3 setup vs fixed λ multipliers (x0.1 and x10 off)."""
    runs = get_runs(scale)
    _, dense = runs.dense(MODEL, DATASET)
    epochs = epochs_for(DATASET, scale)
    auto_scale = scale.lambda_scale(epochs)
    rows = []
    for name, lam_scale in [("Eq. 3 setup", auto_scale),
                            ("x0.1 (too weak)", auto_scale * 0.1),
                            ("x10 (too strong)", auto_scale * 10.0)]:
        _, log = runs.prunetrain(MODEL, DATASET, ratio=0.25,
                                 lambda_scale=lam_scale)
        rows.append({
            "variant": name,
            "flops_ratio": log.final_inference_flops
            / dense.final_inference_flops,
            "acc_delta": log.final_val_acc - dense.final_val_acc,
        })
    return {"rows": rows, "dense_acc": dense.final_val_acc}


def run_lr_scaling(scale: Scale, ratio: float = 0.25) -> Dict:
    """Dynamic batch growth with vs without the linear LR rescale."""
    from ..costmodel import MemoryModel
    from ..distributed import DynamicBatchAdjuster
    from ..train import PruneTrainConfig, PruneTrainTrainer
    from .configs import make_dataset, make_model

    train, val = get_runs(scale).dataset("cifar100s")
    # comparative claim only -> half-length runs keep the bench affordable
    epochs = max(4, epochs_for("cifar100s", scale) // 2)
    results = []
    for rescale in (True, False):
        model = make_model("resnet50", "cifar100s", scale)
        cfg = PruneTrainConfig(
            epochs=epochs, batch_size=scale.batch_size, lr=0.1,
            augment=scale.augment, seed=scale.seed,
            penalty_ratio=ratio,
            reconfig_interval=scale.reconfig_interval,
            threshold=None,
            lambda_mode="rate", zero_sparse=True)
        from ..costmodel import iteration_memory_bytes
        cap = iteration_memory_bytes(model.graph, scale.batch_size) * 1.1
        adjuster = DynamicBatchAdjuster(
            MemoryModel(capacity_bytes=cap),
            granularity=max(8, scale.batch_size // 4),
            max_batch=min(512, scale.n_train // 2),
            lr_rule="linear" if rescale else "linear")
        trainer = PruneTrainTrainer(model, train, val, cfg,
                                    batch_adjuster=adjuster)
        if not rescale:
            # sever the LR coupling: adjuster still grows the batch but the
            # trainer keeps the base LR
            trainer.lr_scale = 1.0
            orig = trainer._reconfigure

            def no_rescale(epoch, _orig=orig, _tr=trainer):
                before = _tr.lr_scale
                _orig(epoch)
                _tr.lr_scale = before

            trainer._reconfigure = no_rescale
        log = trainer.train()
        results.append({
            "variant": "with LR rescale" if rescale else "no LR rescale",
            "acc": log.final_val_acc,
            "final_batch": int(log.records[-1].batch_size),
        })
    return {"rows": results}


def run_finetune(scale: Scale, ratio: float = 0.25,
                 dataset: str = "cifar100s") -> Dict:
    """Fine-tuning after PruneTrain (the paper's Tab. 1 "(fine-tuning)"
    column): a few regularization-free low-LR epochs recover accuracy."""
    from ..train.finetune import fine_tune

    runs = get_runs(scale)
    _, dense = runs.dense("resnet50", dataset)
    key, pt = runs.prunetrain("resnet50", dataset, ratio=ratio,
                              need_model=True)
    model = runs.model_for(key)
    train, val = runs.dataset(dataset)
    ft_epochs = max(2, epochs_for(dataset, scale) // 4)
    ft = fine_tune(model, train, val, epochs=ft_epochs, lr=1e-3,
                   batch_size=scale.batch_size, seed=scale.seed)
    return {
        "dense_acc": dense.final_val_acc,
        "pt_acc": pt.final_val_acc,
        "ft_acc": ft.final_val_acc,
        "ft_epochs": ft_epochs,
        "recovered": ft.final_val_acc - pt.final_val_acc,
        "inference_flops": pt.final_inference_flops
        / dense.final_inference_flops,
    }


def report_finetune(result: Dict) -> str:
    return table(
        ["stage", "val acc"],
        [["dense baseline", f"{result['dense_acc']:.3f}"],
         ["PruneTrain", f"{result['pt_acc']:.3f}"],
         [f"+{result['ft_epochs']} fine-tune epochs",
          f"{result['ft_acc']:.3f}"]],
        title=f"== Ablation: post-pruning fine-tuning "
              f"(model at {pct(result['inference_flops'])} dense FLOPs, "
              f"recovered {100 * result['recovered']:+.1f}%) ==")


def report_penalty_scaling(result: Dict) -> str:
    return table(
        ["variant", "inference FLOPs", "params", "val acc"],
        [[r["variant"], pct(r["flops_ratio"]), pct(r["param_ratio"]),
          f"{r['acc']:.3f}"] for r in result["rows"]],
        title=f"== Ablation: penalty scaling "
              f"(dense acc {result['dense_acc']:.3f}) ==")


def report_lambda_setup(result: Dict) -> str:
    return table(
        ["variant", "inference FLOPs", "acc Δ"],
        [[r["variant"], pct(r["flops_ratio"]),
          f"{100 * r['acc_delta']:+.1f}%"] for r in result["rows"]],
        title="== Ablation: λ setup ==")


def report_lr_scaling(result: Dict) -> str:
    return table(
        ["variant", "val acc", "final batch"],
        [[r["variant"], f"{r['acc']:.3f}", r["final_batch"]]
         for r in result["rows"]],
        title="== Ablation: LR rescaling on batch growth ==")
