"""Fig. 9 & Tab. 4 — dynamic mini-batch adjustment.

Fig. 9: per-iteration training-memory requirement across epochs, with the
adjuster growing the mini-batch into freed capacity after reconfigurations.

Tab. 4: naive PruneTrain vs batch-adjusted PruneTrain — modeled training
time reduction (1080Ti and V100), final inference FLOPs, and accuracy delta
vs the dense baseline.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .configs import Scale
from .format import pct, series, table
from .runner import get_runs

CASES = [("resnet50", "cifar100s"), ("resnet50-imagenet", "imagenet-s")]


def run(scale: Scale, ratio: float = 0.25) -> Dict:
    runs = get_runs(scale)
    out: Dict = {"cases": {}}
    for model, dataset in CASES:
        _, dense = runs.dense(model, dataset)
        _, naive = runs.prunetrain(model, dataset, ratio=ratio)
        key_adj, adjusted = runs.prunetrain(model, dataset, ratio=ratio,
                                            dynamic_batch=True)
        rel_naive = naive.relative_to(dense)
        rel_adj = adjusted.relative_to(dense)
        out["cases"][f"{model}/{dataset}"] = {
            "memory_naive": naive.series("memory_bytes"),
            "memory_adjusted": adjusted.series("memory_bytes"),
            "batch_naive": naive.series("batch_size"),
            "batch_adjusted": adjusted.series("batch_size"),
            "capacity": float(naive.records[0].memory_bytes * 1.1),
            "tab4": [
                {"method": "naive",
                 "time_red_1080ti": 1 - rel_naive["time_ratio_1080ti"],
                 "time_red_v100": 1 - rel_naive["time_ratio_v100"],
                 "inference_flops": rel_naive["inference_flops_ratio"],
                 "acc_delta": rel_naive["val_acc_delta"],
                 "comm_ratio": rel_naive.get("comm_ratio", float("nan"))},
                {"method": "adjusted",
                 "time_red_1080ti": 1 - rel_adj["time_ratio_1080ti"],
                 "time_red_v100": 1 - rel_adj["time_ratio_v100"],
                 "inference_flops": rel_adj["inference_flops_ratio"],
                 "acc_delta": rel_adj["val_acc_delta"],
                 "comm_ratio": rel_adj.get("comm_ratio", float("nan"))},
            ],
        }
    return out


def report(result: Dict) -> str:
    lines = []
    for case, data in result["cases"].items():
        lines.append(f"== Fig. 9: memory per iteration, {case} "
                     f"(capacity {data['capacity'] / 1e6:.0f} MB) ==")
        lines.append(series("  naive    MB",
                            data["memory_naive"] / 1e6, "{:.0f}"))
        lines.append(series("  adjusted MB",
                            data["memory_adjusted"] / 1e6, "{:.0f}"))
        lines.append(series("  batch sizes ",
                            data["batch_adjusted"], "{:.0f}"))
        lines.append(table(
            ["method", "time red. (1080Ti)", "time red. (V100)",
             "inf FLOPs", "acc Δ", "comm"],
            [[r["method"], pct(r["time_red_1080ti"]),
              pct(r["time_red_v100"]), pct(r["inference_flops"]),
              f"{100 * r['acc_delta']:+.1f}%", pct(r["comm_ratio"])]
             for r in data["tab4"]],
            title=f"== Tab. 4: {case} =="))
        lines.append("")
    return "\n".join(lines)
