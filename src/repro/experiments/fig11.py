"""Fig. 11 — projected per-epoch communication cost of model updates.

Hierarchical ring-allreduce cost per epoch, normalized to the dense
baseline, across training, for three regularization strengths.  Two effects
compound: reconfiguration shrinks the gradient payload, and dynamic
mini-batch growth (strong regularization frees memory fastest) reduces the
number of allreduce rounds per epoch.  The paper projects ~55% average
savings; the bench checks the monotone-decreasing series and strength
ordering.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .configs import Scale
from .format import series
from .runner import get_runs

MODEL = "resnet50-imagenet"
DATASET = "imagenet-s"
#: Weak/strong endpoints; 0.25 is shared with Fig. 9 / Tab. 4's dynamic runs.
STRENGTHS = (0.1, 0.25)


def run(scale: Scale) -> Dict:
    runs = get_runs(scale)
    _, dense = runs.dense(MODEL, DATASET)
    dense_comm = dense.series("comm_bytes_epoch")
    out: Dict = {"strengths": list(STRENGTHS), "series": {}, "mean_saving": {}}
    for strength in STRENGTHS:
        _, log = runs.prunetrain(MODEL, DATASET, ratio=strength,
                                 dynamic_batch=True)
        norm = log.series("comm_bytes_epoch") / dense_comm
        out["series"][strength] = norm
        out["mean_saving"][strength] = float(1 - norm.mean())
    return out


def report(result: Dict) -> str:
    lines = ["== Fig. 11: per-epoch comm cost (normalized to dense) =="]
    for s, ser in result["series"].items():
        lines.append(series(f"  strength {s}", ser, "{:.2f}"))
        lines.append(f"    mean saving: "
                     f"{100 * result['mean_saving'][s]:.0f}%")
    return "\n".join(lines)
