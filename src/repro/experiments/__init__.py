"""Per-figure/table experiment runners (see DESIGN.md's experiment index).

Each module exposes ``run(scale) -> dict`` and ``report(result) -> str``
(printing the same rows/series the paper reports).  ``Runs`` caches training
runs so the many figures sharing a baseline do not retrain it.
"""

from . import (ablations, fig2, fig4, fig6_fig7, fig8, fig9_tab4, fig10,
               fig11, fig12, tab1, tab2, tab3)
from .configs import (DATASETS, MODELS, PAPER, QUICK, SCALES, SMOKE, Scale,
                      epochs_for, interval_for, lambda_scale_for, make_dataset,
                      make_model, threshold_for)
from .runner import Runs, get_runs

__all__ = [
    "Scale", "SMOKE", "QUICK", "PAPER", "SCALES",
    "make_model", "make_dataset", "MODELS", "DATASETS",
    "epochs_for", "interval_for", "lambda_scale_for", "threshold_for",
    "Runs", "get_runs",
    "fig2", "fig4", "fig6_fig7", "fig8", "fig9_tab4", "fig10", "fig11",
    "fig12", "tab1", "tab2", "tab3", "ablations",
]
