"""Plain-text table/series formatting for experiment output.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output consistent and readable in a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np


def table(headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
          ) -> str:
    """Render an ASCII table."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series(name: str, values: Sequence[float], fmt: str = "{:.3f}") -> str:
    """Render one named numeric series on a line."""
    vals = " ".join(fmt.format(v) for v in values)
    return f"{name}: {vals}"


def _fmt(cell) -> str:
    if isinstance(cell, float) or isinstance(cell, np.floating):
        if abs(cell) >= 1000 or (cell != 0 and abs(cell) < 0.001):
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def pct(x: float) -> str:
    return f"{100 * x:.1f}%"
