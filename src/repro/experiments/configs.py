"""Experiment scales, model/dataset factories, and λ calibration.

Every experiment runs at a named :class:`Scale`.  ``SMOKE`` is for tests
(seconds), ``QUICK`` drives the benchmark suite (tens of seconds per
training run), and ``PAPER`` documents the full-fidelity setting (the
paper's 182/90-epoch schedules; far beyond this environment's CPU budget,
kept for completeness and for users with more hardware).

λ calibration
-------------
The paper sets λ once from the Eq.-3 penalty ratio and trains for ~71k
iterations (CIFAR: 182 epochs x 50k/128).  Group-lasso shrinks a channel's
norm by ≈ lr·λ per step per group, so on a compressed schedule with T× fewer
steps the same *trajectory shape* requires λ (and the pruning threshold,
which tracks the subgradient oscillation floor ~lr·λ) to be scaled by ~T.
:func:`lambda_scale_for` computes that factor; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Tuple

import numpy as np

from ..data import Dataset, make_synthetic
from ..nn import (resnet32, resnet50_cifar, resnet50_imagenet, resnet56,
                  vgg11, vgg13)

#: The paper's reference optimization horizon (CIFAR recipe):
#: 182 epochs x ceil(50000/128) iterations.
PAPER_REFERENCE_STEPS = 182 * (50_000 // 128)
#: The paper's pruning threshold at reference scale.
PAPER_THRESHOLD = 1e-4
#: Empirical constant mapping the ideal time-rescaling onto the synthetic
#: tasks (calibrated once on ResNet-32/cifar10s at the QUICK horizon; see
#: DESIGN.md): with 0.3, ratio 0.25 prunes ~60-90% of FLOPs with no accuracy
#: loss and ratio 0.1 prunes ~25%, mirroring the paper's monotone
#: ratio->pruning operating points.  The pure time-rescaling (1.0) is NOT
#: used at strong compression because the classification gradients that
#: defend useful channels do not scale with the horizon — λ beyond ~2x this
#: level overwhelms them and accuracy collapses.
LAMBDA_CALIBRATION = 0.3


#: Ceiling on the compression factor: past this, λ is so strong that channel
#: norms collapse within a handful of steps and the classification gradient
#: never gets to defend useful channels (the dynamics stop resembling the
#: paper's — measured accuracy collapse begins between 60 and 100 at the
#: QUICK horizon).  Very short runs (tests) are clamped here.
LAMBDA_SCALE_MAX = 80.0


def lambda_scale_for(epochs: int, iters_per_epoch: int,
                     reference_steps: int = PAPER_REFERENCE_STEPS) -> float:
    """Horizon-compression factor for λ (and the threshold)."""
    steps = max(1, epochs * iters_per_epoch)
    raw = LAMBDA_CALIBRATION * reference_steps / steps
    return float(np.clip(raw, 1.0, LAMBDA_SCALE_MAX))


def threshold_for(lambda_scale: float) -> float:
    """Pruning threshold matching a compressed horizon's oscillation floor."""
    return PAPER_THRESHOLD * lambda_scale


@dataclass(frozen=True)
class Scale:
    """One experiment fidelity level."""

    name: str
    n_train: int
    n_val: int
    hw: int                 # CIFAR-class image size
    hw_large: int           # ImageNet-class image size
    width_mult: float
    epochs: int
    epochs_large: int       # for ImageNet-class runs
    batch_size: int
    reconfig_interval: int
    reconfig_interval_large: int
    augment: bool = False
    seed: int = 0

    def iters_per_epoch(self) -> int:
        return max(1, self.n_train // self.batch_size)

    def lambda_scale(self, epochs: int | None = None) -> float:
        return lambda_scale_for(epochs or self.epochs,
                                self.iters_per_epoch())

    def threshold(self, epochs: int | None = None) -> float:
        return threshold_for(self.lambda_scale(epochs))


#: Fast enough for unit/integration tests.
SMOKE = Scale(name="smoke", n_train=256, n_val=128, hw=8, hw_large=16,
              width_mult=0.25, epochs=6, epochs_large=4, batch_size=32,
              reconfig_interval=2, reconfig_interval_large=2)

#: Benchmark-suite scale: every paper phenomenon visible, CPU-tractable.
QUICK = Scale(name="quick", n_train=768, n_val=256, hw=12, hw_large=20,
              width_mult=0.375, epochs=15, epochs_large=10, batch_size=32,
              reconfig_interval=3, reconfig_interval_large=2)

#: The paper's actual setting (documented; needs GPU-class hardware).
PAPER = Scale(name="paper", n_train=50_000, n_val=10_000, hw=32, hw_large=224,
              width_mult=1.0, epochs=182, epochs_large=90, batch_size=128,
              reconfig_interval=10, reconfig_interval_large=5, augment=True)

SCALES: Dict[str, Scale] = {"smoke": SMOKE, "quick": QUICK, "paper": PAPER}


# -- factories ----------------------------------------------------------------

MODELS: Dict[str, Callable] = {
    "resnet32": resnet32,
    "resnet50": resnet50_cifar,
    "resnet56": resnet56,
    "vgg11": vgg11,
    "vgg13": vgg13,
    "resnet50-imagenet": resnet50_imagenet,
}

#: dataset name -> (num_classes, noise, is_large_input)
DATASETS: Dict[str, Tuple[int, float, bool]] = {
    "cifar10s": (10, 1.0, False),
    "cifar100s": (100, 1.3, False),
    "imagenet-s": (50, 1.2, True),
}


def make_model(name: str, dataset: str, scale: Scale, seed: int = 0):
    """Instantiate a zoo model sized for ``dataset`` at ``scale``."""
    classes, _, large = DATASETS[dataset]
    hw = scale.hw_large if large else scale.hw
    return MODELS[name](num_classes=classes, width_mult=scale.width_mult,
                        input_hw=hw, seed=seed)


def make_dataset(name: str, scale: Scale, seed: int = 0
                 ) -> Tuple[Dataset, Dataset]:
    """Instantiate a train/val pair at ``scale``."""
    classes, noise, large = DATASETS[name]
    hw = scale.hw_large if large else scale.hw
    train = make_synthetic(classes, scale.n_train, hw=hw, noise=noise,
                           seed=seed, name=name)
    val = make_synthetic(classes, scale.n_val, hw=hw, noise=noise,
                         seed=seed + 10_000, name=f"{name}-val")
    return train, val


def epochs_for(dataset: str, scale: Scale) -> int:
    return scale.epochs_large if DATASETS[dataset][2] else scale.epochs


def interval_for(dataset: str, scale: Scale) -> int:
    return scale.reconfig_interval_large if DATASETS[dataset][2] \
        else scale.reconfig_interval
