"""Fig. 8 — accuracy/cost tradeoff curves: PruneTrain vs SSL.

Sweeping the lasso penalty ratio produces, per method:
(a/c) validation accuracy vs final inference FLOPs, and
(b/d) validation accuracy vs training FLOPs and BN memory traffic
      (PruneTrain only — the paper omits SSL's training cost because it is
      ~3x the dense baseline by protocol).

Paper-shape claims checked by the bench: PruneTrain and SSL trace comparable
inference tradeoffs, SSL's training FLOPs are >= 2x PruneTrain's, and
PruneTrain's training cost *decreases* with regularization strength.
"""

from __future__ import annotations

from typing import Dict, List

from .configs import Scale
from .format import table
from .runner import get_runs

MODELS = ("resnet32", "resnet50")
#: Sweep endpoints plus Tab. 1's operating point; PruneTrain runs are shared
#: with Fig. 2 / Tab. 1, so only the SSL sparsify phases are new work.
RATIOS = (0.1, 0.25, 0.3)
#: SSL's sparsify phase always runs at the dense model's full cost, so the
#: head-to-head uses the cheaper model; PruneTrain curves cover both.
SSL_MODELS = ("resnet32",)


def run(scale: Scale, dataset: str = "cifar10s",
        models=MODELS, ratios=RATIOS) -> Dict:
    runs = get_runs(scale)
    out: Dict = {"dataset": dataset, "ratios": list(ratios), "curves": {}}
    for model in models:
        _, dense = runs.dense(model, dataset)
        points: List[Dict] = []
        for ratio in ratios:
            _, pt = runs.prunetrain(model, dataset, ratio=ratio)
            point = {
                "ratio": ratio,
                "pt_acc": pt.final_val_acc,
                "pt_inference": pt.final_inference_flops,
                "pt_train": pt.total_train_flops,
                "pt_bn": pt.total_bn_bytes,
            }
            if model in SSL_MODELS:
                _, ssl = runs.ssl(model, dataset, ratio=ratio)
                point.update({
                    "ssl_acc": ssl.final_val_acc,
                    "ssl_inference": ssl.final_inference_flops,
                    "ssl_train": ssl.total_train_flops,
                })
            points.append(point)
        out["curves"][model] = {
            "dense_acc": dense.final_val_acc,
            "dense_inference": dense.final_inference_flops,
            "dense_train": dense.total_train_flops,
            "dense_bn": dense.total_bn_bytes,
            "points": points,
        }
    return out


def report(result: Dict) -> str:
    lines = []
    for model, curve in result["curves"].items():
        d_inf = curve["dense_inference"]
        d_tr = curve["dense_train"]
        d_bn = curve["dense_bn"]
        rows = []
        for p in curve["points"]:
            has_ssl = "ssl_acc" in p
            rows.append([
                p["ratio"],
                f"{p['pt_acc']:.3f}", f"{p['pt_inference'] / d_inf:.2f}",
                f"{p['pt_train'] / d_tr:.2f}", f"{p['pt_bn'] / d_bn:.2f}",
                f"{p['ssl_acc']:.3f}" if has_ssl else "-",
                f"{p['ssl_inference'] / d_inf:.2f}" if has_ssl else "-",
                f"{p['ssl_train'] / d_tr:.2f}" if has_ssl else "-",
            ])
        lines.append(table(
            ["ratio", "PT acc", "PT inf", "PT train", "PT BN",
             "SSL acc", "SSL inf", "SSL train"],
            rows,
            title=f"== Fig. 8: {model} on {result['dataset']} "
                  f"(dense acc {curve['dense_acc']:.3f}; costs normalized "
                  f"to dense) =="))
        lines.append("")
    return "\n".join(lines)
