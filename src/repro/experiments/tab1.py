"""Tab. 1 — training FLOPs/time and inference FLOPs vs the dense baseline.

The paper's headline grid: {ResNet32, ResNet50, VGG11, VGG13} x {CIFAR10,
CIFAR100} with one pruning strength, plus ResNet50/ImageNet at three
strengths (0.25/0.2/0.1).  Columns: validation-accuracy delta, training
FLOPs ratio (and modeled training-time ratio on 1080Ti/V100), inference
FLOPs ratio.
"""

from __future__ import annotations

from typing import Dict, List

from .configs import Scale
from .format import pct, table
from .runner import get_runs

CIFAR_GRID = [
    ("resnet32", "cifar10s"), ("resnet50", "cifar10s"),
    ("vgg11", "cifar10s"), ("vgg13", "cifar10s"),
    ("resnet32", "cifar100s"), ("resnet50", "cifar100s"),
    ("vgg11", "cifar100s"), ("vgg13", "cifar100s"),
]
CIFAR_RATIO = 0.25
#: The paper's strongest and weakest ImageNet settings (its 0.2 middle point
#: is omitted at QUICK scale for CPU budget; the trend is monotone).
IMAGENET_STRENGTHS = (0.25, 0.1)


def run(scale: Scale, include_imagenet: bool = True) -> Dict:
    runs = get_runs(scale)
    rows: List[Dict] = []
    for model, dataset in CIFAR_GRID:
        _, dense = runs.dense(model, dataset)
        _, pt = runs.prunetrain(model, dataset, ratio=CIFAR_RATIO)
        rows.append(_row(model, dataset, CIFAR_RATIO, pt, dense))
    if include_imagenet:
        _, dense = runs.dense("resnet50-imagenet", "imagenet-s")
        for strength in IMAGENET_STRENGTHS:
            _, pt = runs.prunetrain("resnet50-imagenet", "imagenet-s",
                                    ratio=strength)
            rows.append(_row("resnet50-imagenet", "imagenet-s", strength,
                             pt, dense))
    return {"rows": rows}


def _row(model: str, dataset: str, ratio: float, pt, dense) -> Dict:
    rel = pt.relative_to(dense)
    return {
        "model": model, "dataset": dataset, "ratio": ratio,
        "acc_delta": rel["val_acc_delta"],
        "dense_acc": dense.final_val_acc,
        "train_flops": rel["train_flops_ratio"],
        "inference_flops": rel["inference_flops_ratio"],
        "time_1080ti": rel.get("time_ratio_1080ti", float("nan")),
        "time_v100": rel.get("time_ratio_v100", float("nan")),
        "bn_ratio": rel.get("bn_ratio", float("nan")),
        "comm_ratio": rel.get("comm_ratio", float("nan")),
    }


def report(result: Dict) -> str:
    return table(
        ["model", "dataset", "ratio", "acc Δ", "train FLOPs",
         "time(1080Ti)", "time(V100)", "inf FLOPs", "BN bytes"],
        [[r["model"], r["dataset"], r["ratio"],
          f"{100 * r['acc_delta']:+.1f}%", pct(r["train_flops"]),
          pct(r["time_1080ti"]), pct(r["time_v100"]),
          pct(r["inference_flops"]), pct(r["bn_ratio"])]
         for r in result["rows"]],
        title="== Tab. 1: PruneTrain vs dense baseline "
              "(ratios: pruned/dense) ==")
