"""Tab. 3 — PruneTrain vs trial-and-error pruning (AMC-like) on ResNet-56.

The paper: AMC reaches 50% inference FLOPs with -0.9% accuracy; PruneTrain
reaches 34% FLOPs with -0.5% and additionally removes 21% of the layers.
Here the comparator is the iterative magnitude-pruning-with-fine-tuning
protocol (see ``repro.train.amc_like`` for the substitution note).
"""

from __future__ import annotations

from typing import Dict

from .configs import Scale
from .format import pct, table
from .runner import get_runs

MODEL = "resnet56"
DATASET = "cifar10s"


def run(scale: Scale, ratio: float = 0.25,
        amc_target: float = 0.5) -> Dict:
    runs = get_runs(scale)
    _, dense = runs.dense(MODEL, DATASET)
    _, pt = runs.prunetrain(MODEL, DATASET, ratio=ratio)
    _, amc = runs.amc_like(MODEL, DATASET,
                           target_inference_ratio=amc_target)
    dense_inf = dense.final_inference_flops
    total_layers = 54  # resnet56 path convs
    return {
        "dense_acc": dense.final_val_acc,
        "rows": [
            {"method": "PruneTrain",
             "acc_delta": pt.final_val_acc - dense.final_val_acc,
             "inference_flops": pt.final_inference_flops / dense_inf,
             "removed_layers": int(pt.records[-1].removed_layers),
             "removed_frac": pt.records[-1].removed_layers / total_layers,
             "train_flops": pt.total_train_flops / dense.total_train_flops},
            {"method": "AMC-like",
             "acc_delta": amc.final_val_acc - dense.final_val_acc,
             "inference_flops": amc.final_inference_flops / dense_inf,
             "removed_layers": int(amc.records[-1].removed_layers),
             "removed_frac": amc.records[-1].removed_layers / total_layers,
             "train_flops": amc.total_train_flops / dense.total_train_flops},
        ],
    }


def report(result: Dict) -> str:
    return table(
        ["method", "acc Δ", "inference FLOPs", "removed layers",
         "train FLOPs (incl. pretrain)"],
        [[r["method"], f"{100 * r['acc_delta']:+.1f}%",
          pct(r["inference_flops"]),
          f"{r['removed_layers']} ({pct(r['removed_frac'])})",
          pct(r["train_flops"])] for r in result["rows"]],
        title=f"== Tab. 3: ResNet-56 compression "
              f"(dense acc {result['dense_acc']:.3f}) ==")
