"""Tab. 2 — measured inference throughput (images/second), base vs pruned.

The paper times the final trained models on a TITAN Xp at batch sizes 10 and
100.  Here the measurement is real wall-clock of our serving path — each
model goes behind a :class:`repro.serve.ModelRegistry` and is timed through
batched forward-plan replays, the same code ``bench_serve.py`` and the
inference server run — on the dense baseline vs the PruneTrain-compressed
model (eval mode, best of several repeats after a warmup/compile replay).
Absolute img/s is CPU-scale; the paper-shape claims are the *relative*
speedup >1 and larger batches helping utilization.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..serve import ModelRegistry
from .configs import DATASETS, Scale, make_model
from .format import table
from .runner import get_runs

PAIRS = [("resnet32", "cifar100s"), ("resnet50", "cifar100s"),
         ("vgg11", "cifar100s"), ("vgg13", "cifar100s")]
BATCHES = (10, 100)


def _throughput(model, hw: int, batch: int, repeats: int = 3,
                stats: Optional[Dict] = None) -> float:
    """img/s of batched serve-path replays (plan compile excluded).

    The warmup call compiles and caches the forward plan; timed calls are
    pure plan replays, exactly what the inference server executes per
    dispatched batch.
    """
    registry = ModelRegistry(max_models=1)
    served = registry.register_model("tab2", model)
    x = np.random.default_rng(0).normal(
        size=(batch, 3, hw, hw)).astype(np.float32)
    registry.run("tab2", x)  # warmup: capture + first replay
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        registry.run("tab2", x)
        best = min(best, time.perf_counter() - t0)
    if stats is not None:
        stats.update(served.stats())
    registry.clear()
    return batch / best


def run(scale: Scale, ratio: float = 0.25) -> Dict:
    runs = get_runs(scale)
    rows: List[Dict] = []
    for model_name, dataset in PAIRS:
        key, _ = runs.prunetrain(model_name, dataset, ratio=ratio,
                                 need_model=True)
        pruned = runs.model_for(key)
        dense = make_model(model_name, dataset, scale)
        hw = scale.hw_large if DATASETS[dataset][2] else scale.hw
        row = {"model": model_name, "dataset": dataset}
        serve_stats: Dict = {}
        for b in BATCHES:
            base = _throughput(dense, hw, b, stats=serve_stats)
            fast = _throughput(pruned, hw, b)
            row[f"base_{b}"] = base
            row[f"pruned_{b}"] = fast
            row[f"speedup_{b}"] = fast / base
        # Evidence the serve plan path (not an eager loop) was measured.
        row["served_replays"] = serve_stats.get("exact_replays", 0)
        row["served_eager_rows"] = serve_stats.get("eager_rows", 0)
        rows.append(row)
    return {"rows": rows, "batches": BATCHES}


def report(result: Dict) -> str:
    b1, b2 = result["batches"]
    return table(
        ["model", "dataset", f"base@{b1}", f"pruned@{b1}", "speedup",
         f"base@{b2}", f"pruned@{b2}", "speedup"],
        [[r["model"], r["dataset"],
          f"{r[f'base_{b1}']:.0f}", f"{r[f'pruned_{b1}']:.0f}",
          f"{r[f'speedup_{b1}']:.2f}x",
          f"{r[f'base_{b2}']:.0f}", f"{r[f'pruned_{b2}']:.0f}",
          f"{r[f'speedup_{b2}']:.2f}x"] for r in result["rows"]],
        title="== Tab. 2: measured inference throughput (img/s) ==")
