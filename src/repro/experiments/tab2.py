"""Tab. 2 — measured inference throughput (images/second), base vs pruned.

The paper times the final trained models on a TITAN Xp at batch sizes 10 and
100.  Here the measurement is real wall-clock of our NumPy engine on the
dense baseline vs the PruneTrain-compressed model (same protocol: eval mode,
best of several repeats).  Absolute img/s is CPU-scale; the paper-shape
claims are the *relative* speedup >1 and larger batches helping utilization.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from ..tensor import Tensor, no_grad
from .configs import DATASETS, Scale, make_model
from .format import table
from .runner import get_runs

PAIRS = [("resnet32", "cifar100s"), ("resnet50", "cifar100s"),
         ("vgg11", "cifar100s"), ("vgg13", "cifar100s")]
BATCHES = (10, 100)


def _throughput(model, hw: int, batch: int, repeats: int = 3) -> float:
    model.eval()
    x = Tensor(np.random.default_rng(0).normal(
        size=(batch, 3, hw, hw)).astype(np.float32))
    with no_grad():
        model(x)  # warmup
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            model(x)
            best = min(best, time.perf_counter() - t0)
    return batch / best


def run(scale: Scale, ratio: float = 0.25) -> Dict:
    runs = get_runs(scale)
    rows: List[Dict] = []
    for model_name, dataset in PAIRS:
        key, _ = runs.prunetrain(model_name, dataset, ratio=ratio,
                                 need_model=True)
        pruned = runs.model_for(key)
        dense = make_model(model_name, dataset, scale)
        hw = scale.hw_large if DATASETS[dataset][2] else scale.hw
        row = {"model": model_name, "dataset": dataset}
        for b in BATCHES:
            base = _throughput(dense, hw, b)
            fast = _throughput(pruned, hw, b)
            row[f"base_{b}"] = base
            row[f"pruned_{b}"] = fast
            row[f"speedup_{b}"] = fast / base
        rows.append(row)
    return {"rows": rows, "batches": BATCHES}


def report(result: Dict) -> str:
    b1, b2 = result["batches"]
    return table(
        ["model", "dataset", f"base@{b1}", f"pruned@{b1}", "speedup",
         f"base@{b2}", f"pruned@{b2}", "speedup"],
        [[r["model"], r["dataset"],
          f"{r[f'base_{b1}']:.0f}", f"{r[f'pruned_{b1}']:.0f}",
          f"{r[f'speedup_{b1}']:.2f}x",
          f"{r[f'base_{b2}']:.0f}", f"{r[f'pruned_{b2}']:.0f}",
          f"{r[f'speedup_{b2}']:.2f}x"] for r in result["rows"]],
        title="== Tab. 2: measured inference throughput (img/s) ==")
