"""Fig. 12 — per-layer channel and weight density of the final trained model.

After PruneTrain, roughly half of the weights *within the surviving
channels* are also near-zero (unstructured sparsity the paper suggests
exploiting for storage/sparse hardware).  Reports per-layer channel density
(in-dense x out-dense) and elementwise weight density.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..prune import density_report
from .configs import Scale
from .format import table
from .runner import get_runs

MODEL = "resnet50"
DATASET = "cifar10s"


def run(scale: Scale, ratio: float = 0.25) -> Dict:
    runs = get_runs(scale)
    key, log = runs.prunetrain(MODEL, DATASET, ratio=ratio, need_model=True)
    model = runs.model_for(key)
    trainer = runs.trainer_for(key)
    rep = density_report(model.graph, threshold=trainer.threshold)
    return {
        "layers": rep.layer_names,
        "channel_density": rep.channel_density,
        "weight_density": rep.weight_density,
        "mean_channel_density": float(np.mean(rep.channel_density)),
        "mean_weight_density": float(np.mean(rep.weight_density)),
    }


def report(result: Dict) -> str:
    rows = [[n, f"{c:.2f}", f"{w:.2f}"]
            for n, c, w in zip(result["layers"],
                               result["channel_density"],
                               result["weight_density"])]
    t = table(["layer", "channel density", "weight density"], rows,
              title="== Fig. 12: per-layer density of the final model ==")
    return (t + f"\nmeans: channel {result['mean_channel_density']:.2f}, "
            f"weight {result['mean_weight_density']:.2f}")
