"""Fig. 10 — robustness to the reconfiguration interval.

The paper varies the interval (10/20/30 epochs on CIFAR) and finds the
accuracy-vs-inference-FLOPs tradeoff essentially unchanged — the interval
can be chosen for systems reasons (reconfiguration overhead amortization)
without hurting learning.  At compressed scale the analogue intervals are
fractions of the run length.
"""

from __future__ import annotations

from typing import Dict, List

from .configs import Scale, epochs_for
from .format import table
from .runner import get_runs

MODEL = "resnet32"
DATASET = "cifar10s"
RATIOS = (0.15, 0.3)


def run(scale: Scale) -> Dict:
    runs = get_runs(scale)
    epochs = epochs_for(DATASET, scale)
    intervals = sorted({max(1, epochs // 6), max(2, epochs // 3),
                        max(3, epochs // 2)})
    out: Dict = {"intervals": intervals, "points": []}
    for interval in intervals:
        for ratio in RATIOS:
            _, log = runs.prunetrain(MODEL, DATASET, ratio=ratio,
                                     interval=interval)
            out["points"].append({
                "interval": interval, "ratio": ratio,
                "acc": log.final_val_acc,
                "inference_flops": log.final_inference_flops,
                "train_flops": log.total_train_flops,
            })
    return out


def report(result: Dict) -> str:
    return table(
        ["interval (epochs)", "ratio", "val acc", "inference MFLOPs",
         "train PFLOP-units"],
        [[p["interval"], p["ratio"], f"{p['acc']:.3f}",
          f"{p['inference_flops'] / 1e6:.2f}",
          f"{p['train_flops'] / 1e12:.4f}"] for p in result["points"]],
        title="== Fig. 10: reconfiguration-interval sensitivity ==")
