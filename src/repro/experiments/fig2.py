"""Fig. 2 — why continuous pruning beats one-time reconfiguration.

(a) FLOPs per training iteration (normalized to dense) across epochs for
    three regularization strengths (lasso penalty ratios).
(b) Breakdown of total pruned FLOPs over three training phases — most FLOPs
    prune early.
(c) Cumulative training FLOPs of one-time reconfiguration at epoch E,
    relative to PruneTrain, for every possible E: even the best E costs
    >25% more in the paper.

(c) is computed from the PruneTrain trajectory exactly as the paper does:
a one-time run pays dense-cost iterations until its reconfiguration epoch,
then continues at PruneTrain's post-E cost.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .configs import Scale
from .format import series, table
from .runner import get_runs

MODEL = "resnet50"
DATASET = "cifar10s"
#: 0.25 replaces the paper's 0.2 grid point so the heavy ResNet-50 run is
#: shared with Tab. 1 / Fig. 8; the three-strength sweep shape is unchanged.
RATIOS = (0.1, 0.25, 0.3)


def run(scale: Scale) -> Dict:
    runs = get_runs(scale)
    _, dense = runs.dense(MODEL, DATASET)
    dense_fpi = dense.records[0].train_flops_per_sample

    out: Dict = {"ratios": list(RATIOS), "dense_flops_per_sample": dense_fpi,
                 "trajectories": {}, "phase_breakdown": {},
                 "onetime_overhead": {}, "final_acc": {},
                 "dense_acc": dense.final_val_acc}
    for ratio in RATIOS:
        _, log = runs.prunetrain(MODEL, DATASET, ratio=ratio)
        fpi = log.series("train_flops_per_sample") / dense_fpi
        out["trajectories"][ratio] = fpi
        out["final_acc"][ratio] = log.final_val_acc

        # (b) when FLOPs *became* pruned: per-epoch pruning increments
        # aggregated over three phases (the paper's 1-90 / 91-200 / 201-300
        # epoch buckets, as fractions of the schedule)
        increments = np.diff(np.concatenate([[1.0], fpi])) * -1.0
        total_pruned = increments.sum()
        n = len(fpi)
        thirds = [slice(0, n // 3), slice(n // 3, 2 * n // 3),
                  slice(2 * n // 3, n)]
        if total_pruned > 0:
            out["phase_breakdown"][ratio] = [
                float(increments[s].sum() / total_pruned)
                for s in thirds]
        else:
            out["phase_breakdown"][ratio] = [0.0, 0.0, 0.0]

        # (c) one-time reconfiguration cost for every epoch E
        pt_cum = fpi.sum()  # PruneTrain total (in dense-epoch units)
        overhead = []
        for e in range(1, n):
            onetime = e * 1.0 + fpi[e:].sum()  # dense until E, pruned after
            overhead.append(onetime / pt_cum)
        out["onetime_overhead"][ratio] = np.array(overhead)
    return out


def report(result: Dict) -> str:
    lines = ["== Fig. 2a: FLOPs/iteration (normalized to dense) =="]
    for ratio, traj in result["trajectories"].items():
        lines.append(series(f"  ratio {ratio}", traj, "{:.2f}"))
    lines.append("")
    lines.append(table(
        ["ratio", "phase 1 (early)", "phase 2", "phase 3 (late)",
         "final acc"],
        [[r] + [f"{100 * p:.0f}%" for p in result["phase_breakdown"][r]]
         + [f"{result['final_acc'][r]:.3f}"]
         for r in result["ratios"]],
        title="== Fig. 2b: share of pruned FLOPs by training phase =="))
    lines.append("")
    lines.append("== Fig. 2c: one-time reconfig cost / PruneTrain cost ==")
    for ratio, ov in result["onetime_overhead"].items():
        lines.append(series(f"  ratio {ratio} (by reconfig epoch)", ov,
                            "{:.2f}"))
        lines.append(f"    best-case overhead: "
                     f"{100 * (ov.min() - 1):.0f}% extra FLOPs")
    return "\n".join(lines)
