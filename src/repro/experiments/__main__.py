"""CLI: regenerate paper figures/tables without pytest.

Usage::

    python -m repro.experiments              # list experiments
    python -m repro.experiments fig2         # run one at QUICK scale
    python -m repro.experiments tab1 --scale smoke
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys

from . import (ablations, fig2, fig4, fig6_fig7, fig8, fig9_tab4, fig10,
               fig11, fig12, tab1, tab2, tab3)
from .configs import SCALES

EXPERIMENTS = {
    "fig2": lambda s: fig2.report(fig2.run(s)),
    "fig4": lambda s: fig4.report(fig4.run(s)),
    "fig6": lambda s: fig6_fig7.report_fig6(fig6_fig7.run_fig6(s)),
    "fig7": lambda s: fig6_fig7.report_fig7(fig6_fig7.run_fig7(s)),
    "tab1": lambda s: tab1.report(tab1.run(s)),
    "tab2": lambda s: tab2.report(tab2.run(s)),
    "tab3": lambda s: tab3.report(tab3.run(s)),
    "fig8": lambda s: fig8.report(fig8.run(s)),
    "fig9": lambda s: fig9_tab4.report(fig9_tab4.run(s)),
    "tab4": lambda s: fig9_tab4.report(fig9_tab4.run(s)),
    "fig10": lambda s: fig10.report(fig10.run(s)),
    "fig11": lambda s: fig11.report(fig11.run(s)),
    "fig12": lambda s: fig12.report(fig12.run(s)),
    "ablation-finetune": lambda s: ablations.report_finetune(
        ablations.run_finetune(s)),
    "ablation-penalty": lambda s: ablations.report_penalty_scaling(
        ablations.run_penalty_scaling(s)),
    "ablation-lambda": lambda s: ablations.report_lambda_setup(
        ablations.run_lambda_setup(s)),
    "ablation-lr": lambda s: ablations.report_lr_scaling(
        ablations.run_lr_scaling(s)),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    parser.add_argument("experiment", nargs="?",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="experiment id (omit to list)")
    parser.add_argument("--scale", default="quick", choices=sorted(SCALES))
    args = parser.parse_args(argv)

    if args.experiment is None:
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0

    scale = SCALES[args.scale]
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        print(f"\n#### {name} (scale={scale.name}) ####")
        print(EXPERIMENTS[name](scale))
    return 0


if __name__ == "__main__":
    sys.exit(main())
