"""Shared experiment runner with run caching.

Most figures/tables reuse the same underlying training runs (e.g. the dense
ResNet50 baseline appears in Tab. 1, Tab. 4, Fig. 8, Fig. 9...).  ``Runs``
centralizes run construction, keeps trained models in memory for experiments
that need weights (Tab. 2 throughput, Fig. 12 density), and caches
:class:`~repro.train.metrics.RunLog` JSON on disk so repeated benchmark
invocations do not retrain.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..costmodel import MemoryModel, iteration_memory_bytes
from ..distributed import DynamicBatchAdjuster
from ..io.checkpoint import latest_checkpoint, read_meta
from ..train import (AMCLikeConfig, AMCLikePruner, OneTimeConfig,
                     OneTimeTrainer, PruneTrainConfig, PruneTrainTrainer,
                     RunLog, SSLConfig, SSLTrainer, Trainer, TrainerConfig)
from .configs import (Scale, epochs_for, interval_for, make_dataset,
                      make_model)

DEFAULT_CACHE_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))), ".cache",
    "runs")


class Runs:
    """Run factory + cache for one experiment scale.

    With ``checkpoint_every > 0``, every training run writes periodic
    crash-recovery checkpoints (format v2, atomic) into a per-run
    subdirectory of ``checkpoint_dir`` and **auto-resumes** from the latest
    one, so an interrupted benchmark sweep picks up where it died instead of
    retraining from scratch.  Retention keeps the newest
    ``checkpoint_keep`` checkpoints per run.
    """

    def __init__(self, scale: Scale, cache_dir: Optional[str] = None,
                 use_disk_cache: bool = True,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: int = 0,
                 checkpoint_keep: int = 3):
        self.scale = scale
        self.cache_dir = cache_dir or DEFAULT_CACHE_DIR
        self.use_disk_cache = use_disk_cache
        self.checkpoint_dir = checkpoint_dir or os.path.join(
            self.cache_dir, "checkpoints")
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = checkpoint_keep
        self._logs: Dict[str, RunLog] = {}
        self._models: Dict[str, object] = {}
        self._trainers: Dict[str, object] = {}
        self._datasets: Dict[str, tuple] = {}

    def _attach_checkpointing(self, cfg, key: str) -> None:
        """Point a trainer config at this run's checkpoint subdirectory."""
        if not self.checkpoint_every:
            return
        cfg.checkpoint_every = self.checkpoint_every
        cfg.checkpoint_dir = os.path.join(self.checkpoint_dir, key)
        cfg.checkpoint_keep = self.checkpoint_keep

    def _train_with_resume(self, trainer, key: str) -> RunLog:
        """Run training, auto-resuming from the newest run checkpoint.

        A checkpoint that fails to restore (e.g. written by an incompatible
        older code version) is not fatal — the run restarts from scratch.
        Partially written files are never seen here: writes are atomic and
        ``latest_checkpoint`` ignores leftover ``*.tmp.npz`` files.
        """
        resume = None
        if self.checkpoint_every:
            resume = latest_checkpoint(
                os.path.join(self.checkpoint_dir, key))
        if resume is not None:
            # Pre-flight *before* touching the trainer: a checkpoint that
            # doesn't parse or lacks run state must not leave the trainer
            # half-restored when we fall back to a fresh run.
            try:
                ok = "train_state" in read_meta(resume)
            except Exception:
                ok = False
            if ok:
                return trainer.train(resume_from=resume)
        return trainer.train()

    # -- plumbing ------------------------------------------------------------
    def dataset(self, name: str):
        if name not in self._datasets:
            self._datasets[name] = make_dataset(name, self.scale,
                                                seed=self.scale.seed)
        return self._datasets[name]

    def _key(self, **kw) -> str:
        blob = json.dumps({"scale": self.scale.name, **kw}, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:20]

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _load_disk(self, key: str) -> Optional[RunLog]:
        path = self._disk_path(key)
        if self.use_disk_cache and os.path.exists(path):
            with open(path) as fh:
                return RunLog.from_dict(json.load(fh))
        return None

    def _store_disk(self, key: str, log: RunLog) -> None:
        if not self.use_disk_cache:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        with open(self._disk_path(key), "w") as fh:
            json.dump(log.to_dict(), fh)

    def model_for(self, key: str):
        """Trained model of a previous run (in-memory hits only)."""
        return self._models.get(key)

    def trainer_for(self, key: str):
        return self._trainers.get(key)

    def _base_cfg_kwargs(self, dataset: str) -> dict:
        return dict(
            epochs=epochs_for(dataset, self.scale),
            batch_size=self.scale.batch_size,
            lr=0.1, momentum=0.9, weight_decay=5e-4,
            augment=self.scale.augment, seed=self.scale.seed,
            log_every=0)

    # -- run constructors ----------------------------------------------------
    def dense(self, model_name: str, dataset: str,
              need_model: bool = False) -> Tuple[str, RunLog]:
        key = self._key(method="dense", model=model_name, ds=dataset)
        if key in self._logs and (not need_model or key in self._models):
            return key, self._logs[key]
        if not need_model:
            hit = self._load_disk(key)
            if hit is not None:
                self._logs[key] = hit
                return key, hit
        train, val = self.dataset(dataset)
        model = make_model(model_name, dataset, self.scale,
                           seed=self.scale.seed)
        cfg = TrainerConfig(**self._base_cfg_kwargs(dataset))
        self._attach_checkpointing(cfg, key)
        tr = Trainer(model, train, val, cfg)
        log = self._train_with_resume(tr, key)
        self._finish(key, log, model, tr)
        return key, log

    def prunetrain(self, model_name: str, dataset: str,
                   ratio: float = 0.25, interval: Optional[int] = None,
                   dynamic_batch: bool = False,
                   memory_capacity: Optional[float] = None,
                   workers: int = 1, track_convs=(),
                   zero_sparse: bool = True,
                   per_group_size_scaling: bool = False,
                   lambda_scale: Optional[float] = None,
                   remove_layers: bool = True,
                   need_model: bool = False,
                   seed: Optional[int] = None) -> Tuple[str, RunLog]:
        epochs = epochs_for(dataset, self.scale)
        interval = interval if interval is not None \
            else interval_for(dataset, self.scale)
        # Explicit lambda_scale selects the paper's Eq.-3 "ratio" mode (used
        # by the λ-setup ablation); otherwise the architecture-independent
        # "rate" mode drives the compressed schedules (see PruneTrainConfig).
        lambda_mode = "ratio" if lambda_scale is not None else "rate"
        lam_scale = lambda_scale if lambda_scale is not None else 1.0
        key = self._key(method="prunetrain", model=model_name, ds=dataset,
                        ratio=ratio, interval=interval, dyn=dynamic_batch,
                        cap=memory_capacity, workers=workers,
                        zs=zero_sparse, pgs=per_group_size_scaling,
                        ls=lam_scale, mode=lambda_mode,
                        budget=PruneTrainConfig.decay_budget,
                        rl=remove_layers,
                        tracked=bool(track_convs), seed=seed)
        if key in self._logs and (not need_model or key in self._models):
            return key, self._logs[key]
        if not need_model and not track_convs:
            hit = self._load_disk(key)
            if hit is not None:
                self._logs[key] = hit
                return key, hit
        train, val = self.dataset(dataset)
        model = make_model(model_name, dataset, self.scale,
                           seed=seed if seed is not None else self.scale.seed)
        base = self._base_cfg_kwargs(dataset)
        if seed is not None:
            base["seed"] = seed
        cfg = PruneTrainConfig(
            **base, penalty_ratio=ratio, reconfig_interval=interval,
            threshold=None, lambda_scale=lam_scale, lambda_mode=lambda_mode,
            zero_sparse=zero_sparse, remove_layers=remove_layers,
            per_group_size_scaling=per_group_size_scaling)
        cfg.workers = workers
        adjuster = None
        if dynamic_batch:
            cap = memory_capacity or self._default_capacity(model)
            adjuster = DynamicBatchAdjuster(
                MemoryModel(capacity_bytes=cap),
                granularity=max(8, self.scale.batch_size // 4),
                max_batch=min(512, self.scale.n_train // 2))
        self._attach_checkpointing(cfg, key)
        tr = PruneTrainTrainer(model, train, val, cfg,
                               batch_adjuster=adjuster,
                               track_convs=track_convs)
        log = self._train_with_resume(tr, key)
        self._finish(key, log, model, tr)
        return key, log

    def ssl(self, model_name: str, dataset: str, ratio: float = 0.25
            ) -> Tuple[str, RunLog]:
        key = self._key(method="ssl", model=model_name, ds=dataset,
                        ratio=ratio)
        if key in self._logs:
            return key, self._logs[key]
        hit = self._load_disk(key)
        if hit is not None:
            self._logs[key] = hit
            return key, hit
        train, val = self.dataset(dataset)
        epochs = epochs_for(dataset, self.scale)
        # Phase 1 of SSL is exactly a dense training run of the same model;
        # reuse the cached dense baseline (weights + cost accounting).
        dense_key, dense_log = self.dense(model_name, dataset,
                                          need_model=True)
        dense_model = self.model_for(dense_key)
        model = make_model(model_name, dataset, self.scale,
                           seed=self.scale.seed)
        model.load_state_dict(dense_model.state_dict())
        cfg = SSLConfig(**self._base_cfg_kwargs(dataset),
                        penalty_ratio=ratio,
                        threshold=None, lambda_mode="rate",
                        zero_sparse=True, pretrain_epochs=epochs)
        tr = SSLTrainer(model, train, val, cfg, pretrained=True,
                        pretrain_log=dense_log)
        log = tr.train()
        self._finish(key, log, model, tr)
        return key, log

    def onetime(self, model_name: str, dataset: str, reconfig_epoch: int,
                ratio: float = 0.25) -> Tuple[str, RunLog]:
        key = self._key(method="onetime", model=model_name, ds=dataset,
                        ratio=ratio, at=reconfig_epoch)
        if key in self._logs:
            return key, self._logs[key]
        hit = self._load_disk(key)
        if hit is not None:
            self._logs[key] = hit
            return key, hit
        train, val = self.dataset(dataset)
        model = make_model(model_name, dataset, self.scale,
                           seed=self.scale.seed)
        epochs = epochs_for(dataset, self.scale)
        cfg = OneTimeConfig(**self._base_cfg_kwargs(dataset),
                            penalty_ratio=ratio,
                            threshold=None, lambda_mode="rate",
                            zero_sparse=True, reconfig_epoch=reconfig_epoch)
        self._attach_checkpointing(cfg, key)
        tr = OneTimeTrainer(model, train, val, cfg)
        log = self._train_with_resume(tr, key)
        self._finish(key, log, model, tr)
        return key, log

    def amc_like(self, model_name: str, dataset: str,
                 target_inference_ratio: float = 0.5) -> Tuple[str, RunLog]:
        key = self._key(method="amc", model=model_name, ds=dataset,
                        target=target_inference_ratio)
        if key in self._logs:
            return key, self._logs[key]
        hit = self._load_disk(key)
        if hit is not None:
            self._logs[key] = hit
            return key, hit
        train, val = self.dataset(dataset)
        model = make_model(model_name, dataset, self.scale,
                           seed=self.scale.seed)
        epochs = epochs_for(dataset, self.scale)
        cfg = AMCLikeConfig(**self._base_cfg_kwargs(dataset),
                            target_inference_ratio=target_inference_ratio,
                            pretrain_epochs=epochs,
                            finetune_epochs=max(1, epochs // 6))
        pruner = AMCLikePruner(model, train, val, cfg)
        log = pruner.run()
        self._finish(key, log, model, pruner)
        return key, log

    # -- helpers ----------------------------------------------------------------
    def _default_capacity(self, model) -> float:
        """Capacity such that the *initial* batch just fits (the paper's
        ImageNet setup: start at the largest batch that fits)."""
        return iteration_memory_bytes(model.graph,
                                      self.scale.batch_size) * 1.1

    def _finish(self, key: str, log: RunLog, model, trainer) -> None:
        self._logs[key] = log
        self._models[key] = model
        self._trainers[key] = trainer
        self._store_disk(key, log)


#: Process-wide runner registry so every benchmark shares one cache.
_RUNNERS: Dict[str, Runs] = {}


def get_runs(scale: Scale, **kw) -> Runs:
    """Process-wide :class:`Runs` for ``scale`` (shared across experiments)."""
    if scale.name not in _RUNNERS:
        _RUNNERS[scale.name] = Runs(scale, **kw)
    return _RUNNERS[scale.name]
