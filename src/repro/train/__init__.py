"""Trainers: dense baseline, PruneTrain (Algorithm 1), and the paper's
comparators — SSL, one-time reconfiguration, and AMC-like pruning."""

from .amc_like import AMCLikeConfig, AMCLikePruner, channel_importance
from .finetune import fine_tune
from .metrics import EpochRecord, RunLog
from .onetime import OneTimeConfig, OneTimeTrainer
from .prunetrain import PruneTrainConfig, PruneTrainTrainer
from .ssl import SSLConfig, SSLTrainer
from .trainer import Trainer, TrainerConfig

__all__ = [
    "Trainer", "TrainerConfig",
    "PruneTrainTrainer", "PruneTrainConfig",
    "SSLTrainer", "SSLConfig",
    "OneTimeTrainer", "OneTimeConfig",
    "AMCLikePruner", "AMCLikeConfig", "channel_importance",
    "fine_tune",
    "EpochRecord", "RunLog",
]
