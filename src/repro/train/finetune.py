"""Post-pruning fine-tuning (the paper's Tab. 1 "(fine-tuning)" column).

After PruneTrain finishes, a few extra epochs *without* group-lasso
regularization at a small learning rate recover accuracy: the paper reports
+0.3% for the strong regularization settings and a net +0.2% over the dense
baseline for the weak one.  This is ordinary training of the final compact
architecture, so it reuses the dense :class:`~repro.train.trainer.Trainer`
with a constant low LR.
"""

from __future__ import annotations

from typing import Optional

from ..nn.module import Module
from ..optim import ConstantLR
from .metrics import RunLog
from .trainer import Trainer, TrainerConfig


def fine_tune(model: Module, train_set, val_set, epochs: int,
              lr: float = 1e-3, batch_size: int = 128,
              augment: bool = False, seed: int = 0,
              workers: int = 1) -> RunLog:
    """Fine-tune a (pruned) model without regularization.

    Returns the fine-tuning phase's :class:`RunLog`; the caller is
    responsible for adding its cost to the parent run if accounting for
    end-to-end training FLOPs.
    """
    cfg = TrainerConfig(epochs=epochs, batch_size=batch_size, lr=lr,
                        augment=augment, seed=seed, workers=workers,
                        log_every=0)
    trainer = Trainer(model, train_set, val_set, cfg)
    trainer.schedule = ConstantLR(lr)
    log = trainer.train()
    log.method = "finetune"
    return log
