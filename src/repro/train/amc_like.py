"""Trial-and-error structured pruning from a pre-trained model (AMC-like).

The Tab. 3 comparator.  AMC [10] searches per-layer pruning ratios with an
RL agent over a pre-trained model, then fine-tunes.  We reproduce the
*protocol class* — iterative magnitude-based channel pruning of a pretrained
model with fine-tuning rounds until an inference-FLOPs target is met — which
is the established non-RL instantiation of trial-and-error pruning
(He et al. [9], Molchanov et al. [32]).  The substitution is documented in
DESIGN.md; Tab. 3 needs the accuracy/FLOPs tradeoff of this protocol as a
baseline, and the paper's qualitative claim (regularization-during-training
dominates prune-after-training at matched FLOPs) is testable against it.

Channel importance: the summed, per-layer-normalized L2 norms of the
channel's weight groups across every conv touching its channel space — the
standard magnitude criterion lifted to channel-space granularity so pruning
always respects the union/dimension-consistency constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..costmodel import inference_flops
from ..nn.module import Module
from ..prune import prune_and_reconfigure
from ..prune.sparsity import DEFAULT_THRESHOLD
from .metrics import RunLog
from .trainer import Trainer, TrainerConfig


@dataclass
class AMCLikeConfig(TrainerConfig):
    """Iterative pruning schedule."""

    target_inference_ratio: float = 0.5   # stop at this fraction of dense FLOPs
    prune_fraction_per_round: float = 0.12
    finetune_epochs: int = 4
    max_rounds: int = 12
    pretrain_epochs: int = 60


def channel_importance(graph) -> Dict[Tuple[int, int], float]:
    """Importance of every (space, channel): summed normalized group norms."""
    scores: Dict[Tuple[int, int], float] = {}
    for sid, space in graph.spaces.items():
        if space.frozen:
            continue
        acc = np.zeros(space.size)
        touched = False
        for node in graph.writers(sid):
            w = node.conv.weight.data
            norms = np.sqrt(np.einsum("kcrs,kcrs->k", w, w))
            denom = norms.mean() + 1e-12
            acc += norms / denom
            touched = True
        for node in graph.readers(sid):
            w = node.conv.weight.data
            norms = np.sqrt(np.einsum("kcrs,kcrs->c", w, w))
            denom = norms.mean() + 1e-12
            acc += norms / denom
            touched = True
        if not touched:
            continue
        for c in range(space.size):
            scores[(sid, c)] = float(acc[c])
    return scores


def zero_space_channels(graph, picks: Dict[int, np.ndarray]) -> None:
    """Hard-zero the selected channels in every conv touching each space."""
    for sid, channels in picks.items():
        for node in graph.writers(sid):
            node.conv.weight.data[channels] = 0.0
        for node in graph.readers(sid):
            node.conv.weight.data[:, channels] = 0.0


class AMCLikePruner:
    """Prune-a-pretrained-model-with-fine-tuning baseline."""

    method_name = "amc-like"

    def __init__(self, model: Module, train_set, val_set,
                 config: Optional[AMCLikeConfig] = None,
                 pretrained: bool = False):
        self.model = model
        self.train_set = train_set
        self.val_set = val_set
        self.cfg = config or AMCLikeConfig()
        self.pretrained = pretrained

    def _prune_round(self) -> None:
        graph = self.model.graph
        scores = channel_importance(graph)
        total = len(scores)
        k = max(1, int(total * self.cfg.prune_fraction_per_round))
        order = sorted(scores.items(), key=lambda kv: kv[1])
        picks: Dict[int, List[int]] = {}
        taken_per_space: Dict[int, int] = {}
        for (sid, c), _ in order:
            if len(sum(picks.values(), [])) >= k:
                break
            size = graph.spaces[sid].size
            if taken_per_space.get(sid, 0) >= size - 1:
                continue  # never empty a space
            picks.setdefault(sid, []).append(c)
            taken_per_space[sid] = taken_per_space.get(sid, 0) + 1
        zero_space_channels(graph,
                            {sid: np.array(cs) for sid, cs in picks.items()})
        prune_and_reconfigure(self.model, optimizer=None,
                              threshold=DEFAULT_THRESHOLD,
                              remove_layers=False)

    def run(self) -> RunLog:
        """Pretrain (optional), then alternate prune rounds and fine-tuning."""
        log = RunLog(model_name=getattr(self.model, "name", "model"),
                     dataset_name=self.train_set.name,
                     method=self.method_name)
        log.notes["train_size"] = len(self.train_set)
        cum = 0.0

        if not self.pretrained and self.cfg.pretrain_epochs > 0:
            cfg = TrainerConfig(
                epochs=self.cfg.pretrain_epochs,
                batch_size=self.cfg.batch_size, lr=self.cfg.lr,
                momentum=self.cfg.momentum,
                weight_decay=self.cfg.weight_decay,
                augment=self.cfg.augment, seed=self.cfg.seed,
                device_names=self.cfg.device_names,
                log_every=self.cfg.log_every)
            t = Trainer(self.model, self.train_set, self.val_set, cfg)
            p = t.train()
            log.records.extend(p.records)
            cum = p.total_train_flops
        dense_flops = inference_flops(self.model.graph)
        log.notes["dense_inference_flops"] = dense_flops

        for rnd in range(self.cfg.max_rounds):
            if inference_flops(self.model.graph) \
                    <= self.cfg.target_inference_ratio * dense_flops:
                break
            self._prune_round()
            ft_cfg = TrainerConfig(
                epochs=self.cfg.finetune_epochs,
                batch_size=self.cfg.batch_size, lr=self.cfg.lr * 0.01,
                momentum=self.cfg.momentum,
                weight_decay=self.cfg.weight_decay,
                augment=self.cfg.augment, seed=self.cfg.seed + rnd + 1,
                device_names=self.cfg.device_names,
                log_every=self.cfg.log_every)
            ft = Trainer(self.model, self.train_set, self.val_set, ft_cfg)
            ft._cum_flops = cum
            p = ft.train()
            cum = p.total_train_flops
            base_ep = log.records[-1].epoch + 1 if log.records else 0
            for rec in p.records:
                rec.epoch += base_ep
            log.records.extend(p.records)
        return log
