"""PruneTrain — Algorithm 1 of the paper.

Training proceeds like the dense baseline, plus:

1. On the **first iteration**, the group-lasso coefficient λ is set from the
   target penalty ratio (Eq. 3) using the first forward pass's
   classification loss and the regularizer value at initialization.
2. Every step, the group-lasso subgradients are added after back-propagation
   (``loss = loss1 + λ·loss2`` in Algorithm 1).
3. Every ``reconfig_interval`` epochs, sparsified channels are pruned and
   the network is reconfigured into a smaller dense model
   (:func:`repro.prune.reconfigure.prune_and_reconfigure`), carrying over
   momentum and BN state.
4. Optionally (Sec. 4.3), a :class:`~repro.distributed.DynamicBatchAdjuster`
   grows the mini-batch into the freed memory and the LR is scaled linearly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..costmodel.memory import activation_bytes_per_sample
from ..distributed import DynamicBatchAdjuster
from ..nn.module import Module
from ..prune import (ChannelTracker, DeadSetExporter, GroupLasso,
                     PruneReport, prune_and_reconfigure)
from ..prune.sparsity import DEFAULT_THRESHOLD
from ..tensor import sparse as _tsparse
from ..tensor import workspace as _tws
from .trainer import Trainer, TrainerConfig


@dataclass
class PruneTrainConfig(TrainerConfig):
    """PruneTrain hyperparameters on top of the dense recipe.

    ``penalty_ratio`` is the paper's *lasso penalty ratio* (Eq. 3): the
    target fraction of total loss contributed by regularization at
    initialization.  The paper's robust range is 0.2-0.25; its sweeps go
    down to 0.05.  ``reconfig_interval`` is the only other new
    hyperparameter (10 epochs for CIFAR, 5 for ImageNet in the paper).
    """

    penalty_ratio: float = 0.25
    reconfig_interval: int = 10
    #: Pruning threshold.  ``None`` (recommended) derives it at λ-setup time
    #: as ``max(paper 1e-4, threshold_floor_mult · lr · λ)`` — the
    #: subgradient of a zeroed group oscillates within ~lr·λ of the origin,
    #: so the detection threshold must sit just above that floor, wherever
    #: λ ends up after horizon compression.
    threshold: Optional[float] = None
    threshold_floor_mult: float = 3.0
    #: Horizon-compression factor for λ.  The sparsification depth of group
    #: lasso is ∝ λ · Σ_t lr_t (the group norm shrinks by ~lr·λ per step), so
    #: reproducing the paper's trajectory *shape* on a run with T× fewer
    #: iterations requires scaling λ by ~T — a pure time-rescaling of the
    #: sparsification ODE.  1.0 reproduces the paper's exact Eq.-3 setup; the
    #: experiment presets compute the factor from their compressed schedules
    #: (see repro.experiments.configs.lambda_scale_for).
    lambda_scale: float = 1.0
    #: λ setup mode.  ``"ratio"`` is the paper's Eq. 3 (λ ∝ L/R) times
    #: ``lambda_scale``.  ``"rate"`` instead fixes the *norm-decay budget*:
    #: λ = strength · decay_budget · median_init_norm / (2 Σ_t lr_t), with
    #: strength = (ratio/(1-ratio)) / (0.25/0.75).  Both agree at the
    #: paper's own horizon (Eq. 3 at ratio 0.25 implies a decay budget of
    #: ~4-6 init norms over 71k iterations), but Eq. 3 makes λ ∝ 1/R — so on
    #: *compressed* schedules larger models sparsify ∝ R more slowly and may
    #: never reach the threshold.  "rate" keeps the sparsification timescale
    #: a fixed fraction of the run for every architecture.
    #: Default 2.5 ≡ the paper's own operating point: Eq.-3 λ at ratio 0.25
    #: over the paper's 71k-iteration schedule decays each group norm by
    #: ~2.5x the median Kaiming init norm (which is ~sqrt(2) for every conv).
    lambda_mode: str = "ratio"
    decay_budget: float = 2.5
    remove_layers: bool = True
    zero_sparse: bool = False
    per_group_size_scaling: bool = False   # ablation: prior-work scaling
    #: stop reconfiguring this many epochs before the end (final model
    #: stabilization; pruning in the last LR phase has nothing left to give)
    last_reconfig_margin: int = 0


class PruneTrainTrainer(Trainer):
    """The paper's training mechanism."""

    method_name = "prunetrain"

    def __init__(self, model: Module, train_set, val_set,
                 config: Optional[PruneTrainConfig] = None,
                 batch_adjuster: Optional[DynamicBatchAdjuster] = None,
                 track_convs: Sequence[str] = ()):
        super().__init__(model, train_set, val_set,
                         config or PruneTrainConfig())
        self.cfg: PruneTrainConfig
        self.lasso = GroupLasso(
            model.graph,
            per_group_size_scaling=self.cfg.per_group_size_scaling)
        self.batch_adjuster = batch_adjuster
        self.tracker = ChannelTracker(model.graph, track_convs) \
            if track_convs else None
        self.reports: List[PruneReport] = []
        #: stable dead-channel exporter for the sparse compute paths
        #: (:mod:`repro.tensor.sparse`); scanned every epoch, published only
        #: when ``workspace.config.sparse_compute`` is on.
        self._dead_exporter = DeadSetExporter()
        #: threshold derived at λ-setup time when ``cfg.threshold`` is None.
        #: Kept on the trainer — not written back into the config — so a
        #: :class:`PruneTrainConfig` reused across runs (sweep presets)
        #: never carries one run's derived threshold into the next.
        self._derived_threshold: Optional[float] = None

    @property
    def threshold(self) -> float:
        """Effective pruning threshold: explicit config value, else the
        value derived on the first batch, else the paper default."""
        if self.cfg.threshold is not None:
            return self.cfg.threshold
        if self._derived_threshold is not None:
            return self._derived_threshold
        return DEFAULT_THRESHOLD

    # -- Algorithm 1 hooks ---------------------------------------------------
    def on_first_batch(self, cls_loss: float) -> None:
        """Line 12-13: set λ once, from the very first iteration's losses."""
        if self.cfg.lambda_mode == "ratio":
            self.lasso.set_coefficient(cls_loss, self.cfg.penalty_ratio)
            self.lasso.lam *= self.cfg.lambda_scale
        elif self.cfg.lambda_mode == "rate":
            self.lasso.lam = self._rate_lambda()
        else:
            raise ValueError(f"unknown lambda_mode "
                             f"{self.cfg.lambda_mode!r}")
        if self.cfg.threshold is None:
            self._derived_threshold = max(
                DEFAULT_THRESHOLD,
                self.cfg.threshold_floor_mult * self.cfg.lr * self.lasso.lam)

    def _rate_lambda(self) -> float:
        """Decay-budget λ (see ``PruneTrainConfig.lambda_mode``)."""
        norms = []
        for node in self.model.graph.active_convs():
            w = node.conv.weight.data
            norms.append(np.sqrt(np.einsum("kcrs,kcrs->k", w, w)))
        n_typ = float(np.median(np.concatenate(norms)))
        iters = max(1, self.loader.batches_per_epoch())
        sum_lr = sum(self.schedule.lr_at(e)
                     for e in range(self.cfg.epochs)) * iters
        ratio = self.cfg.penalty_ratio
        strength = (ratio / (1.0 - ratio)) / (0.25 / 0.75)
        return strength * self.cfg.decay_budget * n_typ / (2.0 * sum_lr)

    def post_backward(self) -> float:
        """Line 10/16: add the group-lasso subgradients after backprop."""
        if self.lasso.lam is None:
            return 0.0
        self.lasso.add_gradients()
        return self.lasso.loss()

    def on_epoch_end(self, epoch: int) -> None:
        """Line 18-22: periodic prune + reconfigure (+ batch adjustment)."""
        if self.tracker is not None:
            self.tracker.record()
        interval = self.cfg.reconfig_interval
        last_ok = self.cfg.epochs - self.cfg.last_reconfig_margin
        if interval > 0 and (epoch + 1) % interval == 0 \
                and (epoch + 1) < last_ok:
            self._reconfigure(epoch)
        self._publish_dead_sets()

    def _publish_dead_sets(self) -> None:
        """Scan for stable dead channels and publish them to the sparse
        engine.  Runs at the end of *every* epoch — not only reconfig
        epochs — so the exporter's hysteresis window fills between
        reconfigurations and ``zero_sparse`` runs can engage the sparse
        compute paths as soon as the zeroed channels prove stable.
        Publishing an unchanged set is free (no plan invalidation), and the
        whole hook is a no-op unless sparse compute is enabled.
        """
        if not _tws.config.sparse_compute:
            return
        scanned = self._dead_exporter.scan(self.model.graph, self.threshold)
        _tsparse.publish([(node.conv.weight, si, so)
                          for node, si, so in scanned])

    def _reconfigure(self, epoch: int) -> None:
        def on_masks(masks):
            if self.tracker is None:
                return
            for name in self.tracker.conv_names:
                try:
                    node = self.model.graph.conv_by_name(name)
                except KeyError:
                    continue
                if self.model.graph._active(node):
                    self.tracker.note_reconfigure(name, masks[node.out_space])

        pre_ana = activation_bytes_per_sample(self.model.graph)
        report = prune_and_reconfigure(
            self.model, self.optimizer, self.threshold,
            remove_layers=self.cfg.remove_layers,
            zero_sparse=self.cfg.zero_sparse, on_masks=on_masks)
        self.reports.append(report)

        if self.batch_adjuster is not None:
            self._feed_measured_footprint(pre_ana)
            adj = self.batch_adjuster.propose(self.model.graph,
                                              self.loader.batch_size)
            if adj.changed:
                self.loader.set_batch_size(adj.new_batch)
                self.lr_scale *= adj.lr_scale

    def _feed_measured_footprint(self, pre_ana: float) -> None:
        """Project the planner's measured bytes/sample onto the pruned graph.

        The arena measurement (Sec. 4.3's capacity signal, made exact by the
        memory planner) was taken on the *pre-prune* model; the plan for the
        pruned model does not exist until the next captured batch.  The
        planner footprint tracks activation volume, so scale the measured
        bytes/sample by the analytical shrink factor and feed that to the
        memory model — ``max_batch(measured=True)`` then sizes the new batch
        from real, not estimated, transient memory.  No-op for analytical
        adjusters (the default) and for eager/unplanned runs.
        """
        adj = self.batch_adjuster
        mm = self._last_mem_metrics
        if adj.source != "measured" or not mm or pre_ana <= 0:
            return
        batch = self.loader.batch_size
        measured = mm["arena_bytes"] / batch
        post_ana = activation_bytes_per_sample(self.model.graph)
        adj.memory_model.observe(measured * (post_ana / pre_ana))

    # -- record extras ------------------------------------------------------
    def _make_record(self, epoch, train_loss, train_acc, comm_epoch):
        rec = super()._make_record(epoch, train_loss, train_acc, comm_epoch)
        rec.reg_loss = self.lasso.loss()
        rec.lam = self.lasso.lam or 0.0
        return rec

    # -- exact-resume state (checkpoint format v2) --------------------------
    def _extra_state(self):
        state = {
            "lam": self.lasso.lam,
            "derived_threshold": self._derived_threshold,
            "reports": [self._report_to_dict(r) for r in self.reports],
        }
        if self.tracker is not None:
            state["tracker"] = {"orig_k": dict(self.tracker._orig_k)}
        state["dead_hist"] = {name: len(hist) for name, hist
                              in self._dead_exporter._hist.items()}
        return state

    def _extra_arrays(self):
        arrays = {}
        if self.tracker is not None:
            for name in self.tracker.conv_names:
                arrays[f"tracker/history/{name}"] = self.tracker.matrix(name)
                arrays[f"tracker/alive/{name}"] = \
                    self.tracker._alive_idx[name]
        for name, hist in self._dead_exporter._hist.items():
            for i, (ib, ob) in enumerate(hist):
                arrays[f"dead_hist/{name}/{i}/in"] = ib
                arrays[f"dead_hist/{name}/{i}/out"] = ob
        return arrays

    def _restore_extra(self, train_state, arrays):
        self.lasso.lam = train_state["lam"]
        self._derived_threshold = train_state["derived_threshold"]
        self.reports = [self._report_from_dict(d)
                        for d in train_state["reports"]]
        if self.tracker is not None and "tracker" in train_state:
            for name in self.tracker.conv_names:
                hist = arrays[f"tracker/history/{name}"]
                self.tracker.history[name] = [row.copy() for row in hist]
                self.tracker._alive_idx[name] = np.asarray(
                    arrays[f"tracker/alive/{name}"], dtype=np.int64)
        self._dead_exporter.reset()
        for name, n in train_state.get("dead_hist", {}).items():
            self._dead_exporter._hist[name] = [
                (np.asarray(arrays[f"dead_hist/{name}/{i}/in"], dtype=bool),
                 np.asarray(arrays[f"dead_hist/{name}/{i}/out"], dtype=bool))
                for i in range(n)]
        if _tws.config.sparse_compute:
            # Republish from the restored history (no fresh scan — that
            # would double-count the checkpoint epoch) so the resumed run
            # re-engages the sparse paths where the original run had them.
            cur = self._dead_exporter.current(self.model.graph)
            _tsparse.publish([(node.conv.weight, si, so)
                              for node, si, so in cur])

    @staticmethod
    def _report_to_dict(report: PruneReport) -> dict:
        d = asdict(report)
        d["space_sizes"] = {str(k): v for k, v in d["space_sizes"].items()}
        return d

    @staticmethod
    def _report_from_dict(d: dict) -> PruneReport:
        d = dict(d)
        d["space_sizes"] = {int(k): v for k, v in d["space_sizes"].items()}
        return PruneReport(**d)
