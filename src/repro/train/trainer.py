"""Dense baseline trainer — the reference every PruneTrain run is compared to.

Implements standard mini-batch SGD training (optionally over simulated
data-parallel workers) with full cost instrumentation: every epoch records
FLOPs, memory, BN traffic, communication bytes, and modeled device times, so
a dense run directly provides the denominators of the paper's Tab. 1/Tab. 4
ratios.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..costmodel import (DEVICES, bn_traffic_bytes, epoch_comm_bytes,
                         epoch_time, inference_flops, iteration_memory_bytes,
                         training_flops_per_sample)
from ..data import Augmenter, DataLoader, Dataset
from ..distributed import data_parallel_step
from ..io.checkpoint import (checkpoint_path, prune_old_checkpoints,
                             restore_checkpoint, save_checkpoint)
from ..nn.module import Module
from ..optim import SGD, LRSchedule, StepLR, milestones_for
from ..profiler import PROFILER
from ..prune.sparsity import model_channel_sparsity
from ..tensor import Tensor, no_grad
from ..tensor import functional as F
from ..tensor import workspace as _ws
from ..tensor.compile import (PlanCache, StepPlan, capture_forward,
                              capture_training_step)
from .metrics import EpochRecord, RunLog


@dataclass
class TrainerConfig:
    """Hyperparameters shared by all trainers.

    Defaults follow the paper's CIFAR recipe (He et al.): SGD momentum 0.9,
    weight decay 5e-4, LR 0.1 decayed 10x at 50%/75% of training.
    """

    epochs: int = 60
    batch_size: int = 128
    lr: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 5e-4
    lr_milestone_fractions: tuple = (0.5, 0.75)
    lr_gamma: float = 0.1
    workers: int = 1               # simulated data-parallel workers
    augment: bool = True
    #: white-noise augmentation std (fresh corruption per presentation; for
    #: synthetic tasks this emulates sampling a much larger dataset)
    augment_noise_std: float = 0.0
    eval_batch: int = 256
    #: BN running-stat recalibration passes before each evaluation (0 = off).
    #: Short schedules need this: EMA stats lag the weights and the error
    #: compounds through deep networks (see repro.nn.bn_utils).
    bn_recal_batches: int = 3
    seed: int = 0
    device_names: tuple = ("1080ti", "v100")
    log_every: int = 0             # epochs between stdout lines (0 = silent)
    #: measure per-op wall time / bytes each epoch (:mod:`repro.profiler`)
    #: and attach the summary to every :class:`EpochRecord`.  Off by default:
    #: disabled profiling costs one attribute check per op.
    profile: bool = False
    #: epochs between periodic run checkpoints (0 = no checkpointing).
    #: Requires ``checkpoint_dir``.  Checkpoints capture the *full* run
    #: state (format v2) so a killed run resumes bit-exactly via
    #: ``Trainer.train(resume_from=...)``.
    checkpoint_every: int = 0
    #: directory for periodic checkpoints (``ckpt-ep<NNNNN>.npz``)
    checkpoint_dir: Optional[str] = None
    #: retain only the newest N periodic checkpoints (0 = keep all)
    checkpoint_keep: int = 3
    #: capture-and-replay compiled steps (:mod:`repro.tensor.compile`):
    #: record the autograd tape on the first batch after each invalidation
    #: (pruning reconfiguration, batch growth, checkpoint restore) and
    #: replay it as a flat kernel plan until the next one.  Replay is
    #: bit-exact against eager.  ``None`` defers to the
    #: ``REPRO_COMPILE_STEP`` env flag (default on).  Compilation is
    #: bypassed automatically when ``profile=True`` (per-op counters need
    #: the instrumented eager path) or ``workers > 1`` (the simulated
    #: data-parallel step has its own execution path); any capture failure
    #: falls back to eager with a logged reason.
    compile_step: Optional[bool] = None
    #: static memory planning for compiled plans (:mod:`repro.tensor.memplan`):
    #: pack every plan-owned transient buffer into one liveness-shared arena
    #: and report the exact peak bytes per epoch.  Bit-exact either way.
    #: ``None`` defers to ``REPRO_MEM_PLAN`` (default on); the resolved value
    #: is pinned onto the engine config for the duration of :meth:`train` so
    #: replayed plans and recaptures agree on the engine signature.
    mem_plan: Optional[bool] = None
    #: level-scheduled multi-threaded replay of compiled training plans
    #: (:mod:`repro.tensor.parallel`).  Bit-exact vs serial replay by
    #: construction.  ``None`` defers to ``REPRO_PARALLEL_REPLAY``
    #: (default off); pinned onto the engine config for the duration of
    #: :meth:`train` like ``mem_plan``.  Only affects the compiled
    #: single-process path — elastic workers compile their own (serial)
    #: plans and the sim never compiles, so the two features compose by
    #: partitioning: procs from the elastic engine, threads from replay.
    parallel_replay: Optional[bool] = None
    #: total executor threads for parallel replay (calling thread included);
    #: ``None`` defers to ``REPRO_REPLAY_WORKERS`` (default 4)
    replay_workers: Optional[int] = None
    #: multi-worker execution backend for ``workers > 1``: ``"elastic"``
    #: spawns true worker *processes* exchanging gradients through shared
    #: memory (:class:`repro.distributed.ElasticEngine` — fault-tolerant,
    #: bit-identical to the simulation when fault-free), ``"sim"`` keeps the
    #: in-process sequential simulation (:func:`data_parallel_step`).
    dist_engine: str = "elastic"
    #: elastic only: evict a worker whose heartbeat is older than this
    dist_heartbeat_timeout: float = 30.0
    #: elastic only: optional :class:`repro.distributed.FaultPlan` scripting
    #: deterministic worker failures (testing / resilience drills)
    dist_fault_plan: Optional[object] = None
    #: elastic only: reduce gradient buckets while workers still compute
    #: (``None`` defers to ``REPRO_COMM_OVERLAP``, default on)
    dist_comm_overlap: Optional[bool] = None
    #: elastic only: target bucket size in bytes for the overlapped exchange
    #: (``None`` defers to ``REPRO_COMM_BUCKET_BYTES``, default 64 KiB)
    dist_bucket_bytes: Optional[int] = None
    #: elastic only: bind workers' gradient sinks directly into the shared
    #: allreduce segments, eliding the pack copy (``None`` defers to
    #: ``REPRO_COMM_ZEROCOPY``, default on)
    dist_zero_copy: Optional[bool] = None
    #: elastic only: let workers replay compiled step plans instead of
    #: eager steps (``None`` defers to ``REPRO_DIST_COMPILE``, default on)
    dist_compile: Optional[bool] = None
    #: sparsity-aware compute paths (:mod:`repro.tensor.sparse`): skip
    #: dead-channel GEMM columns and run compacted backward GEMMs where the
    #: measured cost-model gate proves them both profitable *and*
    #: bit-identical to dense.  ``None`` defers to ``REPRO_SPARSE_COMPUTE``
    #: (default off); pinned onto the engine config for the duration of
    #: :meth:`train` like ``mem_plan``.
    sparse_compute: Optional[bool] = None
    #: minimum measured speedup for the gate to accept a sparse pipeline
    #: (``None`` defers to ``REPRO_SPARSE_MIN_GAIN``, default 1.05)
    sparse_min_gain: Optional[float] = None


class Trainer:
    """Baseline dense trainer with full cost instrumentation."""

    method_name = "dense"

    def __init__(self, model: Module, train_set: Dataset, val_set: Dataset,
                 config: Optional[TrainerConfig] = None):
        self.model = model
        self.train_set = train_set
        self.val_set = val_set
        self.cfg = config or TrainerConfig()
        self.optimizer = SGD(model.parameters(), self.cfg.lr,
                             self.cfg.momentum, self.cfg.weight_decay)
        self.schedule: LRSchedule = StepLR(
            self.cfg.lr, milestones_for(self.cfg.epochs,
                                        self.cfg.lr_milestone_fractions),
            self.cfg.lr_gamma)
        aug = Augmenter(noise_std=self.cfg.augment_noise_std) \
            if self.cfg.augment else None
        self.loader = DataLoader(train_set, self.cfg.batch_size, shuffle=True,
                                 seed=self.cfg.seed, augment=aug)
        #: multiplicative LR factor from dynamic mini-batch scaling
        self.lr_scale = 1.0
        self.log = RunLog(model_name=getattr(model, "name", "model"),
                          dataset_name=train_set.name,
                          method=self.method_name)
        self.log.notes["train_size"] = len(train_set)
        self._cum_flops = 0.0
        #: whether ``on_first_batch`` already fired (λ/threshold derivation
        #: happens exactly once per *run*, so a resumed run must not re-run
        #: it on its first post-resume batch)
        self._first_batch_done = False
        cs = self.cfg.compile_step
        if cs is None:
            cs = _ws._env_flag("REPRO_COMPILE_STEP", True)
        self._compile_enabled = bool(cs)
        mp = self.cfg.mem_plan
        if mp is None:
            mp = _ws._env_flag("REPRO_MEM_PLAN", True)
        self._mem_plan = bool(mp)
        pr = self.cfg.parallel_replay
        if pr is None:
            pr = _ws._env_flag("REPRO_PARALLEL_REPLAY", False)
        self._parallel_replay = bool(pr)
        rw = self.cfg.replay_workers
        if rw is None:
            rw = int(os.environ.get("REPRO_REPLAY_WORKERS", "4"))
        self._replay_workers = int(rw)
        sc = self.cfg.sparse_compute
        if sc is None:
            sc = _ws._env_flag("REPRO_SPARSE_COMPUTE", False)
        self._sparse_compute = bool(sc)
        sg = self.cfg.sparse_min_gain
        if sg is None:
            sg = float(os.environ.get("REPRO_SPARSE_MIN_GAIN", "1.05"))
        self._sparse_min_gain = float(sg)
        #: arena metrics of the most recent full-batch training plan
        #: (``StepPlan.mem_metrics``); feeds the epoch record and, for
        #: PruneTrain's measured-capacity batch sizing, the memory model
        self._last_mem_metrics: Optional[Dict] = None
        #: shape-keyed plan caches (one per batch shape, so dynamic batch
        #: growth and the short tail batch each get their own plan); entries
        #: self-invalidate on workspace.PLAN_GENERATION bumps
        self._train_plans = PlanCache()
        self._eval_plans = PlanCache()
        self._fallback_reasons: set = set()
        if self.cfg.dist_engine not in ("elastic", "sim"):
            raise ValueError(
                f"dist_engine must be 'elastic' or 'sim', "
                f"got {self.cfg.dist_engine!r}")
        #: lazy ElasticEngine (forked at the first parallel step so replicas
        #: start from the run's actual initial/restored weights)
        self._elastic = None
        self._epoch_stall = 0.0

    # -- hooks (overridden by subclasses) -----------------------------------
    def on_run_start(self) -> None:
        pass

    def on_first_batch(self, cls_loss: float) -> None:
        pass

    def post_backward(self) -> float:
        """Add extra gradients (regularizers); return extra loss for logging."""
        return 0.0

    def on_epoch_end(self, epoch: int) -> None:
        pass

    # -- core loop ---------------------------------------------------------
    def _compile_active(self) -> bool:
        """Compiled stepping applies only to the plain single-worker path."""
        return (self._compile_enabled and self.cfg.workers == 1
                and not self.cfg.profile)

    def _note_fallback(self, reason: Optional[str]) -> None:
        reason = reason or "capture failed"
        if reason not in self._fallback_reasons:
            self._fallback_reasons.add(reason)
            print(f"[{self.method_name}] compile_step fallback: {reason}")

    def _step_eager(self, xb: np.ndarray, yb: np.ndarray
                    ) -> tuple[float, float, float]:
        logits = self.model(Tensor(xb))
        loss = F.cross_entropy(logits, yb)
        self.optimizer.zero_grad()
        loss.backward()
        acc = float((logits.data.argmax(1) == yb).mean())
        return loss.item(), acc, 0.0

    def _step_single(self, xb: np.ndarray, yb: np.ndarray
                     ) -> tuple[float, float, float]:
        if not self._compile_active():
            return self._step_eager(xb, yb)
        key = ("train", xb.shape, xb.dtype.str, yb.shape, yb.dtype.str)
        cached = self._train_plans.lookup(key)
        if isinstance(cached, StepPlan):
            reason = cached.invalid_reason()
            if reason is None:
                self.optimizer.zero_grad()
                loss_arr, logits_arr = cached.run(xb, yb)
                if xb.shape[0] == self.loader.batch_size:
                    self._last_mem_metrics = cached.mem_metrics()
                acc = float((logits_arr.argmax(1) == yb).mean())
                return float(loss_arr), acc, 0.0
            # Stale within the same generation (engine config / parameter
            # shape changed under us): drop it and recapture this batch.
            self._train_plans.drop(key)
            cached = None
        if isinstance(cached, str):
            # Capture already failed for this shape in this generation; a
            # retry would fail the same way, so stay eager until the next
            # reconfiguration clears the cache.
            return self._step_eager(xb, yb)
        # Miss: capture this batch.  The capture *is* an eager step (same
        # kernels, same results), so we finish it as one — backprop through
        # the recorded tensors — and replay starts next batch.  Never re-run
        # the forward: BN running stats were already updated in place.
        self.optimizer.zero_grad()
        plan, loss_t, logits_t, reason = capture_training_step(
            self.model, xb, yb)
        if plan is not None:
            self._train_plans.store(key, plan)
            if xb.shape[0] == self.loader.batch_size:
                self._last_mem_metrics = plan.mem_metrics()
        else:
            self._train_plans.store(key, reason or "capture failed")
            self._note_fallback(reason)
        loss_t.backward()
        acc = float((logits_t.data.argmax(1) == yb).mean())
        return loss_t.item(), acc, 0.0

    def _elastic_engine(self):
        if self._elastic is None:
            from ..distributed.elastic import ElasticEngine
            self._elastic = ElasticEngine(
                self.model, self.cfg.workers,
                heartbeat_timeout=self.cfg.dist_heartbeat_timeout,
                fault_plan=self.cfg.dist_fault_plan,
                comm_overlap=self.cfg.dist_comm_overlap,
                bucket_bytes=self.cfg.dist_bucket_bytes,
                zero_copy=self.cfg.dist_zero_copy,
                compile_steps=self.cfg.dist_compile)
        return self._elastic

    def _step_parallel(self, xb: np.ndarray, yb: np.ndarray
                       ) -> tuple[float, float, float]:
        if self.cfg.dist_engine == "elastic":
            r = self._elastic_engine().step(xb, yb)
            self._epoch_stall += r.stall_seconds
            return r.loss, r.accuracy, r.comm_bytes_per_worker
        res, _ = data_parallel_step(self.model, xb, yb, self.cfg.workers)
        return res.loss, res.accuracy, res.comm_bytes_per_worker

    def shutdown(self) -> None:
        """Release the elastic worker pool (idempotent; no-op otherwise)."""
        if self._elastic is not None:
            self._elastic.shutdown()
            self._elastic = None

    def train(self, resume_from: Optional[str] = None) -> RunLog:
        """Run the full training loop; returns the populated :class:`RunLog`.

        ``resume_from`` names a format-v2 checkpoint written by this
        trainer's configuration (see ``TrainerConfig.checkpoint_every`` /
        :meth:`save_run_checkpoint`): the run picks up at the epoch after
        the checkpoint and — because the checkpoint captures the loader RNG
        stream, optimizer momentum, LR scaling, and all pruning-run state —
        reproduces the uninterrupted run's trajectory bit-exactly.
        """
        if resume_from is not None:
            start_epoch = self.resume(resume_from)
        else:
            start_epoch = 0
            self.on_run_start()
        if self.cfg.profile:
            PROFILER.enable(reset=True)
        saved_engine = (_ws.config.mem_plan, _ws.config.parallel_replay,
                        _ws.config.replay_workers, _ws.config.sparse_compute,
                        _ws.config.sparse_min_gain)
        _ws.config.mem_plan = self._mem_plan
        _ws.config.parallel_replay = self._parallel_replay
        _ws.config.replay_workers = self._replay_workers
        _ws.config.sparse_compute = self._sparse_compute
        _ws.config.sparse_min_gain = self._sparse_min_gain
        try:
            for epoch in range(start_epoch, self.cfg.epochs):
                if self.cfg.profile:
                    PROFILER.reset()
                t0 = time.perf_counter()
                self._epoch_stall = 0.0
                self.model.train()
                base_lr = self.schedule.lr_at(epoch)
                self.optimizer.lr = base_lr * self.lr_scale
                losses, accs = [], []
                comm_epoch = 0.0
                flops_per_sample = training_flops_per_sample(self.model.graph)
                for xb, yb in self.loader:
                    if self.cfg.workers > 1:
                        loss, acc, comm = self._step_parallel(xb, yb)
                    else:
                        loss, acc, comm = self._step_single(xb, yb)
                    if not self._first_batch_done:
                        self.on_first_batch(loss)
                        self._first_batch_done = True
                    reg = self.post_backward()
                    self.optimizer.step()
                    losses.append(loss)
                    accs.append(acc)
                    comm_epoch += comm
                    self._cum_flops += flops_per_sample * len(yb)
                self.on_epoch_end(epoch)
                # Snapshot the profiler *before* evaluation (inside
                # ``_make_record``) so the per-epoch op profile covers the
                # training phase only — evaluation + BN recalibration would
                # otherwise inflate the counts.
                if self.cfg.profile:
                    train_profile = PROFILER.summary()
                rec = self._make_record(epoch, float(np.mean(losses)),
                                        float(np.mean(accs)), comm_epoch)
                rec.wall_time = time.perf_counter() - t0
                if self.cfg.profile:
                    rec.op_profile = train_profile
                self.log.append(rec)
                self._maybe_checkpoint(epoch)
                if self.cfg.log_every and (epoch % self.cfg.log_every == 0):
                    print(f"[{self.method_name}] ep{epoch:3d} "
                          f"loss {rec.train_loss:.3f} val {rec.val_acc:.3f} "
                          f"infF {rec.inference_flops/1e6:.2f}M "
                          f"batch {rec.batch_size}")
        finally:
            (_ws.config.mem_plan, _ws.config.parallel_replay,
             _ws.config.replay_workers, _ws.config.sparse_compute,
             _ws.config.sparse_min_gain) = saved_engine
            self.shutdown()
        if self.cfg.profile:
            PROFILER.disable()
        return self.log

    # -- exact-resume checkpointing (format v2) -----------------------------
    def _train_state(self, epoch: int) -> Dict:
        """Full JSON-serializable run state after completed epoch ``epoch``.

        Everything a resumed run needs to be bit-exact: loader RNG stream
        and batch size (which also drives augmentation), the dynamic LR
        scale, the epoch counter (= LR-schedule position), cumulative
        FLOPs, the RunLog so far, and whatever subclasses add via
        :meth:`_extra_state` (λ, derived threshold, tracker history, ...).
        """
        state = {
            "epoch": epoch,
            "first_batch_done": self._first_batch_done,
            "lr_scale": self.lr_scale,
            "cum_flops": self._cum_flops,
            "loader": self.loader.state_dict(),
            "run_log": self.log.to_dict(),
        }
        state.update(self._extra_state())
        return state

    def _extra_state(self) -> Dict:
        """Subclass hook: additional JSON-serializable run state."""
        return {}

    def _extra_arrays(self) -> Dict[str, np.ndarray]:
        """Subclass hook: additional ndarray run state (tracker history...)."""
        return {}

    def _restore_extra(self, train_state: Dict,
                       arrays: Dict[str, np.ndarray]) -> None:
        """Subclass hook: restore what the two capture hooks produced."""

    def save_run_checkpoint(self, path: str, epoch: int) -> None:
        """Atomically write a full-run checkpoint (after epoch ``epoch``)."""
        save_checkpoint(path, self.model, self.optimizer,
                        train_state=self._train_state(epoch),
                        arrays=self._extra_arrays())

    def resume(self, path: str) -> int:
        """Restore a run checkpoint in place; returns the next epoch index.

        The trainer must have been constructed exactly as for the original
        run (same model factory/seed, datasets, and config): the recorded
        architecture is replayed onto the fresh model, then all weights,
        momentum, RNG streams, and run counters are restored.
        """
        meta, arrays = restore_checkpoint(path, self.model, self.optimizer)
        state = meta.get("train_state")
        if state is None:
            raise ValueError(
                f"checkpoint {path!r} has no training state (format v1?); "
                "exact resume needs a checkpoint written by "
                "Trainer.save_run_checkpoint")
        self._first_batch_done = bool(state["first_batch_done"])
        self.lr_scale = float(state["lr_scale"])
        self._cum_flops = float(state["cum_flops"])
        self.loader.load_state_dict(state["loader"])
        self.log = RunLog.from_dict(state["run_log"])
        self._restore_extra(state, arrays)
        return int(state["epoch"]) + 1

    def _maybe_checkpoint(self, epoch: int) -> None:
        """Periodic checkpoint + retention per the config (no-op if off)."""
        cfg = self.cfg
        if not cfg.checkpoint_every or not cfg.checkpoint_dir:
            return
        if (epoch + 1) % cfg.checkpoint_every != 0:
            return
        self.save_run_checkpoint(
            checkpoint_path(cfg.checkpoint_dir, epoch), epoch)
        prune_old_checkpoints(cfg.checkpoint_dir, cfg.checkpoint_keep)

    def evaluate(self) -> float:
        """Top-1 accuracy on the validation set (after BN recalibration).

        The model's train/eval mode is restored on exit — evaluating must
        not flip a model that was in eval mode back into train mode.
        """
        was_training = self.model.training
        if self.cfg.bn_recal_batches > 0:
            from ..nn.bn_utils import recalibrate_bn
            bs = max(self.loader.batch_size, 64)
            batches = [self.train_set.x[i * bs:(i + 1) * bs]
                       for i in range(self.cfg.bn_recal_batches)]
            recalibrate_bn(self.model, [b for b in batches if len(b)])
        self.model.eval()
        correct = 0
        n = len(self.val_set)
        with no_grad():
            for lo in range(0, n, self.cfg.eval_batch):
                xb = self.val_set.x[lo:lo + self.cfg.eval_batch]
                yb = self.val_set.y[lo:lo + self.cfg.eval_batch]
                if self._compile_active():
                    logits_arr = self._forward_compiled(xb)
                else:
                    logits_arr = self.model(Tensor(xb)).data
                correct += int((logits_arr.argmax(1) == yb).sum())
        self.model.train(was_training)
        return correct / n

    def _forward_compiled(self, xb: np.ndarray) -> np.ndarray:
        """Inference logits via a cached forward-only plan (eval mode).

        Captured with the model in eval mode, so BN uses running stats; the
        plan reads them through in-place views, and any surgery or restore
        that reassigns them bumps the plan generation.
        """
        key = ("eval", xb.shape, xb.dtype.str)
        cached = self._eval_plans.lookup(key)
        if isinstance(cached, StepPlan):
            reason = cached.invalid_reason()
            if reason is None:
                return cached.run_forward(xb)
            self._eval_plans.drop(key)
            cached = None
        if isinstance(cached, str):
            return self.model(Tensor(xb)).data
        plan, logits_t, reason = capture_forward(self.model, xb)
        if plan is not None:
            self._eval_plans.store(key, plan)
        else:
            self._eval_plans.store(key, reason or "capture failed")
            self._note_fallback(reason)
        return logits_t.data

    # -- instrumentation ------------------------------------------------------
    def _make_record(self, epoch: int, train_loss: float, train_acc: float,
                     comm_epoch: float) -> EpochRecord:
        graph = self.model.graph
        bs = self.loader.batch_size
        rec = EpochRecord(
            epoch=epoch, train_loss=train_loss, train_acc=train_acc,
            val_acc=self.evaluate(),
            lr=self.optimizer.lr, batch_size=bs,
            params=self.model.num_parameters(),
            inference_flops=inference_flops(graph),
            train_flops_per_sample=training_flops_per_sample(graph),
            cumulative_train_flops=self._cum_flops,
            memory_bytes=iteration_memory_bytes(graph, bs),
            bn_bytes_per_iter=bn_traffic_bytes(graph, bs),
            comm_bytes_epoch=comm_epoch if comm_epoch else
            epoch_comm_bytes(graph, len(self.train_set), bs,
                             max(self.cfg.workers, 4)),
            channel_sparsity=model_channel_sparsity(graph),
            removed_layers=graph.removed_layers(),
        )
        mm = self._last_mem_metrics
        if mm:
            rec.mem_peak_bytes = float(mm["peak_bytes"])
            rec.arena_bytes = float(mm["arena_bytes"])
            rec.mem_plan_savings = float(mm["savings"])
        if self._elastic is not None:
            rec.dist_stall_time = self._epoch_stall
            rec.dist_active_workers = self._elastic.active_workers
            rec.dist_failures = len(self._elastic.failures)
        elif self.cfg.workers > 1:
            rec.dist_active_workers = self.cfg.workers
        for dev in self.cfg.device_names:
            rec.epoch_time_model[dev] = epoch_time(
                graph, len(self.train_set),
                max(1, bs // max(self.cfg.workers, 1)),
                DEVICES[dev], workers=max(self.cfg.workers, 1))
        return rec
