"""One-time reconfiguration baseline (Alvarez & Salzmann [8]).

Like PruneTrain, training runs with group-lasso regularization from scratch —
but the network architecture is reconfigured exactly **once**, at a chosen
epoch, and the smaller model is trained from that point on.  The paper's
Fig. 2c shows that even with the best possible choice of that single
reconfiguration point, this leaves >25% more training FLOPs on the table
than continuous reconfiguration, and the best point is not knowable a
priori.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .prunetrain import PruneTrainConfig, PruneTrainTrainer


@dataclass
class OneTimeConfig(PruneTrainConfig):
    """``reconfig_epoch``: the single epoch after which pruning happens."""

    reconfig_epoch: int = 30


class OneTimeTrainer(PruneTrainTrainer):
    """Group-lasso training with a single reconfiguration point."""

    method_name = "onetime"

    def __init__(self, model, train_set, val_set,
                 config: Optional[OneTimeConfig] = None, **kw):
        super().__init__(model, train_set, val_set,
                         config or OneTimeConfig(), **kw)
        self.cfg: OneTimeConfig
        self._reconfigured = False

    def on_epoch_end(self, epoch: int) -> None:
        if self.tracker is not None:
            self.tracker.record()
        if not self._reconfigured and (epoch + 1) == self.cfg.reconfig_epoch:
            self._reconfigure(epoch)
            self._reconfigured = True

    # -- exact-resume state (checkpoint format v2) --------------------------
    def _extra_state(self):
        state = super()._extra_state()
        state["reconfigured"] = self._reconfigured
        return state

    def _restore_extra(self, train_state, arrays):
        super()._restore_extra(train_state, arrays)
        self._reconfigured = bool(train_state.get("reconfigured", False))
