"""SSL baseline (Wen et al. [6]) — structured sparsity learning from a
pre-trained model.

SSL's protocol, as described in the paper's related work and Sec. 5.2:

1. Train the dense model to completion (the "current best practice" start).
2. Re-train with group-lasso regularization, keeping the **original dense
   architecture** until the end (sparsified channels are never removed
   mid-training because they might revive).
3. Finally, zero out and prune the sparsified channels once, producing the
   compressed inference model.

Hence SSL's *training* cost is roughly (pretrain + sparsify) x dense FLOPs —
"almost 3 times higher than baseline" — while its *inference* results are
comparable to PruneTrain's (Fig. 8a/c).  The λ-setup mechanism is applied to
SSL as well, exactly as the paper does ("Since Wen et al. do not discuss how
to set the group lasso penalty coefficient, we apply our proposed mechanism
to SSL as well").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..nn.module import Module
from ..prune import prune_and_reconfigure
from .metrics import RunLog
from .prunetrain import PruneTrainConfig, PruneTrainTrainer
from .trainer import Trainer, TrainerConfig


@dataclass
class SSLConfig(PruneTrainConfig):
    """SSL hyperparameters: dense pretrain epochs + sparsifying epochs."""

    pretrain_epochs: int = 60

    def __post_init__(self) -> None:
        # SSL never reconfigures during training.
        self.reconfig_interval = 0


class SSLTrainer:
    """Two-phase SSL run; produces one merged :class:`RunLog`."""

    method_name = "ssl"

    def __init__(self, model: Module, train_set, val_set,
                 config: Optional[SSLConfig] = None,
                 pretrained: bool = False,
                 pretrain_log: Optional[RunLog] = None):
        """``pretrained=True`` with ``pretrain_log`` lets a caller supply an
        existing dense run as phase 1 (identical protocol, no re-training);
        its records and cumulative FLOPs are folded into this run's log."""
        self.model = model
        self.train_set = train_set
        self.val_set = val_set
        self.cfg = config or SSLConfig()
        self.pretrained = pretrained
        self.pretrain_log = pretrain_log

    def train(self) -> RunLog:
        log = RunLog(model_name=getattr(self.model, "name", "model"),
                     dataset_name=self.train_set.name,
                     method=self.method_name)
        log.notes["train_size"] = len(self.train_set)
        cum = 0.0

        if self.pretrained and self.pretrain_log is not None:
            log.records.extend(self.pretrain_log.records)
            cum = self.pretrain_log.total_train_flops

        if not self.pretrained and self.cfg.pretrain_epochs > 0:
            dense_cfg = TrainerConfig(
                epochs=self.cfg.pretrain_epochs,
                batch_size=self.cfg.batch_size, lr=self.cfg.lr,
                momentum=self.cfg.momentum,
                weight_decay=self.cfg.weight_decay,
                workers=self.cfg.workers, augment=self.cfg.augment,
                seed=self.cfg.seed, device_names=self.cfg.device_names,
                log_every=self.cfg.log_every)
            phase1 = Trainer(self.model, self.train_set, self.val_set,
                             dense_cfg)
            p1 = phase1.train()
            log.records.extend(p1.records)
            cum = p1.total_train_flops

        # Phase 2: group-lasso sparsification, architecture kept dense.
        phase2 = PruneTrainTrainer(self.model, self.train_set, self.val_set,
                                   self.cfg)
        phase2._cum_flops = cum
        offset = len(log.records)
        p2 = phase2.train()
        for rec in p2.records:
            rec.epoch += offset
        log.records.extend(p2.records)

        # Final one-shot prune for the inference model.
        report = prune_and_reconfigure(self.model, phase2.optimizer,
                                       phase2.threshold,
                                       remove_layers=self.cfg.remove_layers)
        log.notes["final_pruned_params"] = report.params_after
        # refresh the last record's inference FLOPs to the pruned model
        if log.records:
            from ..costmodel import inference_flops
            last = log.records[-1]
            last.inference_flops = inference_flops(self.model.graph)
            last.val_acc = phase2.evaluate()
        return log
