"""Run logging: per-epoch records and run summaries.

Every trainer emits a :class:`RunLog`; the experiment runners and benchmark
harness consume these to regenerate the paper's tables and figures, so the
record deliberately includes every quantity the paper plots: FLOPs per
iteration, cumulative training FLOPs, BN traffic, communication bytes,
memory requirement, batch size, modeled epoch time per device, and accuracy.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class EpochRecord:
    """Everything measured at the end of one training epoch."""

    epoch: int
    train_loss: float
    train_acc: float
    val_acc: float
    reg_loss: float = 0.0
    lam: float = 0.0
    lr: float = 0.0
    batch_size: int = 0
    params: int = 0
    inference_flops: float = 0.0          # per sample
    train_flops_per_sample: float = 0.0   # per sample per iteration
    cumulative_train_flops: float = 0.0   # over the whole run so far
    memory_bytes: float = 0.0             # per-iteration training context
    bn_bytes_per_iter: float = 0.0
    comm_bytes_epoch: float = 0.0         # per-worker, this epoch
    epoch_time_model: Dict[str, float] = field(default_factory=dict)
    channel_sparsity: float = 0.0
    removed_layers: int = 0
    wall_time: float = 0.0
    #: static memory planner numbers for the epoch's training plan (zero
    #: when compilation or the planner is off): exact liveness peak of
    #: plan-owned transient bytes, the packed arena size actually
    #: allocated, and the fraction saved vs one-private-buffer-each
    mem_peak_bytes: float = 0.0
    arena_bytes: float = 0.0
    mem_plan_savings: float = 0.0
    #: elastic data parallelism (populated when ``workers > 1``): coordinator
    #: wall time lost waiting on stragglers this epoch, workers alive at
    #: epoch end, and cumulative failures detected so far in the run
    dist_stall_time: float = 0.0
    dist_active_workers: int = 0
    dist_failures: int = 0
    #: measured per-op wall time / bytes for this epoch (only populated when
    #: the trainer runs with ``profile=True``; see :mod:`repro.profiler`)
    op_profile: Dict[str, Dict[str, float]] = field(default_factory=dict)


@dataclass
class RunLog:
    """A full training run's trajectory plus identity metadata."""

    model_name: str = ""
    dataset_name: str = ""
    method: str = ""
    records: List[EpochRecord] = field(default_factory=list)
    notes: Dict[str, float] = field(default_factory=dict)

    def append(self, rec: EpochRecord) -> None:
        self.records.append(rec)

    # -- summaries ----------------------------------------------------------
    @property
    def final_val_acc(self) -> float:
        return self.records[-1].val_acc if self.records else 0.0

    @property
    def best_val_acc(self) -> float:
        return max((r.val_acc for r in self.records), default=0.0)

    @property
    def total_train_flops(self) -> float:
        return self.records[-1].cumulative_train_flops if self.records else 0.0

    @property
    def final_inference_flops(self) -> float:
        return self.records[-1].inference_flops if self.records else 0.0

    @property
    def total_comm_bytes(self) -> float:
        return sum(r.comm_bytes_epoch for r in self.records)

    @property
    def total_bn_bytes(self) -> float:
        """Total BN traffic over the run (iterations x per-iter bytes)."""
        return sum(r.bn_bytes_per_iter * self._iters(r) for r in self.records)

    def total_epoch_time(self, device: str) -> float:
        return sum(r.epoch_time_model.get(device, 0.0) for r in self.records)

    def _iters(self, rec: EpochRecord) -> int:
        n = self.notes.get("train_size", 0)
        return int(np.ceil(n / rec.batch_size)) if rec.batch_size else 0

    def series(self, attr: str) -> np.ndarray:
        """Per-epoch series of any :class:`EpochRecord` attribute."""
        return np.array([getattr(r, attr) for r in self.records])

    def relative_to(self, baseline: "RunLog") -> Dict[str, float]:
        """Headline ratios vs a dense baseline (the Tab. 1 columns)."""
        out: Dict[str, float] = {}
        if baseline.total_train_flops:
            out["train_flops_ratio"] = (self.total_train_flops
                                        / baseline.total_train_flops)
        if baseline.final_inference_flops:
            out["inference_flops_ratio"] = (self.final_inference_flops
                                            / baseline.final_inference_flops)
        out["val_acc_delta"] = self.final_val_acc - baseline.final_val_acc
        if baseline.total_comm_bytes:
            out["comm_ratio"] = self.total_comm_bytes \
                / baseline.total_comm_bytes
        if baseline.total_bn_bytes:
            out["bn_ratio"] = self.total_bn_bytes / baseline.total_bn_bytes
        for dev in ("1080ti", "v100", "titanxp"):
            b = baseline.total_epoch_time(dev)
            if b:
                out[f"time_ratio_{dev}"] = self.total_epoch_time(dev) / b
        return out

    # -- (de)serialization (experiment run cache) ---------------------------
    def to_dict(self) -> dict:
        return {
            "model_name": self.model_name,
            "dataset_name": self.dataset_name,
            "method": self.method,
            "notes": dict(self.notes),
            "records": [asdict(r) for r in self.records],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunLog":
        log = cls(model_name=d["model_name"], dataset_name=d["dataset_name"],
                  method=d["method"], notes=dict(d["notes"]))
        log.records = [EpochRecord(**r) for r in d["records"]]
        return log
