"""Ring allreduce — an executable, step-faithful simulation.

The cost *model* lives in :mod:`repro.costmodel.comm`; this module actually
performs the algorithm over in-process "workers" (NumPy buffers), chunk by
chunk, in the same schedule a real NCCL ring would use: P-1 reduce-scatter
steps followed by P-1 allgather steps, each moving one 1/P-sized chunk per
worker.  Besides producing bit-identical reduced gradients for the
data-parallel trainer, it returns the per-worker byte count actually moved,
which the tests cross-check against the closed-form ``2 (P-1)/P · payload``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass
class AllreduceTrace:
    """What one allreduce moved."""

    steps: int
    bytes_per_worker: float


def ring_allreduce(buffers: List[np.ndarray], average: bool = True
                   ) -> AllreduceTrace:
    """All-reduce ``buffers`` in place (one buffer per worker).

    Every buffer must have identical shape/dtype.  After the call, all
    buffers hold the elementwise sum (or mean) of the inputs.
    """
    p = len(buffers)
    if p == 0:
        raise ValueError("no workers")
    if p == 1:
        return AllreduceTrace(0, 0.0)
    shape = buffers[0].shape
    dtype = buffers[0].dtype
    for b in buffers:
        if b.shape != shape or b.dtype != dtype:
            raise ValueError("mismatched buffers")

    flat = [b.reshape(-1) for b in buffers]
    n = flat[0].size
    bounds = np.linspace(0, n, p + 1).astype(int)
    chunks = [slice(bounds[i], bounds[i + 1]) for i in range(p)]
    moved = 0

    # reduce-scatter: after step s, worker r owns the running sum of chunk
    # (r - s) mod p
    for step in range(p - 1):
        for r in range(p):
            src = r
            dst = (r + 1) % p
            ci = (r - step) % p
            flat[dst][chunks[ci]] += flat[src][chunks[ci]]
            moved += (bounds[ci + 1] - bounds[ci]) * dtype.itemsize \
                if hasattr(dtype, "itemsize") else 0
    # allgather: circulate the fully reduced chunks
    for step in range(p - 1):
        for r in range(p):
            src = r
            dst = (r + 1) % p
            ci = (r + 1 - step) % p
            flat[dst][chunks[ci]] = flat[src][chunks[ci]]
            moved += (bounds[ci + 1] - bounds[ci]) * dtype.itemsize \
                if hasattr(dtype, "itemsize") else 0

    if average:
        inv = 1.0 / p
        for f in flat:
            f *= inv
    return AllreduceTrace(2 * (p - 1), moved / p)


def allreduce_gradient_lists(grads: List[List[np.ndarray]],
                             average: bool = True) -> float:
    """All-reduce per-worker gradient lists (one list per worker) in place.

    Gradients are flattened into a single payload per worker so the ring
    schedule matches what a fused NCCL call would do.  Returns per-worker
    bytes moved.
    """
    p = len(grads)
    if p == 1:
        return 0.0
    sizes = [g.size for g in grads[0]]
    payloads = [np.concatenate([g.reshape(-1) for g in worker])
                for worker in grads]
    trace = ring_allreduce(payloads, average=average)
    for worker, payload in zip(grads, payloads):
        offset = 0
        for g, size in zip(worker, sizes):
            g[...] = payload[offset:offset + size].reshape(g.shape)
            offset += size
    return trace.bytes_per_worker
