"""Ring allreduce — an executable, step-faithful simulation.

The cost *model* lives in :mod:`repro.costmodel.comm`; this module actually
performs the algorithm over in-process "workers" (NumPy buffers), chunk by
chunk, in the same schedule a real NCCL ring would use: P-1 reduce-scatter
steps followed by P-1 allgather steps, each moving one 1/P-sized chunk per
worker.  Besides producing bit-identical reduced gradients for the
data-parallel trainer, it returns the per-worker byte count actually moved,
which the tests cross-check against the closed-form ``2 (P-1)/P · payload``.

Bucketed execution
------------------
:func:`ring_allreduce_range` reduces one contiguous *bucket* of a larger
payload while staying bit-identical to a single monolithic ring over the
whole payload.  The trick is that the association order of the running sums
in a ring depends only on an element's global chunk ("role") index — chunk
``ci``'s reduce-scatter chain is always ``w[ci+1] += w[ci]``,
``w[ci+2] += w[ci+1]``, ...  So a bucket is reduced by intersecting it with
the *global* role boundaries (``linspace`` over the full payload) and
replaying each role's chain on the intersection.  Any partition of the
payload into buckets, launched in any order, therefore produces exactly the
bits of the monolithic call — which is what lets the elastic engine overlap
per-bucket exchanges with backward compute without giving up its
bit-exactness contract (see ``tests/distributed/test_comm_overlap.py``).

:func:`plan_gradient_buckets` groups gradient sinks into size-targeted
buckets at module boundaries, ordered the way backward produces them (last
module first), so each bucket's exchange can launch as soon as its last
gradient lands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class AllreduceTrace:
    """What one allreduce moved."""

    steps: int
    bytes_per_worker: float


@dataclass
class CommStats:
    """Gradient-exchange accounting (surfaced as ``PROFILER.summary()
    ["_comm"]``).

    ``overlapped_seconds`` is reduce time spent while workers were still
    computing (bucket launched from inside a compiled plan); ``tail_seconds``
    is reduce time after every worker had already finished — pure serial
    tail.  ``overlap_ratio`` is their quotient: 1.0 means every byte moved
    under compute, 0.0 is the fully serial schedule.
    """

    bucket_launches: int = 0
    buckets_reduced: int = 0
    monolithic_reduces: int = 0
    bytes_moved: int = 0
    reduce_seconds: float = 0.0
    overlapped_seconds: float = 0.0
    tail_seconds: float = 0.0
    wait_seconds: float = 0.0        # coordinator idle, waiting on workers
    stall_seconds: float = 0.0       # straggler gap (first done -> last done)

    def reset(self) -> None:
        self.bucket_launches = self.buckets_reduced = 0
        self.monolithic_reduces = self.bytes_moved = 0
        self.reduce_seconds = self.overlapped_seconds = 0.0
        self.tail_seconds = self.wait_seconds = self.stall_seconds = 0.0

    @property
    def overlap_ratio(self) -> float:
        total = self.overlapped_seconds + self.tail_seconds
        return self.overlapped_seconds / total if total > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"bucket_launches": self.bucket_launches,
                "buckets_reduced": self.buckets_reduced,
                "monolithic_reduces": self.monolithic_reduces,
                "bytes_moved": self.bytes_moved,
                "reduce_seconds": self.reduce_seconds,
                "overlapped_seconds": self.overlapped_seconds,
                "tail_seconds": self.tail_seconds,
                "wait_seconds": self.wait_seconds,
                "stall_seconds": self.stall_seconds,
                "overlap_ratio": self.overlap_ratio}


#: Process-wide exchange counters (coordinator side).  Always on — the
#: counters are a handful of adds per step.
COMM_STATS = CommStats()


def ring_allreduce(buffers: List[np.ndarray], average: bool = True
                   ) -> AllreduceTrace:
    """All-reduce ``buffers`` in place (one buffer per worker).

    Every buffer must have identical shape/dtype.  After the call, all
    buffers hold the elementwise sum (or mean) of the inputs.
    """
    p = len(buffers)
    if p == 0:
        raise ValueError("no workers")
    if p == 1:
        return AllreduceTrace(0, 0.0)
    shape = buffers[0].shape
    dtype = buffers[0].dtype
    for b in buffers:
        if b.shape != shape or b.dtype != dtype:
            raise ValueError("mismatched buffers")

    flat = [b.reshape(-1) for b in buffers]
    n = flat[0].size
    bounds = np.linspace(0, n, p + 1).astype(int)
    chunks = [slice(bounds[i], bounds[i + 1]) for i in range(p)]
    moved = 0

    # reduce-scatter: after step s, worker r owns the running sum of chunk
    # (r - s) mod p
    for step in range(p - 1):
        for r in range(p):
            src = r
            dst = (r + 1) % p
            ci = (r - step) % p
            flat[dst][chunks[ci]] += flat[src][chunks[ci]]
            moved += (bounds[ci + 1] - bounds[ci]) * dtype.itemsize \
                if hasattr(dtype, "itemsize") else 0
    # allgather: circulate the fully reduced chunks
    for step in range(p - 1):
        for r in range(p):
            src = r
            dst = (r + 1) % p
            ci = (r + 1 - step) % p
            flat[dst][chunks[ci]] = flat[src][chunks[ci]]
            moved += (bounds[ci + 1] - bounds[ci]) * dtype.itemsize \
                if hasattr(dtype, "itemsize") else 0

    if average:
        inv = 1.0 / p
        for f in flat:
            f *= inv
    return AllreduceTrace(2 * (p - 1), moved / p)


def ring_allreduce_range(flats: List[np.ndarray], total: int, lo: int,
                         hi: int, average: bool = True) -> int:
    """Ring-allreduce elements ``[lo, hi)`` of length-``total`` payloads.

    ``flats`` are the workers' *full* flat payload buffers (or prefixes of
    at least ``hi`` elements).  The reduction is restricted to the range
    but follows the **global** role decomposition of the ``total``-element
    ring: each monolithic chunk's per-element association chain is replayed
    on its intersection with the range, so reducing a payload bucket by
    bucket — in any bucket order — yields bit-identical results to one
    :func:`ring_allreduce` over the whole payload, for any worker count.

    Returns the **total** bytes moved (integer, summed across workers):
    bucket totals sum exactly to the monolithic ring's total, so a caller
    dividing the accumulated sum by the worker count once reproduces
    ``AllreduceTrace.bytes_per_worker`` to the bit — the accounting stays
    comparable no matter how the payload was cut.
    """
    p = len(flats)
    if p == 0:
        raise ValueError("no workers")
    if not (0 <= lo <= hi <= total):
        raise ValueError(f"bad range [{lo}, {hi}) for payload {total}")
    if p == 1 or hi == lo:
        return 0
    itemsize = flats[0].dtype.itemsize
    bounds = np.linspace(0, total, p + 1).astype(int)
    moved = 0
    for ci in range(p):
        s0, s1 = max(lo, int(bounds[ci])), min(hi, int(bounds[ci + 1]))
        if s0 >= s1:
            continue
        seg = slice(s0, s1)
        # reduce-scatter chain for role ci (identical order to the
        # monolithic schedule: chunk ci moves along ranks ci -> ci-1)
        for s in range(p - 1):
            src = (ci + s) % p
            dst = (src + 1) % p
            flats[dst][seg] += flats[src][seg]
        # allgather chain: circulate the fully reduced segment
        for s in range(p - 1):
            src = (ci + s - 1) % p
            dst = (ci + s) % p
            flats[dst][seg] = flats[src][seg]
        moved += 2 * (p - 1) * (s1 - s0) * itemsize
    if average:
        inv = 1.0 / p
        for f in flats:
            f[lo:hi] *= inv
    return moved


@dataclass(frozen=True)
class GradBucket:
    """One contiguous slice of the flat gradient payload, exchanged as a
    unit.  ``param_indices`` are positions in ``model.parameters()`` order;
    the element range ``[lo, hi)`` covers exactly those parameters."""

    index: int                       # launch order (backward order)
    lo: int                          # first payload element (inclusive)
    hi: int                          # one past the last payload element
    param_indices: Tuple[int, ...]

    @property
    def elems(self) -> int:
        return self.hi - self.lo


def plan_gradient_buckets(sizes: Sequence[int], offsets: Sequence[int],
                          groups: Sequence[Tuple[int, int]],
                          target_bytes: int, itemsize: int = 4
                          ) -> List[GradBucket]:
    """Group gradient sinks into size-targeted, module-aligned buckets.

    ``groups`` lists ``(first, last)`` parameter-index ranges (half-open)
    that must stay in one bucket — module boundaries, so a layer's weight
    and bias always travel together.  Groups are consumed in *reverse*
    order (backward produces the last module's gradients first) and
    accumulated until a bucket reaches ``target_bytes``.  Because the
    groups are consecutive in parameters order, every bucket is one
    contiguous payload range — the layout the zero-copy mmap segments and
    :func:`ring_allreduce_range` both require.
    """
    if target_bytes <= 0:
        raise ValueError("target_bytes must be positive")
    buckets: List[GradBucket] = []
    pend: List[Tuple[int, int]] = []
    pend_bytes = 0

    def flush() -> None:
        nonlocal pend, pend_bytes
        if not pend:
            return
        i0 = min(g[0] for g in pend)
        i1 = max(g[1] for g in pend)
        idxs = tuple(range(i0, i1))
        lo = int(offsets[i0])
        hi = int(offsets[i1 - 1]) + int(sizes[i1 - 1])
        buckets.append(GradBucket(len(buckets), lo, hi, idxs))
        pend, pend_bytes = [], 0

    for g0, g1 in reversed(list(groups)):
        pend.append((g0, g1))
        pend_bytes += sum(int(sizes[i]) for i in range(g0, g1)) * itemsize
        if pend_bytes >= target_bytes:
            flush()
    flush()
    return buckets


def module_param_groups(model) -> List[Tuple[int, int]]:
    """Parameter-index ranges per owning module, in parameters order.

    Derived purely from ``named_parameters`` traversal, so a worker replica
    and the coordinator compute identical groups from identical models.
    """
    groups: List[Tuple[int, int]] = []
    last = None
    for idx, (name, _p) in enumerate(model.named_parameters()):
        mod = name.rsplit(".", 1)[0] if "." in name else ""
        if mod != last:
            groups.append((idx, idx + 1))
            last = mod
        else:
            groups[-1] = (groups[-1][0], idx + 1)
    return groups


def allreduce_gradient_lists(grads: List[List[np.ndarray]],
                             average: bool = True) -> float:
    """All-reduce per-worker gradient lists (one list per worker) in place.

    Gradients are flattened into a single payload per worker so the ring
    schedule matches what a fused NCCL call would do.  Returns per-worker
    bytes moved.

    Every worker must present the same number of gradients with matching
    shapes — a lagging replica that missed a reconfiguration resync would
    otherwise be silently misreduced (or die in an opaque reshape deep in
    the ring), so the mismatch is rejected up front with a clear error.
    """
    p = len(grads)
    if p == 0:
        raise ValueError("no workers")
    ref = grads[0]
    for w, worker in enumerate(grads[1:], start=1):
        if len(worker) != len(ref):
            raise ValueError(
                f"allreduce gradient lists disagree: worker 0 has "
                f"{len(ref)} gradients but worker {w} has {len(worker)} — "
                f"replicas are out of sync (missed reconfiguration resync?)")
        for i, (a, b) in enumerate(zip(ref, worker)):
            if a.shape != b.shape:
                raise ValueError(
                    f"allreduce gradient lists disagree at index {i}: "
                    f"worker 0 has shape {a.shape} but worker {w} has "
                    f"{b.shape} — replicas are out of sync (missed "
                    f"reconfiguration resync?)")
    if p == 1:
        return 0.0
    sizes = [g.size for g in ref]
    payloads = [np.concatenate([g.reshape(-1) for g in worker])
                for worker in grads]
    trace = ring_allreduce(payloads, average=average)
    for worker, payload in zip(grads, payloads):
        offset = 0
        for g, size in zip(worker, sizes):
            g[...] = payload[offset:offset + size].reshape(g.shape)
            offset += size
    return trace.bytes_per_worker
