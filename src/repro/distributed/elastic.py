"""Elastic multi-process synchronous data-parallel training engine.

This is the scale-out path the paper's Sec. 2.2 ("Distributed Training")
argues PruneTrain accelerates: K worker *processes* (stdlib
``multiprocessing``, fork start method) each hold a model replica, compute
gradients over a shard of the global mini-batch, and exchange them through
POSIX shared memory using the executable ring-allreduce schedule from
:mod:`repro.distributed.allreduce` — the same schedule the in-process
simulation runs, now actually crossing process boundaries.

Overlapped zero-copy gradient exchange
--------------------------------------
Workers replay compiled step plans (:mod:`repro.tensor.compile`) whose
gradient sink thunks write **directly into the shared-memory gradient
segment** (``workspace.bind_grad_sinks``): backward's final ``out=``
reduction lands each parameter's gradient at its flat-payload offset with
no packing copy.  Gradients are grouped into module-aligned, size-targeted
buckets (:func:`~repro.distributed.allreduce.plan_gradient_buckets`)
ordered the way backward produces them; the plan schedules a comm-launch
thunk (``StepPlan.add_comm_thunk``) after the last backward thunk of each
bucket, so the worker notifies the coordinator — a ``("bucket", step,
attempt, index)`` pipe message — while later backward thunks are still
executing.  The coordinator reduces a bucket with
:func:`~repro.distributed.allreduce.ring_allreduce_range` the moment every
participant has posted it, overlapping communication with the stragglers'
remaining compute; buckets still pending when the last worker finishes are
reduced as a serial tail.  Because the bucketed ring replays the monolithic
ring's per-role association chains exactly, the reduced bits are identical
to the serial-comm path — overlap is a pure scheduling change.

Uncompiled steps (capture failure, ``dist_compile=False``) fall back to
eager compute with an explicit gradient pack and post-hoc bucket
notifications; ``comm_overlap=False`` restores the seed's single
monolithic ring after all workers finish.  All four {overlap, zero-copy}
configurations are bit-identical (``tests/distributed/test_comm_overlap``).

Bit-exactness contract
----------------------
A fault-free elastic run is **bit-identical** to the in-process simulation
(:func:`repro.distributed.worker.data_parallel_step`) with the same worker
count.  Three properties make that hold:

- *Gradients*: each worker's forward/backward is a pure function of
  (parameters, shard) — in training mode batch norm normalizes with batch
  statistics, never the running stats — so replica gradients match the
  simulation's sequential per-shard backward bit for bit (compiled replay
  is itself bit-exact vs eager), and the identical ring schedule reduces
  them to identical bits bucket by bucket.
- *BN running statistics*: the simulation updates the shared model's
  running stats once per shard, sequentially.  Each worker ships its batch
  statistics (via :func:`repro.tensor.ops.norm.set_bn_stats_sink` — fired
  by the eager kernel and the compiled BN thunk alike) to the coordinator,
  which replays the same in-place updates on its authoritative model in
  shard order.
- *Optimizer/regularizer state*: the coordinator owns the model, the
  optimizer, and the group-lasso state; workers are stateless gradient
  engines resynchronized from a parameter broadcast every step.

Reconfiguration resync
----------------------
``prune_and_reconfigure`` (and any checkpoint restore) bumps
``workspace.PLAN_GENERATION``.  The engine watches that counter: on the
next step it serializes the coordinator model with
:func:`repro.io.checkpoint.dumps_state` — exactly a format-v2 checkpoint —
and every worker replays it onto its replica with
:func:`repro.io.checkpoint.loads_state`, so a resync is bit-equivalent to
a checkpoint round-trip.  The restore bumps the *worker's* plan generation
too, purging its compiled plans; the worker then recomputes the payload
layout, rebinds the shared-memory gradient sinks at the new offsets, and
recaptures on the next step.  Structure replay is monotone (channels only
leave, paths only deactivate), so a replica at the previous configuration
is always a valid restore target, and both sides derive identical bucket
plans from identical model structure.

Fault model
-----------
Workers heartbeat into shared memory while idle and at step boundaries; a
worker whose process died, whose pipe closed, or whose heartbeat is stale
(or garbage) for longer than ``heartbeat_timeout`` is evicted.  A step is
**atomic**: if any participant fails mid-step — even after some of its
buckets were already reduced in place — the partial results are discarded,
the failed workers are evicted, and the whole step re-executes on the
survivors, whose next attempt fully overwrites every payload element
(zero-copy sinks are pure ``out=`` overwrites; the eager path packs the
whole payload), so a half-reduced segment can never leak into a result:
from the failure step onward the run is bit-identical to a clean run with
the surviving worker count.  Bucket notifications arrive over the same
FIFO pipe as results, after the segment is fully written — the coordinator
never reads a bucket a worker is still writing.  Training degrades
gracefully from K to K-1 ... down to 1; only the loss of every worker
aborts the run.  :class:`FaultPlan` scripts failures (kill / hang /
heartbeat corruption at a given step, or a kill wedged *between* bucket
launches mid-backward) deterministically, which makes every failure path
testable.
"""

from __future__ import annotations

import mmap
import multiprocessing as mp
import os
import sys
import time
import traceback
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..io.checkpoint import dumps_state, loads_state
from ..nn.layers import BatchNorm2d
from ..nn.module import Module
from ..profiler import PROFILER
from ..tensor import Tensor
from ..tensor import functional as F
from ..tensor import workspace as _ws
from ..tensor.compile import PlanCache, capture_training_step
from ..tensor.ops import norm as _norm_ops
from .allreduce import (COMM_STATS, GradBucket, module_param_groups,
                        plan_gradient_buckets, ring_allreduce,
                        ring_allreduce_range)


# -- fault injection ---------------------------------------------------------

@dataclass(frozen=True)
class FaultAction:
    """One scripted failure: fires on the first command whose global step
    index is >= ``step`` (a resync preceding step ``s`` carries index ``s``,
    so faults can target reconfiguration barriers too).  A
    ``kill_after_bucket`` action instead fires from *inside* the step, right
    after the worker announces bucket ``bucket`` — i.e. between bucket
    launches, with part of the payload exchanged and part still in flight."""

    kind: str            # "kill" | "hang" | "corrupt_heartbeat"
                         # | "kill_after_bucket"
    worker: int          # rank the fault applies to
    step: int            # global step index at/after which it fires
    duration: float = float("inf")   # hang only: seconds to stall
    bucket: int = -1     # kill_after_bucket only: bucket index to die after


class FaultPlan:
    """A reproducible failure script for an elastic run.

    Example::

        plan = (FaultPlan().kill(1, at_step=3)
                           .hang(0, at_step=7, seconds=60))
    """

    def __init__(self) -> None:
        self.actions: List[FaultAction] = []

    def kill(self, worker: int, at_step: int) -> "FaultPlan":
        """Terminate ``worker``'s process when it sees step ``at_step``."""
        self.actions.append(FaultAction("kill", worker, at_step))
        return self

    def hang(self, worker: int, at_step: int,
             seconds: float = float("inf")) -> "FaultPlan":
        """Stall ``worker`` for ``seconds`` when it sees step ``at_step``."""
        self.actions.append(FaultAction("hang", worker, at_step, seconds))
        return self

    def corrupt_heartbeat(self, worker: int, at_step: int) -> "FaultPlan":
        """Poison ``worker``'s heartbeat slot (NaN, never updated again)."""
        self.actions.append(FaultAction("corrupt_heartbeat", worker, at_step))
        return self

    def kill_after_bucket(self, worker: int, at_step: int,
                          bucket: int) -> "FaultPlan":
        """Terminate ``worker`` right after it announces ``bucket`` during
        step ``at_step`` (or the first later step that reaches it) — a death
        *between* bucket launches, mid-backward."""
        self.actions.append(
            FaultAction("kill_after_bucket", worker, at_step, bucket=bucket))
        return self

    def for_worker(self, rank: int) -> List[FaultAction]:
        return sorted((a for a in self.actions if a.worker == rank),
                      key=lambda a: a.step)


@dataclass(frozen=True)
class FailureEvent:
    """One detected worker failure (deterministic for scripted faults)."""

    rank: int
    step: int            # global step index being executed when detected
    reason: str          # "died" | "heartbeat" | "pipe"
    phase: str           # "step" | "resync"


@dataclass
class ElasticStepResult:
    """One elastic training step's outputs (mirrors ``StepResult`` plus
    elasticity telemetry)."""

    loss: float
    accuracy: float
    comm_bytes_per_worker: float
    stall_seconds: float = 0.0       # wall time lost waiting on stragglers
    active_workers: int = 0          # workers alive after this step
    failures: int = 0                # failures detected during this step
    buckets_overlapped: int = 0      # buckets reduced under worker compute


@dataclass
class _Handle:
    """Coordinator-side bookkeeping for one worker process."""

    rank: int
    proc: mp.process.BaseProcess
    conn: object                     # coordinator end of the duplex pipe
    grad_mm: Optional[mmap.mmap]
    grad_view: Optional[np.ndarray]  # float32 view over the full capacity
    alive: bool = True


@dataclass(frozen=True)
class _WorkerOpts:
    """Exchange configuration shipped to each worker at fork time."""

    overlap: bool
    zero_copy: bool
    compile_steps: bool
    bucket_bytes: int
    poll: float


# -- worker process ----------------------------------------------------------

def _worker_main(rank: int, conn, replica: Module, grad_mm, param_mm, hb_mm,
                 capacity: int, nworkers: int, faults: List[FaultAction],
                 opts: _WorkerOpts) -> None:
    """Worker loop: wait for commands, compute shard gradients, report.

    Runs in a forked child: ``replica`` is this process's private copy of
    the coordinator model at fork time; the three mmaps are shared pages.
    """
    hb = np.frombuffer(hb_mm, dtype=np.float64, count=nworkers)
    gview = np.frombuffer(grad_mm, dtype=np.float32, count=capacity)
    pview = np.frombuffer(param_mm, dtype=np.float32, count=capacity)
    pending_faults = [a for a in faults if a.kind != "kill_after_bucket"]
    bucket_faults = [a for a in faults if a.kind == "kill_after_bucket"]
    corrupt = False
    overlap = opts.overlap and nworkers > 1
    # The host's cores are already oversubscribed K ways by the worker
    # processes — a per-worker replay thread pool would only fight them.
    _ws.config.parallel_replay = False

    def beat() -> None:
        if not corrupt:
            hb[rank] = time.monotonic()

    # Ship per-shard BN batch statistics with each result: the sink keys a
    # training BN forward by the layer's running_mean array identity, which
    # this map resolves to the layer's dotted name (names match the
    # coordinator's — identical architecture, identical traversal).  The
    # compiled BN thunk fires the same sink at the same point in the step.
    bn_names: Dict[int, str] = {}
    stats_log: List[Tuple[str, np.ndarray, np.ndarray]] = []

    def rebuild_bn_map() -> None:
        bn_names.clear()
        for name, m in replica.named_modules():
            if isinstance(m, BatchNorm2d):
                bn_names[id(m.running_mean)] = name

    _norm_ops.set_bn_stats_sink(
        lambda rm, mu, var: stats_log.append((bn_names[id(rm)], mu, var)))
    rebuild_bn_map()

    # Flat payload layout + bucket plan, derived from the replica (identical
    # to the coordinator's — same structure, same traversal).  With zero-copy
    # on, each parameter's gradient sink is a view into the shared gradient
    # segment at its payload offset, so compiled backward writes gradients
    # straight into the allreduce memory.
    layout: Dict[str, object] = {}

    def refresh_layout() -> None:
        params = replica.parameters()
        sizes = [p.data.size for p in params]
        offsets = list(np.cumsum([0] + sizes[:-1]))
        layout["params"] = params
        layout["sizes"] = sizes
        layout["offsets"] = offsets
        layout["buckets"] = plan_gradient_buckets(
            sizes, offsets, module_param_groups(replica),
            opts.bucket_bytes) if nworkers > 1 else []
        if opts.zero_copy:
            _ws.bind_grad_sinks({
                id(p): gview[off:off + sz].reshape(p.data.shape)
                for p, off, sz in zip(params, offsets, sizes)})
        else:
            _ws.clear_grad_sinks()

    refresh_layout()

    plans = PlanCache(max_entries=4)
    cur = {"step": 0, "attempt": 0}

    def send_bucket(index: int) -> None:
        conn.send(("bucket", cur["step"], cur["attempt"], index))
        beat()
        if bucket_faults and bucket_faults[0].step <= cur["step"] \
                and bucket_faults[0].bucket == index:
            os._exit(17)

    def compiled_step(xb, yb):
        """Run the step through a compiled plan (capturing on first sight
        of this shard shape).  Returns ``(loss, logits, launched, bound)``
        where ``launched`` are bucket indices already announced from inside
        the replay and ``bound`` the leaf ids whose gradients are already
        in shared memory — or ``None`` if this shape is uncompilable."""
        key = (xb.shape, yb.shape)
        entry = plans.lookup(key)
        if isinstance(entry, str):     # known-uncompilable for this phase
            return None
        if entry is not None:
            plan, thunked = entry
            if plan.invalid_reason() is not None:
                plans.drop(key)
            else:
                loss, logits = plan.run(xb, yb)
                return float(loss), logits, thunked, \
                    frozenset(plan._sink_bound)
        plan, lt, lg, reason = capture_training_step(replica, xb, yb)
        if plan is None:
            plans.store(key, reason or "capture failed")
        lt.backward()
        if plan is not None:
            thunked: Set[int] = set()
            if overlap:
                for b in layout["buckets"]:
                    lids = [id(layout["params"][i]) for i in b.param_indices]
                    if plan.add_comm_thunk(
                            lids, lambda i=b.index: send_bucket(i)):
                        thunked.add(b.index)
            plans.store(key, (plan, thunked))
        # the capture's forward/loss WAS this step's eager computation —
        # gradients are in p.grad, nothing announced or in shared memory yet
        return lt.item(), lg.data, set(), frozenset()

    try:
        while True:
            while not conn.poll(opts.poll):
                beat()
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            beat()
            kind = msg[0]
            if kind == "stop":
                break
            step_idx = msg[1]
            # scripted faults fire on any step/resync command at/after their
            # step index
            while pending_faults and pending_faults[0].step <= step_idx:
                action = pending_faults.pop(0)
                if action.kind == "kill":
                    os._exit(17)
                elif action.kind == "hang":
                    time.sleep(min(action.duration, 3600.0))
                elif action.kind == "corrupt_heartbeat":
                    corrupt = True
                    hb[rank] = float("nan")

            if kind == "resync":
                loads_state(msg[2], replica)   # bumps the plan generation:
                rebuild_bn_map()               # stale plans purge on lookup
                refresh_layout()
                beat()
                conn.send(("resync_ack", step_idx))
            elif kind == "step":
                attempt, xb, yb = msg[2], msg[3], msg[4]
                cur["step"], cur["attempt"] = step_idx, attempt
                # pull the parameter broadcast into the replica (in place:
                # surgery preserved parameter objects, shapes match)
                off = 0
                for p in layout["params"]:
                    sz = p.data.size
                    p.data[...] = pview[off:off + sz].reshape(p.data.shape)
                    off += sz
                stats_log.clear()
                replica.train()
                replica.zero_grad()
                res = compiled_step(xb, yb) if opts.compile_steps else None
                if res is None:
                    logits_t = replica(Tensor(xb))
                    loss_t = F.cross_entropy(logits_t, yb)
                    loss_t.backward()
                    loss_val, logits = loss_t.item(), logits_t.data
                    launched, bound = set(), frozenset()
                else:
                    loss_val, logits, launched, bound = res
                # pack the gradients that did not land in shared memory via
                # a bound sink (all of them, on the eager/capture paths)
                for p, off, sz in zip(layout["params"], layout["offsets"],
                                      layout["sizes"]):
                    if id(p) not in bound:
                        if p.grad is not None:
                            gview[off:off + sz] = p.grad.reshape(-1)
                        else:
                            gview[off:off + sz] = 0.0
                if overlap:
                    for b in layout["buckets"]:
                        if b.index not in launched:
                            send_bucket(b.index)
                correct = int((logits.argmax(1) == yb).sum())
                beat()
                conn.send(("done", step_idx, attempt, loss_val,
                           int(len(yb)), correct, list(stats_log)))
    except Exception:  # pragma: no cover - worker bugs surface as eviction
        traceback.print_exc(file=sys.stderr)
        os._exit(1)
    finally:
        _norm_ops.set_bn_stats_sink(None)
        _ws.clear_grad_sinks()
        conn.close()


# -- coordinator -------------------------------------------------------------

class ElasticEngine:
    """Coordinator of the elastic multi-process data-parallel run.

    The caller (normally :class:`repro.train.Trainer` with ``workers > 1``)
    drives it one global batch at a time::

        engine = ElasticEngine(model, workers=4)
        result = engine.step(x, y)     # leaves averaged grads in p.grad
        optimizer.step()               # coordinator-side update
        ...
        engine.shutdown()

    The engine never steps the optimizer itself — gradients land in the
    coordinator parameters' ``.grad`` exactly as
    :func:`~repro.distributed.worker.data_parallel_step` leaves them, so
    regularizers and the optimizer run unchanged on the coordinator.

    ``comm_overlap``, ``bucket_bytes``, ``zero_copy``, and
    ``compile_steps`` default to the engine configuration
    (``workspace.config``: ``comm_overlap`` / ``comm_bucket_bytes`` /
    ``comm_zero_copy`` / ``dist_compile``, each with a ``REPRO_*``
    environment override); pass explicit values to pin a single engine.
    """

    def __init__(self, model: Module, workers: int,
                 heartbeat_timeout: float = 30.0,
                 fault_plan: Optional[FaultPlan] = None,
                 poll_interval: float = 0.002,
                 comm_overlap: Optional[bool] = None,
                 bucket_bytes: Optional[int] = None,
                 zero_copy: Optional[bool] = None,
                 compile_steps: Optional[bool] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "ElasticEngine needs the fork start method (POSIX); use "
                "TrainerConfig(dist_engine='sim') on this platform")
        cfg = _ws.config
        self.model = model
        self.workers = int(workers)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.fault_plan = fault_plan
        self.comm_overlap = bool(cfg.comm_overlap if comm_overlap is None
                                 else comm_overlap)
        self.bucket_bytes = int(cfg.comm_bucket_bytes if bucket_bytes is None
                                else bucket_bytes)
        self.zero_copy = bool(cfg.comm_zero_copy if zero_copy is None
                              else zero_copy)
        self.compile_steps = bool(cfg.dist_compile if compile_steps is None
                                  else compile_steps)
        if self.bucket_bytes <= 0:
            raise ValueError("bucket_bytes must be positive")
        self._poll = float(poll_interval)
        self._ctx = mp.get_context("fork")
        self._handles: List[_Handle] = []
        self._started = False
        self._step_idx = 0
        self._generation: Optional[int] = None
        self._param_mm: Optional[mmap.mmap] = None
        self._hb_mm: Optional[mmap.mmap] = None
        self._param_view: Optional[np.ndarray] = None
        self._hb: Optional[np.ndarray] = None
        self.failures: List[FailureEvent] = []
        self.total_stall_seconds = 0.0
        self.total_comm_bytes = 0.0

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "ElasticEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    @property
    def active_ranks(self) -> List[int]:
        return [h.rank for h in self._handles if h.alive]

    @property
    def active_workers(self) -> int:
        return len(self.active_ranks) if self._started else self.workers

    def start(self) -> None:
        """Fork the worker pool around the model's *current* state."""
        if self._started:
            return
        for p in self.model.parameters():
            if p.data.dtype != np.float32:
                raise TypeError(
                    f"elastic engine expects float32 parameters, got "
                    f"{p.data.dtype}")
        self._refresh_layout()
        # Pruning only shrinks the payload, so capacity fixed at the current
        # size is an upper bound for the whole run (mmaps cannot grow after
        # the fork — anonymous shared pages are inherited, not named).
        self._capacity = max(1, self._payload)
        nbytes = self._capacity * 4
        self._param_mm = mmap.mmap(-1, nbytes)
        self._param_view = np.frombuffer(self._param_mm, dtype=np.float32,
                                         count=self._capacity)
        self._hb_mm = mmap.mmap(-1, self.workers * 8)
        self._hb = np.frombuffer(self._hb_mm, dtype=np.float64,
                                 count=self.workers)
        self._hb[:] = time.monotonic()
        opts = _WorkerOpts(overlap=self.comm_overlap,
                           zero_copy=self.zero_copy,
                           compile_steps=self.compile_steps,
                           bucket_bytes=self.bucket_bytes,
                           poll=max(self._poll, 0.02))
        for rank in range(self.workers):
            grad_mm = mmap.mmap(-1, nbytes)
            coord_conn, work_conn = self._ctx.Pipe(duplex=True)
            faults = self.fault_plan.for_worker(rank) if self.fault_plan \
                else []
            proc = self._ctx.Process(
                target=_worker_main,
                args=(rank, work_conn, self.model, grad_mm, self._param_mm,
                      self._hb_mm, self._capacity, self.workers, faults,
                      opts),
                daemon=True, name=f"elastic-worker-{rank}")
            proc.start()
            work_conn.close()   # child keeps its copy; EOF works both ways
            self._handles.append(_Handle(
                rank, proc, coord_conn, grad_mm,
                np.frombuffer(grad_mm, dtype=np.float32,
                              count=self._capacity)))
        self._started = True
        self._generation = _ws.PLAN_GENERATION

    def shutdown(self) -> None:
        """Stop and reap all workers, releasing every shared-memory segment
        (idempotent — safe to call twice, or after evictions already closed
        some segments)."""
        for h in self._handles:
            if h.alive:
                try:
                    h.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for h in self._handles:
            h.proc.join(timeout=2.0)
            if h.proc.is_alive():  # pragma: no cover - stuck worker
                h.proc.terminate()
                h.proc.join(timeout=2.0)
            try:
                h.conn.close()
            except OSError:  # pragma: no cover
                pass
            h.alive = False
            self._close_grad_segment(h)
        self._handles = []
        self._started = False
        # Drop the numpy views before closing: a live view keeps the mmap's
        # buffer exported and close() would raise BufferError.  A view some
        # caller still holds leaves the pages alive until it dies — the
        # close is then retried-by-GC, never raised to the caller.
        self._param_view = None
        self._hb = None
        for attr in ("_param_mm", "_hb_mm"):
            mm = getattr(self, attr, None)
            if mm is not None:
                try:
                    mm.close()
                except (BufferError, OSError, ValueError):
                    pass
                setattr(self, attr, None)

    @staticmethod
    def _close_grad_segment(h: _Handle) -> None:
        """Release one worker's gradient segment (idempotent; tolerates a
        still-exported buffer from an in-flight attempt's view list)."""
        h.grad_view = None
        if h.grad_mm is not None:
            try:
                h.grad_mm.close()
            except (BufferError, OSError, ValueError):
                pass
            h.grad_mm = None

    # -- payload layout ----------------------------------------------------
    def _refresh_layout(self) -> None:
        """Recompute the flat parameter/gradient payload layout, the bucket
        plan, and the BN name map (valid until the next reconfiguration)."""
        self._params = self.model.parameters()
        self._sizes = [p.data.size for p in self._params]
        self._offsets = list(np.cumsum([0] + self._sizes[:-1]))
        self._payload = int(sum(self._sizes))
        self._buckets: List[GradBucket] = plan_gradient_buckets(
            self._sizes, self._offsets, module_param_groups(self.model),
            self.bucket_bytes) if self.workers > 1 else []
        self._bn = {name: m for name, m in self.model.named_modules()
                    if isinstance(m, BatchNorm2d)}

    # -- failure detection -------------------------------------------------
    def _evict(self, rank: int, reason: str, phase: str) -> None:
        h = self._handles[rank]
        if not h.alive:   # pragma: no cover - double eviction is a no-op
            return
        h.alive = False
        self.failures.append(FailureEvent(rank, self._step_idx, reason,
                                          phase))
        try:
            h.proc.terminate()
        except OSError:  # pragma: no cover
            pass
        try:
            h.conn.close()
        except OSError:  # pragma: no cover
            pass
        # The worker may have died mid-write; its segment is never read
        # again (the attempt is voided), so release it now.  A view pinned
        # by the in-flight attempt defers the close harmlessly.
        self._close_grad_segment(h)

    def _await(self, ranks: List[int], match, phase: str, on_other=None
               ) -> Tuple[Dict[int, tuple], List[int], float]:
        """Collect one matching message per rank, with failure detection.

        Returns ``(results, failed_ranks, stall_seconds)``.  Failure checks
        run *before* each rank's pipe is drained, so a worker with a
        corrupted heartbeat is evicted deterministically even if its result
        raced in.  Non-matching messages go to ``on_other(rank, msg,
        pending)`` when given (the overlap path's bucket notifications) and
        are dropped otherwise (stale attempts).  Between sweeps the
        coordinator blocks in :func:`multiprocessing.connection.wait`
        rather than sleep-polling.  ``stall`` is the wall time between the
        first completion and the end of the wait — idle coordinator/
        fast-worker time.
        """
        pending = set(ranks)
        results: Dict[int, tuple] = {}
        failed: List[int] = []
        t_first: Optional[float] = None
        while pending:
            now = time.monotonic()
            for rank in sorted(pending):
                h = self._handles[rank]
                age = now - self._hb[rank]
                if not h.proc.is_alive():
                    reason = "died"
                elif not (age <= self.heartbeat_timeout):   # stale or NaN
                    reason = "heartbeat"
                else:
                    reason = None
                if reason is not None:
                    self._evict(rank, reason, phase)
                    failed.append(rank)
                    pending.discard(rank)
                    continue
                try:
                    while h.conn.poll(0):
                        msg = h.conn.recv()
                        if match(msg):
                            results[rank] = msg
                            pending.discard(rank)
                            if t_first is None:
                                t_first = time.monotonic()
                            break
                        if on_other is not None:
                            on_other(rank, msg, len(pending))
                except (EOFError, OSError):
                    # EOF usually reaches the blocking wait before the dead
                    # process is reapable; classify by the process itself so
                    # a kill reads "died" (deterministically), and "pipe" is
                    # reserved for a closed pipe on a live worker
                    h.proc.join(timeout=0.2)
                    reason = "pipe" if h.proc.is_alive() else "died"
                    self._evict(rank, reason, phase)
                    failed.append(rank)
                    pending.discard(rank)
            if pending:
                conns = [self._handles[r].conn for r in pending]
                t0 = time.perf_counter()
                try:
                    mp_connection.wait(conns,
                                       timeout=max(self._poll, 0.05))
                except OSError:  # pragma: no cover - raced a close
                    pass
                COMM_STATS.wait_seconds += time.perf_counter() - t0
        stall = (time.monotonic() - t_first) if t_first is not None else 0.0
        return results, failed, stall

    # -- resync ------------------------------------------------------------
    def _resync(self) -> None:
        """Rebuild every replica from the coordinator's serialized state.

        Triggered by a ``workspace.PLAN_GENERATION`` bump — the same signal
        that retires compiled step plans fires whenever pruning surgery or
        a checkpoint restore changed the model under the engine.
        """
        self._refresh_layout()
        if self._payload > self._capacity:  # pragma: no cover - shrink-only
            raise RuntimeError("model payload grew beyond engine capacity")
        blob = dumps_state(self.model)
        ranks = self.active_ranks
        for rank in ranks:
            self._handles[rank].conn.send(("resync", self._step_idx, blob))
        want = self._step_idx
        _, failed, stall = self._await(
            ranks, lambda m: m[0] == "resync_ack" and m[1] == want, "resync")
        self.total_stall_seconds += stall
        if not self.active_ranks:
            raise RuntimeError("all elastic workers failed during resync")
        self._generation = _ws.PLAN_GENERATION

    # -- the step ----------------------------------------------------------
    def step(self, x: np.ndarray, y: np.ndarray) -> ElasticStepResult:
        """One synchronous data-parallel step over the global batch.

        Leaves the averaged gradients in the coordinator parameters'
        ``.grad``, applies every shard's BN running-stat updates to the
        coordinator model (in shard order), and returns the aggregated
        step result.  Retries with the survivors if participants fail.
        """
        n = len(x)
        if n == 0:
            raise ValueError("elastic step got an empty batch")
        if not self._started:
            self.start()
        if self._generation != _ws.PLAN_GENERATION:
            self._resync()
        failures_before = len(self.failures)
        stall_total = 0.0

        # parameter broadcast (valid for every retry of this step)
        pv = self._param_view
        for p, off, sz in zip(self._params, self._offsets, self._sizes):
            pv[off:off + sz] = p.data.reshape(-1)

        attempt = 0
        while True:
            active = self.active_ranks
            if not active:
                raise RuntimeError("all elastic workers failed")
            participants = active[:min(len(active), n)]
            k = len(participants)
            bounds = np.linspace(0, n, k + 1).astype(int)
            want = self._step_idx
            use_overlap = self.comm_overlap and k > 1
            views = [self._handles[rank].grad_view[:self._payload]
                     for rank in participants]
            # per-attempt overlap state: which ranks have announced each
            # bucket, which buckets are already reduced, reduce accounting
            posted: Dict[int, Set[int]] = {}
            reduced: Set[int] = set()
            # "moved" stays an integer total until the single final divide,
            # so the per-worker figure is bit-identical to the monolithic
            # trace's no matter how many buckets the payload was cut into
            acct = {"moved": 0, "reduce": 0.0, "overlapped": 0}
            bucket_of = {b.index: b for b in self._buckets}

            def on_msg(rank, msg, npending, _want=want, _att=attempt,
                       _views=views, _posted=posted, _reduced=reduced,
                       _acct=acct, _bucket_of=bucket_of, _k=k):
                if msg[0] != "bucket" or msg[1] != _want or msg[2] != _att:
                    return
                bi = msg[3]
                ranks_in = _posted.setdefault(bi, set())
                ranks_in.add(rank)
                COMM_STATS.bucket_launches += 1
                if len(ranks_in) == _k and bi not in _reduced:
                    # every participant has fully written this segment
                    # (FIFO pipe: the announcement follows the writes) —
                    # reduce it now, under the stragglers' compute
                    b = _bucket_of[bi]
                    t0 = time.perf_counter()
                    moved = ring_allreduce_range(
                        _views, self._payload, b.lo, b.hi, average=True)
                    dt = time.perf_counter() - t0
                    _reduced.add(bi)
                    _acct["moved"] += moved
                    _acct["reduce"] += dt
                    _acct["overlapped"] += 1
                    COMM_STATS.buckets_reduced += 1
                    COMM_STATS.bytes_moved += moved // _k
                    COMM_STATS.reduce_seconds += dt
                    COMM_STATS.overlapped_seconds += dt

            for i, rank in enumerate(participants):
                lo, hi = bounds[i], bounds[i + 1]
                self._handles[rank].conn.send(
                    ("step", want, attempt, x[lo:hi], y[lo:hi]))
            results, failed, stall = self._await(
                participants,
                lambda m: m[0] == "done" and m[1] == want
                and m[2] == attempt, "step",
                on_other=on_msg if use_overlap else None)
            stall_total += stall
            if not failed:
                break
            # a failed participant voids the attempt — including any
            # buckets already reduced in place: survivors re-execute the
            # whole step and fully overwrite their payloads, so the result
            # is exactly a clean smaller-K step
            attempt += 1

        # aggregate exactly as the in-process simulation does — including the
        # scalar *types*: the shard size stays np.int64 so the accumulated
        # loss is np.float64, matching the sim's promotion behavior in
        # downstream consumers (NEP 50 treats a Python float and a
        # same-valued np.float64 differently against float32 arrays)
        total_loss = 0.0
        total_correct = 0
        for i, rank in enumerate(participants):
            _, _, _, loss_w, _, correct_w, _ = results[rank]
            total_loss += loss_w * (bounds[i + 1] - bounds[i])
            total_correct += correct_w

        # finish the exchange across the workers' shared-memory buffers
        comm_bytes = 0.0
        if k > 1:
            t0 = time.perf_counter()
            if use_overlap:
                moved_total = acct["moved"]
                for b in self._buckets:    # serial tail: still-pending
                    if b.index in reduced:
                        continue
                    bt0 = time.perf_counter()
                    moved = ring_allreduce_range(
                        views, self._payload, b.lo, b.hi, average=True)
                    dt = time.perf_counter() - bt0
                    moved_total += moved
                    COMM_STATS.buckets_reduced += 1
                    COMM_STATS.bytes_moved += moved // k
                    COMM_STATS.reduce_seconds += dt
                    COMM_STATS.tail_seconds += dt
                comm_bytes = moved_total / k
                reduce_dt = acct["reduce"] + (time.perf_counter() - t0)
            else:
                trace = ring_allreduce(views, average=True)
                comm_bytes = trace.bytes_per_worker
                dt = time.perf_counter() - t0
                reduce_dt = dt
                COMM_STATS.monolithic_reduces += 1
                COMM_STATS.bytes_moved += int(comm_bytes)
                COMM_STATS.reduce_seconds += dt
                COMM_STATS.tail_seconds += dt
            if PROFILER.enabled:
                PROFILER.add("dist_allreduce", reduce_dt, int(comm_bytes))
        base = views[0]
        for p, off, sz in zip(self._params, self._offsets, self._sizes):
            p.grad = base[off:off + sz].reshape(p.data.shape).copy()

        # replay per-shard BN running-stat updates in shard order
        for rank in participants:
            for name, mu, var in results[rank][6]:
                bn = self._bn[name]
                m = bn.momentum
                bn.running_mean *= 1.0 - m
                bn.running_mean += m * mu
                bn.running_var *= 1.0 - m
                bn.running_var += m * var

        if PROFILER.enabled and stall_total:
            PROFILER.add("dist_stall", stall_total, 0)
        COMM_STATS.stall_seconds += stall_total
        self._step_idx += 1
        self.total_stall_seconds += stall_total
        self.total_comm_bytes += comm_bytes
        return ElasticStepResult(
            loss=total_loss / n, accuracy=total_correct / n,
            comm_bytes_per_worker=comm_bytes, stall_seconds=stall_total,
            active_workers=len(self.active_ranks),
            failures=len(self.failures) - failures_before,
            buckets_overlapped=acct["overlapped"])
