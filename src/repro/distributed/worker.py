"""Simulated data-parallel training step (paper Sec. 2.2 "Distributed Training").

K logical workers each process a shard of the global mini-batch through a
*shared* model replica (weights are identical across workers by construction,
exactly as in synchronous data parallelism), producing per-worker gradient
sets that are combined with the executable ring allreduce from
:mod:`repro.distributed.allreduce`.

Fidelity notes:
- Batch-norm uses *per-shard* statistics, like per-GPU BN in real distributed
  training (not synchronized BN) — so results differ slightly from
  single-device large-batch training, matching reality.
- Gradients are averaged across workers (each worker computes a mean loss
  over its shard), matching the standard "mean over global batch" update
  when shards are equal-sized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..nn.module import Module
from ..tensor import Tensor
from ..tensor import functional as F
from .allreduce import COMM_STATS, allreduce_gradient_lists


@dataclass
class StepResult:
    """One data-parallel training step's outputs."""

    loss: float
    accuracy: float
    comm_bytes_per_worker: float


def data_parallel_step(model: Module, x: np.ndarray, y: np.ndarray,
                       workers: int,
                       loss_hook=None) -> Tuple[StepResult, List[np.ndarray]]:
    """Forward/backward a global batch split over ``workers`` shards.

    Leaves the *averaged* gradients in each parameter's ``.grad`` (ready for
    ``optimizer.step()``).  ``loss_hook(loss_tensor) -> float`` may add
    regularization terms per worker (e.g. group lasso; applied as gradient
    addition afterwards is the trainers' job — the hook here is for logging).

    ``workers`` is clamped to ``len(x)``: with more workers than samples
    some shards would be empty, and a skipped shard must not silently
    change the gradient-average divisor (every participating worker's
    shard carries equal weight).  An empty batch is an error — there is
    nothing to compute a gradient from.

    Returns the step result and the per-worker shard sizes (of the
    participating workers only).
    """
    n = len(x)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if n == 0:
        raise ValueError("data_parallel_step got an empty batch "
                         "(len(x) == 0): no gradients to compute")
    workers = min(workers, n)
    params = model.parameters()
    shard_bounds = np.linspace(0, n, workers + 1).astype(int)

    per_worker_grads: List[List[np.ndarray]] = []
    total_loss = 0.0
    total_correct = 0
    for w in range(workers):
        lo, hi = shard_bounds[w], shard_bounds[w + 1]
        if hi <= lo:  # pragma: no cover - impossible after the clamp
            continue
        xb, yb = x[lo:hi], y[lo:hi]
        model.zero_grad()
        logits = model(Tensor(xb))
        loss = F.cross_entropy(logits, yb)
        loss.backward()
        total_loss += loss.item() * (hi - lo)
        total_correct += int((logits.data.argmax(1) == yb).sum())
        per_worker_grads.append(
            [p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
             for p in params])

    if len(per_worker_grads) > 1:
        comm_bytes = allreduce_gradient_lists(per_worker_grads, average=True)
        COMM_STATS.monolithic_reduces += 1
        COMM_STATS.bytes_moved += int(comm_bytes)
        reduced = per_worker_grads[0]
    else:
        comm_bytes = 0.0
        reduced = per_worker_grads[0]
    for p, g in zip(params, reduced):
        p.grad = g
    result = StepResult(total_loss / n, total_correct / n, comm_bytes)
    return result, list(np.diff(shard_bounds))
