"""Dynamic mini-batch adjustment (paper Sec. 4.3, Fig. 9, Tab. 4).

After each pruning reconfiguration the training-context volume shrinks;
this adjuster monitors the modeled per-iteration memory requirement and
grows the per-worker mini-batch (in units of ``granularity`` samples) to
refill device memory.  When the batch grows by ratio ``r``, the learning
rate is scaled by the same ``r`` (the linear scaling rule, after Smith et
al. [19] — but applied *at any point* during training, which is the paper's
delta over that work).  A square-root rule is provided for workloads with a
non-linear batch/LR relation (the paper's note about language models).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..costmodel.memory import MemoryModel, iteration_memory_bytes
from ..nn.graph import ModelGraph


@dataclass
class BatchAdjustment:
    """One adjustment decision."""

    old_batch: int
    new_batch: int
    lr_scale: float
    memory_bytes: float

    @property
    def changed(self) -> bool:
        return self.new_batch != self.old_batch


@dataclass
class DynamicBatchAdjuster:
    """Grows the mini-batch as pruning frees memory.

    Parameters
    ----------
    memory_model:
        Device capacity model.
    granularity:
        Batch step (the paper uses 32 samples/GPU).
    max_batch:
        Upper bound per worker (data-loader / generalization limits).
    lr_rule:
        ``"linear"`` (vision default) or ``"sqrt"`` (language-model rule).
    shrink:
        Allow decreasing the batch if memory is exceeded (not needed by
        PruneTrain — pruning only shrinks the model — but kept for safety).
    source:
        ``"analytical"`` (default) sizes from the cost-model estimate;
        ``"measured"`` prefers the memory planner's observed bytes/sample
        (``MemoryModel.observe``) when one is available.  Keep analytical
        for bit-exactness studies: a measured schedule depends on whether
        the planner ran, so planner on/off runs would diverge.
    """

    memory_model: MemoryModel
    granularity: int = 32
    max_batch: int = 1024
    lr_rule: str = "linear"
    shrink: bool = False
    source: str = "analytical"
    history: List[BatchAdjustment] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.source not in ("analytical", "measured"):
            raise ValueError(f"unknown source {self.source!r}")

    def propose(self, graph: ModelGraph, current_batch: int
                ) -> BatchAdjustment:
        """Decide the new per-worker batch after a reconfiguration."""
        fit = self.memory_model.max_batch(graph, self.granularity,
                                          ceiling=self.max_batch,
                                          measured=self.source == "measured")
        new_batch = max(fit, current_batch) if not self.shrink else fit
        new_batch = min(new_batch, self.max_batch)
        if self.lr_rule == "linear":
            scale = new_batch / current_batch
        elif self.lr_rule == "sqrt":
            scale = (new_batch / current_batch) ** 0.5
        else:
            raise ValueError(f"unknown lr_rule {self.lr_rule!r}")
        adj = BatchAdjustment(
            current_batch, new_batch, scale,
            iteration_memory_bytes(graph, new_batch))
        self.history.append(adj)
        return adj
