"""Simulated data-parallel training: executable ring allreduce, multi-worker
gradient steps, and PruneTrain's dynamic mini-batch adjustment."""

from .allreduce import (AllreduceTrace, allreduce_gradient_lists,
                        ring_allreduce)
from .minibatch import BatchAdjustment, DynamicBatchAdjuster
from .worker import StepResult, data_parallel_step

__all__ = [
    "ring_allreduce", "allreduce_gradient_lists", "AllreduceTrace",
    "data_parallel_step", "StepResult",
    "DynamicBatchAdjuster", "BatchAdjustment",
]
