"""Data-parallel training: executable ring allreduce (monolithic and
bucketed), the in-process multi-worker simulation, the elastic
multi-process engine with overlapped zero-copy gradient exchange and fault
injection, and PruneTrain's dynamic mini-batch adjustment."""

from .allreduce import (COMM_STATS, AllreduceTrace, CommStats, GradBucket,
                        allreduce_gradient_lists, module_param_groups,
                        plan_gradient_buckets, ring_allreduce,
                        ring_allreduce_range)
from .elastic import (ElasticEngine, ElasticStepResult, FailureEvent,
                      FaultAction, FaultPlan)
from .minibatch import BatchAdjustment, DynamicBatchAdjuster
from .worker import StepResult, data_parallel_step

__all__ = [
    "ring_allreduce", "ring_allreduce_range", "allreduce_gradient_lists",
    "AllreduceTrace", "CommStats", "COMM_STATS",
    "GradBucket", "plan_gradient_buckets", "module_param_groups",
    "data_parallel_step", "StepResult",
    "ElasticEngine", "ElasticStepResult",
    "FaultPlan", "FaultAction", "FailureEvent",
    "DynamicBatchAdjuster", "BatchAdjustment",
]
