"""Data-parallel training: executable ring allreduce, the in-process
multi-worker simulation, the elastic multi-process engine with fault
injection, and PruneTrain's dynamic mini-batch adjustment."""

from .allreduce import (AllreduceTrace, allreduce_gradient_lists,
                        ring_allreduce)
from .elastic import (ElasticEngine, ElasticStepResult, FailureEvent,
                      FaultAction, FaultPlan)
from .minibatch import BatchAdjustment, DynamicBatchAdjuster
from .worker import StepResult, data_parallel_step

__all__ = [
    "ring_allreduce", "allreduce_gradient_lists", "AllreduceTrace",
    "data_parallel_step", "StepResult",
    "ElasticEngine", "ElasticStepResult",
    "FaultPlan", "FaultAction", "FailureEvent",
    "DynamicBatchAdjuster", "BatchAdjustment",
]
