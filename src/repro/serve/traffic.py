"""Deterministic synthetic open-loop traffic for the serving benchmark.

Open loop means arrivals are scheduled ahead of time from a seeded
Poisson process (exponential inter-arrivals at the offered QPS) and do
*not* slow down when the server lags — latency is measured from each
request's **scheduled** arrival instant, so queueing delay under
overload is charged to the server, exactly as a real load generator
(wrk2-style "coordinated omission"-free accounting) would.
"""
from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .server import InferenceServer

__all__ = ["TrafficResult", "exponential_arrivals", "run_open_loop"]


@dataclass
class TrafficResult:
    offered_qps: float
    achieved_qps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    requests: int
    duration_s: float

    def to_dict(self) -> Dict[str, float]:
        return {"offered_qps": self.offered_qps,
                "achieved_qps": self.achieved_qps,
                "p50_ms": self.p50_ms,
                "p99_ms": self.p99_ms,
                "mean_ms": self.mean_ms,
                "max_ms": self.max_ms,
                "requests": self.requests,
                "duration_s": self.duration_s}


def exponential_arrivals(n: int, qps: float, seed: int = 0) -> np.ndarray:
    """``n`` scheduled arrival offsets (seconds from start) at rate ``qps``."""
    if qps <= 0.0:
        raise ValueError("qps must be positive")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / qps, size=n))


def run_open_loop(server: InferenceServer, model: str, samples: np.ndarray,
                  arrivals: np.ndarray, offered_qps: float,
                  timeout: Optional[float] = 60.0) -> TrafficResult:
    """Fire ``len(arrivals)`` single-image requests on schedule; collect
    per-request latency from scheduled arrival to response completion.

    ``samples`` is a pool ``(k, C, H, W)``; request ``i`` sends sample
    ``i % k``.  Blocks until every response lands.
    """
    n = len(arrivals)
    pool = samples.shape[0]
    t0 = time.perf_counter()
    futures = []
    for i in range(n):
        target = t0 + float(arrivals[i])
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        futures.append((target, server.submit(model, samples[i % pool])))
    lat = np.empty(n)
    t_last = t0
    for i, (target, fut) in enumerate(futures):
        fut.result(timeout)
        lat[i] = fut.t_done - target
        t_last = max(t_last, fut.t_done)
    duration = max(t_last - t0, 1e-9)
    lat_ms = lat * 1e3
    return TrafficResult(
        offered_qps=float(offered_qps),
        achieved_qps=float(n / duration),
        p50_ms=float(np.percentile(lat_ms, 50)),
        p99_ms=float(np.percentile(lat_ms, 99)),
        mean_ms=float(lat_ms.mean()),
        max_ms=float(lat_ms.max()),
        requests=n,
        duration_s=float(duration))
