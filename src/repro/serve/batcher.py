"""Dynamic request batcher — a pure, virtual-time dispatch state machine.

The batcher decides *when* a group of queued single-image requests becomes
a batch: immediately once ``max_batch`` requests for one model are queued,
or when the oldest queued request has waited ``latency_budget`` seconds.
It owns no clock and no threads — every method takes ``now`` explicitly —
so tests drive it deterministically in virtual time and the
:class:`~repro.serve.server.InferenceServer` drives it with
``time.perf_counter``.

Dispatch invariants (pinned by ``tests/serve/test_batcher_property.py``):

- every submitted request appears in exactly one dispatched batch;
- no batch exceeds ``max_batch`` and never mixes models;
- per-model FIFO order is preserved within and across batches;
- a request is dispatchable no later than ``arrival + latency_budget``
  (the wall-clock wait additionally includes at most one in-flight batch
  window, since the single worker drains one batch at a time).
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["BatcherConfig", "DynamicBatcher"]


@dataclass(frozen=True)
class BatcherConfig:
    #: hard cap on requests coalesced into one plan replay
    max_batch: int = 8
    #: seconds a lone request may wait for company before dispatch
    latency_budget: float = 0.005

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.latency_budget < 0.0:
            raise ValueError("latency_budget must be >= 0")


class DynamicBatcher:
    """Latency-budget queue coalescing requests per model.

    Items are opaque to the batcher; callers attach whatever state they
    need (the server enqueues request objects carrying futures).
    """

    def __init__(self, config: Optional[BatcherConfig] = None):
        self.config = config or BatcherConfig()
        #: model name -> FIFO of (arrival_time, item)
        self._queues: Dict[str, Deque[Tuple[float, object]]] = {}
        self.submitted = 0
        self.dispatched = 0
        self.batches = 0

    # -- producer side -----------------------------------------------------
    def submit(self, model: str, item: object, now: float) -> None:
        """Queue one request for ``model`` arriving at time ``now``."""
        self._queues.setdefault(model, deque()).append((now, item))
        self.submitted += 1

    # -- consumer side -----------------------------------------------------
    def pending(self) -> int:
        """Total requests queued across all models."""
        return sum(len(q) for q in self._queues.values())

    def next_deadline(self) -> Optional[float]:
        """Earliest time a currently-queued request must dispatch by, or
        ``None`` when nothing is queued.  A full queue's deadline is its
        head arrival time (it is already overdue)."""
        deadline = None
        budget = self.config.latency_budget
        for q in self._queues.values():
            if not q:
                continue
            head = q[0][0]
            due = head if len(q) >= self.config.max_batch else head + budget
            if deadline is None or due < deadline:
                deadline = due
        return deadline

    def take(self, now: float, flush: bool = False
             ) -> List[Tuple[str, List[object]]]:
        """Pop every batch that is due at time ``now``.

        Full batches dispatch unconditionally; a partial group dispatches
        once its oldest request has waited the latency budget (or always,
        with ``flush=True`` — the server's shutdown drain).  Returns
        ``[(model, [item, ...]), ...]`` in deterministic model-insertion /
        FIFO order; may be empty.
        """
        cfg = self.config
        batches: List[Tuple[str, List[object]]] = []
        for model, q in self._queues.items():
            while len(q) >= cfg.max_batch:
                batches.append(
                    (model, [q.popleft()[1] for _ in range(cfg.max_batch)]))
            if q and (flush or now >= q[0][0] + cfg.latency_budget):
                batches.append((model, [t[1] for t in q]))
                q.clear()
        for empty in [m for m, q in self._queues.items() if not q]:
            del self._queues[empty]
        self.batches += len(batches)
        self.dispatched += sum(len(items) for _, items in batches)
        return batches
