"""Inference serving tier: pruned checkpoints behind a dynamic batcher.

The product of PruneTrain is the compact pruned model; this package is
where it earns its keep.  ``ModelRegistry`` loads checkpoints through
``repro.io`` and keeps row-stable forward ``StepPlan``s hot per model;
``InferenceServer`` coalesces concurrent single-image requests through a
latency-budget ``DynamicBatcher``; ``traffic`` generates deterministic
open-loop load for the ``BENCH_serve.json`` benchmark.

Serving invariant (pinned by ``tests/serve/``): every response is
bit-identical to a batch-1 eager forward of that request alone, no matter
how requests were batched, padded, or tail-compiled.
"""

from .batcher import BatcherConfig, DynamicBatcher
from .registry import ModelRegistry, RegistryError, ServedModel
from .server import InferenceServer, ServeFuture
from .traffic import TrafficResult, exponential_arrivals, run_open_loop

__all__ = ["BatcherConfig", "DynamicBatcher",
           "ModelRegistry", "RegistryError", "ServedModel",
           "InferenceServer", "ServeFuture",
           "TrafficResult", "exponential_arrivals", "run_open_loop"]
