"""Threaded inference front-end: futures in, batched plan replays out.

:class:`InferenceServer` accepts single-image requests from any thread,
queues them in a :class:`~repro.serve.batcher.DynamicBatcher`, and runs
one worker thread that drains due batches through the
:class:`~repro.serve.registry.ModelRegistry`.  A single worker serializes
plan replays, which keeps the (mutable-buffer) StepPlans thread-safe
without per-replay locking; batching, not parallelism, is the
throughput lever here.

Responses are copies — a fulfilled future's array is never aliased to
plan buffers, so callers may hold results across subsequent replays.
"""
from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

import numpy as np

from .batcher import BatcherConfig, DynamicBatcher
from .registry import ModelRegistry

__all__ = ["ServeFuture", "InferenceServer"]


class ServeFuture:
    """Minimal completion handle for one submitted request."""

    __slots__ = ("_event", "_result", "_error", "t_submit", "t_done")

    def __init__(self, t_submit: float):
        self._event = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self.t_submit = t_submit
        self.t_done: Optional[float] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        if not self._event.wait(timeout):
            raise TimeoutError("request not completed within timeout")
        if self._error is not None:
            raise self._error
        return self._result

    # worker side
    def _fulfill(self, value: np.ndarray, now: float) -> None:
        self._result = value
        self.t_done = now
        self._event.set()

    def _fail(self, error: BaseException, now: float) -> None:
        self._error = error
        self.t_done = now
        self._event.set()


class _Request:
    __slots__ = ("sample", "future")

    def __init__(self, sample: np.ndarray, future: ServeFuture):
        self.sample = sample
        self.future = future


class InferenceServer:
    """Dynamic-batching server over a model registry.

    ``clock`` is injectable for tests; it must be monotonic.  ``close()``
    drains every queued request (flush dispatch) before the worker exits,
    so no submitted future is ever abandoned.
    """

    def __init__(self, registry: ModelRegistry, max_batch: int = 8,
                 latency_budget: float = 0.005, clock=time.perf_counter):
        self.registry = registry
        self.batcher = DynamicBatcher(
            BatcherConfig(max_batch=max_batch, latency_budget=latency_budget))
        self._clock = clock
        self._cond = threading.Condition()
        self._closed = False
        self.batches_run = 0
        self.requests_served = 0
        self.errors = 0
        self.batch_sizes: Dict[int, int] = {}
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-worker")
        self._worker.start()

    # -- client side -------------------------------------------------------
    def submit(self, model: str, sample: np.ndarray) -> ServeFuture:
        """Queue one sample (``(C, H, W)`` or ``(1, C, H, W)``); returns a
        future resolving to that sample's ``(classes,)`` logits row."""
        sample = np.asarray(sample)
        if sample.ndim >= 2 and sample.shape[0] == 1:
            sample = sample[0]
        now = self._clock()
        fut = ServeFuture(now)
        with self._cond:
            if self._closed:
                raise RuntimeError("server is closed")
            self.batcher.submit(model, _Request(sample, fut), now)
            self._cond.notify()
        return fut

    def infer(self, model: str, sample: np.ndarray,
              timeout: Optional[float] = None) -> np.ndarray:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(model, sample).result(timeout)

    def close(self) -> None:
        """Stop accepting requests, drain the queue, join the worker."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify()
        self._worker.join()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> Dict[str, object]:
        return {"batches_run": self.batches_run,
                "requests_served": self.requests_served,
                "errors": self.errors,
                "batch_sizes": dict(sorted(self.batch_sizes.items())),
                "submitted": self.batcher.submitted,
                "mean_batch": (self.requests_served / self.batches_run
                               if self.batches_run else 0.0)}

    # -- worker side -------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while True:
                    closing = self._closed
                    batches = self.batcher.take(self._clock(), flush=closing)
                    if batches:
                        break
                    if closing:
                        return
                    deadline = self.batcher.next_deadline()
                    if deadline is None:
                        self._cond.wait()
                    else:
                        # +0.1ms guard: Condition.wait may return a hair
                        # early; overshooting re-loops harmlessly.
                        self._cond.wait(
                            max(deadline - self._clock(), 0.0) + 1e-4)
            for model, requests in batches:
                self._execute(model, requests)

    def _execute(self, model: str, requests: List[_Request]) -> None:
        try:
            x = np.stack([r.sample for r in requests])
            out = self.registry.run(model, x)
            now = self._clock()
            for i, r in enumerate(requests):
                r.future._fulfill(np.array(out[i], copy=True), now)
        except BaseException as e:  # noqa: BLE001 - forwarded to futures
            now = self._clock()
            self.errors += 1
            for r in requests:
                r.future._fail(e, now)
            return
        self.batches_run += 1
        n = len(requests)
        self.requests_served += n
        self.batch_sizes[n] = self.batch_sizes.get(n, 0) + 1
