"""Multi-model serving registry: checkpoints in, hot forward plans out.

A :class:`ModelRegistry` owns every served model.  Each registered model
gets a :class:`ServedModel` wrapper holding its own *pinned* forward-plan
cache (``PlanCache(auto_purge=False)``) and one memplan arena per cached
plan shape — so loading model B (whose ``load_state_dict`` bumps the
global plan generation) can never purge model A's hot plans.  The
registry's contract in exchange: a served model is frozen after
registration; any weight change must go through re-registration, which
builds a fresh entry at a new entry generation and releases the old one.

Request path (:meth:`ServedModel.forward`), in preference order:

1. **exact** — a cached plan for this batch shape replays directly;
2. **padded** — the group is zero-padded (``BatchPadder``) up to the
   smallest cached batch ``B >= n`` within ``pad_max_ratio``, and the
   first ``n`` output rows are returned;
3. **tail capture** — a row-stable forward plan is compiled on demand for
   this exact shape and cached (pinned);
4. **eager rows** — if capture fails (sentinel cached), each sample runs
   an eager batch-1 forward.

Every path preserves the serving invariant: each request's logits are
bit-identical to a batch-1 eager forward of that request alone, because
serve plans use the row-stable Linear lowering (see
``Tape.finalize_forward``) and all remaining ops are per-sample stable.

Eviction is lease-counted: ``run`` holds a lease around the forward, and
an evicted entry's plan buffers and arenas are released by whichever of
``evict``/lease-drain runs last — deterministic (refcount, not GC), so
``memplan.live_arena_count()`` drops the moment the last in-flight batch
completes.
"""
from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

import numpy as np

from ..io.checkpoint import load_checkpoint
from ..tensor.compile import BatchPadder, PlanCache, StepPlan, capture_forward
from ..tensor.tensor import Tensor, no_grad

__all__ = ["RegistryError", "ServedModel", "ModelRegistry"]


class RegistryError(RuntimeError):
    """Registration or dispatch failure (unknown model, bad checkpoint)."""


class ServedModel:
    """One frozen model plus its pinned plan cache and batch padders."""

    def __init__(self, name: str, model, generation: int,
                 max_plans: int = 8, pad_max_ratio: float = 4.0):
        model.eval()
        self.name = name
        self.model = model
        #: registry entry generation — re-registration makes a new wrapper
        #: with a higher generation, so stale plans are structurally
        #: unreachable rather than runtime-checked
        self.generation = generation
        self.plans = PlanCache(max_entries=max_plans, auto_purge=False)
        self.pad_max_ratio = float(pad_max_ratio)
        self._padders: Dict[tuple, BatchPadder] = {}
        self._lock = threading.RLock()
        self.exact_replays = 0
        self.padded_replays = 0
        self.captures = 0
        self.capture_failures = 0
        self.eager_rows = 0
        self.padded_rows = 0

    # -- forward -----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Serve one request group ``x`` of shape ``(n, *sample)``.

        Returns an ``(n, classes)`` logits array owned by the caller.
        """
        if x.ndim < 2:
            raise ValueError("forward expects a batched input (n, *sample)")
        n = x.shape[0]
        sshape = tuple(x.shape[1:])
        dstr = x.dtype.str
        with self._lock:
            key = (n, sshape, dstr)
            cached = self.plans.lookup(key)
            if isinstance(cached, StepPlan):
                reason = cached.invalid_reason()
                if reason is None:
                    self.exact_replays += 1
                    return np.array(cached.run_forward(x), copy=True)
                self.plans.drop(key)
                cached.release_buffers()
                cached = None
            if isinstance(cached, str):
                # capture is known to fail for this shape; sealed sentinel
                return self._eager_rows(x)
            padded = self._forward_padded(x, n, sshape, dstr)
            if padded is not None:
                return padded
            return self._forward_capture(x, key)

    def _forward_padded(self, x: np.ndarray, n: int, sshape: tuple,
                        dstr: str) -> Optional[np.ndarray]:
        """Replay the smallest cached larger-batch plan over a padded view."""
        best: Optional[tuple] = None
        limit = max(n, 1) * self.pad_max_ratio
        for bkey in self.plans.keys():
            b, ss, ds = bkey
            if ss != sshape or ds != dstr or b < n or b > limit:
                continue
            if best is not None and b >= best[0]:
                continue
            plan = self.plans.lookup(bkey)
            if isinstance(plan, StepPlan) and plan.invalid_reason() is None:
                best = (b, plan)
        if best is None:
            return None
        b, plan = best
        pkey = (b, sshape, dstr)
        padder = self._padders.get(pkey)
        if padder is None:
            padder = self._padders[pkey] = BatchPadder(b, sshape, x.dtype)
        out = plan.run_forward(padder.stage(x))
        self.padded_replays += 1
        self.padded_rows += b - n
        return np.array(out[:n], copy=True)

    def _forward_capture(self, x: np.ndarray, key: tuple) -> np.ndarray:
        """Compile a tail-shape plan on demand (or seal the failure)."""
        plan, _, reason = capture_forward(self.model, x, row_stable=True)
        if plan is None:
            self.plans.store(key, reason or "capture failed")
            self.capture_failures += 1
            return self._eager_rows(x)
        plan.pin()
        plan.serve_generation = self.generation
        self.plans.store(key, plan)
        self.captures += 1
        # The capture pass's own logits use the standard batched lowering;
        # replay through the row-stable thunks for the serving contract.
        return np.array(plan.run_forward(x), copy=True)

    def _eager_rows(self, x: np.ndarray) -> np.ndarray:
        """Contract-preserving fallback: one eager batch-1 forward per row."""
        rows: List[np.ndarray] = []
        with no_grad():
            for i in range(x.shape[0]):
                rows.append(np.array(self.model(Tensor(x[i:i + 1])).data[0],
                                     copy=True))
        self.eager_rows += x.shape[0]
        return np.stack(rows)

    # -- lifecycle ---------------------------------------------------------
    def warm(self, batch: int, sample_shape: tuple,
             dtype=np.float32) -> bool:
        """Pre-compile the plan for one batch shape (zeros input); returns
        whether a plan is now cached for it."""
        x = np.zeros((batch,) + tuple(sample_shape), dtype=np.dtype(dtype))
        with self._lock:
            key = (batch, tuple(sample_shape), x.dtype.str)
            cached = self.plans.lookup(key)
            if isinstance(cached, StepPlan) and cached.invalid_reason() is None:
                return True
            self._forward_capture(x, key)
            return isinstance(self.plans.lookup(key), StepPlan)

    def release(self) -> None:
        """Free every cached plan's buffers and arenas (evict path)."""
        with self._lock:
            self.plans.clear(release=True)
            self._padders.clear()

    def stats(self) -> Dict[str, int]:
        return {"exact_replays": self.exact_replays,
                "padded_replays": self.padded_replays,
                "captures": self.captures,
                "capture_failures": self.capture_failures,
                "eager_rows": self.eager_rows,
                "padded_rows": self.padded_rows,
                "cached_plans": len(self.plans)}


class _Entry:
    __slots__ = ("name", "served", "path", "leases", "evicted")

    def __init__(self, name: str, served: ServedModel, path: Optional[str]):
        self.name = name
        self.served = served
        self.path = path
        self.leases = 0
        self.evicted = False


class ModelRegistry:
    """LRU-bounded set of served models keyed by name."""

    def __init__(self, max_models: int = 4, max_plans_per_model: int = 8,
                 pad_max_ratio: float = 4.0):
        if max_models < 1:
            raise ValueError("max_models must be >= 1")
        self.max_models = max_models
        self.max_plans_per_model = max_plans_per_model
        self.pad_max_ratio = pad_max_ratio
        #: insertion order == LRU order (dict preserves it; run() refreshes)
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.RLock()
        self._next_generation = 1
        self.evictions = 0

    # -- registration ------------------------------------------------------
    def register(self, name: str, path: str,
                 model_factory: Callable[[], object]) -> ServedModel:
        """Load a checkpoint and serve it as ``name``.

        The checkpoint is fully loaded *before* the registry mutates: a
        corrupt or truncated file raises :class:`RegistryError` and leaves
        the registry exactly as it was (no partial registration).
        """
        try:
            model, _, _ = load_checkpoint(path, model_factory,
                                          with_optimizer=False)
        except Exception as e:
            raise RegistryError(
                f"failed to load checkpoint {path!r} for model "
                f"{name!r}: {e}") from e
        return self._install(name, model, path=path)

    def register_model(self, name: str, model) -> ServedModel:
        """Serve an already-constructed model (bench/test convenience)."""
        return self._install(name, model, path=None)

    def _install(self, name: str, model, path: Optional[str]) -> ServedModel:
        with self._lock:
            if name in self._entries:
                self.evict(name)
            generation = self._next_generation
            self._next_generation += 1
            served = ServedModel(name, model, generation=generation,
                                 max_plans=self.max_plans_per_model,
                                 pad_max_ratio=self.pad_max_ratio)
            self._entries[name] = _Entry(name, served, path)
            while len(self._entries) > self.max_models:
                coldest = next(k for k in self._entries if k != name)
                self.evict(coldest)
                self.evictions += 1
            return served

    # -- dispatch ----------------------------------------------------------
    def run(self, name: str, x: np.ndarray) -> np.ndarray:
        """Forward one request group through model ``name``.

        Holds an eviction lease for the duration: evicting ``name`` while
        a batch is in flight defers the buffer release until this call
        returns, then frees deterministically.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise RegistryError(f"unknown model {name!r}")
            # refresh LRU position
            self._entries.pop(name)
            self._entries[name] = entry
            entry.leases += 1
        try:
            return entry.served.forward(x)
        finally:
            with self._lock:
                entry.leases -= 1
                if entry.evicted and entry.leases == 0:
                    entry.served.release()

    def served(self, name: str) -> ServedModel:
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise RegistryError(f"unknown model {name!r}")
            return entry.served

    def models(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    # -- eviction ----------------------------------------------------------
    def evict(self, name: str) -> None:
        """Remove ``name``; buffers free once in-flight batches drain."""
        with self._lock:
            entry = self._entries.pop(name, None)
            if entry is None:
                raise RegistryError(f"unknown model {name!r}")
            entry.evicted = True
            if entry.leases == 0:
                entry.served.release()

    def clear(self) -> None:
        with self._lock:
            for name in list(self._entries):
                self.evict(name)
