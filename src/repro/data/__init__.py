"""Synthetic datasets, loaders, and augmentation."""

from .augment import Augmenter
from .loader import DataLoader
from .synthetic import (Dataset, cifar10s, cifar100s, imagenet_s,
                        make_synthetic)

__all__ = ["Dataset", "DataLoader", "Augmenter", "make_synthetic",
           "cifar10s", "cifar100s", "imagenet_s"]
