"""Synthetic image-classification datasets (CIFAR/ImageNet stand-ins).

No network access is available in this environment, so the paper's datasets
are substituted with deterministic synthetic tasks that are *learnable by a
CNN* and exercise exactly the same training code paths:

Each class is defined by a smooth spatial prototype (low-frequency random
field) plus a class-specific oriented grating; samples are the prototype
corrupted by per-sample smooth deformation noise and white noise.  The task
difficulty is controlled by the noise scale and class count, giving
CIFAR10-like (easy, 10-class), CIFAR100-like (harder, 100-class) and
ImageNet-like (many-class, larger images) regimes.

Why this preserves the paper's behaviour: group-lasso sparsification
dynamics — which channels shrink, how early, whether they revive — depend on
the optimizer/regularizer math and on there being real structure to learn,
not on the photographic content of the images (see DESIGN.md substitution
table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np
from scipy.ndimage import gaussian_filter


@dataclass
class Dataset:
    """In-memory dataset: ``x`` is ``(N, C, H, W)`` float32, ``y`` ``(N,)`` int64."""

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x/y length mismatch")

    def __len__(self) -> int:
        return len(self.x)

    def subset(self, n: int) -> "Dataset":
        """First ``n`` samples (useful for fast smoke tests)."""
        return Dataset(self.x[:n], self.y[:n], self.num_classes, self.name)


def _class_prototypes(num_classes: int, channels: int, hw: int,
                      rng: np.random.Generator) -> np.ndarray:
    """Smooth random field + oriented grating per class, unit-ish scale."""
    protos = rng.normal(0.0, 1.0, size=(num_classes, channels, hw, hw))
    protos = gaussian_filter(protos, sigma=(0, 0, hw / 8.0, hw / 8.0))
    # normalize the smooth field
    protos /= protos.std(axis=(1, 2, 3), keepdims=True) + 1e-8
    yy, xx = np.mgrid[0:hw, 0:hw].astype(np.float64) / hw
    for k in range(num_classes):
        theta = np.pi * k / num_classes
        freq = 2.0 + 3.0 * ((k * 2654435761) % 97) / 97.0
        grating = np.sin(2 * np.pi * freq *
                         (np.cos(theta) * xx + np.sin(theta) * yy))
        protos[k] += 0.8 * grating[None]
    return protos.astype(np.float32)


def make_synthetic(num_classes: int, n_samples: int, hw: int = 32,
                   channels: int = 3, noise: float = 1.0, seed: int = 0,
                   name: str = "synthetic", class_seed: int = 7777) -> Dataset:
    """Generate a synthetic classification dataset.

    Parameters
    ----------
    noise:
        Per-sample corruption scale; larger means a harder task.
    class_seed:
        Seed of the class *prototypes*.  Deliberately separate from ``seed``
        (which draws the samples): train and validation splits must share
        prototypes or the task is unlearnable across splits.
    """
    proto_rng = np.random.default_rng(class_seed)
    protos = _class_prototypes(num_classes, channels, hw, proto_rng)
    rng = np.random.default_rng(seed)
    y = rng.integers(0, num_classes, size=n_samples).astype(np.int64)
    x = protos[y].copy()
    # smooth deformation noise (correlated corruption, like viewpoint/lighting)
    smooth = rng.normal(0.0, 1.0, size=x.shape)
    smooth = gaussian_filter(smooth, sigma=(0, 0, hw / 10.0, hw / 10.0))
    smooth /= smooth.std(axis=(1, 2, 3), keepdims=True) + 1e-8
    x += 0.6 * noise * smooth.astype(np.float32)
    # white noise
    x += (0.4 * noise) * rng.normal(0.0, 1.0, size=x.shape).astype(np.float32)
    # per-dataset standardization (the usual CIFAR preprocessing)
    x -= x.mean(axis=(0, 2, 3), keepdims=True)
    x /= x.std(axis=(0, 2, 3), keepdims=True) + 1e-8
    return Dataset(x.astype(np.float32), y, num_classes, name)


def cifar10s(n_train: int = 2000, n_val: int = 500, hw: int = 32,
             seed: int = 0) -> Tuple[Dataset, Dataset]:
    """CIFAR10-like synthetic task: 10 classes, 32x32, moderate noise."""
    train = make_synthetic(10, n_train, hw, noise=1.0, seed=seed,
                           name="cifar10s")
    val = make_synthetic(10, n_val, hw, noise=1.0, seed=seed + 1,
                         name="cifar10s-val")
    return train, val


def cifar100s(n_train: int = 2000, n_val: int = 500, hw: int = 32,
              seed: int = 0) -> Tuple[Dataset, Dataset]:
    """CIFAR100-like synthetic task: 100 classes, 32x32, harder."""
    train = make_synthetic(100, n_train, hw, noise=1.3, seed=seed,
                           name="cifar100s")
    val = make_synthetic(100, n_val, hw, noise=1.3, seed=seed + 1,
                         name="cifar100s-val")
    return train, val


def imagenet_s(n_train: int = 2000, n_val: int = 500, hw: int = 64,
               num_classes: int = 200, seed: int = 0
               ) -> Tuple[Dataset, Dataset]:
    """ImageNet-like synthetic task: many classes, larger images.

    Scaled to CPU budget; used with the ``imagenet_stem`` ResNet-50.
    """
    train = make_synthetic(num_classes, n_train, hw, noise=1.4, seed=seed,
                           name="imagenet-s")
    val = make_synthetic(num_classes, n_val, hw, noise=1.4, seed=seed + 1,
                         name="imagenet-s-val")
    return train, val
