"""Cheap vectorized data augmentation (flip + shift, the CIFAR standard)."""

from __future__ import annotations

import numpy as np


class Augmenter:
    """Random flip, random shift, and fresh-noise augmentation.

    Fully vectorized: the flip is a masked slice-reverse; the shift applies a
    single ``np.roll`` per sampled offset group.

    ``noise_std`` adds white noise resampled at every presentation.  For the
    synthetic tasks this is more than regularization: each presentation is a
    fresh draw from the task's true distribution (prototype + noise), so a
    small in-memory sample behaves like a much larger dataset and the model
    must learn the class structure rather than memorize pixels — mirroring
    what CIFAR-scale data does for the paper's runs.
    """

    def __init__(self, flip: bool = True, max_shift: int = 2,
                 noise_std: float = 0.0):
        self.flip = flip
        self.max_shift = max_shift
        self.noise_std = noise_std
        #: reusable noise buffers (float64 draw + batch-dtype cast), sized
        #: on first use and re-sized only when the batch shape/dtype changes
        self._noise64: np.ndarray | None = None
        self._noise_cast: np.ndarray | None = None

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        x = x.copy()
        n = x.shape[0]
        if self.flip:
            mask = rng.random(n) < 0.5
            x[mask] = x[mask, :, :, ::-1]
        if self.max_shift > 0:
            shifts = rng.integers(-self.max_shift, self.max_shift + 1,
                                  size=(n, 2))
            # group samples by identical shift so each group is one roll
            for (dy, dx) in np.unique(shifts, axis=0):
                if dy == 0 and dx == 0:
                    continue
                sel = (shifts[:, 0] == dy) & (shifts[:, 1] == dx)
                x[sel] = np.roll(x[sel], (int(dy), int(dx)), axis=(2, 3))
        if self.noise_std > 0:
            # Draw into reusable buffers instead of allocating a fresh
            # full-batch float64 array plus a cast copy every call.
            # ``std * standard_normal`` consumes the identical RNG stream
            # as ``normal(0, std)`` and produces bit-identical values, and
            # ``copyto(..., casting="unsafe")`` is exactly ``astype``, so
            # resume bit-exactness is unaffected.
            if self._noise64 is None or self._noise64.shape != x.shape:
                self._noise64 = np.empty(x.shape, np.float64)
            rng.standard_normal(out=self._noise64)
            self._noise64 *= self.noise_std
            if x.dtype == np.float64:
                x += self._noise64
            else:
                if (self._noise_cast is None
                        or self._noise_cast.shape != x.shape
                        or self._noise_cast.dtype != x.dtype):
                    self._noise_cast = np.empty(x.shape, x.dtype)
                np.copyto(self._noise_cast, self._noise64, casting="unsafe")
                x += self._noise_cast
        return x
