"""Mini-batch loader with deterministic shuffling and on-the-fly batch resize.

The loader's batch size is *mutable between epochs* — this is the hook
PruneTrain's dynamic mini-batch adjustment (Sec. 4.3) uses: after a pruning
reconfiguration frees training memory, ``set_batch_size`` grows the batch
(and the trainer rescales the learning rate by the same ratio).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .augment import Augmenter
from .synthetic import Dataset


class DataLoader:
    """Iterates ``(x, y)`` mini-batches over a :class:`Dataset`.

    Parameters
    ----------
    drop_last:
        Drop a trailing partial batch (keeps per-iteration cost uniform,
        matching the paper's fixed-iteration accounting).
    """

    def __init__(self, dataset: Dataset, batch_size: int,
                 shuffle: bool = True, seed: int = 0,
                 augment: Optional[Augmenter] = None,
                 drop_last: bool = False):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.augment = augment
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)
        self._epoch = 0

    def set_batch_size(self, batch_size: int) -> None:
        """Change the mini-batch size (takes effect next epoch iteration)."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = int(batch_size)

    # -- exact-resume state (checkpoint format v2) -------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the loader's mutable run state.

        Captures the batch size, the epoch counter, and the **full RNG
        stream state** (``bit_generator.state``).  The same generator drives
        both shuffling and the :class:`~repro.data.augment.Augmenter`, so
        restoring it makes a resumed run consume the identical
        shuffle/augmentation stream an uninterrupted run would have.
        """
        return {"batch_size": self.batch_size,
                "epoch": self._epoch,
                "rng_state": self._rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.set_batch_size(int(state["batch_size"]))
        self._epoch = int(state["epoch"])
        self._rng.bit_generator.state = state["rng_state"]

    def batches_per_epoch(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __len__(self) -> int:
        return self.batches_per_epoch()

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        idx = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(idx)
        self._epoch += 1
        stop = (n // self.batch_size) * self.batch_size if self.drop_last \
            else n
        for start in range(0, stop, self.batch_size):
            sel = idx[start:start + self.batch_size]
            xb = self.dataset.x[sel]
            yb = self.dataset.y[sel]
            if self.augment is not None:
                xb = self.augment(xb, self._rng)
            yield xb, yb
