"""Channel sparsity analysis: which channels are zeroed, which may be pruned.

The paper zeroes a channel group when all its weights fall below a small
threshold (1e-4).  Whether a zeroed channel may actually be *removed* is a
structural question answered over channel spaces (see
:mod:`repro.nn.graph`): a channel of a space is prunable iff every active
conv writing the space has sparsified the corresponding output channel and
every active conv reading it has sparsified the corresponding input channel.
For residual junction spaces this is exactly the paper's **channel union**;
for plain chains it is the adjacent-layer intersection rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..nn.graph import ConvNode, ModelGraph

#: The paper's pruning threshold on absolute weight values (Sec. 4.1).
DEFAULT_THRESHOLD = 1e-4


@dataclass
class ConvSparsity:
    """Boolean sparsity of one conv's channel groups (True = zeroed)."""

    in_sparse: np.ndarray   # (C,)
    out_sparse: np.ndarray  # (K,)


def conv_sparsity(node: ConvNode,
                  threshold: float = DEFAULT_THRESHOLD) -> ConvSparsity:
    """Max-|w| test per channel group of a single conv."""
    w = np.abs(node.conv.weight.data)
    in_sparse = w.max(axis=(0, 2, 3)) < threshold
    out_sparse = w.max(axis=(1, 2, 3)) < threshold
    return ConvSparsity(in_sparse, out_sparse)


def all_conv_sparsity(graph: ModelGraph, threshold: float = DEFAULT_THRESHOLD
                      ) -> Dict[str, ConvSparsity]:
    """Sparsity of every active conv, keyed by conv name."""
    return {n.name: conv_sparsity(n, threshold)
            for n in graph.active_convs()}


def space_keep_masks(graph: ModelGraph,
                     threshold: float = DEFAULT_THRESHOLD
                     ) -> Dict[int, np.ndarray]:
    """Per-space boolean keep masks under the channel-union rule.

    ``keep[c]`` is False only when *every* active writer's output channel c
    and *every* active reader's input channel c are below threshold.  Frozen
    spaces are always fully kept, and at least one channel is kept per space
    so the network stays connected.
    """
    masks: Dict[int, np.ndarray] = {}
    sparsity = all_conv_sparsity(graph, threshold)
    for sid, space in graph.spaces.items():
        if space.frozen:
            masks[sid] = np.ones(space.size, dtype=bool)
            continue
        prunable = np.ones(space.size, dtype=bool)
        touched = False
        for node in graph.writers(sid):
            prunable &= sparsity[node.name].out_sparse
            touched = True
        for node in graph.readers(sid):
            prunable &= sparsity[node.name].in_sparse
            touched = True
        # Linear readers (the FC after global pooling) do not veto pruning:
        # their columns for zeroed channels receive (near-)zero activations
        # and are sliced away together with the channel.
        if not touched:
            # orphaned space (all members removed with their paths)
            masks[sid] = np.ones(space.size, dtype=bool)
            continue
        keep = ~prunable
        if not keep.any():
            keep[0] = True  # connectivity guard
        masks[sid] = keep
    return masks


@dataclass
class DensityReport:
    """Per-layer density numbers backing the paper's Fig. 12."""

    layer_names: List[str] = field(default_factory=list)
    channel_density: List[float] = field(default_factory=list)
    weight_density: List[float] = field(default_factory=list)


def density_report(graph: ModelGraph,
                   threshold: float = DEFAULT_THRESHOLD) -> DensityReport:
    """Channel density (in-dense x out-dense fraction) and elementwise weight
    density of each active conv plus the FC layer(s)."""
    rep = DensityReport()
    for node in graph.active_convs():
        sp = conv_sparsity(node, threshold)
        c_dense = float((~sp.in_sparse).mean()) * float((~sp.out_sparse).mean())
        w = node.conv.weight.data
        w_dense = float((np.abs(w) >= threshold).mean())
        rep.layer_names.append(node.name)
        rep.channel_density.append(c_dense)
        rep.weight_density.append(w_dense)
    for lin in graph.linears:
        w = lin.linear.weight.data
        col_dense = float(
            (np.abs(w).max(axis=0) >= threshold).mean())
        rep.layer_names.append(lin.name)
        rep.channel_density.append(col_dense)
        rep.weight_density.append(float((np.abs(w) >= threshold).mean()))
    return rep


def model_channel_sparsity(graph: ModelGraph,
                           threshold: float = DEFAULT_THRESHOLD) -> float:
    """Fraction of all conv channel groups currently zeroed (monitoring)."""
    total = 0
    sparse = 0
    for node in graph.active_convs():
        sp = conv_sparsity(node, threshold)
        total += sp.in_sparse.size + sp.out_sparse.size
        sparse += int(sp.in_sparse.sum()) + int(sp.out_sparse.sum())
    return sparse / total if total else 0.0
