"""Dynamic network reconfiguration (paper Sec. 4.2).

At each reconfiguration interval PruneTrain physically removes prunable
channels and rebuilds every layer into a smaller *dense* form:

1. **Layer removal** — a residual path whose conv has every output (or every
   input) channel sparsified contributes nothing; the whole path is
   deactivated (paper Sec. 4.1 "Layer Removal by Overlapping Regularization
   Groups", counted in Tab. 3).
2. **Channel-union masks** — per channel space, keep the union of dense
   channels over all members (:func:`repro.prune.sparsity.space_keep_masks`).
3. **Surgery** — slice conv filters along both channel axes, slice the
   following BatchNorm's parameters *and running statistics*, slice the FC
   input columns, and slice the optimizer's momentum buffers identically, so
   "all training variables of the remaining channels are kept as is".

The parameter *objects* survive (only their ``.data`` changes), so the
optimizer's identity-keyed state stays attached without re-registration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..nn.graph import ConvNode, ModelGraph
from ..nn.module import Module, Parameter
from ..tensor import workspace
from .sparsity import (DEFAULT_THRESHOLD, all_conv_sparsity, conv_sparsity,
                       space_keep_masks)


@dataclass
class PruneReport:
    """What one reconfiguration did."""

    channels_before: int = 0
    channels_after: int = 0
    params_before: int = 0
    params_after: int = 0
    removed_paths: List[str] = field(default_factory=list)
    removed_layers: int = 0
    space_sizes: Dict[int, int] = field(default_factory=dict)

    @property
    def channels_pruned(self) -> int:
        return self.channels_before - self.channels_after

    def __str__(self) -> str:
        return (f"PruneReport(channels {self.channels_before}->"
                f"{self.channels_after}, params {self.params_before}->"
                f"{self.params_after}, removed_layers={self.removed_layers})")


def _slice_param(param: Parameter, optimizer, out_keep: Optional[np.ndarray],
                 in_keep: Optional[np.ndarray] = None) -> None:
    """Slice a parameter (and its momentum) along channel axes.

    ``out_keep`` indexes axis 0; ``in_keep`` (if given) indexes axis 1.
    """
    data = param.data
    if out_keep is not None:
        data = data[out_keep]
    if in_keep is not None:
        data = data[:, in_keep]
    param.data = np.ascontiguousarray(data)
    param.grad = None
    if optimizer is not None:
        buf = optimizer.state_for(param)
        if buf is not None:
            if out_keep is not None:
                buf = buf[out_keep]
            if in_keep is not None:
                buf = buf[:, in_keep]
            optimizer.set_state_for(param, np.ascontiguousarray(buf))


def _dead_convs(graph: ModelGraph, threshold: float) -> List[ConvNode]:
    """Active path convs that are entirely sparsified on either channel axis."""
    dead = []
    for node in graph.active_convs():
        if node.path is None:
            continue
        sp = conv_sparsity(node, threshold)
        if sp.out_sparse.all() or sp.in_sparse.all():
            dead.append(node)
    return dead


def remove_dead_paths(graph: ModelGraph,
                      threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Deactivate residual paths containing a fully-sparsified conv.

    Returns the names of removed paths.  The block's conv/bn module
    references are dropped so the parameters disappear from
    ``model.parameters()``.
    """
    removed = []
    for node in _dead_convs(graph, threshold):
        path = graph.paths[node.path]
        block = path.block
        if not getattr(block, "active", True):
            continue
        block.active = False
        # Drop module references so parameters leave the model.
        for attr in ("conv1", "bn1", "conv2", "bn2", "conv3", "bn3"):
            if hasattr(block, attr):
                setattr(block, attr, None)
        removed.append(path.name)
    return removed


def prune_and_reconfigure(model: Module, optimizer=None,
                          threshold: float = DEFAULT_THRESHOLD,
                          remove_layers: bool = True,
                          zero_sparse: bool = False,
                          on_masks=None) -> PruneReport:
    """Perform one full PruneTrain reconfiguration on ``model``.

    Parameters
    ----------
    model:
        Any model exposing a ``graph`` attribute (:class:`ModelGraph`).
    optimizer:
        Optional :class:`repro.optim.SGD`; its momentum buffers are sliced in
        lock-step and its parameter list refreshed.
    remove_layers:
        Enable residual-path (layer) removal.
    zero_sparse:
        Additionally hard-zero sparsified-but-kept channel groups (the
        union's redundant lanes).  Off by default so the revival dynamics
        studied in Fig. 4 stay untouched.

    Returns a :class:`PruneReport`.
    """
    graph: ModelGraph = model.graph
    report = PruneReport()
    report.params_before = model.num_parameters()
    report.channels_before = sum(
        s.size for s in graph.spaces.values() if not s.frozen)

    if remove_layers:
        report.removed_paths = remove_dead_paths(graph, threshold)
    report.removed_layers = graph.removed_layers()

    masks = space_keep_masks(graph, threshold)
    if on_masks is not None:
        # Hook for observers (e.g. ChannelTracker) that must see the final
        # keep masks before the slicing happens.
        on_masks(masks)

    apply_space_masks(model, masks, optimizer)

    if zero_sparse:
        zero_sparsified_groups(graph, threshold, optimizer)

    graph.validate()
    if optimizer is not None:
        # Refresh the parameter list *and* drop momentum/scratch state of
        # parameters that layer removal took out of the model (stale
        # id-keyed entries would leak and could be mis-attached to a new
        # parameter if the id is recycled).
        optimizer.sync_params(model.parameters())

    report.params_after = model.num_parameters()
    report.channels_after = sum(
        s.size for s in graph.spaces.values() if not s.frozen)
    report.space_sizes = {sid: s.size for sid, s in graph.spaces.items()}
    return report


def apply_space_masks(model: Module, masks: Dict[int, np.ndarray],
                      optimizer=None) -> None:
    """Slice every layer of ``model`` by per-space boolean keep masks.

    This is the raw surgery step shared by :func:`prune_and_reconfigure`
    (masks from sparsity analysis) and checkpoint loading (masks
    reconstructing a recorded architecture).  Conv weights are sliced on
    both channel axes, BatchNorm parameters and running statistics on the
    output axis, linear layers on their input columns, and the optimizer's
    momentum buffers identically.
    """
    graph: ModelGraph = model.graph
    for node in graph.active_convs():
        in_keep = masks[node.in_space]
        out_keep = masks[node.out_space]
        conv = node.conv
        _slice_param(conv.weight, optimizer, out_keep, in_keep)
        if conv.bias is not None:
            _slice_param(conv.bias, optimizer, out_keep)
        conv.in_channels = int(in_keep.sum())
        conv.out_channels = int(out_keep.sum())
        bn = node.bn
        if bn is not None:
            _slice_param(bn.weight, optimizer, out_keep)
            _slice_param(bn.bias, optimizer, out_keep)
            bn.running_mean = np.ascontiguousarray(bn.running_mean[out_keep])
            bn.running_var = np.ascontiguousarray(bn.running_var[out_keep])
            bn.num_features = int(out_keep.sum())

    for lin in graph.linears:
        in_keep = masks[lin.in_space]
        out_keep = masks[lin.out_space]
        _slice_param(lin.linear.weight, optimizer, out_keep, in_keep)
        if lin.linear.bias is not None:
            _slice_param(lin.linear.bias, optimizer, out_keep)
        lin.linear.in_features = int(in_keep.sum())
        lin.linear.out_features = int(out_keep.sum())

    for sid, keep in masks.items():
        graph.spaces[sid].size = int(keep.sum())

    # Channel surgery changed every activation shape in the model, so all
    # workspace buffers cached for the old shapes are dead weight: drop them
    # (the paper's "dense reconfiguration" moment — the pool re-populates at
    # the new, smaller shapes on the next iteration).  invalidate() also
    # bumps workspace.PLAN_GENERATION, which retires every compiled step
    # plan (repro.tensor.compile): the trainer recaptures on its next batch
    # against the reconfigured network.
    workspace.invalidate()


def zero_sparsified_groups(graph: ModelGraph,
                           threshold: float = DEFAULT_THRESHOLD,
                           optimizer=None) -> int:
    """Hard-zero every channel group still under threshold (and momentum).

    This is the paper's "zeroed out" step for channels that sparsified but
    were *not* structurally prunable (e.g. the union's redundant lanes).
    Per the paper, the "associated momentum and normalization parameters"
    are zeroed along with the weights: a batch-norm following a near-zero
    channel would otherwise *re-amplify* its residual signal (BN normalizes
    whatever variance is left), silently keeping a functionally-dead channel
    alive.  Returns the number of zeroed groups.
    """
    zeroed = 0
    for node in graph.active_convs():
        sp = conv_sparsity(node, threshold)
        w = node.conv.weight
        if sp.in_sparse.any():
            w.data[:, sp.in_sparse] = 0.0
            zeroed += int(sp.in_sparse.sum())
        if sp.out_sparse.any():
            w.data[sp.out_sparse] = 0.0
            zeroed += int(sp.out_sparse.sum())
            bn = node.bn
            if bn is not None:
                bn.weight.data[sp.out_sparse] = 0.0
                bn.bias.data[sp.out_sparse] = 0.0
                if optimizer is not None:
                    for p in (bn.weight, bn.bias):
                        buf = optimizer.state_for(p)
                        if buf is not None:
                            buf[sp.out_sparse] = 0.0
        if optimizer is not None and (sp.in_sparse.any() or
                                      sp.out_sparse.any()):
            buf = optimizer.state_for(w)
            if buf is not None:
                buf[:, sp.in_sparse] = 0.0
                buf[sp.out_sparse] = 0.0
    return zeroed
