"""PruneTrain's core mechanisms: group lasso, sparsity analysis, dynamic
reconfiguration, channel union/gating, and channel trajectory tracking."""

from .gating import (ConvPlan, GatedPathRunner, PathPlan, UnionPathRunner,
                     all_path_plans, path_plan)
from .group_lasso import GroupLasso, GroupNorms
from .reconfigure import (PruneReport, prune_and_reconfigure,
                          remove_dead_paths, zero_sparsified_groups)
from .sparsity import (DEFAULT_THRESHOLD, ConvSparsity, DensityReport,
                       all_conv_sparsity, conv_sparsity, density_report,
                       model_channel_sparsity, space_keep_masks)
from .tracker import ChannelTracker, DeadSetExporter, RevivalStats
from .union import JunctionInfo, junctions, union_redundancy

__all__ = [
    "GroupLasso", "GroupNorms",
    "DEFAULT_THRESHOLD", "ConvSparsity", "conv_sparsity", "all_conv_sparsity",
    "space_keep_masks", "density_report", "DensityReport",
    "model_channel_sparsity",
    "PruneReport", "prune_and_reconfigure", "remove_dead_paths",
    "zero_sparsified_groups",
    "PathPlan", "ConvPlan", "path_plan", "all_path_plans",
    "GatedPathRunner", "UnionPathRunner",
    "ChannelTracker", "DeadSetExporter", "RevivalStats",
    "JunctionInfo", "junctions", "union_redundancy",
]
