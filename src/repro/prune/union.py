"""Channel-union bookkeeping and redundancy accounting (Fig. 5c, Fig. 6).

The union rule itself is implemented once in
:func:`repro.prune.sparsity.space_keep_masks` (it is the natural pruning rule
over channel spaces).  This module provides the *analysis* side: which convs
share each residual junction, and how many FLOPs the union mode spends on
redundant (sparsified-but-kept) lanes relative to gating — the 1-6% the
paper reports in Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..nn.graph import ModelGraph
from .sparsity import DEFAULT_THRESHOLD, conv_sparsity


@dataclass
class JunctionInfo:
    """Members of one shared residual node (channel space)."""

    space_id: int
    name: str
    size: int
    writer_names: List[str]
    reader_names: List[str]

    @property
    def member_count(self) -> int:
        return len(self.writer_names) + len(self.reader_names)


def junctions(graph: ModelGraph) -> List[JunctionInfo]:
    """Channel spaces where multiple convs *write* (the residual sum nodes).

    The paper's channel-union rule (Fig. 5c) applies where several layers'
    outputs are summed into one residual node: those writers (and the node's
    readers) must keep "the union of all dense channels".  A space with a
    single writer — e.g. the stem's output fanning out to a bottleneck
    block's conv1 *and* its projection — is not a junction: no sum happens
    there, and pruning degenerates to the paper's adjacent-layer
    intersection rule, so requiring ``>= 2`` writers (rather than ``> 2``
    total members) is what separates true residual nodes from mere fan-out.
    """
    out = []
    for sid, space in graph.spaces.items():
        if space.frozen:
            continue
        writers = [c.name for c in graph.writers(sid)]
        if len(writers) < 2:
            continue
        readers = [c.name for c in graph.readers(sid)]
        out.append(JunctionInfo(sid, space.name, space.size,
                                writers, readers))
    return out


def union_redundancy(graph: ModelGraph,
                     threshold: float = DEFAULT_THRESHOLD
                     ) -> Dict[str, float]:
    """Per-conv fraction of channel lanes that are sparse but kept by union.

    These lanes are the "redundant operations" the paper accepts in exchange
    for index-free execution.  Computed on the *current* model (call after a
    union reconfiguration to see what gating would additionally remove).
    """
    out: Dict[str, float] = {}
    for node in graph.active_convs():
        sp = conv_sparsity(node, threshold)
        total = sp.in_sparse.size + sp.out_sparse.size
        sparse = int(sp.in_sparse.sum()) + int(sp.out_sparse.sum())
        out[node.name] = sparse / total if total else 0.0
    return out
