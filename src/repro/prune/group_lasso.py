"""Channel-structured group-lasso regularization (paper Sec. 4.1, Eq. 1-3).

The regularizer groups the weights of each *input channel* and each *output
channel* of every convolution (Eq. 2) and penalizes the group L2 norms with a
single **global** coefficient λ — the paper's deliberate choice over
per-group size-normalized penalties, because a global λ preferentially
sparsifies early layers (few channels, large feature maps) and therefore
prioritizes *computation* reduction over parameter-count reduction.

λ itself is set **once, at the first training iteration**, from the target
*lasso penalty ratio* (Eq. 3): the fraction of the total loss contributed by
the regularization term, evaluated with the freshly initialized weights and
the first forward pass's classification loss.  The paper finds a ratio of
20-25% robustly gives >50% pruning with <2% accuracy loss.

Exclusions (paper): the input channels of the first convolution (RGB input
must stay dense) and the output neurons of the final FC layer (the logits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.graph import ConvNode, ModelGraph

#: Numerical floor below which a group's subgradient is treated as zero.
_NORM_EPS = 1e-12


@dataclass
class GroupNorms:
    """Per-conv channel group norms (for logging and the loss value)."""

    in_norms: np.ndarray   # (C,)  L2 of each input-channel slice
    out_norms: np.ndarray  # (K,)  L2 of each output-channel slice


class GroupLasso:
    """Group-lasso regularizer over a model's :class:`ModelGraph`.

    Parameters
    ----------
    graph:
        Structural graph; regularization applies to all *active* convs.
    per_group_size_scaling:
        Ablation switch — scale each group's penalty by ``sqrt(group size)``
        as prior work [37, 38] recommends.  The paper argues against this
        (it de-prioritizes the computation-heavy early layers); default off.
    """

    def __init__(self, graph: ModelGraph,
                 per_group_size_scaling: bool = False):
        self.graph = graph
        self.per_group_size_scaling = per_group_size_scaling
        self.lam: Optional[float] = None
        #: first conv (reads a frozen space) — its input groups are excluded
        self._first_conv_names = {
            c.name for c in graph.convs if graph.spaces[c.in_space].frozen}

    # -- loss -------------------------------------------------------------
    def group_norms(self, node: ConvNode) -> GroupNorms:
        """Input- and output-channel group L2 norms of one conv."""
        w = node.conv.weight.data
        # in channel c: slice w[:, c, :, :]; out channel k: w[k, :, :, :]
        in_norms = np.sqrt(np.einsum("kcrs,kcrs->c", w, w))
        out_norms = np.sqrt(np.einsum("kcrs,kcrs->k", w, w))
        return GroupNorms(in_norms, out_norms)

    def raw_loss(self) -> float:
        """Σ over groups of (optionally scaled) group norms, *without* λ."""
        total = 0.0
        for node in self.graph.active_convs():
            norms = self.group_norms(node)
            w = node.conv.weight.data
            k, c = w.shape[0], w.shape[1]
            rs = w.shape[2] * w.shape[3]
            in_scale = np.sqrt(k * rs) if self.per_group_size_scaling else 1.0
            out_scale = np.sqrt(c * rs) if self.per_group_size_scaling else 1.0
            if node.name not in self._first_conv_names:
                total += in_scale * float(norms.in_norms.sum())
            total += out_scale * float(norms.out_norms.sum())
        return total

    def loss(self) -> float:
        """λ-weighted regularization loss (0 before :meth:`set_coefficient`)."""
        if self.lam is None:
            return 0.0
        return self.lam * self.raw_loss()

    # -- coefficient setup (Eq. 3) -----------------------------------------
    def set_coefficient(self, classification_loss: float,
                        penalty_ratio: float) -> float:
        """Solve Eq. 3 for λ given the target lasso penalty ratio.

        ``ratio = λR / (L + λR)``  =>  ``λ = ratio·L / ((1 - ratio)·R)``
        with ``L`` the first-iteration classification loss and ``R`` the raw
        regularizer value at initialization.  Returns λ.
        """
        if not 0.0 < penalty_ratio < 1.0:
            raise ValueError("penalty_ratio must be in (0, 1)")
        raw = self.raw_loss()
        if raw <= 0.0:
            raise ValueError("regularizer is identically zero; no groups?")
        # Canonicalize to a Python float: λ multiplies float32 gradient
        # arrays, where a same-valued np.float64 promotes differently
        # (NEP 50), and it round-trips through JSON checkpoint state — both
        # demand one canonical scalar type for bit-exact runs.
        self.lam = float(penalty_ratio * classification_loss / (
            (1.0 - penalty_ratio) * raw))
        return self.lam

    # -- gradient ------------------------------------------------------------
    def add_gradients(self) -> None:
        """Accumulate ``λ·∂(Σ‖W_g‖₂)/∂W`` into each conv weight's ``.grad``.

        Subgradient of the L2 norm: ``W_g / ‖W_g‖`` for nonzero groups, 0 at
        the origin (a valid and standard choice).  Fully vectorized: two
        broadcasts per conv.
        """
        if self.lam is None:
            raise RuntimeError("call set_coefficient() before add_gradients()")
        for node in self.graph.active_convs():
            w = node.conv.weight.data
            norms = self.group_norms(node)
            k, c = w.shape[0], w.shape[1]
            rs = w.shape[2] * w.shape[3]
            grad = np.zeros_like(w)
            if node.name not in self._first_conv_names:
                inv_in = np.where(norms.in_norms > _NORM_EPS,
                                  1.0 / np.maximum(norms.in_norms, _NORM_EPS),
                                  0.0)
                scale = np.sqrt(k * rs) if self.per_group_size_scaling else 1.0
                grad += scale * w * inv_in[None, :, None, None]
            inv_out = np.where(norms.out_norms > _NORM_EPS,
                               1.0 / np.maximum(norms.out_norms, _NORM_EPS),
                               0.0)
            scale = np.sqrt(c * rs) if self.per_group_size_scaling else 1.0
            grad += scale * w * inv_out[:, None, None, None]
            grad *= self.lam
            p = node.conv.weight
            if p.grad is None:
                p.grad = grad
            else:
                p.grad += grad

    # -- diagnostics -----------------------------------------------------------
    def penalty_ratio(self, classification_loss: float) -> float:
        """Current Eq.-3 ratio given a classification loss value."""
        reg = self.loss()
        denom = classification_loss + reg
        return reg / denom if denom > 0 else 0.0

    def per_layer_norm_summary(self) -> Dict[str, Tuple[float, float]]:
        """Mean in/out group norm per conv (for monitoring sparsification)."""
        out: Dict[str, Tuple[float, float]] = {}
        for node in self.graph.active_convs():
            norms = self.group_norms(node)
            out[node.name] = (float(norms.in_norms.mean()),
                              float(norms.out_norms.mean()))
        return out
