"""Channel weight-trajectory tracking (the Fig. 4 revival study).

Records, per tracked convolution and per epoch, the maximum absolute weight
of each *output channel*.  The paper plots these trajectories to show that
once group lasso drives a channel below the pruning threshold it essentially
never revives — the observation that justifies pruning early during training
instead of keeping sparsified channels around like SSL does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.graph import ModelGraph
from .sparsity import DEFAULT_THRESHOLD


@dataclass
class RevivalStats:
    """Summary of channel revival behaviour for one conv."""

    channels: int
    ever_sparse: int        # channels that dipped below threshold at least once
    revived: int            # of those, how many later exceeded revive_level
    max_post_sparse_value: float  # largest value any sparse channel reached later

    @property
    def revival_rate(self) -> float:
        return self.revived / self.ever_sparse if self.ever_sparse else 0.0


class ChannelTracker:
    """Tracks per-output-channel max|w| across epochs for selected convs.

    Channel *identity* is maintained across reconfigurations: surgery removes
    channels, so the tracker records values into the positions of the
    original channel indexing (pruned channels keep their last value, which
    is below threshold by construction — matching the white regions of the
    paper's heatmaps).
    """

    def __init__(self, graph: ModelGraph, conv_names: Sequence[str]):
        self.graph = graph
        self.conv_names = list(conv_names)
        #: conv name -> list of per-epoch (K0,) arrays in original indexing
        self.history: Dict[str, List[np.ndarray]] = {n: [] for n in conv_names}
        #: conv name -> current original-index positions of surviving channels
        self._alive_idx: Dict[str, np.ndarray] = {}
        self._orig_k: Dict[str, int] = {}
        for name in conv_names:
            node = graph.conv_by_name(name)
            k = node.conv.weight.data.shape[0]
            self._alive_idx[name] = np.arange(k)
            self._orig_k[name] = k

    def note_reconfigure(self, name: str, out_keep: np.ndarray) -> None:
        """Inform the tracker that ``out_keep`` (bool over current channels)
        survived a reconfiguration of conv ``name``."""
        self._alive_idx[name] = self._alive_idx[name][out_keep]

    def record(self) -> None:
        """Capture the current epoch's per-channel max|w| for every conv."""
        for name in self.conv_names:
            node = self.graph.conv_by_name(name)
            k0 = self._orig_k[name]
            row = np.zeros(k0, dtype=np.float64)
            if self.history[name]:
                row[:] = self.history[name][-1]  # carry pruned channels' last value
            active = self.graph._active(node)
            if active and node.conv is not None and \
                    getattr(node.conv, "weight", None) is not None:
                w = np.abs(node.conv.weight.data)
                if w.shape[0] == self._alive_idx[name].size:
                    row[self._alive_idx[name]] = w.max(axis=(1, 2, 3))
            self.history[name].append(row)

    def matrix(self, name: str) -> np.ndarray:
        """History as an ``(epochs, K0)`` array (the Fig. 4 heatmap)."""
        return np.stack(self.history[name]) if self.history[name] \
            else np.zeros((0, self._orig_k[name]))

    def revival_stats(self, name: str,
                      threshold: float = DEFAULT_THRESHOLD,
                      revive_factor: float = 10.0) -> RevivalStats:
        """Quantify revivals: sparse channels later exceeding
        ``revive_factor * threshold``."""
        m = self.matrix(name)
        if m.size == 0:
            return RevivalStats(0, 0, 0, 0.0)
        epochs, k = m.shape
        ever_sparse = 0
        revived = 0
        max_post = 0.0
        for ch in range(k):
            traj = m[:, ch]
            below = np.flatnonzero(traj < threshold)
            if below.size == 0:
                continue
            ever_sparse += 1
            after = traj[below[0]:]
            peak = float(after.max())
            max_post = max(max_post, peak)
            if peak > revive_factor * threshold:
                revived += 1
        return RevivalStats(k, ever_sparse, revived, max_post)
