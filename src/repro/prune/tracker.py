"""Channel weight-trajectory tracking (the Fig. 4 revival study).

Records, per tracked convolution and per epoch, the maximum absolute weight
of each *output channel*.  The paper plots these trajectories to show that
once group lasso drives a channel below the pruning threshold it essentially
never revives — the observation that justifies pruning early during training
instead of keeping sparsified channels around like SSL does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.graph import ModelGraph
from .sparsity import DEFAULT_THRESHOLD


@dataclass
class RevivalStats:
    """Summary of channel revival behaviour for one conv."""

    channels: int
    ever_sparse: int        # channels that dipped below threshold at least once
    revived: int            # of those, how many later exceeded revive_level
    max_post_sparse_value: float  # largest value any sparse channel reached later
    intervals: int = 0      # recorded epochs the stats were computed over

    @property
    def revival_rate(self) -> float:
        return self.revived / self.ever_sparse if self.ever_sparse else 0.0

    @property
    def revivals_per_interval(self) -> float:
        """Revivals normalized by recorded intervals (0.0 when none yet)."""
        if self.intervals <= 0:
            return 0.0
        return self.revived / self.intervals


class ChannelTracker:
    """Tracks per-output-channel max|w| across epochs for selected convs.

    Channel *identity* is maintained across reconfigurations: surgery removes
    channels, so the tracker records values into the positions of the
    original channel indexing (pruned channels keep their last value, which
    is below threshold by construction — matching the white regions of the
    paper's heatmaps).
    """

    def __init__(self, graph: ModelGraph, conv_names: Sequence[str]):
        self.graph = graph
        self.conv_names = list(conv_names)
        #: conv name -> list of per-epoch (K0,) arrays in original indexing
        self.history: Dict[str, List[np.ndarray]] = {n: [] for n in conv_names}
        #: conv name -> current original-index positions of surviving channels
        self._alive_idx: Dict[str, np.ndarray] = {}
        self._orig_k: Dict[str, int] = {}
        for name in conv_names:
            node = graph.conv_by_name(name)
            k = node.conv.weight.data.shape[0]
            self._alive_idx[name] = np.arange(k)
            self._orig_k[name] = k

    def note_reconfigure(self, name: str, out_keep: np.ndarray) -> None:
        """Inform the tracker that ``out_keep`` (bool over current channels)
        survived a reconfiguration of conv ``name``."""
        self._alive_idx[name] = self._alive_idx[name][out_keep]

    def record(self) -> None:
        """Capture the current epoch's per-channel max|w| for every conv."""
        for name in self.conv_names:
            node = self.graph.conv_by_name(name)
            k0 = self._orig_k[name]
            row = np.zeros(k0, dtype=np.float64)
            if self.history[name]:
                row[:] = self.history[name][-1]  # carry pruned channels' last value
            active = self.graph._active(node)
            if active and node.conv is not None and \
                    getattr(node.conv, "weight", None) is not None:
                w = np.abs(node.conv.weight.data)
                if w.shape[0] == self._alive_idx[name].size:
                    row[self._alive_idx[name]] = w.max(axis=(1, 2, 3))
            self.history[name].append(row)

    def matrix(self, name: str) -> np.ndarray:
        """History as an ``(epochs, K0)`` array (the Fig. 4 heatmap)."""
        return np.stack(self.history[name]) if self.history[name] \
            else np.zeros((0, self._orig_k[name]))

    def revival_stats(self, name: str,
                      threshold: float = DEFAULT_THRESHOLD,
                      revive_factor: float = 10.0) -> RevivalStats:
        """Quantify revivals: sparse channels later exceeding
        ``revive_factor * threshold``."""
        m = self.matrix(name)
        if m.size == 0:
            # No recorded intervals yet: an empty RevivalStats, never a
            # divide-by-zero (revivals_per_interval guards intervals == 0).
            return RevivalStats(0, 0, 0, 0.0, intervals=0)
        epochs, k = m.shape
        ever_sparse = 0
        revived = 0
        max_post = 0.0
        for ch in range(k):
            traj = m[:, ch]
            below = np.flatnonzero(traj < threshold)
            if below.size == 0:
                continue
            ever_sparse += 1
            after = traj[below[0]:]
            peak = float(after.max())
            max_post = max(max_post, peak)
            if peak > revive_factor * threshold:
                revived += 1
        return RevivalStats(k, ever_sparse, revived, max_post,
                            intervals=epochs)


class DeadSetExporter:
    """Stable dead-channel sets for the sparse compute paths, with hysteresis.

    The sparse engine (:mod:`repro.tensor.sparse`) skips GEMM columns for
    channels that are exactly zero, and respecializes compiled plans
    whenever the published dead set *changes*.  A channel oscillating
    across the lasso threshold would flip that set every scan and thrash
    plans — the paper's Fig. 4 shows revivals are rare, but the engine must
    not pay a plan rebuild for each one that does happen.

    :meth:`scan` therefore reports a channel as dead only when it is

    - **exactly zero now** (``zero_sparsified_groups`` hard-zeroed it — the
      soundness condition for bit-exact skipping), and
    - **below threshold in the last** ``hysteresis`` **consecutive scans**
      (the stability condition — a freshly-dipped channel waits one more
      scan before entering the set, and a revived one leaves immediately).

    Per-conv scan history is keyed by conv name and resets when surgery
    changes the channel count, so post-reconfiguration masks are never
    compared against stale indexing.
    """

    def __init__(self, hysteresis: int = 2):
        self.hysteresis = max(1, int(hysteresis))
        #: conv name -> most recent (in_below, out_below) mask pairs,
        #: oldest first, at most ``hysteresis`` entries
        self._hist: Dict[str, List[tuple]] = {}

    def scan(self, graph: ModelGraph,
             threshold: float = DEFAULT_THRESHOLD) -> List[tuple]:
        """One sparsity scan; returns ``[(node, stable_in, stable_out)]``.

        The returned masks are ready for :func:`repro.tensor.sparse.publish`
        as ``(node.conv.weight, stable_in, stable_out)`` entries.
        """
        from .sparsity import conv_sparsity

        out: List[tuple] = []
        for node in graph.active_convs():
            w = getattr(node.conv, "weight", None)
            if w is None or w.data.ndim != 4:
                continue
            sp = conv_sparsity(node, threshold)
            in_below = np.asarray(sp.in_sparse, dtype=bool).copy()
            out_below = np.asarray(sp.out_sparse, dtype=bool).copy()
            hist = self._hist.get(node.name, [])
            if hist and (hist[-1][0].size != in_below.size
                         or hist[-1][1].size != out_below.size):
                hist = []          # surgery changed shapes: restart history
            hist = hist[-(self.hysteresis - 1):] if self.hysteresis > 1 \
                else []
            hist.append((in_below, out_below))
            self._hist[node.name] = hist
            stable_in, stable_out = self._stable_masks(w, hist)
            out.append((node, stable_in, stable_out))
        return out

    def current(self, graph: ModelGraph) -> List[tuple]:
        """Stable masks from the *stored* history, without a new scan.

        Used on checkpoint resume: the restored history already contains
        the pre-kill scans, so re-scanning would double-count the last
        epoch and desynchronize from the uninterrupted run.  Convs whose
        stored masks no longer match the weight shapes (surgery between
        checkpoints) report all-False.
        """
        out: List[tuple] = []
        for node in graph.active_convs():
            w = getattr(node.conv, "weight", None)
            if w is None or w.data.ndim != 4:
                continue
            k, c = w.data.shape[:2]
            hist = self._hist.get(node.name, [])
            if hist and (hist[-1][0].size != c or hist[-1][1].size != k):
                hist = []
            if not hist:
                out.append((node, np.zeros(c, dtype=bool),
                            np.zeros(k, dtype=bool)))
                continue
            stable_in, stable_out = self._stable_masks(w, hist)
            out.append((node, stable_in, stable_out))
        return out

    def _stable_masks(self, w, hist: List[tuple]) -> tuple:
        """AND the history window, then clear any not-exactly-zero channel."""
        in_below, out_below = hist[-1]
        if len(hist) < self.hysteresis:
            return (np.zeros_like(in_below), np.zeros_like(out_below))
        stable_in = in_below.copy()
        stable_out = out_below.copy()
        for ib, ob in hist[:-1]:
            stable_in &= ib
            stable_out &= ob
        # Soundness: only channels that are *exactly* zero right now may
        # be skipped bit-exactly.
        wd = w.data
        for ch in np.flatnonzero(stable_out):
            if wd[ch].any():
                stable_out[ch] = False
        for ch in np.flatnonzero(stable_in):
            if wd[:, ch].any():
                stable_in[ch] = False
        return stable_in, stable_out

    def reset(self) -> None:
        self._hist.clear()
