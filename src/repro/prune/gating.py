"""Channel gating — the indexing-based alternative to channel union (Fig. 5b).

Channel gating inserts *select* (gather) and *scatter* layers at the
boundaries of each residual path so that the convolutions inside the path
only process their own dense channels.  Compared to channel union it saves
the union's redundant FLOPs but pays for tensor reshaping: the gather and
scatter are real memory copies.  The paper measures (Fig. 7) that this
reshaping makes gating *slower* than union on real hardware despite fewer
FLOPs — the observation motivating channel union.

This module provides an executable gating runner (so the overhead can be
measured on our engine for the Fig. 7 reproduction) and the per-path channel
plans the FLOPs analytics use (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..nn.graph import ModelGraph, ResidualPath
from ..tensor import Tensor
from ..tensor import functional as F
from .sparsity import DEFAULT_THRESHOLD, conv_sparsity


@dataclass
class ConvPlan:
    """Gating-mode channel selection for one conv inside a residual path."""

    name: str
    in_idx: np.ndarray    # indices into the conv's *current* input dim
    out_idx: np.ndarray   # indices into the conv's *current* output dim


@dataclass
class PathPlan:
    """Gating plan for one residual path.

    ``gather_idx``/``scatter_idx`` index the junction space: the select layer
    gathers ``gather_idx`` from the block input; the scatter layer writes the
    path output into ``scatter_idx`` of a zero junction-sized tensor.
    """

    path_name: str
    convs: List[ConvPlan]
    gather_idx: np.ndarray
    scatter_idx: np.ndarray
    junction_in: int
    junction_out: int


def _dense_idx(mask_sparse: np.ndarray) -> np.ndarray:
    idx = np.flatnonzero(~mask_sparse)
    if idx.size == 0:
        idx = np.array([0])  # connectivity guard, mirrors union behaviour
    return idx


def path_plan(graph: ModelGraph, path: ResidualPath,
              threshold: float = DEFAULT_THRESHOLD) -> PathPlan:
    """Compute the gating channel plan of one residual path.

    Within the path, adjacent convs share the *intersection* of their dense
    channels; at the path boundary the select/scatter layers translate
    between the junction space and the path's private dense indexing.
    """
    nodes = [graph.conv_by_name(n) for n in path.conv_names]
    sps = [conv_sparsity(n, threshold) for n in nodes]
    # interior space i (between conv i and conv i+1): dense where either side
    # still uses the channel
    interior: List[np.ndarray] = []
    for i in range(len(nodes) - 1):
        interior.append(_dense_idx(sps[i].out_sparse | sps[i + 1].in_sparse))
    gather_idx = _dense_idx(sps[0].in_sparse)
    scatter_idx = _dense_idx(sps[-1].out_sparse)
    plans: List[ConvPlan] = []
    for i, node in enumerate(nodes):
        in_idx = gather_idx if i == 0 else interior[i - 1]
        out_idx = scatter_idx if i == len(nodes) - 1 else interior[i]
        plans.append(ConvPlan(node.name, in_idx, out_idx))
    return PathPlan(path.name, plans,
                    gather_idx, scatter_idx,
                    junction_in=graph.spaces[nodes[0].in_space].size,
                    junction_out=graph.spaces[nodes[-1].out_space].size)


def all_path_plans(graph: ModelGraph,
                   threshold: float = DEFAULT_THRESHOLD
                   ) -> Dict[int, PathPlan]:
    """Gating plans for every active residual path."""
    return {pid: path_plan(graph, p, threshold)
            for pid, p in graph.paths.items()
            if getattr(p.block, "active", True)}


class GatedPathRunner:
    """Execute one residual path in gating mode (select -> convs -> scatter).

    Weight slices are materialized once at construction; the per-call cost is
    the gather copy, the (smaller) convolutions, and the scatter copy — the
    exact cost structure the paper times in Fig. 7.
    """

    def __init__(self, graph: ModelGraph, path: ResidualPath,
                 threshold: float = DEFAULT_THRESHOLD):
        self.plan = path_plan(graph, path, threshold)
        self.block = path.block
        self._convs = []
        nodes = [graph.conv_by_name(n) for n in path.conv_names]
        for node, cp in zip(nodes, self.plan.convs):
            w = np.ascontiguousarray(
                node.conv.weight.data[np.ix_(cp.out_idx, cp.in_idx)])
            bn = node.bn
            self._convs.append({
                "weight": Tensor(w),
                "stride": node.conv.stride,
                "padding": node.conv.padding,
                "gamma": Tensor(bn.weight.data[cp.out_idx].copy()),
                "beta": Tensor(bn.bias.data[cp.out_idx].copy()),
                "mean": bn.running_mean[cp.out_idx].copy(),
                "var": bn.running_var[cp.out_idx].copy(),
                "eps": bn.eps,
                "last": cp is self.plan.convs[-1],
            })

    def forward(self, x: Tensor) -> Tensor:
        """Path output scattered back to junction dimensionality (pre-add)."""
        out = F.gather_channels(x, self.plan.gather_idx)  # the select layer
        for spec in self._convs:
            out = F.conv2d(out, spec["weight"], None, spec["stride"],
                           spec["padding"])
            out = F.batch_norm(out, spec["gamma"], spec["beta"], spec["mean"],
                               spec["var"], training=False, eps=spec["eps"])
            if not spec["last"]:
                out = F.relu(out)
        return F.scatter_channels(out, self.plan.scatter_idx,
                                  self.plan.junction_out)


class UnionPathRunner:
    """Execute the same residual path in union mode (no indexing).

    The convs run at full junction/interior dimensionality — including any
    redundant sparse lanes — exactly what the paper's channel union does.
    """

    def __init__(self, graph: ModelGraph, path: ResidualPath):
        self.block = path.block
        nodes = [graph.conv_by_name(n) for n in path.conv_names]
        self._convs = []
        for node in nodes:
            bn = node.bn
            self._convs.append({
                "weight": Tensor(node.conv.weight.data.copy()),
                "stride": node.conv.stride,
                "padding": node.conv.padding,
                "gamma": Tensor(bn.weight.data.copy()),
                "beta": Tensor(bn.bias.data.copy()),
                "mean": bn.running_mean.copy(),
                "var": bn.running_var.copy(),
                "eps": bn.eps,
                "last": node is nodes[-1],
            })

    def forward(self, x: Tensor) -> Tensor:
        out = x
        for spec in self._convs:
            out = F.conv2d(out, spec["weight"], None, spec["stride"],
                           spec["padding"])
            out = F.batch_norm(out, spec["gamma"], spec["beta"], spec["mean"],
                               spec["var"], training=False, eps=spec["eps"])
            if not spec["last"]:
                out = F.relu(out)
        return out
