"""repro — a full reproduction of PruneTrain (Lym et al., SC'19).

PruneTrain accelerates CNN training from scratch by continuously sparsifying
channels with group-lasso regularization and periodically *reconfiguring* the
network into a smaller dense model, cutting computation, memory traffic, and
inter-accelerator communication while training.

Packages
--------
- ``repro.tensor``      from-scratch NumPy autograd engine
- ``repro.nn``          layers, module system, model zoo (ResNet/VGG)
- ``repro.data``        synthetic datasets, loader, augmentation
- ``repro.optim``       SGD + momentum, LR schedules
- ``repro.prune``       the paper's contribution: group lasso, sparsity
                        analysis, reconfiguration, channel union/gating
- ``repro.costmodel``   FLOPs / memory / communication / time models
- ``repro.distributed`` simulated data-parallel training, dynamic mini-batch
- ``repro.train``       trainers: dense, PruneTrain, SSL, one-time, AMC-like
- ``repro.experiments`` per-figure/table experiment runners
"""

__version__ = "1.0.0"
