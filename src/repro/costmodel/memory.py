"""Training-memory and BN-traffic models (paper Sec. 2.2, 4.3, Fig. 9).

Two distinct quantities:

1. **Training context volume** — the off-chip bytes one training iteration
   must hold: every layer input kept for back-propagation (which scales
   linearly with the mini-batch), plus weights, gradients, and optimizer
   state.  PruneTrain's dynamic mini-batch adjustment monitors this after
   each reconfiguration and grows the batch to refill device capacity.
2. **BN memory traffic** — bytes moved by the bandwidth-bound batch-norm
   layers per iteration (mean pass + variance pass + normalize read + write).
   This is the paper's "BN cost" axis in Fig. 8 and the 37% traffic saving
   quoted for ResNet50/ImageNet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..nn.graph import ModelGraph

BYTES_PER_ELEMENT = 4  # fp32

#: Effective passes over the BN input per forward+backward iteration:
#: forward reads it thrice (mean, variance, normalize) and writes once;
#: backward reads x-hat and dy and writes dx.  7 feature-map-sized streams.
BN_TRAIN_PASSES = 7
#: Inference: read (normalize with running stats) + write.
BN_INFER_PASSES = 2


def activation_bytes_per_sample(graph: ModelGraph) -> float:
    """Bytes of stored layer inputs per training sample.

    Counts, for each conv: its input feature map (reused by the weight-
    gradient GEMM) and its output (the BN input, which BN's backward needs);
    the ReLU mask is folded into the BN output term (1 extra byte/elem would
    be noise).  This is the paper's "total size of all layer inputs".
    """
    total = 0.0
    for node in graph.active_convs():
        k, c = node.conv.weight.data.shape[:2]
        in_hw = node.out_hw * node.conv.stride
        total += c * in_hw * in_hw * BYTES_PER_ELEMENT        # conv input
        total += 2.0 * k * node.out_hw * node.out_hw * BYTES_PER_ELEMENT  # BN in + ReLU in
    for lin in graph.linears:
        total += lin.linear.in_features * BYTES_PER_ELEMENT
    return total


def model_state_bytes(graph: ModelGraph) -> float:
    """Weights + gradients + momentum bytes (3x parameter footprint)."""
    params = 0
    for node in graph.active_convs():
        params += node.conv.weight.data.size
        if node.conv.bias is not None:
            params += node.conv.bias.data.size
        if node.bn is not None:
            params += node.bn.weight.data.size + node.bn.bias.data.size
    for lin in graph.linears:
        params += lin.linear.weight.data.size
        if lin.linear.bias is not None:
            params += lin.linear.bias.data.size
    return 3.0 * params * BYTES_PER_ELEMENT


def iteration_memory_bytes(graph: ModelGraph, batch_size: int) -> float:
    """Total off-chip bytes required by one training iteration."""
    return (activation_bytes_per_sample(graph) * batch_size
            + model_state_bytes(graph))


def bn_traffic_bytes(graph: ModelGraph, batch_size: int,
                     training: bool = True) -> float:
    """BN memory traffic per iteration (the bandwidth-bound layer cost)."""
    passes = BN_TRAIN_PASSES if training else BN_INFER_PASSES
    total = 0.0
    for node in graph.active_convs():
        if node.bn is None:
            continue
        k = node.conv.weight.data.shape[0]
        total += passes * k * node.out_hw * node.out_hw * BYTES_PER_ELEMENT
    return total * batch_size


@dataclass
class MemoryModel:
    """A device memory-capacity model for dynamic mini-batch adjustment.

    Parameters
    ----------
    capacity_bytes:
        Usable device memory (the paper's GPUs: 11 GB on a 1080 Ti).
    reserve_fraction:
        Head-room kept free for workspace/fragmentation.
    """

    capacity_bytes: float
    reserve_fraction: float = 0.05
    #: exact transient bytes/sample observed from the memory planner's
    #: arena (``StepPlan.mem_metrics``); None until :meth:`observe` runs
    measured_per_sample: Optional[float] = None
    #: fixed overhead paired with the measurement (model state estimate
    #: unless the observer supplies a better number)
    measured_fixed_bytes: Optional[float] = None

    @property
    def usable_bytes(self) -> float:
        return self.capacity_bytes * (1.0 - self.reserve_fraction)

    def fits(self, graph: ModelGraph, batch_size: int) -> bool:
        return iteration_memory_bytes(graph, batch_size) <= self.usable_bytes

    # -- measured capacity signal ------------------------------------------
    def observe(self, per_sample_bytes: float,
                fixed_bytes: Optional[float] = None) -> None:
        """Record a *measured* footprint (planner arena bytes / batch).

        The analytical ``activation_bytes_per_sample`` over-counts what a
        liveness-planned step actually holds; feeding the planner's exact
        number back lets ``max_batch(measured=True)`` refill capacity more
        aggressively after each pruning reconfiguration.
        """
        if per_sample_bytes <= 0:
            raise ValueError("per_sample_bytes must be positive")
        self.measured_per_sample = float(per_sample_bytes)
        self.measured_fixed_bytes = (float(fixed_bytes)
                                     if fixed_bytes is not None else None)

    def clear_measurement(self) -> None:
        """Forget the measured signal (e.g. after a reconfiguration, until
        the next capture re-measures the smaller model)."""
        self.measured_per_sample = None
        self.measured_fixed_bytes = None

    def max_batch(self, graph: ModelGraph, granularity: int = 32,
                  ceiling: int = 4096, measured: bool = False) -> int:
        """Largest batch (multiple of ``granularity``) fitting in memory.

        With ``measured=True`` and an :meth:`observe`-d footprint, sizes
        against the planner's exact bytes/sample instead of the analytical
        estimate; falls back to analytical when nothing was observed.
        """
        per_sample = activation_bytes_per_sample(graph)
        fixed = model_state_bytes(graph)
        if measured and self.measured_per_sample is not None:
            per_sample = self.measured_per_sample
            if self.measured_fixed_bytes is not None:
                fixed = self.measured_fixed_bytes
        if per_sample <= 0:
            return ceiling
        raw = (self.usable_bytes - fixed) / per_sample
        batch = int(raw // granularity) * granularity
        return max(granularity, min(batch, ceiling))
