"""Inter-accelerator communication cost model (paper Sec. 2.2, Fig. 11).

Data-parallel training communicates only for model updates: every iteration,
each worker's weight gradients are all-reduced.  The paper projects the cost
with ring allreduce; hierarchical allreduce [26] is also modeled (the Fig. 11
caption's "hierarchical ring-allreduce").

PruneTrain reduces communication along two axes simultaneously:
- reconfiguration shrinks the gradient payload (fewer weights), and
- dynamic mini-batch growth reduces the number of iterations per epoch
  (fewer allreduce rounds).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.graph import ModelGraph
from .memory import BYTES_PER_ELEMENT


def gradient_payload_bytes(graph: ModelGraph) -> float:
    """Bytes of weight gradients all-reduced per iteration (active params)."""
    params = 0
    for node in graph.active_convs():
        params += node.conv.weight.data.size
        if node.conv.bias is not None:
            params += node.conv.bias.data.size
        if node.bn is not None:
            params += node.bn.weight.data.size + node.bn.bias.data.size
    for lin in graph.linears:
        params += lin.linear.weight.data.size
        if lin.linear.bias is not None:
            params += lin.linear.bias.data.size
    return float(params) * BYTES_PER_ELEMENT


def ring_allreduce_bytes(payload_bytes: float, workers: int) -> float:
    """Per-worker bytes sent by ring allreduce: ``2 (P-1)/P · payload``."""
    if workers < 2:
        return 0.0
    return 2.0 * (workers - 1) / workers * payload_bytes


def hierarchical_allreduce_bytes(payload_bytes: float, workers: int,
                                 group_size: int = 4) -> float:
    """Total per-worker bytes of hierarchical allreduce (intra + inter).

    Ring reduce within groups of ``group_size``, a ring across group leaders
    on ``1/group_size``-sized shards, then an intra-group broadcast.  The
    *total* volume matches flat ring allreduce (both are volume-optimal);
    the win of the hierarchical scheme [26] is that the slow inter-node
    links only carry :func:`hierarchical_interlink_bytes`.
    """
    if workers < 2:
        return 0.0
    groups = max(1, workers // group_size)
    intra = ring_allreduce_bytes(payload_bytes, min(group_size, workers))
    inter = hierarchical_interlink_bytes(payload_bytes, workers, group_size)
    return intra + inter


def hierarchical_interlink_bytes(payload_bytes: float, workers: int,
                                 group_size: int = 4) -> float:
    """Bytes a group leader sends over the inter-group (slow) links."""
    if workers < 2:
        return 0.0
    groups = max(1, workers // group_size)
    return ring_allreduce_bytes(payload_bytes / max(1, group_size), groups)


@dataclass
class CommModel:
    """Two-tier link bandwidth model turning byte counts into seconds.

    ``intra_bandwidth`` models fast in-node links (NVLink/PCIe), and
    ``inter_bandwidth`` the slower cross-node fabric.  Flat ring allreduce
    is bottlenecked by the slowest link in the ring; the hierarchical scheme
    keeps most traffic on the fast tier.
    """

    intra_bandwidth: float = 50e9   # bytes/s
    inter_bandwidth: float = 10e9   # bytes/s
    latency_per_round: float = 20e-6

    def allreduce_time(self, payload_bytes: float, workers: int,
                       hierarchical: bool = False,
                       group_size: int = 4) -> float:
        if workers < 2:
            return 0.0
        if hierarchical:
            intra = ring_allreduce_bytes(payload_bytes,
                                         min(group_size, workers))
            inter = hierarchical_interlink_bytes(payload_bytes, workers,
                                                 group_size)
            t = intra / self.intra_bandwidth + inter / self.inter_bandwidth
        else:
            t = ring_allreduce_bytes(payload_bytes, workers) \
                / self.inter_bandwidth
        return t + self.latency_per_round * (workers - 1)


def epoch_comm_bytes(graph: ModelGraph, dataset_size: int,
                     global_batch: int, workers: int,
                     hierarchical: bool = True) -> float:
    """Per-worker communication bytes over one epoch."""
    iters = (dataset_size + global_batch - 1) // global_batch
    payload = gradient_payload_bytes(graph)
    fn = hierarchical_allreduce_bytes if hierarchical else ring_allreduce_bytes
    return iters * fn(payload, workers)
