"""Analytic cost models: FLOPs, memory, communication, execution time."""

from .comm import (CommModel, epoch_comm_bytes, gradient_payload_bytes,
                   hierarchical_allreduce_bytes, hierarchical_interlink_bytes,
                   ring_allreduce_bytes)
from .flops import (TRAINING_FLOPS_FACTOR, conv_dims_gating, conv_dims_union,
                    conv_flops, inference_flops, per_layer_inference_flops,
                    training_flops_per_sample)
from .memory import (BYTES_PER_ELEMENT, MemoryModel,
                     activation_bytes_per_sample, bn_traffic_bytes,
                     iteration_memory_bytes, model_state_bytes)
from .time import (DEVICES, GTX_1080TI, SPARSE_GEMM, TITAN_XP, V100,
                   DeviceModel, SparseGemmCalibration, SparseGemmCostModel,
                   TimeBreakdown, epoch_time, iteration_time,
                   predicted_sparse_gain, sparse_crossover_curve)

__all__ = [
    "conv_flops", "inference_flops", "training_flops_per_sample",
    "conv_dims_union", "conv_dims_gating", "per_layer_inference_flops",
    "TRAINING_FLOPS_FACTOR",
    "MemoryModel", "activation_bytes_per_sample", "iteration_memory_bytes",
    "model_state_bytes", "bn_traffic_bytes", "BYTES_PER_ELEMENT",
    "CommModel", "gradient_payload_bytes", "ring_allreduce_bytes",
    "hierarchical_allreduce_bytes", "hierarchical_interlink_bytes",
    "epoch_comm_bytes",
    "DeviceModel", "TimeBreakdown", "iteration_time", "epoch_time",
    "DEVICES", "GTX_1080TI", "TITAN_XP", "V100",
    "SPARSE_GEMM", "SparseGemmCalibration", "SparseGemmCostModel",
    "predicted_sparse_gain", "sparse_crossover_curve",
]
