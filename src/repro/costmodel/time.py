"""Execution-time model for training iterations on a GPU-like device.

The paper repeatedly observes that *measured* time savings lag FLOP savings:
"the measured training time reduction is smaller compared to the saved
training FLOPs ... mainly caused by the reduced data parallelism at each
layer after pruning, which decreases GPU execution resource utilization"
(Sec. 5.1).  This model reproduces that effect:

- **Convolutions are compute-bound**: time = FLOPs / (peak · utilization),
  where utilization degrades for narrow channel counts (GEMM tiles go
  unfilled) and for channel counts that are not multiples of the SIMD/tile
  width (irregular dims after pruning).
- **BatchNorm is bandwidth-bound**: time = traffic / bandwidth.
- Data-parallel runs add the allreduce time from :mod:`repro.costmodel.comm`.

Two device presets bracket the paper's hardware: a 1080 Ti-class and a
V100-class part.  The V100's much higher memory bandwidth shrinks the
BN-bound share, which is why the paper's time savings are larger on V100 —
an effect this model reproduces in Tab. 1 / Tab. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..nn.graph import ModelGraph
from .comm import CommModel, gradient_payload_bytes
from .flops import TRAINING_FLOPS_FACTOR, conv_flops
from .memory import BYTES_PER_ELEMENT, BN_TRAIN_PASSES, bn_traffic_bytes


@dataclass
class DeviceModel:
    """Throughput/bandwidth/utilization description of one accelerator."""

    name: str = "gpu"
    peak_flops: float = 11.3e12     # FLOP/s
    mem_bandwidth: float = 484e9    # bytes/s
    #: GEMM tile knee: channel counts below this leave compute units idle.
    util_knee_channels: int = 64
    #: knee on the GEMM M dimension (batch x output pixels).
    util_knee_rows: int = 4096
    #: SIMD lane width; non-multiples pay a padding penalty.
    simd_width: int = 8
    #: fixed per-layer launch overhead (kernel launches, etc.)
    layer_overhead: float = 5e-6

    def utilization(self, c_in: int, c_out: int, rows: int) -> float:
        """Fraction of peak FLOPs achieved by a conv with these dims."""
        u_k = min(1.0, c_out / self.util_knee_channels) ** 0.5
        u_c = min(1.0, c_in / self.util_knee_channels) ** 0.25
        u_m = min(1.0, rows / self.util_knee_rows) ** 0.5
        util = 0.85 * u_k * u_c * u_m
        # Irregular (non-SIMD-multiple) channel dims waste lanes: effective
        # work is padded up to the next multiple of the SIMD width.
        w = self.simd_width
        util *= c_out / (-(-c_out // w) * w)
        util *= c_in / (-(-c_in // w) * w)
        return max(util, 1e-3)


GTX_1080TI = DeviceModel("1080ti", peak_flops=11.3e12, mem_bandwidth=484e9)
TITAN_XP = DeviceModel("titanxp", peak_flops=12.1e12, mem_bandwidth=548e9)
V100 = DeviceModel("v100", peak_flops=15.7e12, mem_bandwidth=900e9)

DEVICES: Dict[str, DeviceModel] = {
    "1080ti": GTX_1080TI, "titanxp": TITAN_XP, "v100": V100,
}


@dataclass
class TimeBreakdown:
    """Seconds per training iteration, by component."""

    conv_time: float = 0.0
    bn_time: float = 0.0
    comm_time: float = 0.0
    overhead: float = 0.0

    @property
    def total(self) -> float:
        return self.conv_time + self.bn_time + self.comm_time + self.overhead


def iteration_time(graph: ModelGraph, batch_per_worker: int,
                   device: DeviceModel, workers: int = 1,
                   comm: Optional[CommModel] = None,
                   training: bool = True) -> TimeBreakdown:
    """Modelled wall-clock of one iteration (per worker)."""
    bd = TimeBreakdown()
    factor = TRAINING_FLOPS_FACTOR if training else 1.0
    for node in graph.active_convs():
        k, c = node.conv.weight.data.shape[:2]
        rows = batch_per_worker * node.out_hw * node.out_hw
        fl = conv_flops(node) * batch_per_worker * factor
        util = device.utilization(c, k, rows)
        bd.conv_time += fl / (device.peak_flops * util)
        bd.overhead += device.layer_overhead * (3 if training else 1)
    bd.bn_time = bn_traffic_bytes(graph, batch_per_worker, training) \
        / device.mem_bandwidth
    for lin in graph.linears:
        fl = 2.0 * lin.linear.in_features * lin.linear.out_features \
            * batch_per_worker * factor
        bd.conv_time += fl / (device.peak_flops * 0.5)
    if training and workers > 1:
        comm = comm or CommModel()
        bd.comm_time = comm.allreduce_time(
            gradient_payload_bytes(graph), workers)
    return bd


def epoch_time(graph: ModelGraph, dataset_size: int, batch_per_worker: int,
               device: DeviceModel, workers: int = 1,
               comm: Optional[CommModel] = None) -> float:
    """Modelled seconds per training epoch."""
    global_batch = batch_per_worker * workers
    iters = (dataset_size + global_batch - 1) // global_batch
    return iters * iteration_time(graph, batch_per_worker, device, workers,
                                  comm).total


# -- sparse-GEMM crossover model ---------------------------------------------
#
# The sparsity-aware conv paths (repro.tensor.sparse) skip dead channels in
# the im2col/batched-GEMM lowering.  Whether skipping pays is a crossover
# question: the sparse pipeline trades GEMM FLOPs for gather/scatter traffic
# and per-step guard scans, so below some dead fraction (or above some
# arithmetic intensity) dense wins.  The model below predicts that crossover
# analytically and *calibrates* it per shape with a measured probe (dense and
# sparse pipelines timed back to back on real capture data, plus a bitwise
# parity check); the gate trusts the measurement, the prediction is recorded
# alongside so predicted-vs-measured drift is visible in the bench JSON.

#: effective flops-per-byte balance of the host BLAS: one gathered/scattered
#: byte costs about this many GEMM flops' worth of time.  Deliberately a
#: single scalar — the *measured* probe is authoritative, this only shapes
#: the predicted curve.
SPARSE_BALANCE_FLOPS_PER_BYTE = 8.0


def sparse_gemm_cost(flops: float, moved_bytes: float) -> float:
    """Abstract cost units of a GEMM pipeline: flops + traffic penalty."""
    return flops + SPARSE_BALANCE_FLOPS_PER_BYTE * moved_bytes


def predicted_sparse_gain(dense_flops: float, dense_bytes: float,
                          sparse_flops: float, sparse_bytes: float) -> float:
    """Predicted dense/sparse time ratio (> 1 means sparse is faster)."""
    sparse = sparse_gemm_cost(sparse_flops, sparse_bytes)
    if sparse <= 0.0:
        return 1.0
    return sparse_gemm_cost(dense_flops, dense_bytes) / sparse


def sparse_crossover_curve(dense_flops: float, dense_bytes: float,
                           fracs=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                  0.8, 0.9)) -> list:
    """Predicted gain vs dead fraction for one conv GEMM shape.

    Models the sparse pipeline at dead fraction ``f`` as ``(1-f)^2`` of the
    dense FLOPs (both GEMM dims compact) while still moving the live
    ``(1-f)`` fraction of the dense bytes twice (gather in, scatter out).
    The curve is what the bench publishes next to the measured points.
    """
    curve = []
    for f in fracs:
        live = 1.0 - f
        gain = predicted_sparse_gain(dense_flops, dense_bytes,
                                     dense_flops * live * live,
                                     dense_bytes * live * 2.0)
        curve.append({"dead_frac": round(f, 3), "predicted_gain":
                      round(gain, 4)})
    return curve


@dataclass
class SparseGemmCalibration:
    """One measured dense-vs-sparse probe for a conv GEMM signature."""

    sig: tuple
    path: str            # "fwd" | "dw" | "dx"
    dense_s: float       # best-of-N seconds, dense pipeline
    sparse_s: float      # best-of-N seconds, sparse pipeline
    parity: bool         # sparse output bit-identical to dense on probe data
    predicted_gain: float

    @property
    def measured_gain(self) -> float:
        return self.dense_s / self.sparse_s if self.sparse_s > 0 else 0.0


class SparseGemmCostModel:
    """Predicted-vs-measured gate for the sparse conv GEMM paths.

    ``calibrate`` runs both pipelines on real data and caches the result per
    ``(sig, path)``; the cache makes the gate deterministic across the memory
    planner's sizer/assembler double build (both passes see the same probe).
    ``repro.tensor.sparse.publish`` calls :meth:`invalidate` whenever the
    dead sets change, so every reconfiguration interval re-probes — the
    "re-checked per reconfiguration interval" contract.

    Every decision is appended to :attr:`decisions` (bounded) so a run's
    gate choices are reproducible and publishable in the bench JSON.
    """

    MAX_DECISIONS = 256

    def __init__(self) -> None:
        self._cal: Dict[tuple, SparseGemmCalibration] = {}
        self.decisions: list = []

    def calibrate(self, sig: tuple, path: str, dense_fn, sparse_fn,
                  parity_fn, predicted_gain: float,
                  reps: int = 5) -> SparseGemmCalibration:
        """Measure both pipelines (interleaved best-of-N) + parity probe."""
        key = (sig, path)
        cal = self._cal.get(key)
        if cal is not None:
            return cal
        import time as _time
        parity = bool(parity_fn())
        # one untimed warmup each: the first call pays page faults on the
        # probe buffers, which would otherwise skew whichever side runs
        # first
        dense_fn()
        sparse_fn()
        dense_s = sparse_s = float("inf")
        for _ in range(max(1, reps)):
            t0 = _time.perf_counter()
            dense_fn()
            dense_s = min(dense_s, _time.perf_counter() - t0)
            t0 = _time.perf_counter()
            sparse_fn()
            sparse_s = min(sparse_s, _time.perf_counter() - t0)
        cal = SparseGemmCalibration(sig, path, dense_s, sparse_s, parity,
                                    predicted_gain)
        self._cal[key] = cal
        return cal

    def decide(self, cal: SparseGemmCalibration, min_gain: float) -> bool:
        """Accept the sparse path iff the probe was bit-identical *and* the
        measured gain clears ``min_gain``.  Records the decision."""
        accept = cal.parity and cal.measured_gain >= min_gain
        if len(self.decisions) < self.MAX_DECISIONS:
            self.decisions.append({
                "sig": list(cal.sig), "path": cal.path,
                "dense_ms": round(cal.dense_s * 1e3, 4),
                "sparse_ms": round(cal.sparse_s * 1e3, 4),
                "measured_gain": round(cal.measured_gain, 4),
                "predicted_gain": round(cal.predicted_gain, 4),
                "parity": cal.parity, "min_gain": min_gain,
                "accepted": accept,
            })
        return accept

    def invalidate(self) -> None:
        """Drop calibrations (new dead sets ⇒ new shapes ⇒ re-probe)."""
        self._cal.clear()

    def reset(self) -> None:
        self._cal.clear()
        self.decisions.clear()


#: process-wide gate instance used by :mod:`repro.tensor.sparse`
SPARSE_GEMM = SparseGemmCostModel()
