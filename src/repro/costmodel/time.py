"""Execution-time model for training iterations on a GPU-like device.

The paper repeatedly observes that *measured* time savings lag FLOP savings:
"the measured training time reduction is smaller compared to the saved
training FLOPs ... mainly caused by the reduced data parallelism at each
layer after pruning, which decreases GPU execution resource utilization"
(Sec. 5.1).  This model reproduces that effect:

- **Convolutions are compute-bound**: time = FLOPs / (peak · utilization),
  where utilization degrades for narrow channel counts (GEMM tiles go
  unfilled) and for channel counts that are not multiples of the SIMD/tile
  width (irregular dims after pruning).
- **BatchNorm is bandwidth-bound**: time = traffic / bandwidth.
- Data-parallel runs add the allreduce time from :mod:`repro.costmodel.comm`.

Two device presets bracket the paper's hardware: a 1080 Ti-class and a
V100-class part.  The V100's much higher memory bandwidth shrinks the
BN-bound share, which is why the paper's time savings are larger on V100 —
an effect this model reproduces in Tab. 1 / Tab. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..nn.graph import ModelGraph
from .comm import CommModel, gradient_payload_bytes
from .flops import TRAINING_FLOPS_FACTOR, conv_flops
from .memory import BYTES_PER_ELEMENT, BN_TRAIN_PASSES, bn_traffic_bytes


@dataclass
class DeviceModel:
    """Throughput/bandwidth/utilization description of one accelerator."""

    name: str = "gpu"
    peak_flops: float = 11.3e12     # FLOP/s
    mem_bandwidth: float = 484e9    # bytes/s
    #: GEMM tile knee: channel counts below this leave compute units idle.
    util_knee_channels: int = 64
    #: knee on the GEMM M dimension (batch x output pixels).
    util_knee_rows: int = 4096
    #: SIMD lane width; non-multiples pay a padding penalty.
    simd_width: int = 8
    #: fixed per-layer launch overhead (kernel launches, etc.)
    layer_overhead: float = 5e-6

    def utilization(self, c_in: int, c_out: int, rows: int) -> float:
        """Fraction of peak FLOPs achieved by a conv with these dims."""
        u_k = min(1.0, c_out / self.util_knee_channels) ** 0.5
        u_c = min(1.0, c_in / self.util_knee_channels) ** 0.25
        u_m = min(1.0, rows / self.util_knee_rows) ** 0.5
        util = 0.85 * u_k * u_c * u_m
        # Irregular (non-SIMD-multiple) channel dims waste lanes: effective
        # work is padded up to the next multiple of the SIMD width.
        w = self.simd_width
        util *= c_out / (-(-c_out // w) * w)
        util *= c_in / (-(-c_in // w) * w)
        return max(util, 1e-3)


GTX_1080TI = DeviceModel("1080ti", peak_flops=11.3e12, mem_bandwidth=484e9)
TITAN_XP = DeviceModel("titanxp", peak_flops=12.1e12, mem_bandwidth=548e9)
V100 = DeviceModel("v100", peak_flops=15.7e12, mem_bandwidth=900e9)

DEVICES: Dict[str, DeviceModel] = {
    "1080ti": GTX_1080TI, "titanxp": TITAN_XP, "v100": V100,
}


@dataclass
class TimeBreakdown:
    """Seconds per training iteration, by component."""

    conv_time: float = 0.0
    bn_time: float = 0.0
    comm_time: float = 0.0
    overhead: float = 0.0

    @property
    def total(self) -> float:
        return self.conv_time + self.bn_time + self.comm_time + self.overhead


def iteration_time(graph: ModelGraph, batch_per_worker: int,
                   device: DeviceModel, workers: int = 1,
                   comm: Optional[CommModel] = None,
                   training: bool = True) -> TimeBreakdown:
    """Modelled wall-clock of one iteration (per worker)."""
    bd = TimeBreakdown()
    factor = TRAINING_FLOPS_FACTOR if training else 1.0
    for node in graph.active_convs():
        k, c = node.conv.weight.data.shape[:2]
        rows = batch_per_worker * node.out_hw * node.out_hw
        fl = conv_flops(node) * batch_per_worker * factor
        util = device.utilization(c, k, rows)
        bd.conv_time += fl / (device.peak_flops * util)
        bd.overhead += device.layer_overhead * (3 if training else 1)
    bd.bn_time = bn_traffic_bytes(graph, batch_per_worker, training) \
        / device.mem_bandwidth
    for lin in graph.linears:
        fl = 2.0 * lin.linear.in_features * lin.linear.out_features \
            * batch_per_worker * factor
        bd.conv_time += fl / (device.peak_flops * 0.5)
    if training and workers > 1:
        comm = comm or CommModel()
        bd.comm_time = comm.allreduce_time(
            gradient_payload_bytes(graph), workers)
    return bd


def epoch_time(graph: ModelGraph, dataset_size: int, batch_per_worker: int,
               device: DeviceModel, workers: int = 1,
               comm: Optional[CommModel] = None) -> float:
    """Modelled seconds per training epoch."""
    global_batch = batch_per_worker * workers
    iters = (dataset_size + global_batch - 1) // global_batch
    return iters * iteration_time(graph, batch_per_worker, device, workers,
                                  comm).total
