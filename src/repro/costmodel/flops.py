"""Analytic FLOP accounting over a model's channel-space graph.

All of the paper's headline numbers are FLOP counts (training FLOPs,
inference FLOPs, FLOPs-per-iteration trajectories), so this module is the
backbone of most experiment reproductions.  Counts are *exact* for whatever
architecture is currently in play — they walk the live
:class:`~repro.nn.graph.ModelGraph`, so they remain correct after every
reconfiguration.

Three counting modes support the paper's comparisons:

- ``current``  — the model as it stands (post-surgery dims).
- ``union``    — hypothetical: what channel-union pruning *would* leave,
  given present weight sparsity (used for the Fig. 2a trajectory, where
  FLOPs are measured "assuming we can prune every 10 epochs").
- ``gating``   — hypothetical: per-conv gating dims (Fig. 6's comparison).

Convention: 1 multiply-accumulate = 2 FLOPs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.graph import ConvNode, ModelGraph
from ..prune.gating import all_path_plans
from ..prune.reconfigure import _dead_convs
from ..prune.sparsity import DEFAULT_THRESHOLD, space_keep_masks

Dims = Dict[str, Tuple[int, int]]  # conv name -> (C_in, C_out)

#: Training FLOPs multiplier over inference: forward GEMM + input-gradient
#: GEMM + weight-gradient GEMM (the standard 3x rule the paper also uses).
TRAINING_FLOPS_FACTOR = 3.0


def conv_flops(node: ConvNode, c_in: Optional[int] = None,
               c_out: Optional[int] = None) -> float:
    """Inference FLOPs of one conv per input sample."""
    k, c, r, s = node.conv.weight.data.shape
    c_in = c if c_in is None else c_in
    c_out = k if c_out is None else c_out
    return 2.0 * c_out * c_in * r * s * node.out_hw * node.out_hw


def _dead_path_ids(graph: ModelGraph, threshold: float) -> set:
    return {n.path for n in _dead_convs(graph, threshold)}


def conv_dims_union(graph: ModelGraph,
                    threshold: float = DEFAULT_THRESHOLD) -> Dims:
    """Per-conv dims under hypothetical channel-union pruning (+ layer removal)."""
    dead = _dead_path_ids(graph, threshold)
    masks = space_keep_masks(graph, threshold)
    dims: Dims = {}
    for node in graph.active_convs():
        if node.path in dead:
            continue
        dims[node.name] = (int(masks[node.in_space].sum()),
                           int(masks[node.out_space].sum()))
    return dims


def conv_dims_gating(graph: ModelGraph,
                     threshold: float = DEFAULT_THRESHOLD) -> Dims:
    """Per-conv dims under hypothetical channel gating.

    Residual-path convs use their private gather/intersection dims; trunk
    convs (stem, projections) keep the union dims — gating only applies
    inside residual paths (Fig. 5b).
    """
    dims = conv_dims_union(graph, threshold)
    dead = _dead_path_ids(graph, threshold)
    for pid, plan in all_path_plans(graph, threshold).items():
        if pid in dead:
            continue
        for cp in plan.convs:
            dims[cp.name] = (int(cp.in_idx.size), int(cp.out_idx.size))
    return dims


def inference_flops(graph: ModelGraph, mode: str = "current",
                    threshold: float = DEFAULT_THRESHOLD,
                    include_small_layers: bool = True) -> float:
    """Total inference FLOPs per sample of the (possibly hypothetical) model."""
    if mode == "current":
        dims: Optional[Dims] = None
        masks = None
    elif mode == "union":
        dims = conv_dims_union(graph, threshold)
        masks = space_keep_masks(graph, threshold)
    elif mode == "gating":
        dims = conv_dims_gating(graph, threshold)
        masks = space_keep_masks(graph, threshold)
    else:
        raise ValueError(f"unknown mode {mode!r}")

    total = 0.0
    for node in graph.active_convs():
        if dims is None:
            ci, co = None, None
        else:
            if node.name not in dims:   # dead path
                continue
            ci, co = dims[node.name]
        total += conv_flops(node, ci, co)
        if include_small_layers and node.bn is not None:
            c_out = node.conv.weight.data.shape[0] if co is None else co
            # BN: ~4 ops/element (sub, mul, mul, add), ReLU: 1
            total += 5.0 * c_out * node.out_hw * node.out_hw
    for lin in graph.linears:
        cin = lin.linear.in_features if masks is None \
            else int(masks[lin.in_space].sum())
        total += 2.0 * cin * lin.linear.out_features
    return total


def training_flops_per_sample(graph: ModelGraph, mode: str = "current",
                              threshold: float = DEFAULT_THRESHOLD) -> float:
    """Per-sample FLOPs of one training iteration (fwd + both bwd GEMMs)."""
    return TRAINING_FLOPS_FACTOR * inference_flops(graph, mode, threshold)


def per_layer_inference_flops(graph: ModelGraph) -> Dict[str, float]:
    """Current per-conv inference FLOPs (Fig. 7 companions, diagnostics)."""
    return {n.name: conv_flops(n) for n in graph.active_convs()}
