"""Compiled training step: capture the autograd tape once, replay a flat plan.

PruneTrain's loop is shape-stationary between reconfigurations, so the
define-by-run graph the engine rebuilds every iteration — ``Tensor._make``
closures, parent tuples, a full topological sort per ``backward()`` — is
identical step after step.  This module captures ONE eager step and turns it
into a :class:`StepPlan`: a flat list of prebuilt kernel thunks (the CPU
analogue of CUDA-graph capture) that replays with zero graph construction,
zero closure allocation, and no per-step topo sort.

Bit-exactness contract
----------------------
Replay must produce *bit-identical* results to the eager step, so every
resume/equivalence guarantee in the repo survives with compilation on.  The
plan therefore does not re-derive anything: it calls the **same kernels**
(``repro.tensor.ops``) with the same arguments in the same order the eager
engine would, and its gradient routing reproduces the eager accumulation
semantics exactly —

- the forward thunks run in recorded (= eager execution) order;
- the backward thunks run in the order ``Tensor.backward`` would visit them
  (reverse of the identical iterative DFS, captured at finalize time);
- parameter gradients go through :func:`repro.tensor.functional._give_grad`
  (the eager path itself), interior gradients mirror
  ``Tensor._accumulate_donated`` / ``Tensor._accumulate`` — donate or
  copy-on-first-touch, ``+=`` on later touches, pool release on consumption.

Capture mechanics
-----------------
``Tape`` installs itself as ``repro.tensor.tensor._TAPE``; each functional
op (and ``Tensor.__add__`` / ``reshape``) then appends an execution record.
``Tensor.__init__`` reports every tensor created during capture, so an input
produced by an *unhooked* op is recognized at finalize time and the capture
fails closed — the trainer falls back to eager with a logged reason rather
than baking a stale constant into the plan.

Invalidation
------------
Plans record ``workspace.PLAN_GENERATION`` at capture.  The counter is
bumped by ``workspace.invalidate()`` (pruning reconfiguration — the same
moment the buffer pool drops its cached shapes) and by
``Module.load_state_dict`` (checkpoint restore reassigns ``param.data``, so
array references captured by a plan go stale).  Dynamic mini-batch growth
needs no hook: the input shape is part of the trainer's plan-cache key, so a
new batch size simply captures a new plan.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from . import memplan as _mp
from . import parallel as _par
from . import sparse as _sparse
from . import workspace as ws
from .ops import conv as _conv
from .ops import loss as _loss
from .ops import norm as _norm
from .ops import pool as _pool
from . import tensor as _tensor_mod
from .tensor import Tensor, no_grad

__all__ = ["Tape", "StepPlan", "PlanCache", "PlanStats", "STATS",
           "BatchPadder", "capture_training_step", "capture_forward"]


@dataclass
class PlanStats:
    """Process-wide capture/replay accounting (merged into the profiler)."""

    captures: int = 0
    capture_seconds: float = 0.0
    replays: int = 0
    replay_seconds: float = 0.0
    fallbacks: int = 0
    last_fallback_reason: str = ""

    def reset(self) -> None:
        self.captures = self.replays = self.fallbacks = 0
        self.capture_seconds = self.replay_seconds = 0.0
        self.last_fallback_reason = ""

    def as_dict(self) -> Dict[str, object]:
        return {"captures": self.captures,
                "capture_seconds": self.capture_seconds,
                "replays": self.replays,
                "replay_seconds": self.replay_seconds,
                "fallbacks": self.fallbacks,
                "last_fallback_reason": self.last_fallback_reason}


#: Process-wide plan statistics (``repro.profiler`` surfaces them as the
#: ``_plans`` entry of ``PROFILER.summary()``).
STATS = PlanStats()


class _CaptureError(Exception):
    """Raised by the plan builder when a recorded graph cannot be compiled."""


class _Lifetimes:
    """Def/use intervals for plan-owned buffers on the step timeline.

    Timeline positions: every thunk occupies *two* ticks, so the forward
    thunk of record ``i`` spans ``[2i, 2i+1]`` (recorded = eager
    execution order) and backward thunk ``j`` spans
    ``[2(F+j), 2(F+j)+1]``.  The second tick lets a backward thunk split
    its scratch into an early phase (the weight-gradient GEMM and its
    rematerialized columns) and a late phase (the dx staging): the two
    biggest buffers in a conv backward never coexist, so they share one
    arena region.  Every buffer request in the builder maps to an
    inclusive ``[first_def, last_use]`` interval the memory planner
    (:mod:`repro.tensor.memplan`) can pack against.  Intervals are
    conservative: a value is kept live through its producer's own
    backward even when that backward never reads it.
    """

    def __init__(self, tape: "Tape", bwd_nodes: List[Tensor], kind: str,
                 loss: Optional[Tensor], logits: Tensor):
        self.tape = tape
        self.kind = kind
        self.fwd_t: Dict[int, int] = {id(rec): 2 * i
                                      for i, rec in enumerate(tape.records)}
        n_fwd = len(tape.records)
        self.bwd_t: Dict[int, int] = {}
        for j, node in enumerate(bwd_nodes):
            rec = tape.rec_of[id(node)]
            self.bwd_t[id(rec)] = 2 * (n_fwd + j)
        #: one past the last timeline position
        self.horizon = 2 * (n_fwd + len(bwd_nodes))
        #: value slot -> records that read it as a forward input
        self.consumers: Dict[int, List[_Record]] = {}
        for rec in tape.records:
            for t in rec.inputs:
                if t is None:
                    continue
                slot = tape.slot_of.get(id(t))
                if slot is not None:
                    self.consumers.setdefault(slot, []).append(rec)
        #: slots whose value escapes the plan each replay (run() returns
        #: these arrays to the trainer, which reads them after the step)
        self._escaping = {tape.slot_of[id(logits)]}
        if loss is not None:
            self._escaping.add(tape.slot_of[id(loss)])

    def _end_of(self, rec: _Record) -> int:
        """Conservative last timeline position attributable to ``rec``
        (the closing tick of its backward thunk)."""
        bt = self.bwd_t.get(id(rec))
        if bt is not None:
            return bt + 1
        if self.kind == "train":
            # A recorded op with no backward thunk in a train plan is
            # rare (a frozen subgraph); keep its buffers live to the end.
            return self.horizon
        return self.fwd_t[id(rec)] + 1

    def bwd_window(self, rec: _Record) -> Tuple[int, int]:
        """The two ticks of ``rec``'s backward thunk (or a shared
        past-the-end slot for an op whose backward never runs)."""
        bt = self.bwd_t.get(id(rec))
        if bt is None:
            return self.horizon, self.horizon
        return bt, bt + 1

    def value_end(self, rec: _Record) -> int:
        """Last use of ``rec``'s output value: every consumer's forward
        and backward, plus the producer's own backward (which may read
        its output, e.g. the ReLU mask recomputation)."""
        slot = self.tape.slot_of[id(rec.out)]
        if slot in self._escaping:
            return self.horizon
        end = self._end_of(rec)
        for c in self.consumers.get(slot, ()):
            end = max(end, self.fwd_t[id(c)] + 1, self._end_of(c))
        return end

    def value_ticks(self, rec: _Record) -> List[int]:
        """Every timeline position that touches ``rec``'s output value —
        the same set :meth:`value_end` maxes over.  Level-scheduled replay
        needs the full set: the serially-last toucher is not necessarily
        the deepest-scheduled one, so the remapped slab must span all of
        their levels (see :meth:`memplan.MemPlanner.remap`)."""
        slot = self.tape.slot_of[id(rec.out)]
        ticks = [self.fwd_t[id(rec)], self._end_of(rec)]
        if slot in self._escaping:
            ticks.append(self.horizon)
        for c in self.consumers.get(slot, ()):
            ticks.append(self.fwd_t[id(c)] + 1)
            ticks.append(self._end_of(c))
        return ticks

    def grad_end(self, x: Tensor) -> Optional[int]:
        """Last use of a gradient buffer donated toward ``x``: the
        backward thunk of x's producer consumes (and releases) it.
        ``None`` means the buffer escapes the plan entirely — a leaf
        gradient kept by ``F._give_grad`` for the optimizer — and must
        stay a private allocation."""
        slot = self.tape.slot_of.get(id(x))
        if slot is None:
            return None
        if slot in self.tape._input_slots:
            return self.horizon
        rec = self.tape.rec_of.get(id(x))
        if rec is None:
            return self.horizon
        return self._end_of(rec)

    def alias_ok(self, x: Tensor, rec: _Record) -> bool:
        """May ``rec`` write its output in place over input ``x``?

        Safe iff ``rec`` is x's *only* consumer and x's producer's
        backward never reads its own output, so the overwritten value is
        provably dead after ``rec``'s forward.  Convolution and the
        affine-folded BN (without fused ReLU) qualify; ReLU-family
        producers re-derive their backward mask from their output and do
        not.  The requesting ops themselves (ReLU, residual add+ReLU)
        read only their output at backward time, never ``x``.
        """
        slot = self.tape.slot_of.get(id(x))
        if slot is None or slot in self.tape._input_slots:
            return False
        if slot in self._escaping:
            return False
        if len(self.consumers.get(slot, ())) != 1:
            return False
        prod = self.tape.rec_of.get(id(x))
        if prod is None:
            return False
        if prod.kind == "conv2d":
            return True
        if prod.kind == "batch_norm":
            _rm, _rv, _mom, _eps, training, relu_flag = prod.attrs
            coef_path = training and (relu_flag or ws.config.fused_bnrelu)
            return coef_path and not relu_flag
        return False


class _Record:
    """One captured op invocation (static arguments only — no step state)."""

    __slots__ = ("kind", "inputs", "out", "attrs")

    def __init__(self, kind: str, inputs: tuple, out: Tensor, attrs):
        self.kind = kind
        self.inputs = inputs
        self.out = out
        self.attrs = attrs


def _split_backward(rec: _Record) -> bool:
    """Whether ``rec``'s backward thunk is split into dw/dx/fin parts for
    level scheduling.  Only the einsum conv qualifies: its weight-gradient
    GEMM (plus column regather) is independent of the ``dx`` chain the
    rest of the backward waits on, so splitting takes it off the critical
    path.  Requires ``need_dx`` — without a dx the whole thunk is already
    a leaf of the gradient dataflow."""
    return (rec.kind == "conv2d" and ws.config.conv_impl == "einsum"
            and bool(rec.attrs[2]))


def _release_fin(grads: list, o: int):
    """Final part of a split backward: retire the output-grad slot.

    Runs after both the ``dw`` and ``dx`` parts (the schedule adds both
    edges), reproducing the tail of the unsplit thunk exactly.
    """
    def bwd_fin() -> None:
        g = grads[o]
        grads[o] = None
        if g is not None:
            ws.release(g)
    return bwd_fin


#: Arena growth tolerance for level-scheduled packing, relative to the
#: serial solve of the same slabs.  Concurrent thunks may never share
#: bytes, so the parallel arena is naturally larger; past this cap the
#: schedule trades parallelism back (serializing the widest level) rather
#: than growing the arena unboundedly.
_ARENA_GROWTH_CAP = 2.0

#: Absolute slack on top of the relative cap: tiny plans (a few hundred
#: KB of slabs) should never trade parallelism over rounding-sized
#: inflation, so the cap is floored at serial + this many bytes.
_ARENA_GROWTH_FLOOR = 1 << 20


class _ParallelSchedule:
    """Dependency levels for one train plan's thunks.

    Nodes: one per forward thunk, a loss-gradient seed node, and one per
    backward thunk — except split convs (:func:`_split_backward`), whose
    backward contributes three nodes (``dw`` weight-grad, ``dx``
    input-grad, ``fin`` release).  Edges pin everything bit-exactness
    depends on:

    - forward dataflow (consumer after producer);
    - every backward part after its op's forward thunk (it reads the
      forward's staged values/ctx);
    - every backward part after the *last writer* of the gradient slot it
      consumes, with multiple writers into one slot **chained in serial
      backward order** — this is the deterministic-reduction guarantee:
      ``+=`` into a gradient buffer happens in the exact eager order, so
      parallel replay is bit-identical to serial replay;
    - writers into one *leaf* ``.grad`` chained the same way (weight
      sharing);
    - ``fin`` after its ``dw``/``dx`` (it releases the gradient buffer
      both read).

    Levels come from longest-path layering over these edges; all nodes of
    one level are mutually independent and may run concurrently.  The
    schedule also re-times memory-plan slabs onto the level timeline
    (:meth:`map_interval`) so the arena packer can never share bytes
    between co-scheduled thunks.
    """

    def __init__(self, tape: "Tape", bwd_nodes: List[Tensor],
                 lt: _Lifetimes, loss: Tensor):
        g = _par.LevelSchedule()
        self.graph = g
        records = tape.records
        n_fwd = len(records)
        fwd_idx = {id(rec): i for i, rec in enumerate(records)}
        slot_producer: Dict[int, int] = {}
        self.fwd_node: List[int] = []
        for i, rec in enumerate(records):
            self.fwd_node.append(g.add_node(f"f{i}:{rec.kind}"))
            slot_producer[tape.slot_of[id(rec.out)]] = i
        for i, rec in enumerate(records):
            for t in rec.inputs:
                if t is None:
                    continue
                slot = tape.slot_of.get(id(t))
                if slot is not None and slot in slot_producer:
                    g.add_edge(self.fwd_node[slot_producer[slot]],
                               self.fwd_node[i])
        # The loss-gradient seed (grads[loss] = ones_like(loss)) reads the
        # loss value, so it follows the loss op's forward.
        self.seed_node = g.add_node("seed")
        loss_rec = tape.rec_of[id(loss)]
        g.add_edge(self.fwd_node[fwd_idx[id(loss_rec)]], self.seed_node)

        self.split = {id(tape.rec_of[id(n)]) for n in bwd_nodes
                      if _split_backward(tape.rec_of[id(n)])}
        self.bwd_parts: List[tuple] = []
        writers: Dict[int, List[int]] = {
            tape.slot_of[id(loss)]: [self.seed_node]}
        leaf_writers: Dict[int, List[int]] = {}
        for j, bn in enumerate(bwd_nodes):
            rec = tape.rec_of[id(bn)]
            o_slot = tape.slot_of[id(rec.out)]
            if id(rec) in self.split:
                dw = g.add_node(f"b{j}.dw:{rec.kind}")
                dx = g.add_node(f"b{j}.dx:{rec.kind}")
                fin = g.add_node(f"b{j}.fin:{rec.kind}")
                parts = (dw, dx, fin)
                g.add_edge(dw, fin)
                g.add_edge(dx, fin)
                slot_writer, leaf_writer = dx, dw
            else:
                nd = g.add_node(f"b{j}:{rec.kind}")
                parts = (nd,)
                slot_writer = leaf_writer = nd
            self.bwd_parts.append(parts)
            f_node = self.fwd_node[fwd_idx[id(rec)]]
            wlist = writers.get(o_slot)
            for p in parts:
                g.add_edge(f_node, p)
                if wlist:
                    g.add_edge(wlist[-1], p)
            for t in rec.inputs:
                if t is None:
                    continue
                slot = tape.slot_of.get(id(t))
                if slot is not None:
                    lst = writers.setdefault(slot, [])
                    if lst:
                        g.add_edge(lst[-1], slot_writer)
                    lst.append(slot_writer)
                else:
                    lst = leaf_writers.setdefault(id(t), [])
                    if lst:
                        g.add_edge(lst[-1], leaf_writer)
                    lst.append(leaf_writer)
        g.compute_levels()
        #: serial thunk index -> its schedule nodes (fwd thunks first,
        #: then backward thunks, matching the _Lifetimes timeline)
        self._thunk_nodes: List[List[int]] = \
            [[n] for n in self.fwd_node] + [list(p) for p in self.bwd_parts]
        self._horizon = lt.horizon
        self._refresh_spans()
        _par.STATS.schedules += 1
        _par.STATS.max_width = max(_par.STATS.max_width,
                                   max(len(l) for l in g.levels))

    # -- level/tick bookkeeping -------------------------------------------
    def _refresh_spans(self) -> None:
        level_of = self.graph.level_of
        self._lmin = [min(level_of[n] for n in nodes)
                      for nodes in self._thunk_nodes]
        self._lmax = [max(level_of[n] for n in nodes)
                      for nodes in self._thunk_nodes]
        self.n_levels = len(self.graph.levels)

    def map_interval(self, ticks) -> Tuple[int, int]:
        """Map a slab's serial touch ticks onto the level timeline.

        Each touched thunk contributes its full level span (a split
        backward spans ``dw``..``fin``); the slab must stay live across
        all of them.  Ticks at/past the horizon (escaping buffers) pin to
        a past-the-end level.
        """
        lo = hi = None
        for t in ticks:
            if t >= self._horizon:
                a, b = 2 * self.n_levels, 2 * self.n_levels + 1
            else:
                n = t // 2
                a, b = 2 * self._lmin[n], 2 * self._lmax[n] + 1
            lo = a if lo is None or a < lo else lo
            hi = b if hi is None or b > hi else hi
        return lo, hi

    def serialize_widest(self) -> bool:
        """Chain the widest level's nodes (arena growth guard); returns
        False when no level has width > 1 (nothing left to trade)."""
        li = self.graph.widest_level()
        if li < 0:
            return False
        self.graph.serialize_level(li)
        self._refresh_spans()
        _par.STATS.levels_serialized += 1
        return True

    def info(self) -> Dict[str, object]:
        g = self.graph
        return {"nodes": g.n_nodes,
                "levels": len(g.levels),
                "widths": [len(l) for l in g.levels],
                "level_names": [[g.names[n] for n in l] for l in g.levels]}


class Tape:
    """Records one eager step's op sequence for compilation into a plan.

    Use as a context manager around the step's forward (+ loss) code; the
    ops record themselves via the ``_TAPE`` hook.  Recording never changes
    the computation — the captured step's own results are the eager
    results, and the plan only takes effect on *subsequent* steps.
    """

    def __init__(self) -> None:
        self.records: List[_Record] = []
        #: id(out tensor) -> value slot; also keyed for marked inputs
        self.slot_of: Dict[int, int] = {}
        self.rec_of: Dict[int, _Record] = {}
        #: ids of every Tensor constructed during capture (fresh tensors
        #: that are *not* recorded op outputs mark unsupported computation)
        self._fresh: set = set()
        #: keepalive so the id-keyed maps can never see a recycled id
        self._keepalive: List[Tensor] = []
        self._input_slots: List[int] = []
        self._n_slots = 0
        self.failed_reason: Optional[str] = None
        self._active = False

    # -- capture lifecycle -------------------------------------------------
    def __enter__(self) -> "Tape":
        if _tensor_mod._TAPE is not None:
            raise RuntimeError("a capture tape is already active")
        _tensor_mod._TAPE = self
        self._active = True
        return self

    def __exit__(self, *exc) -> None:
        _tensor_mod._TAPE = None
        self._active = False

    def input(self, arr: np.ndarray) -> Tensor:
        """Create the step's input tensor and assign it a dynamic slot."""
        t = Tensor(arr)
        slot = self._new_slot(t)
        self._input_slots.append(slot)
        return t

    def saw_fresh(self, t: Tensor) -> None:
        """Hook from ``Tensor.__init__``: track tensors born during capture."""
        self._fresh.add(id(t))
        self._keepalive.append(t)

    def fail(self, reason: str) -> None:
        if self.failed_reason is None:
            self.failed_reason = reason

    def record(self, kind: str, inputs: tuple, out: Tensor, attrs) -> None:
        """Hook from the functional layer: append one op invocation.

        Must never raise into the forward pass — any internal problem marks
        the tape failed and the trainer falls back to eager.
        """
        try:
            if kind == "conv2d":
                # Fold the eager backward's need_dx decision in at capture
                # time (parents' _backward fields are still intact here,
                # and reverse-topological execution means they still are
                # when the eager closure would evaluate the same test).
                x, weight, bias = inputs
                stride, padding, first_layer = attrs
                need_dx = (x.requires_grad or x._backward is not None) \
                    and not first_layer
                attrs = (stride, padding, need_dx)
            elif kind == "add":
                a, b = inputs
                if a.data.shape != b.data.shape or a.dtype != b.dtype:
                    self.fail("add with broadcasting is not compilable")
                    return
            rec = _Record(kind, inputs, out, attrs)
            self.records.append(rec)
            slot = self._new_slot(out)
            self.rec_of[id(out)] = rec
        except Exception as e:  # pragma: no cover - defensive
            self.fail(f"record error: {e!r}")

    def _new_slot(self, t: Tensor) -> int:
        slot = self._n_slots
        self._n_slots += 1
        self.slot_of[id(t)] = slot
        self._keepalive.append(t)
        return slot

    # -- finalization ------------------------------------------------------
    def finalize_training(self, loss: Tensor, logits: Tensor,
                          targets: np.ndarray
                          ) -> Tuple[Optional["StepPlan"], Optional[str]]:
        """Compile a full train-step plan (forward + loss + backward).

        Must run *after* the forward and loss are computed but *before*
        ``loss.backward()`` — backward destroys the closures and parent
        links this method walks to replicate the eager execution order.
        Returns ``(plan, None)`` or ``(None, reason)``.
        """
        if self._active:
            return None, "tape still active (exit the capture context first)"
        if self.failed_reason is not None:
            return None, self.failed_reason
        if id(loss) not in self.slot_of or id(logits) not in self.slot_of:
            return None, "loss/logits were not produced by recorded ops"
        loss_rec = self.rec_of.get(id(loss))
        if loss_rec is None or loss_rec.kind != "cross_entropy":
            return None, "training plans require a cross_entropy loss"
        if loss_rec.attrs is not targets:
            return None, "loss does not consume the step's targets"
        for rec in self.records:
            if rec.kind == "cross_entropy" and rec is not loss_rec:
                return None, "multiple cross_entropy ops in one step"

        # Replicate Tensor.backward's iterative DFS exactly: the plan's
        # backward program must visit nodes in the order the eager pass
        # would, or multi-consumer gradient accumulation order (and with
        # it bit-exactness) is lost.
        topo: List[Tensor] = []
        visited: set = set()
        stack: List[Tuple[Tensor, bool]] = [(loss, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited and p.requires_grad:
                    stack.append((p, False))
        bwd_nodes = [n for n in reversed(topo) if n._backward is not None]
        for n in bwd_nodes:
            if id(n) not in self.slot_of:
                return None, "graph contains an op without a capture hook"
        try:
            return self._build(kind="train", bwd_nodes=bwd_nodes,
                               loss=loss, logits=logits), None
        except _CaptureError as e:
            return None, str(e)

    def finalize_forward(self, logits: Tensor, *, row_stable: bool = False
                         ) -> Tuple[Optional["StepPlan"], Optional[str]]:
        """Compile a forward-only (inference) plan ending at ``logits``.

        ``row_stable=True`` lowers batch-sensitive ops (the final Linear's
        GEMM) per sample, so every row of the replayed logits is bit-equal
        to a batch-1 eager forward of that sample alone — the serving
        tier's padding/tail contract.  Slightly slower per batch; training
        and evaluation captures keep the standard batched lowering.
        """
        if self._active:
            return None, "tape still active (exit the capture context first)"
        if self.failed_reason is not None:
            return None, self.failed_reason
        if id(logits) not in self.slot_of:
            return None, "logits were not produced by recorded ops"
        try:
            return self._build(kind="forward", bwd_nodes=[],
                               loss=None, logits=logits,
                               row_stable=row_stable), None
        except _CaptureError as e:
            return None, str(e)

    def _build(self, kind: str, bwd_nodes: List[Tensor],
               loss: Optional[Tensor], logits: Tensor,
               row_stable: bool = False) -> "StepPlan":
        if len(self._input_slots) != 1:
            raise _CaptureError("exactly one marked input is required")
        lt = _Lifetimes(self, bwd_nodes, kind, loss, logits)
        sched = None
        if (kind == "train" and ws.config.parallel_replay
                and ws.config.replay_workers >= 2):
            sched = _ParallelSchedule(self, bwd_nodes, lt, loss)
        if ws.config.mem_plan:
            try:
                return self._build_planned(kind, bwd_nodes, loss, logits,
                                           lt, sched, row_stable)
            except _mp.PlanError as e:
                _mp.STATS.fallbacks += 1
                _mp.STATS.last_fallback_reason = str(e)
        return self._assemble(kind, bwd_nodes, loss, logits, lt, mem=None,
                              sched=sched, row_stable=row_stable)

    def _build_planned(self, kind: str, bwd_nodes: List[Tensor],
                       loss: Optional[Tensor], logits: Tensor,
                       lt: _Lifetimes, sched,
                       row_stable: bool = False) -> "StepPlan":
        """Two-pass build: size the arena, then assemble thunks over it.

        Pass 1 runs the builder in *plan* mode — every plan-owned buffer
        request records a :class:`memplan.Slab` with its liveness
        interval and yields a throwaway array; the thunks it builds are
        discarded.  After solving the layout and materializing the
        arena, pass 2 replays the identical request sequence in *serve*
        mode, so the kept thunks close over arena views instead of
        private arrays.  Any divergence raises ``PlanError`` and
        :meth:`_build` falls back to unplanned buffers.

        With a parallel schedule the packing becomes concurrency-aware:
        slabs are re-timed onto the level timeline (same-level thunks get
        overlapping intervals, so they never share bytes) and the solve
        iterates against the arena growth guard — when the level-timed
        arena exceeds ``_ARENA_GROWTH_CAP`` times the serial solve, the
        widest level is serialized and the layout re-solved, trading
        parallelism for footprint instead of growing unboundedly.
        """
        mem = _mp.MemPlanner(lt.horizon)
        scratch = StepPlan(kind=kind, n_slots=self._n_slots,
                           input_slot=self._input_slots[0])
        sizer = _PlanBuilder(self, scratch, keep_ctx=(kind == "train"),
                             lt=lt, mem=mem, sched=sched,
                             row_stable=row_stable)
        for rec in self.records:
            sizer.build(rec)
        if sched is None:
            mem.solve()
        else:
            serial_arena = mem.solve()
            cap = max(int(serial_arena * _ARENA_GROWTH_CAP),
                      serial_arena + _ARENA_GROWTH_FLOOR)
            while True:
                mem.remap(sched.map_interval)
                if mem.solve() <= cap or not sched.serialize_widest():
                    break
        mem.materialize(ws.PLAN_GENERATION)
        plan = self._assemble(kind, bwd_nodes, loss, logits, lt, mem=mem,
                              sched=sched, row_stable=row_stable)
        mem.finish()
        return plan

    def _assemble(self, kind: str, bwd_nodes: List[Tensor],
                  loss: Optional[Tensor], logits: Tensor,
                  lt: _Lifetimes, mem, sched=None,
                  row_stable: bool = False) -> "StepPlan":
        plan = StepPlan(kind=kind, n_slots=self._n_slots,
                        input_slot=self._input_slots[0])
        plan.row_stable = row_stable
        builder = _PlanBuilder(self, plan, keep_ctx=(kind == "train"),
                               lt=lt, mem=mem, sched=sched,
                               row_stable=row_stable)
        pairs = {id(rec): builder.build(rec) for rec in self.records}
        plan._fwd = [pairs[id(rec)][0] for rec in self.records]
        if sched is None:
            plan._bwd = [pairs[id(self.rec_of[id(n)])][1] for n in bwd_nodes]
            rec_last = {id(self.rec_of[id(n)]): i
                        for i, n in enumerate(bwd_nodes)}
            plan._leaf_bwd_idx = {
                lid: rec_last[rid]
                for lid, rid in plan._leaf_sink_rec.items()
                if rid in rec_last}
        else:
            self._assemble_levels(plan, pairs, bwd_nodes, sched)
        plan._logits_slot = self.slot_of[id(logits)]
        plan._loss_slot = self.slot_of[id(loss)] if loss is not None else -1
        plan._leaf_shapes = builder.leaf_shapes()
        plan._n_ops = len(self.records)
        plan._mem = mem
        return plan

    def _assemble_levels(self, plan: "StepPlan", pairs, bwd_nodes, sched
                         ) -> None:
        """Bind schedule nodes to thunks and group them into levels.

        ``plan._bwd`` still receives the flat part sequence in serial
        order (``dw``, ``dx``, ``fin`` for split convs).  On an
        *unplanned* build executing it serially is bit-equivalent to the
        unsplit thunks, which tests use to cross-check the split itself.
        On a planned build the arena is packed against *level* liveness,
        which the flat serial order does not respect — every replay of a
        planned parallel plan must go through the levels
        (:meth:`StepPlan._run_levels` / :meth:`StepPlan.replay_timed`).
        """
        node_fn: Dict[int, Callable[[], None]] = {}
        for i, rec in enumerate(self.records):
            node_fn[sched.fwd_node[i]] = pairs[id(rec)][0]
        values, grads = plan._values, plan._grads

        def seed() -> None:
            grads[plan._loss_slot] = np.ones_like(values[plan._loss_slot])

        node_fn[sched.seed_node] = seed
        level_of: Dict[int, int] = {}
        for li, lvl in enumerate(sched.graph.levels):
            for nd in lvl:
                level_of[nd] = li
        bwd_flat: List[Callable[[], None]] = []
        rec_last: Dict[int, int] = {}
        rec_level: Dict[int, int] = {}
        for j, n in enumerate(bwd_nodes):
            rec = self.rec_of[id(n)]
            thunks = pairs[id(rec)][1]
            parts = sched.bwd_parts[j]
            if len(parts) == 3:
                if not (isinstance(thunks, tuple) and len(thunks) == 3):
                    raise _CaptureError(
                        f"schedule split {rec.kind} but builder did not")
                for nd, fn in zip(parts, thunks):
                    node_fn[nd] = fn
                bwd_flat.extend(thunks)
            else:
                if isinstance(thunks, tuple):
                    raise _CaptureError(
                        f"builder split {rec.kind} but schedule did not")
                node_fn[parts[0]] = thunks
                bwd_flat.append(thunks)
            rec_last[id(rec)] = len(bwd_flat) - 1
            rec_level[id(rec)] = max(level_of[nd] for nd in parts)
        plan._bwd = bwd_flat
        plan._leaf_bwd_idx = {lid: rec_last[rid]
                              for lid, rid in plan._leaf_sink_rec.items()
                              if rid in rec_last}
        plan._leaf_bwd_level = {lid: rec_level[rid]
                                for lid, rid in plan._leaf_sink_rec.items()
                                if rid in rec_level}
        plan._levels = [[node_fn[nd] for nd in lvl]
                        for lvl in sched.graph.levels]
        plan._level_names = [[sched.graph.names[nd] for nd in lvl]
                             for lvl in sched.graph.levels]
        plan._workers = ws.config.replay_workers
        plan._schedule = sched


class _PlanBuilder:
    """Compiles tape records into zero-argument forward/backward thunks.

    Thunks close over the plan's preallocated ``values`` / ``grads`` /
    ``ctxs`` lists, so replay is a straight-line sequence of kernel calls
    with list indexing — no dict lookups, no Tensor objects, no closures
    allocated per step.
    """

    def __init__(self, tape: Tape, plan: "StepPlan", keep_ctx: bool,
                 lt: Optional[_Lifetimes] = None, mem=None, sched=None,
                 row_stable: bool = False):
        self.tape = tape
        self.plan = plan
        self.keep_ctx = keep_ctx
        self.row_stable = row_stable
        self.pooling = ws.config.pooling
        self._leaves: Dict[int, Tensor] = {}
        #: liveness intervals and the arena planner (None -> every
        #: plan-owned buffer is a private allocation, the PR-3 layout)
        self.lt = lt
        self.mem = mem
        #: parallel schedule (None -> serial plan; split convs return
        #: (dw, dx, fin) backward part tuples instead of one thunk)
        self.sched = sched
        #: how many records consume each input tensor — a leaf gradient
        #: sink may bind a zero-copy destination only when its parameter
        #: feeds exactly one op (multi-use leaves accumulate across sinks,
        #: which the in-place ``out=`` form cannot express safely)
        self._input_uses: Dict[int, int] = {}
        for _rec in tape.records:
            for _inp in _rec.inputs:
                if _inp is not None:
                    self._input_uses[id(_inp)] = \
                        self._input_uses.get(id(_inp), 0) + 1

    # -- planned buffer allocation ----------------------------------------
    # Each helper maps one buffer class to its liveness interval and
    # degrades to the exact pre-planner allocation when ``mem`` is None.
    def _value_buf(self, rec: _Record, shape, dtype,
                   alias_from: Optional[Tensor] = None) -> np.ndarray:
        """Output activation: live from this op's forward to the last
        forward/backward that reads it.  ``alias_from`` requests an
        in-place overwrite of that input's slab when provably safe."""
        if self.mem is None:
            return np.empty(shape, dtype)
        o = self.tape.slot_of[id(rec.out)]
        alias_slot = None
        if alias_from is not None and self.lt.alias_ok(alias_from, rec):
            alias_slot = self.tape.slot_of[id(alias_from)]
        t = self.lt.fwd_t[id(rec)]
        return self.mem.alloc(shape, dtype, t, self.lt.value_end(rec),
                              tag=rec.kind + ".y", out_slot=o,
                              alias_slot=alias_slot,
                              ticks=self.lt.value_ticks(rec))

    def _span_buf(self, rec: _Record, shape, dtype, tag: str = "") \
            -> np.ndarray:
        """Forward staging the op's own backward still reads (columns)."""
        if self.mem is None:
            return np.empty(shape, dtype)
        return self.mem.alloc(shape, dtype, self.lt.fwd_t[id(rec)],
                              self.lt._end_of(rec),
                              tag=tag or rec.kind + ".span")

    def _bwd_buf(self, rec: _Record, shape, dtype, tag: str = "",
                 phase: Optional[str] = None) -> np.ndarray:
        """Scratch touched only inside the op's own backward thunk.

        ``phase`` narrows the interval to the thunk's early tick ("a",
        the weight-gradient GEMM) or late tick ("b", the dx staging) so
        the conv backward's two large buffers can share one region;
        ``None`` spans the whole thunk.
        """
        if self.mem is None:
            return np.empty(shape, dtype)
        lo, hi = self.lt.bwd_window(rec)
        if phase == "a":
            hi = lo
        elif phase == "b":
            lo = hi
        return self.mem.alloc(shape, dtype, lo, hi,
                              tag=tag or rec.kind + ".bwd")

    def _grad_buf(self, rec: _Record, x: Tensor, shape, dtype, *,
                  zero: bool = False, late: bool = False,
                  tag: str = "") -> np.ndarray:
        """Gradient donated toward ``x``: written in this op's backward,
        consumed by x's producer's backward.  ``late`` marks a buffer
        first written in the thunk's second phase.  Stays private when
        the gradient escapes the plan (leaf sinks keep the array)."""
        end = self.lt.grad_end(x) if self.mem is not None else None
        if end is None:
            return np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
        lo, hi = self.lt.bwd_window(rec)
        start = min(hi if late else lo, end)
        return self.mem.alloc(shape, dtype, start, end,
                              zero=zero, tag=tag or rec.kind + ".grad")

    # -- input/output resolution ------------------------------------------
    def _resolve(self, t: Tensor) -> Tuple[Optional[int], Optional[Tensor]]:
        """Map an input tensor to ``(slot, None)`` or ``(None, leaf)``."""
        slot = self.tape.slot_of.get(id(t))
        if slot is not None:
            return slot, None
        if t._backward is not None or id(t) in self.tape._fresh:
            # Produced during capture by an op with no hook: its value
            # depends on the step input, so baking it in would be wrong.
            raise _CaptureError("op input produced by an unrecorded op")
        self._leaves[id(t)] = t
        return None, t

    def _reader(self, t: Tensor) -> Callable[[], np.ndarray]:
        """Zero-arg callable yielding the input's *current* value."""
        slot, leaf = self._resolve(t)
        if slot is not None:
            values = self.plan._values
            return lambda: values[slot]
        return lambda: leaf.data

    def _leaf(self, t: Optional[Tensor]) -> Optional[Tensor]:
        """Require a parameter-style input to be a graph leaf."""
        if t is None:
            return None
        slot, leaf = self._resolve(t)
        if slot is not None:
            raise _CaptureError("parameter input is not a graph leaf")
        return leaf

    # -- gradient sinks (exact eager accumulation semantics) ---------------
    def _sink_donate(self, t: Tensor) -> Callable[[np.ndarray], None]:
        """Mirror ``functional._give_grad`` for a kernel-produced gradient."""
        slot, leaf = self._resolve(t)
        if slot is None:
            from . import functional as F
            return lambda arr: F._give_grad(leaf, arr)
        grads = self.plan._grads
        release = ws.release
        if self.pooling:
            # Interior node: _give_grad always donates (first touch keeps
            # the array itself; later touches += and return it to the pool).
            def sink(arr: np.ndarray) -> None:
                g0 = grads[slot]
                if g0 is None:
                    grads[slot] = arr
                else:
                    g0 += arr
                    release(arr)
        else:
            # Seed-engine semantics: copy on first touch, no ownership
            # transfer (release is a no-op with pooling off).
            def sink(arr: np.ndarray) -> None:
                g0 = grads[slot]
                if g0 is None:
                    grads[slot] = arr.copy()
                else:
                    g0 += arr
        return sink

    def _sink_copy(self, t: Tensor) -> Callable[[np.ndarray], None]:
        """Mirror ``Tensor._accumulate`` for possibly-aliased gradients."""
        slot, leaf = self._resolve(t)
        if slot is None:
            return leaf._accumulate
        grads = self.plan._grads

        def sink(arr: np.ndarray) -> None:
            g0 = grads[slot]
            if g0 is None:
                grads[slot] = arr.copy()
            else:
                g0 += arr
        return sink

    def _leaf_out(self, rec: _Record, t: Optional[Tensor]
                  ) -> Optional[np.ndarray]:
        """Zero-copy gradient destination for leaf ``t``, or ``None``.

        When the process has bound a shared-memory gradient sink for this
        parameter (:func:`repro.tensor.workspace.bind_grad_sinks` — the
        elastic worker's allreduce segment), the sink thunk computes its
        final reduction straight into the bound array via ``out=`` instead
        of a fresh allocation, and ``_give_grad`` donates that array as
        ``param.grad``.  The values written are bit-identical to the
        private-buffer form; only the destination changes.  Returns
        ``None`` (site keeps its original code path) when no binding
        exists, the parameter feeds more than one op, or shapes/dtypes
        disagree with the binding.
        """
        if t is None:
            return None
        view = ws.grad_sink_for(id(t))
        if view is None or self._input_uses.get(id(t), 0) != 1:
            return None
        if view.shape != t.data.shape or view.dtype != t.data.dtype:
            return None
        self.plan._sink_bound[id(t)] = view
        self.plan._leaf_sink_rec[id(t)] = id(rec)
        if self.mem is not None:
            self.mem.note_external(id(t), view.nbytes)
        return view

    def leaf_shapes(self) -> List[Tuple[Tensor, tuple]]:
        return [(t, t.data.shape) for t in self._leaves.values()]

    # -- per-op thunk builders --------------------------------------------
    def build(self, rec: _Record):
        try:
            builder = getattr(self, "_build_" + rec.kind)
        except AttributeError:
            raise _CaptureError(f"no plan builder for op {rec.kind!r}")
        return builder(rec)

    def _build_conv2d(self, rec: _Record):
        if ws.config.conv_impl == "einsum":
            return self._build_conv2d_einsum(rec)
        return self._build_conv2d_generic(rec)

    def _build_conv2d_einsum(self, rec: _Record):
        """Specialized conv thunks with preplanned workspace buffers.

        This is where the plan beats eager on kernel-bound steps: every
        staging buffer the eager kernel acquires per call (padded input,
        column tensor, output, dx) becomes a plan-owned array allocated once
        at capture, and every ``sliding_window_view`` / weight-reshape /
        transpose is precomputed as a view over those stable buffers.
        Replay performs the identical numpy operations on identical values
        (border zeros are written once instead of every step; interiors and
        GEMM outputs are fully overwritten each step), so results stay
        bit-exact while the per-step view construction, border memsets, and
        pool traffic disappear.
        """
        x, weight, bias = rec.inputs
        stride, padding, need_dx = rec.attrs
        rd_x = self._reader(x)
        w_t = self._leaf(weight)
        b_t = self._leaf(bias)
        n, c, h, wd = x.data.shape
        k, _c2, r, s = weight.data.shape
        ho, wo = _conv.conv_out_size(h, wd, r, s, stride, padding)
        dtype = x.data.dtype
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads
        # Level scheduling splits this backward into dw/dx/fin parts (the
        # weight-grad GEMM is off the dx critical chain); the parts in
        # serial order perform the identical kernel calls on identical
        # operands as the single thunk, so the split never changes bits.
        split_bwd = self.sched is not None and id(rec) in self.sched.split
        from . import functional as F

        if _conv._is_pointwise(r, s, padding):
            w2 = w_t.data.reshape(k, c)
            # Register under the 4-D output shape so a downstream
            # shape-preserving consumer can alias onto this slab.
            y4 = self._value_buf(rec, (n, k, ho, wo), dtype)
            y3 = y4.reshape(n, k, ho * wo)
            if stride > 1:
                xm4 = self._span_buf(rec, (n, c, ho, wo), dtype)
                xm = xm4.reshape(n, c, ho * wo)
                xmT = xm.transpose(0, 2, 1)

                def fwd() -> None:
                    np.copyto(xm4, rd_x()[:, :, ::stride, ::stride])
                    np.matmul(w2, xm, out=y3)
                    if b_t is not None:
                        np.add(y4, b_t.data[None, :, None, None], out=y4)
                    values[o] = y4
            else:
                # The staged input is just a reshape view of the incoming
                # activation; rebuild it per step (the producing op may
                # write a fresh array) and keep it for the backward GEMM.
                xbox: List[Optional[np.ndarray]] = [None]

                def fwd() -> None:
                    xm_ = rd_x().reshape(n, c, ho * wo)
                    xbox[0] = xm_
                    np.matmul(w2, xm_, out=y3)
                    if b_t is not None:
                        np.add(y4, b_t.data[None, :, None, None], out=y4)
                    values[o] = y4
            if not self.keep_ctx:
                return fwd, None
            w2t = w2.T
            dwn = self._bwd_buf(rec, (n, k, c), dtype, phase="a")
            if need_dx:
                if stride > 1:
                    tmp3 = self._bwd_buf(rec, (n, c, ho * wo), dtype,
                                         phase="b")
                    tmp4 = tmp3.reshape(n, c, ho, wo)
                    dx_buf = self._grad_buf(rec, x, (n, c, h, wd), dtype,
                                            zero=True, late=True)
                else:
                    dx3 = self._grad_buf(rec, x, (n, c, ho * wo), dtype,
                                         late=True)
                    dx4 = dx3.reshape(n, c, h, wd)
            sink_x = self._sink_donate(x) if need_dx else None
            w_out = self._leaf_out(rec, w_t)
            w_out2 = w_out.reshape(k, c) if w_out is not None else None
            b_out = self._leaf_out(rec, b_t)

            def give_wb(g: np.ndarray) -> None:
                if w_out is None:
                    dw = np.add.reduce(dwn, axis=0).reshape(k, c, 1, 1)
                else:
                    np.add.reduce(dwn, axis=0, out=w_out2)
                    dw = w_out
                F._give_grad(w_t, dw)
                if b_t is not None:
                    if b_out is None:
                        F._give_grad(b_t, g.sum(axis=(0, 2, 3)))
                    else:
                        g.sum(axis=(0, 2, 3), out=b_out)
                        F._give_grad(b_t, b_out)

            if split_bwd:
                def bwd_dw() -> None:
                    g = grads[o]
                    if g is None:
                        return
                    dym = g.reshape(n, k, ho * wo)
                    if stride > 1:
                        np.matmul(dym, xmT, out=dwn)
                    else:
                        np.matmul(dym, xbox[0].transpose(0, 2, 1), out=dwn)
                    give_wb(g)

                def bwd_dx() -> None:
                    g = grads[o]
                    if g is None:
                        return
                    dym = g.reshape(n, k, ho * wo)
                    if stride > 1:
                        np.matmul(w2t, dym, out=tmp3)
                        dx_buf.fill(0)
                        dx_buf[:, :, ::stride, ::stride] = tmp4
                        sink_x(dx_buf)
                    else:
                        np.matmul(w2t, dym, out=dx3)
                        sink_x(dx4)
                return fwd, (bwd_dw, bwd_dx, _release_fin(grads, o))

            def bwd() -> None:
                g = grads[o]
                if g is None:
                    return
                dym = g.reshape(n, k, ho * wo)
                if stride > 1:
                    np.matmul(dym, xmT, out=dwn)
                else:
                    np.matmul(dym, xbox[0].transpose(0, 2, 1), out=dwn)
                # Extract dw/db before the dx phase: the arena may lay the
                # phase-"b" staging over dwn's bytes.
                give_wb(g)
                if need_dx:
                    if stride > 1:
                        np.matmul(w2t, dym, out=tmp3)
                        # Strided lanes are overwritten below; off-lane
                        # entries must match the eager zero-filled acquire
                        # even if a multi-consumer accumulate dirtied them
                        # last step, hence the per-step fill (eager pays
                        # the same memset inside the pool).
                        dx_buf.fill(0)
                        dx_buf[:, :, ::stride, ::stride] = tmp4
                        sink_x(dx_buf)
                    else:
                        np.matmul(w2t, dym, out=dx3)
                        sink_x(dx4)
                ws.release(g)
                grads[o] = None
            return fwd, bwd

        # -- general (RxS) einsum lowering ---------------------------------
        if ws.config.sparse_compute:
            # Measured gate: engages the dead-channel-skipping builder only
            # when a dead set is published for this weight AND the probe
            # proved the sparse pipelines bit-identical and profitable at
            # this exact signature (repro.tensor.sparse.conv_gate_for).
            # The decision is memoized per (signature, dead set), so the
            # memory planner's sizer/assembler double build and any plan
            # rebuild within the interval see the same verdict.
            gate = _sparse.conv_gate_for(w_t.data, x.data, stride, padding)
            if gate is not None:
                return self._build_conv2d_sparse(rec, gate)
        w3 = w_t.data.reshape(k, c * r * s)
        # Column tensor: the forward GEMM needs it materialized.  Under
        # the planner it is *rematerialized* for the backward instead of
        # kept live across the step: the column stack is RxS times the
        # feature map (9x for a 3x3 conv) and its keep-until-backward
        # interval would dominate the liveness peak of every plan.  The
        # backward re-stages the padded input (whose value slab is still
        # live through this op's backward) and re-gathers the identical
        # windows, so the weight-gradient GEMM sees bit-identical
        # operands while both column buffers collapse to point-lived,
        # arena-shared scratch.
        if self.mem is not None:
            t = self.lt.fwd_t[id(rec)]
            cols6 = self.mem.alloc((n, c, r, s, ho, wo), dtype, t, t,
                                   tag="conv2d.cols_f")
        else:
            cols6 = np.empty((n, c, r, s, ho, wo), dtype=dtype)
        cols3 = cols6.reshape(n, c * r * s, ho * wo)
        cols3T = cols3.transpose(0, 2, 1)
        y4 = self._value_buf(rec, (n, k, ho, wo), dtype)
        y3 = y4.reshape(n, k, ho * wo)
        if padding > 0:
            hp_f, wp_f = h + 2 * padding, wd + 2 * padding
            if self.mem is not None:
                # Point-lived padded staging, re-zeroed every step: a
                # write-borders-once buffer would have to span the whole
                # timeline exclusively (one per conv — the dominant slabs
                # of early plans), while a per-step memset lets every
                # conv in the plan share one region.  The fill is the
                # same cost eager pays in its zero-filled pool acquire.
                t = self.lt.fwd_t[id(rec)]
                xp = self.mem.alloc((n, c, hp_f, wp_f), dtype, t, t,
                                    tag="conv2d.xp")
            else:
                xp = np.zeros((n, c, hp_f, wp_f), dtype)
            xp_core = xp[:, :, padding:padding + h, padding:padding + wd]
            wdwT = _conv._windows(xp, r, s, stride).transpose(0, 1, 4, 5, 2, 3)
            if self.mem is not None:
                def fwd() -> None:
                    xp.fill(0)
                    np.copyto(xp_core, rd_x())
                    np.copyto(cols6, wdwT)
                    np.matmul(w3, cols3, out=y3)
                    if b_t is not None:
                        np.add(y4, b_t.data[None, :, None, None], out=y4)
                    values[o] = y4
            else:
                def fwd() -> None:
                    np.copyto(xp_core, rd_x())
                    np.copyto(cols6, wdwT)
                    np.matmul(w3, cols3, out=y3)
                    if b_t is not None:
                        np.add(y4, b_t.data[None, :, None, None], out=y4)
                    values[o] = y4
        else:
            def fwd() -> None:
                wdw = _conv._windows(rd_x(), r, s, stride)
                np.copyto(cols6, wdw.transpose(0, 1, 4, 5, 2, 3))
                np.matmul(w3, cols3, out=y3)
                if b_t is not None:
                    np.add(y4, b_t.data[None, :, None, None], out=y4)
                values[o] = y4
        if not self.keep_ctx:
            return fwd, None

        dwn = self._bwd_buf(rec, (n, k, c * r * s), dtype, phase="a")
        if self.mem is not None:
            # Planned path: rematerialize the columns for the
            # weight-gradient GEMM (see the forward-side comment).
            cols_b6 = self._bwd_buf(rec, (n, c, r, s, ho, wo), dtype,
                                    tag="conv2d.cols_b", phase="a")
            cols_bT = cols_b6.reshape(n, c * r * s, ho * wo) \
                .transpose(0, 2, 1)
            if padding > 0:
                # xp is point-lived under the planner, so the backward
                # re-pads x into its own phase-"a" scratch before the
                # gather (x's value slab is live through this backward).
                xpb = self._bwd_buf(rec, xp.shape, dtype,
                                    tag="conv2d.xpb", phase="a")
                xpb_core = xpb[:, :, padding:padding + h,
                               padding:padding + wd]
                wdwbT = _conv._windows(xpb, r, s, stride) \
                    .transpose(0, 1, 4, 5, 2, 3)

                def regather() -> None:
                    xpb.fill(0)
                    np.copyto(xpb_core, rd_x())
                    np.copyto(cols_b6, wdwbT)
            else:
                def regather() -> None:
                    wdw = _conv._windows(rd_x(), r, s, stride)
                    np.copyto(cols_b6, wdw.transpose(0, 1, 4, 5, 2, 3))
        else:
            cols_bT = cols3T
            regather = None
        sink_x = self._sink_donate(x) if need_dx else None
        if need_dx and stride == 1 and r > padding and s > padding:
            # Transposed-convolution dx (the eager _tconv_dx), with the
            # padded-dy staging, window view, and output preplanned.
            pr, ps = r - 1 - padding, s - 1 - padding
            wf4 = self._bwd_buf(rec, (c, k, r, s), dtype, tag="conv2d.wf",
                                phase="b")
            wf2 = wf4.reshape(c, k * r * s)
            dx3 = self._grad_buf(rec, x, (n, c, h * wd), dtype, late=True)
            dx4 = dx3.reshape(n, c, h, wd)
            dyc6 = self._bwd_buf(rec, (n, k, r, s, h, wd), dtype,
                                 tag="conv2d.dyc", phase="b")
            dyc3 = dyc6.reshape(n, k * r * s, h * wd)
            if pr or ps:
                if self.mem is not None:
                    # Per-step re-zeroed phase-"b" scratch (cf. xp above:
                    # sharing beats the one-time border write).
                    dyp = self._bwd_buf(rec,
                                        (n, k, ho + 2 * pr, wo + 2 * ps),
                                        dtype, tag="conv2d.dyp", phase="b")
                else:
                    dyp = np.zeros((n, k, ho + 2 * pr, wo + 2 * ps), dtype)
                dyp_core = dyp[:, :, pr:ho + pr, ps:wo + ps]
                dywT = _conv._windows(dyp, r, s, 1) \
                    .transpose(0, 1, 4, 5, 2, 3)
                rezero_dyp = self.mem is not None

                def compute_dx(g: np.ndarray) -> np.ndarray:
                    if rezero_dyp:
                        dyp.fill(0)
                    np.copyto(dyp_core, g)
                    np.copyto(dyc6, dywT)
                    np.copyto(wf4,
                              w_t.data[:, :, ::-1, ::-1].transpose(1, 0, 2, 3))
                    np.matmul(wf2, dyc3, out=dx3)
                    return dx4
            else:
                def compute_dx(g: np.ndarray) -> np.ndarray:
                    dyw = _conv._windows(g, r, s, 1)
                    np.copyto(dyc6, dyw.transpose(0, 1, 4, 5, 2, 3))
                    np.copyto(wf4,
                              w_t.data[:, :, ::-1, ::-1].transpose(1, 0, 2, 3))
                    np.matmul(wf2, dyc3, out=dx3)
                    return dx4
        elif need_dx:
            # Strided scatter-add dx (the eager _dx_scatter), preplanned.
            hp, wp = h + 2 * padding, wd + 2 * padding
            w3T = w3.T
            dcols = self._bwd_buf(rec, (n, c * r * s, ho * wo), dtype,
                                  tag="conv2d.dcols", phase="b")
            d6 = dcols.reshape(n, c, r, s, ho, wo)
            dxp = self._grad_buf(rec, x, (n, c, hp, wp), dtype, zero=True,
                                 late=True, tag="conv2d.dxp")
            if padding > 0:
                dx_view = dxp[:, :, padding:padding + h, padding:padding + wd]
            else:
                dx_view = dxp

            def compute_dx(g: np.ndarray) -> np.ndarray:
                np.matmul(w3T, g.reshape(n, k, ho * wo), out=dcols)
                # Scatter-adds accumulate, so the zeroed state must be
                # restored per step — eager pays the same memset via its
                # zero-filled pool acquire.
                dxp.fill(0)
                for ri in range(r):
                    h_end = ri + stride * ho
                    for si in range(s):
                        w_end = si + stride * wo
                        dxp[:, :, ri:h_end:stride, si:w_end:stride] += \
                            d6[:, :, ri, si]
                return dx_view
        else:
            compute_dx = None

        w_out = self._leaf_out(rec, w_t)
        w_out3 = w_out.reshape(k, c * r * s) if w_out is not None else None
        b_out = self._leaf_out(rec, b_t)

        def give_wb(g: np.ndarray) -> None:
            if w_out is None:
                dw = np.add.reduce(dwn, axis=0).reshape(k, c, r, s)
            else:
                np.add.reduce(dwn, axis=0, out=w_out3)
                dw = w_out
            F._give_grad(w_t, dw)
            if b_t is not None:
                if b_out is None:
                    F._give_grad(b_t, g.sum(axis=(0, 2, 3)))
                else:
                    g.sum(axis=(0, 2, 3), out=b_out)
                    F._give_grad(b_t, b_out)

        if split_bwd:
            def bwd_dw() -> None:
                g = grads[o]
                if g is None:
                    return
                if regather is not None:
                    regather()
                np.matmul(g.reshape(n, k, ho * wo), cols_bT, out=dwn)
                give_wb(g)

            def bwd_dx() -> None:
                g = grads[o]
                if g is None:
                    return
                sink_x(compute_dx(g))
            return fwd, (bwd_dw, bwd_dx, _release_fin(grads, o))

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            dym = g.reshape(n, k, ho * wo)
            if regather is not None:
                regather()
            np.matmul(dym, cols_bT, out=dwn)
            # Extract dw/db before the dx phase: the arena may lay the
            # phase-"b" staging over dwn's bytes.
            give_wb(g)
            if compute_dx is not None:
                sink_x(compute_dx(g))
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_conv2d_sparse(self, rec: _Record, gate: "_sparse.ConvGate"):
        """Sparse-specialized general-conv thunks: dead-channel skipping.

        Layout contract: every slab is the *same class, tag, and worst-case
        (fully dense) size* as the dense builder's — the sparse kernels run
        on contiguous prefix views of those slabs.  Sparse saves FLOPs and
        gather bandwidth, not bytes, and that is what buys the free dense
        fallback: when a per-step guard fails, the thunk runs the dense
        kernels in place on the very same buffers and the plan stays valid
        (``StepState.enabled`` is sticky until the next publish
        respecializes it).  Because layouts may alternate step to step, the
        padded stagings are re-zeroed per step in *both* modes — stale
        border bytes from the other layout are the one way this builder
        could diverge from dense, and the memset closes it.

        Exactness, per pipeline (the gate's parity probe backs each):

        - forward skip needs only the weight guard — a skipped GEMM column
          contributes ``w[:, dead] * x = 0`` regardless of ``x``;
        - ``dw`` row compaction drops *measured* zero rows of ``dy`` (the
          ReLU-sparse path: rows ReLU's backward zeroed are dropped beyond
          the published dead set) — a zero ``dy`` row yields an exactly-zero
          ``dw`` row, so it is exact by construction;
        - ``dw`` column compaction additionally needs the dead in-channels
          of ``x`` to be zero — measured per step before engaging;
        - ``dx`` compaction shrinks a GEMM *reduction* dimension, where
          BLAS accumulator pairing can change low bits, so it only engages
          where the calibration probe proved bit-parity at this signature.
        """
        x, weight, bias = rec.inputs
        stride, padding, need_dx = rec.attrs
        rd_x = self._reader(x)
        w_t = self._leaf(weight)
        b_t = self._leaf(bias)
        n, c, h, wd = x.data.shape
        k, _c2, r, s = weight.data.shape
        ho, wo = _conv.conv_out_size(h, wd, r, s, stride, padding)
        p = ho * wo
        dtype = x.data.dtype
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads
        split_bwd = self.sched is not None and id(rec) in self.sched.split
        from . import functional as F

        ds = gate.ds
        kl, cl = ds.out_live.size, ds.in_live.size
        crs, crs_l = c * r * s, cl * r * s
        in_live_runs, in_dead_runs = ds.in_live_runs, ds.in_dead_runs
        out_live_runs, out_dead_runs = ds.out_live_runs, ds.out_dead_runs
        state = _sparse.StepState()
        stats = _sparse.STATS
        w4 = w_t.data
        w3 = w4.reshape(k, crs)

        def _prefix(buf: np.ndarray, shape: tuple) -> np.ndarray:
            size = 1
            for d in shape:
                size *= d
            return buf.reshape(-1)[:size].reshape(shape)

        # -- forward: dense worst-case slabs + live-prefix views -----------
        hp_f, wp_f = h + 2 * padding, wd + 2 * padding
        if self.mem is not None:
            t = self.lt.fwd_t[id(rec)]
            cols6 = self.mem.alloc((n, c, r, s, ho, wo), dtype, t, t,
                                   tag="conv2d.cols_f")
            # Unlike the dense builder, xp exists even at padding == 0:
            # the live-channel gather needs contiguous staging before the
            # window view can run (a channel-gather cannot be a view).
            xp = self.mem.alloc((n, c, hp_f, wp_f), dtype, t, t,
                                tag="conv2d.xp")
            yl = self.mem.alloc((n, kl, p), dtype, t, t, tag="conv2d.sp.yl")
        else:
            cols6 = np.empty((n, c, r, s, ho, wo), dtype=dtype)
            xp = np.empty((n, c, hp_f, wp_f), dtype)
            yl = np.empty((n, kl, p), dtype)
        cols3 = cols6.reshape(n, crs, p)
        xp_core = xp[:, :, padding:padding + h, padding:padding + wd]
        wdwT = _conv._windows(xp, r, s, stride).transpose(0, 1, 4, 5, 2, 3)
        cols6_l = _prefix(cols6, (n, cl, r, s, ho, wo))
        cols3_l = cols6_l.reshape(n, crs_l, p)
        xp_l = _prefix(xp, (n, cl, hp_f, wp_f))
        xp_l_core = xp_l[:, :, padding:padding + h, padding:padding + wd]
        wdwT_l = _conv._windows(xp_l, r, s, stride) \
            .transpose(0, 1, 4, 5, 2, 3)
        wl = np.empty((kl, crs_l), dtype)
        wl4 = wl.reshape(kl, cl, r, s)
        y4 = self._value_buf(rec, (n, k, ho, wo), dtype)
        y3 = y4.reshape(n, k, p)
        skipped = crs - crs_l

        def fwd() -> None:
            if state.enabled and _sparse.weights_dead(w4, ds):
                xr = rd_x()
                if padding:
                    xp.fill(0)
                for d0, s0, ln in in_live_runs:
                    xp_l_core[:, d0:d0 + ln] = xr[:, s0:s0 + ln]
                np.copyto(cols6_l, wdwT_l)
                for dk, sk, nk in out_live_runs:
                    for dc, sc, nc in in_live_runs:
                        wl4[dk:dk + nk, dc:dc + nc] = \
                            w4[sk:sk + nk, sc:sc + nc]
                np.matmul(wl, cols3_l, out=yl)
                for _, s0, ln in out_dead_runs:
                    y3[:, s0:s0 + ln] = 0
                for d0, s0, ln in out_live_runs:
                    y3[:, s0:s0 + ln] = yl[:, d0:d0 + ln]
                state.fwd_live = True
                stats.fwd_sparse_steps += 1
                stats.skipped_cols += skipped
            else:
                # Sticky: a revived dead channel makes every later sparse
                # step unsound, so the conv drops to dense for the rest of
                # this plan's life (the next publish rebuilds it).
                state.enabled = False
                state.fwd_live = False
                if padding:
                    xp.fill(0)
                np.copyto(xp_core, rd_x())
                np.copyto(cols6, wdwT)
                np.matmul(w3, cols3, out=y3)
                stats.fwd_dense_fallbacks += 1
            if b_t is not None:
                np.add(y4, b_t.data[None, :, None, None], out=y4)
            values[o] = y4
        if not self.keep_ctx:
            return fwd, None

        # -- backward staging (phase "a": the dw GEMM) ----------------------
        dwn = self._bwd_buf(rec, (n, k, crs), dtype, phase="a")
        dym = self._bwd_buf(rec, (n, k, p), dtype, tag="conv2d.sp.dym",
                            phase="a")
        red_buf = self._bwd_buf(rec, (k, crs), dtype, tag="conv2d.sp.red",
                                phase="a")
        if self.mem is not None:
            cols_b6 = self._bwd_buf(rec, (n, c, r, s, ho, wo), dtype,
                                    tag="conv2d.cols_b", phase="a")
            xpb = self._bwd_buf(rec, (n, c, hp_f, wp_f), dtype,
                                tag="conv2d.xpb", phase="a")
        else:
            # Unplanned: reuse the forward stagings as backward stagings
            # (the dense builder does the same via cols_bT = cols3T).
            cols_b6, xpb = cols6, xp
        cols_b3 = cols_b6.reshape(n, crs, p)
        cols_bT = cols_b3.transpose(0, 2, 1)
        xpb_core = xpb[:, :, padding:padding + h, padding:padding + wd]
        wdwbT = _conv._windows(xpb, r, s, stride).transpose(0, 1, 4, 5, 2, 3)
        cols_b6_l = _prefix(cols_b6, (n, cl, r, s, ho, wo))
        cols_b3_lT = cols_b6_l.reshape(n, crs_l, p).transpose(0, 2, 1)
        xpb_l = _prefix(xpb, (n, cl, hp_f, wp_f))
        xpb_l_core = xpb_l[:, :, padding:padding + h, padding:padding + wd]
        wdwbT_l = _conv._windows(xpb_l, r, s, stride) \
            .transpose(0, 1, 4, 5, 2, 3)

        def regather_dense_b() -> None:
            if padding:
                xpb.fill(0)
            np.copyto(xpb_core, rd_x())
            np.copyto(cols_b6, wdwbT)

        def regather_live_b() -> None:
            xr = rd_x()
            if padding:
                xpb.fill(0)
            for d0, s0, ln in in_live_runs:
                xpb_l_core[:, d0:d0 + ln] = xr[:, s0:s0 + ln]
            np.copyto(cols_b6_l, wdwbT_l)

        if self.mem is not None:
            # Planned: the forward staging is point-lived arena scratch, so
            # the backward must re-gather either way (same as dense).
            ensure_dense_cols, ensure_live_cols = \
                regather_dense_b, regather_live_b
        else:
            def ensure_dense_cols() -> None:
                if state.fwd_live:
                    regather_dense_b()
                    state.fwd_live = False

            def ensure_live_cols() -> None:
                if not state.fwd_live:
                    regather_live_b()
                    state.fwd_live = True

        w_out = self._leaf_out(rec, w_t)
        w_out3 = w_out.reshape(k, crs) if w_out is not None else None
        b_out = self._leaf_out(rec, b_t)
        # Profitability cutoff: the gate calibrated the dw pipeline at the
        # published dead-row count; engage only when the measured count is
        # at least that (more zero rows can only help).
        min_dead_rows = ds.out_dead.size

        def give_b(g: np.ndarray) -> None:
            if b_t is None:
                return
            if b_out is None:
                F._give_grad(b_t, g.sum(axis=(0, 2, 3)))
            else:
                g.sum(axis=(0, 2, 3), out=b_out)
                F._give_grad(b_t, b_out)

        def give_dw(g3: np.ndarray) -> None:
            if gate.use_dw and state.enabled:
                row_live = np.flatnonzero(g3.any(axis=(0, 2)))
                km = int(row_live.size)
                dead_rows = k - km
                if dead_rows >= min_dead_rows and not _sparse.runs_any_ch(
                        rd_x(), in_dead_runs):
                    row_runs = _sparse.index_runs(row_live)
                    ensure_live_cols()
                    dym_m = _prefix(dym, (n, km, p))
                    for d0, s0, ln in row_runs:
                        dym_m[:, d0:d0 + ln] = g3[:, s0:s0 + ln]
                    dwn_m = _prefix(dwn, (n, km, crs_l))
                    np.matmul(dym_m, cols_b3_lT, out=dwn_m)
                    red_m = _prefix(red_buf, (km, crs_l))
                    np.add.reduce(dwn_m, axis=0, out=red_m)
                    red4 = red_m.reshape(km, cl, r, s)
                    if w_out is None:
                        dw4 = np.zeros((k, c, r, s), dtype)
                    else:
                        dw4 = w_out.reshape(k, c, r, s)
                        w_out3.fill(0)
                    for dk, sk, nk in row_runs:
                        for dc, sc, nc in in_live_runs:
                            dw4[sk:sk + nk, sc:sc + nc] = \
                                red4[dk:dk + nk, dc:dc + nc]
                    F._give_grad(w_t, w_out if w_out is not None else dw4)
                    stats.dw_sparse_steps += 1
                    stats.relu_extra_rows += dead_rows - min_dead_rows
                    return
            ensure_dense_cols()
            np.matmul(g3, cols_bT, out=dwn)
            if w_out is None:
                dw = np.add.reduce(dwn, axis=0).reshape(k, c, r, s)
            else:
                np.add.reduce(dwn, axis=0, out=w_out3)
                dw = w_out
            F._give_grad(w_t, dw)
            stats.dw_dense_steps += 1

        # -- dx (phase "b") -------------------------------------------------
        sink_x = self._sink_donate(x) if need_dx else None
        if need_dx and stride == 1 and r > padding and s > padding:
            pr, ps = r - 1 - padding, s - 1 - padding
            hyp, wyp = ho + 2 * pr, wo + 2 * ps
            wf4 = self._bwd_buf(rec, (c, k, r, s), dtype, tag="conv2d.wf",
                                phase="b")
            wf2 = wf4.reshape(c, k * r * s)
            dx3 = self._grad_buf(rec, x, (n, c, h * wd), dtype, late=True)
            dx4 = dx3.reshape(n, c, h, wd)
            dyc6 = self._bwd_buf(rec, (n, k, r, s, h, wd), dtype,
                                 tag="conv2d.dyc", phase="b")
            dyc3 = dyc6.reshape(n, k * r * s, h * wd)
            if self.mem is not None:
                dyp = self._bwd_buf(rec, (n, k, hyp, wyp), dtype,
                                    tag="conv2d.dyp", phase="b")
            else:
                dyp = np.empty((n, k, hyp, wyp), dtype)
            dyp_core = dyp[:, :, pr:ho + pr, ps:wo + ps]
            dywT = _conv._windows(dyp, r, s, 1).transpose(0, 1, 4, 5, 2, 3)
            dyp_l = _prefix(dyp, (n, kl, hyp, wyp))
            dyp_l_core = dyp_l[:, :, pr:ho + pr, ps:wo + ps]
            dywT_l = _conv._windows(dyp_l, r, s, 1) \
                .transpose(0, 1, 4, 5, 2, 3)
            dyc6_l = _prefix(dyc6, (n, kl, r, s, h, wd))
            dyc3_l = dyc6_l.reshape(n, kl * r * s, h * wd)
            wf_l2 = _prefix(wf4, (cl, kl * r * s))
            wf_l4 = wf_l2.reshape(cl, kl, r, s)
            dxl = self._bwd_buf(rec, (n, cl, h * wd), dtype,
                                tag="conv2d.sp.dxl", phase="b")
            wflip = w4[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
            # Dual-layout staging: re-zero per step in both modes whenever
            # borders exist (cf. xp above).
            rezero = bool(pr or ps)

            def compute_dx(g: np.ndarray) -> np.ndarray:
                if gate.use_dx and state.enabled:
                    if rezero:
                        dyp.fill(0)
                    for d0, s0, ln in out_live_runs:
                        dyp_l_core[:, d0:d0 + ln] = g[:, s0:s0 + ln]
                    np.copyto(dyc6_l, dywT_l)
                    for dc, sc, nc in in_live_runs:
                        for dk, sk, nk in out_live_runs:
                            wf_l4[dc:dc + nc, dk:dk + nk] = \
                                wflip[sc:sc + nc, sk:sk + nk]
                    np.matmul(wf_l2, dyc3_l, out=dxl)
                    for _, s0, ln in in_dead_runs:
                        dx3[:, s0:s0 + ln] = 0
                    for d0, s0, ln in in_live_runs:
                        dx3[:, s0:s0 + ln] = dxl[:, d0:d0 + ln]
                    stats.dx_sparse_steps += 1
                    return dx4
                if rezero:
                    dyp.fill(0)
                np.copyto(dyp_core, g)
                np.copyto(dyc6, dywT)
                np.copyto(wf4, wflip)
                np.matmul(wf2, dyc3, out=dx3)
                return dx4
        elif need_dx:
            # Strided scatter-add dx: always dense (no compacted form is
            # calibrated for the scatter lowering).
            hp, wp = h + 2 * padding, wd + 2 * padding
            w3T = w3.T
            dcols = self._bwd_buf(rec, (n, crs, p), dtype,
                                  tag="conv2d.dcols", phase="b")
            d6 = dcols.reshape(n, c, r, s, ho, wo)
            dxp = self._grad_buf(rec, x, (n, c, hp, wp), dtype, zero=True,
                                 late=True, tag="conv2d.dxp")
            if padding > 0:
                dx_view = dxp[:, :, padding:padding + h, padding:padding + wd]
            else:
                dx_view = dxp

            def compute_dx(g: np.ndarray) -> np.ndarray:
                np.matmul(w3T, g.reshape(n, k, p), out=dcols)
                dxp.fill(0)
                for ri in range(r):
                    h_end = ri + stride * ho
                    for si in range(s):
                        w_end = si + stride * wo
                        dxp[:, :, ri:h_end:stride, si:w_end:stride] += \
                            d6[:, :, ri, si]
                return dx_view
        else:
            compute_dx = None

        if split_bwd:
            def bwd_dw() -> None:
                g = grads[o]
                if g is None:
                    return
                give_dw(g.reshape(n, k, p))
                give_b(g)

            def bwd_dx() -> None:
                g = grads[o]
                if g is None:
                    return
                sink_x(compute_dx(g))
            return fwd, (bwd_dw, bwd_dx, _release_fin(grads, o))

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            give_dw(g.reshape(n, k, p))
            # Extract dw/db before the dx phase: the arena may lay the
            # phase-"b" staging over dwn's bytes.
            give_b(g)
            if compute_dx is not None:
                sink_x(compute_dx(g))
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_conv2d_generic(self, rec: _Record):
        x, weight, bias = rec.inputs
        stride, padding, need_dx = rec.attrs
        rd_x = self._reader(x)
        w_t = self._leaf(weight)
        b_t = self._leaf(bias)
        x_shape = x.data.shape
        o = self.tape.slot_of[id(rec.out)]
        values, ctxs, grads = (self.plan._values, self.plan._ctxs,
                               self.plan._grads)
        if not self.keep_ctx:
            def fwd() -> None:
                y, ctx = _conv.conv2d_forward(
                    rd_x(), w_t.data,
                    b_t.data if b_t is not None else None, stride, padding)
                _conv.release_ctx(ctx)
                values[o] = y
            return fwd, None

        def fwd() -> None:
            y, ctx = _conv.conv2d_forward(
                rd_x(), w_t.data,
                b_t.data if b_t is not None else None, stride, padding)
            values[o] = y
            ctxs[o] = ctx

        sink_x = self._sink_donate(x) if need_dx else None
        from . import functional as F

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            dx, dw, db = _conv.conv2d_backward(
                g, ctxs[o], x_shape, w_t.data, stride, padding,
                need_dx=need_dx, need_db=b_t is not None)
            if dx is not None:
                sink_x(dx)
            _conv.release_ctx(ctxs[o])
            ctxs[o] = None
            F._give_grad(w_t, dw)
            if b_t is not None:
                F._give_grad(b_t, db)
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_linear(self, rec: _Record):
        x, weight, bias = rec.inputs
        rd_x = self._reader(x)
        w_t = self._leaf(weight)
        b_t = self._leaf(bias)
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads

        if self.row_stable and not self.keep_ctx:
            # Serving lowering: one GEMM per sample via the 3-D batched
            # matmul.  2-D GEMM rows are not bit-stable across the batch
            # dimension (BLAS picks different kernels/blockings per M), so
            # the standard lowering breaks the serve tier's contract that
            # padding and batching never perturb a request's logits.  The
            # per-sample form is bit-identical to ``x[i:i+1] @ W.T + b``
            # for every row at every batch size.
            def fwd() -> None:
                xv = rd_x()
                y = np.matmul(xv[:, None, :], w_t.data.T)[:, 0, :]
                if b_t is not None:
                    y = y + b_t.data
                values[o] = y
        else:
            def fwd() -> None:
                y = rd_x() @ w_t.data.T
                if b_t is not None:
                    y = y + b_t.data
                values[o] = y

        if not self.keep_ctx:
            return fwd, None
        sink_x = self._sink_donate(x)
        w_out = self._leaf_out(rec, w_t)
        b_out = self._leaf_out(rec, b_t)
        from . import functional as F

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            sink_x(np.matmul(g, w_t.data))
            if w_out is None:
                F._give_grad(w_t, np.matmul(g.T, rd_x()))
            else:
                np.matmul(g.T, rd_x(), out=w_out)
                F._give_grad(w_t, w_out)
            if b_t is not None:
                if b_out is None:
                    F._give_grad(b_t, g.sum(axis=0))
                else:
                    g.sum(axis=0, out=b_out)
                    F._give_grad(b_t, b_out)
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_batch_norm(self, rec: _Record):
        x, gamma, beta = rec.inputs
        _rm, _rv, _mom, _eps, training, relu_flag = rec.attrs
        if training and (relu_flag or ws.config.fused_bnrelu):
            return self._build_batch_norm_coef(rec)
        return self._build_batch_norm_generic(rec)

    def _build_batch_norm_coef(self, rec: _Record):
        """Specialized training-mode BN (affine-folded), preplanned buffers.

        Performs the identical operation sequence as
        ``ops.norm.batchnorm_forward`` / ``_coef_backward`` — including the
        in-place running-statistics EMA — but writes the full-size passes
        (``y``, the ReLU-masked gradient, ``dx``) into plan-owned stable
        arrays via ``out=``, eliminating the per-step activation/gradient
        allocations and pool traffic while keeping results bit-exact.
        """
        x, gamma, beta = rec.inputs
        rm, rv, momentum, eps, training, relu_flag = rec.attrs
        rd_x = self._reader(x)
        g_t = self._leaf(gamma)
        b_t = self._leaf(beta)
        n, c, h, w = x.data.shape
        m = n * h * w
        dtype = x.data.dtype
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads
        from . import functional as F
        y = self._value_buf(rec, (n, c, h, w), dtype)
        #: (x, mu, inv_std) of the current step, for the backward thunk
        box: List[Optional[tuple]] = [None]
        keep = self.keep_ctx

        def fwd() -> None:
            xv = rd_x()
            x3 = xv.reshape(n, c, h * w)
            # np.add.reduce + in-place divide is bit-identical to
            # x3.mean(axis=(0, 2)) (it is exactly what np.mean does
            # internally) without the per-call wrapper overhead.
            mu = np.add.reduce(x3, axis=(0, 2))
            np.true_divide(mu, m, out=mu, casting="unsafe")
            ex2 = np.einsum("ncp,ncp->c", x3, x3) / m
            var = np.maximum(ex2 - mu * mu, 0.0)
            # Observe batch statistics exactly where the eager kernel does
            # (before the EMA): elastic workers ship (mu, var) per BN layer
            # to the coordinator through this sink.  Dynamic lookup — the
            # sink is installed per process, after plans may already exist.
            sink = _norm._BN_STATS_SINK
            if sink is not None:
                sink(rm, mu, var)
            # In-place EMA exactly as the eager kernel (*=, += forms).
            np.multiply(rm, 1.0 - momentum, out=rm)
            np.add(rm, momentum * mu, out=rm)
            np.multiply(rv, 1.0 - momentum, out=rv)
            np.add(rv, momentum * var, out=rv)
            inv_std = 1.0 / np.sqrt(var + eps)
            a = g_t.data * inv_std
            b = b_t.data - mu * a
            np.multiply(xv, a[None, :, None, None], out=y)
            np.add(y, b[None, :, None, None], out=y)
            if relu_flag:
                np.maximum(y, 0, out=y)
            values[o] = y
            if keep:
                box[0] = (xv, mu, inv_std)

        if not keep:
            return fwd, None

        sink_x = self._sink_donate(x)
        g_out = self._leaf_out(rec, g_t)
        b_out = self._leaf_out(rec, b_t)
        dx = self._grad_buf(rec, x, (n, c, h, w), dtype)
        gbuf = self._bwd_buf(rec, (n, c, h, w), dtype, tag="batch_norm.g")
        if relu_flag:
            mask = self._bwd_buf(rec, (n, c, h, w), bool,
                                 tag="batch_norm.mask")

        def bwd() -> None:
            gr = grads[o]
            if gr is None:
                return
            xv, mu, inv_std = box[0]
            box[0] = None
            if relu_flag:
                np.greater(y, 0, out=mask)
                np.multiply(gr, mask, out=gbuf)
                g = gbuf
            else:
                g = gr
            g3 = g.reshape(n, c, h * w)
            if b_out is None:
                dbeta = np.add.reduce(g3, axis=(0, 2))
            else:
                dbeta = np.add.reduce(g3, axis=(0, 2), out=b_out)
            sgx = np.einsum("ncp,ncp->c", g3, xv.reshape(n, c, h * w))
            if g_out is None:
                dgamma = (sgx - mu * dbeta) * inv_std
            else:
                # Same op sequence as above, landing in the bound sink:
                # (sgx - mu*dbeta) is written onto the per-call sgx array.
                np.subtract(sgx, mu * dbeta, out=sgx)
                dgamma = np.multiply(sgx, inv_std, out=g_out)
            c1 = (g_t.data * inv_std).astype(dtype, copy=False)
            c2 = (-(c1 * inv_std * dgamma) / m).astype(dtype, copy=False)
            c0 = (-(c1 * dbeta) / m - c2 * mu).astype(dtype, copy=False)
            np.multiply(xv, c2[None, :, None, None], out=dx)
            np.multiply(g, c1[None, :, None, None], out=gbuf)
            np.add(dx, gbuf, out=dx)
            np.add(dx, c0[None, :, None, None], out=dx)
            sink_x(dx)
            F._give_grad(g_t, dgamma)
            F._give_grad(b_t, dbeta)
            ws.release(gr)
            grads[o] = None
        return fwd, bwd

    def _build_batch_norm_generic(self, rec: _Record):
        x, gamma, beta = rec.inputs
        rm, rv, momentum, eps, training, relu_flag = rec.attrs
        rd_x = self._reader(x)
        g_t = self._leaf(gamma)
        b_t = self._leaf(beta)
        o = self.tape.slot_of[id(rec.out)]
        values, ctxs, grads = (self.plan._values, self.plan._ctxs,
                               self.plan._grads)
        if not self.keep_ctx:
            def fwd() -> None:
                y, _cache = _norm.batchnorm_forward(
                    rd_x(), g_t.data, b_t.data, rm, rv, momentum, eps,
                    training, relu=relu_flag)
                values[o] = y
            return fwd, None

        def fwd() -> None:
            y, cache = _norm.batchnorm_forward(
                rd_x(), g_t.data, b_t.data, rm, rv, momentum, eps,
                training, relu=relu_flag)
            values[o] = y
            ctxs[o] = cache

        sink_x = self._sink_donate(x)
        from . import functional as F
        bn_bwd = _norm.batchnorm_backward if training \
            else _norm.batchnorm_eval_backward

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            dx, dgamma, dbeta = bn_bwd(g, ctxs[o])
            sink_x(dx)
            F._give_grad(g_t, dgamma)
            F._give_grad(b_t, dbeta)
            ctxs[o] = None
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_relu(self, rec: _Record):
        (x,) = rec.inputs
        rd_x = self._reader(x)
        shape = rec.out.data.shape
        dtype = rec.out.data.dtype
        # Shape-preserving: overwrite the input's slab in place when the
        # planner proves the input value is dead after this forward.
        y = self._value_buf(rec, shape, dtype, alias_from=x)
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads

        def fwd() -> None:
            np.maximum(rd_x(), 0, out=y)
            values[o] = y

        if not self.keep_ctx:
            return fwd, None
        sink_x = self._sink_donate(x)
        mask = self._bwd_buf(rec, shape, bool, tag="relu.mask")
        prod = self._grad_buf(rec, x, shape, dtype)

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            np.greater(y, 0, out=mask)
            np.multiply(g, mask, out=prod)
            sink_x(prod)
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_add_relu(self, rec: _Record):
        a, b = rec.inputs
        rd_a, rd_b = self._reader(a), self._reader(b)
        shape = rec.out.data.shape
        dtype = rec.out.data.dtype
        # The residual join is the planner's main aliasing site: the BN
        # output feeding it is single-consumed, so y can overwrite it.
        # Elementwise add/maximum tolerate out= aliasing either operand.
        alias_from = None
        if self.lt is not None:
            if self.lt.alias_ok(a, rec):
                alias_from = a
            elif self.lt.alias_ok(b, rec):
                alias_from = b
        y = self._value_buf(rec, shape, dtype, alias_from=alias_from)
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads

        def fwd() -> None:
            np.add(rd_a(), rd_b(), out=y)
            np.maximum(y, 0, out=y)
            values[o] = y

        if not self.keep_ctx:
            return fwd, None
        sink_a, sink_b = self._sink_donate(a), self._sink_donate(b)
        mask = self._bwd_buf(rec, shape, bool, tag="add_relu.mask")
        # Two product buffers: the eager backward donates a *separate*
        # masked gradient to each parent.
        prod_a = self._grad_buf(rec, a, shape, dtype, tag="add_relu.da")
        prod_b = self._grad_buf(rec, b, shape, dtype, tag="add_relu.db")

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            np.greater(y, 0, out=mask)
            np.multiply(g, mask, out=prod_a)
            sink_a(prod_a)
            np.multiply(g, mask, out=prod_b)
            sink_b(prod_b)
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_add(self, rec: _Record):
        a, b = rec.inputs
        rd_a, rd_b = self._reader(a), self._reader(b)
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads

        def fwd() -> None:
            values[o] = rd_a() + rd_b()

        if not self.keep_ctx:
            return fwd, None
        sink_a, sink_b = self._sink_copy(a), self._sink_copy(b)

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            sink_a(g)
            sink_b(g)
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_reshape(self, rec: _Record):
        (x,) = rec.inputs
        orig_shape = rec.attrs
        out_shape = rec.out.data.shape
        rd_x = self._reader(x)
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads

        def fwd() -> None:
            values[o] = rd_x().reshape(out_shape)

        if not self.keep_ctx:
            return fwd, None
        sink_x = self._sink_copy(x)

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            sink_x(g.reshape(orig_shape))
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_max_pool2d(self, rec: _Record):
        (x,) = rec.inputs
        k = rec.attrs
        x_shape = x.data.shape
        rd_x = self._reader(x)
        o = self.tape.slot_of[id(rec.out)]
        values, ctxs, grads = (self.plan._values, self.plan._ctxs,
                               self.plan._grads)

        if not self.keep_ctx:
            def fwd() -> None:
                y, _mask = _pool.maxpool2d_forward(rd_x(), k)
                values[o] = y
            return fwd, None

        def fwd() -> None:
            y, mask = _pool.maxpool2d_forward(rd_x(), k)
            values[o] = y
            ctxs[o] = mask

        sink_x = self._sink_donate(x)

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            sink_x(_pool.maxpool2d_backward(g, ctxs[o], k, x_shape))
            ctxs[o] = None
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_avg_pool2d(self, rec: _Record):
        (x,) = rec.inputs
        k = rec.attrs
        x_shape = x.data.shape
        rd_x = self._reader(x)
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads

        def fwd() -> None:
            values[o] = _pool.avgpool2d_forward(rd_x(), k)

        if not self.keep_ctx:
            return fwd, None
        sink_x = self._sink_donate(x)

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            sink_x(_pool.avgpool2d_backward(g, k, x_shape))
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_global_avg_pool(self, rec: _Record):
        (x,) = rec.inputs
        x_shape = x.data.shape
        rd_x = self._reader(x)
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads

        def fwd() -> None:
            values[o] = _pool.global_avgpool_forward(rd_x())

        if not self.keep_ctx:
            return fwd, None
        sink_x = self._sink_donate(x)

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            sink_x(_pool.global_avgpool_backward(g, x_shape))
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_cross_entropy(self, rec: _Record):
        (logits,) = rec.inputs
        rd_l = self._reader(logits)
        out_dtype = rec.out.data.dtype
        o = self.tape.slot_of[id(rec.out)]
        values, ctxs, grads = (self.plan._values, self.plan._ctxs,
                               self.plan._grads)
        tbox = self.plan._tbox

        if not self.keep_ctx:
            def fwd() -> None:
                loss, _probs = _loss.cross_entropy_forward(rd_l(), tbox[0])
                values[o] = np.asarray(loss, dtype=out_dtype)
            return fwd, None

        def fwd() -> None:
            loss, probs = _loss.cross_entropy_forward(rd_l(), tbox[0])
            values[o] = np.asarray(loss, dtype=out_dtype)
            ctxs[o] = probs

        sink_l = self._sink_donate(logits)

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            sink_l(_loss.cross_entropy_backward(ctxs[o], tbox[0]) * g)
            ctxs[o] = None
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_pad_channels(self, rec: _Record):
        (x,) = rec.inputs
        total = rec.attrs
        n, c, h, w = x.data.shape
        dtype = x.data.dtype
        rd_x = self._reader(x)
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads

        def fwd() -> None:
            out = np.zeros((n, total, h, w), dtype=dtype)
            out[:, :c] = rd_x()
            values[o] = out

        if not self.keep_ctx:
            return fwd, None
        sink_x = self._sink_copy(x)

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            sink_x(g[:, :c])
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_gather_channels(self, rec: _Record):
        (x,) = rec.inputs
        idx = rec.attrs
        x_shape = x.data.shape
        rd_x = self._reader(x)
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads

        def fwd() -> None:
            values[o] = np.ascontiguousarray(rd_x()[:, idx])

        if not self.keep_ctx:
            return fwd, None
        sink_x = self._sink_copy(x)

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            full = np.zeros(x_shape, dtype=g.dtype)
            full[:, idx] = g
            sink_x(full)
            ws.release(g)
            grads[o] = None
        return fwd, bwd

    def _build_scatter_channels(self, rec: _Record):
        (x,) = rec.inputs
        idx, total = rec.attrs
        n, _c, h, w = x.data.shape
        dtype = x.data.dtype
        rd_x = self._reader(x)
        o = self.tape.slot_of[id(rec.out)]
        values, grads = self.plan._values, self.plan._grads

        def fwd() -> None:
            out = np.zeros((n, total, h, w), dtype=dtype)
            out[:, idx] = rd_x()
            values[o] = out

        if not self.keep_ctx:
            return fwd, None
        sink_x = self._sink_copy(x)

        def bwd() -> None:
            g = grads[o]
            if g is None:
                return
            sink_x(np.ascontiguousarray(g[:, idx]))
            ws.release(g)
            grads[o] = None
        return fwd, bwd


class StepPlan:
    """A captured step, replayable as a flat list of kernel thunks.

    ``kind == "train"`` plans run forward + loss + backward and leave
    parameter gradients exactly where the eager step would (``param.grad``);
    ``kind == "forward"`` plans run inference only.  A plan is bound to the
    capture-time batch shape, engine configuration, and parameter shapes —
    :meth:`invalid_reason` performs the cheap per-replay stationarity check.
    """

    def __init__(self, kind: str, n_slots: int, input_slot: int):
        self.kind = kind
        self.n_slots = n_slots
        self._input_slot = input_slot
        self._values: List[Optional[np.ndarray]] = [None] * n_slots
        self._grads: List[Optional[np.ndarray]] = [None] * n_slots
        self._ctxs: List[object] = [None] * n_slots
        self._tbox: List[object] = [None]
        self._fwd: List[Callable[[], None]] = []
        self._bwd: List[Callable[[], None]] = []
        self._logits_slot = -1
        self._loss_slot = -1
        self._leaf_shapes: List[Tuple[Tensor, tuple]] = []
        self._n_ops = 0
        #: the arena planner backing this plan's buffers (None when the
        #: plan was built unplanned — mem_plan off or planner fallback)
        self._mem = None
        #: level-scheduled replay (:mod:`repro.tensor.parallel`): thunks
        #: grouped into dependency levels, or None for serial replay.
        #: ``_bwd`` always holds the flat serial order regardless.
        self._levels: Optional[List[List[Callable[[], None]]]] = None
        self._level_names: Optional[List[List[str]]] = None
        self._workers = 1
        self._schedule = None
        #: zero-copy gradient sinks baked into this plan's thunks:
        #: ``id(leaf Tensor) -> bound destination array`` (the elastic
        #: worker's shared-memory segment).  Empty when no binding was
        #: installed at capture time.
        self._sink_bound: Dict[int, np.ndarray] = {}
        #: ``id(leaf Tensor) -> id(record)`` of the op whose backward
        #: writes that leaf's gradient (single-use leaves only)
        self._leaf_sink_rec: Dict[int, int] = {}
        #: ``id(leaf Tensor) -> index into _bwd`` of the thunk after which
        #: the leaf's gradient is final (filled by the assembler)
        self._leaf_bwd_idx: Dict[int, int] = {}
        #: same, as an index into ``_levels`` for level-scheduled replay
        self._leaf_bwd_level: Dict[int, int] = {}
        #: comm-launch thunks spliced into replay: fired after the given
        #: backward thunk (serial) / after the given level (parallel)
        self._comm_at: Dict[int, List[Callable[[], None]]] = {}
        self._comm_at_level: Dict[int, List[Callable[[], None]]] = {}
        self.generation = ws.PLAN_GENERATION
        self.engine_sig = (ws.config.pooling, ws.config.fused_bnrelu,
                           ws.config.conv_impl, ws.config.mem_plan,
                           ws.config.parallel_replay,
                           ws.config.replay_workers,
                           ws.config.sparse_compute,
                           ws.config.sparse_min_gain)
        #: forward plans captured with the per-sample Linear lowering
        #: (see Tape.finalize_forward) — the serving tier's contract bit
        self.row_stable = False
        #: pinned plans skip the global generation check (see pin())
        self.pinned = False
        #: buffers released via release_buffers(); replay must fail loudly
        self._released = False

    # -- serving lifecycle -------------------------------------------------
    def pin(self) -> "StepPlan":
        """Exempt this plan from global-generation invalidation.

        The serving tier registers many models; every ``load_state_dict``
        bumps the *global* plan generation, which would purge model A's
        plans whenever model B loads.  A pinned plan trusts its owner (the
        serve registry) to guarantee the captured model is frozen — the
        engine-signature and parameter-shape checks still apply, only the
        generation comparison is skipped.  Never pin a training plan.
        """
        self.pinned = True
        return self

    def release_buffers(self) -> None:
        """Deterministically free this plan's buffers (serve eviction).

        Drops the thunk lists (whose closures hold the arena views) and
        releases the memplan arena handle, so ``live_arena_count()`` and
        the arena bytes fall immediately — no GC pass needed.  The plan is
        dead afterwards: any replay raises ``RuntimeError``.
        """
        self._released = True
        self._fwd = []
        self._bwd = []
        self._levels = None
        self._level_names = None
        self._comm_at.clear()
        self._comm_at_level.clear()
        self._values = [None] * self.n_slots
        self._grads = [None] * self.n_slots
        self._ctxs = [None] * self.n_slots
        self._leaf_shapes = []
        if self._mem is not None:
            self._mem.release()
            self._mem = None

    # -- validation --------------------------------------------------------
    def invalid_reason(self) -> Optional[str]:
        """Cheap stationarity check; ``None`` means the plan may replay."""
        if self._released:
            return "plan buffers released (plan was evicted)"
        if not self.pinned and self.generation != ws.PLAN_GENERATION:
            return "model reconfigured since capture"
        if (ws.config.pooling, ws.config.fused_bnrelu,
                ws.config.conv_impl, ws.config.mem_plan,
                ws.config.parallel_replay,
                ws.config.replay_workers,
                ws.config.sparse_compute,
                ws.config.sparse_min_gain) != self.engine_sig:
            return "engine configuration changed since capture"
        for t, shape in self._leaf_shapes:
            if t.data.shape != shape:
                return "parameter shape changed since capture"
        return None

    # -- plan-scheduled communication --------------------------------------
    def add_comm_thunk(self, leaf_ids: List[int],
                       fn: Callable[[], None]) -> bool:
        """Schedule ``fn`` to run as soon as every listed leaf's gradient
        is final during backward replay (the elastic worker's per-bucket
        launch notification).

        Returns ``False`` — caller must fall back to firing ``fn`` after
        the full replay — unless *every* leaf is both zero-copy bound (its
        gradient lands in shared memory with no post-run copy) and tracked
        to a backward thunk.  On a level-scheduled plan the launch is
        deferred to the end of the latest level touching the bucket, since
        thunks within a level may complete in any order.
        """
        if self.kind != "train":
            return False
        for lid in leaf_ids:
            if lid not in self._sink_bound or lid not in self._leaf_bwd_idx:
                return False
            if self._levels is not None and lid not in self._leaf_bwd_level:
                return False
        idx = max(self._leaf_bwd_idx[lid] for lid in leaf_ids)
        self._comm_at.setdefault(idx, []).append(fn)
        if self._levels is not None:
            lvl = max(self._leaf_bwd_level[lid] for lid in leaf_ids)
            self._comm_at_level.setdefault(lvl, []).append(fn)
        return True

    def clear_comm_thunks(self) -> None:
        """Remove every scheduled comm launch (plan reverts to pure
        compute; the serial-comm path fires notifications itself)."""
        self._comm_at.clear()
        self._comm_at_level.clear()

    # -- memory reporting --------------------------------------------------
    def mem_metrics(self) -> Optional[Dict[str, float]]:
        """The arena planner's exact footprint numbers, or ``None`` for
        an unplanned build."""
        return self._mem.metrics() if self._mem is not None else None

    # -- replay ------------------------------------------------------------
    def run(self, x: np.ndarray, targets: np.ndarray
            ) -> Tuple[np.ndarray, np.ndarray]:
        """Replay one training step; returns ``(loss, logits)`` arrays.

        The caller is responsible for ``optimizer.zero_grad()`` before and
        ``optimizer.step()`` after, exactly as around an eager step.
        """
        if self._released:
            raise RuntimeError("cannot replay a released plan")
        t0 = time.perf_counter()
        values = self._values
        grads = self._grads
        values[self._input_slot] = x
        self._tbox[0] = targets
        if self._levels is not None:
            self._run_levels()
            loss = values[self._loss_slot]
            logits = values[self._logits_slot]
        else:
            for f in self._fwd:
                f()
            loss = values[self._loss_slot]
            logits = values[self._logits_slot]
            grads[self._loss_slot] = np.ones_like(loss)
            comm = self._comm_at
            if comm:
                for i, b in enumerate(self._bwd):
                    b()
                    fns = comm.get(i)
                    if fns is not None:
                        for fn in fns:
                            fn()
            else:
                for b in self._bwd:
                    b()
        # Drop activation references eagerly (peak-memory parity with the
        # eager engine, whose graph teardown frees them in backward()).
        for i in range(self.n_slots):
            values[i] = None
            grads[i] = None
            self._ctxs[i] = None
        self._tbox[0] = None
        STATS.replays += 1
        STATS.replay_seconds += time.perf_counter() - t0
        return loss, logits

    def _run_levels(self) -> None:
        """Level-scheduled replay on the worker pool.

        Each level's thunks are mutually independent (the schedule proves
        it); levels execute in order with a barrier between them.  BLAS is
        clamped to one thread per call while the pool is active so the
        replay threads don't oversubscribe cores that BLAS already uses.
        """
        pool = _par.get_pool(self._workers)
        stats = _par.STATS
        t0 = time.perf_counter()
        level_times: List[float] = []
        comm = self._comm_at_level
        with pool.caller_lock, _par.limit_blas_threads(1):
            for li, level in enumerate(self._levels):
                lt0 = time.perf_counter()
                pool.run_level(level)
                fns = comm.get(li)
                if fns is not None:
                    # Fired on the coordinator thread after the level
                    # barrier — every sink thunk of the bucket has retired.
                    for fn in fns:
                        fn()
                    stats.comm_thunks_fired += len(fns)
                level_times.append(time.perf_counter() - lt0)
        stats.replays += 1
        stats.levels_run += len(self._levels)
        stats.thunks_run += sum(len(lvl) for lvl in self._levels)
        stats.replay_seconds += time.perf_counter() - t0
        stats.last_levels = [(len(self._levels[i]), dt)
                             for i, dt in enumerate(level_times)]

    def replay_timed(self, x: np.ndarray, targets: np.ndarray):
        """Replay one step on the calling thread, timing every thunk.

        Parallel plans only.  Executes level by level (nodes of one level
        in order) — level order is a valid topological order, and, unlike
        the flat serial order, respects the level-timed arena layout this
        plan was packed against.  Returns ``(loss, logits, level_seconds)``
        with ``level_seconds[i][j]`` the wall time of level ``i``'s
        ``j``-th thunk — the per-level input for the benchmark's
        critical-path schedule model.
        """
        if self._levels is None:
            raise RuntimeError("replay_timed requires a parallel plan")
        values = self._values
        grads = self._grads
        values[self._input_slot] = x
        self._tbox[0] = targets
        level_seconds: List[List[float]] = []
        for level in self._levels:
            times = []
            for fn in level:
                t = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t)
            level_seconds.append(times)
        loss = values[self._loss_slot]
        logits = values[self._logits_slot]
        for i in range(self.n_slots):
            values[i] = None
            grads[i] = None
            self._ctxs[i] = None
        self._tbox[0] = None
        return loss, logits, level_seconds

    def run_forward(self, x: np.ndarray) -> np.ndarray:
        """Replay a forward-only plan; returns the logits array."""
        if self._released:
            raise RuntimeError("cannot replay a released plan")
        t0 = time.perf_counter()
        values = self._values
        values[self._input_slot] = x
        for f in self._fwd:
            f()
        logits = values[self._logits_slot]
        for i in range(self.n_slots):
            values[i] = None
        STATS.replays += 1
        STATS.replay_seconds += time.perf_counter() - t0
        return logits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StepPlan(kind={self.kind!r}, ops={self._n_ops}, "
                f"slots={self.n_slots}, generation={self.generation})")


class PlanCache:
    """Shape-keyed LRU plan cache that self-clears on generation bumps.

    Values are either a :class:`StepPlan` or a ``str`` fallback reason (a
    capture-failure sentinel, so an uncompilable step is attempted once per
    stationary phase, not once per batch).

    Stale-generation entries are purged eagerly on *every* access —
    ``store`` included, so a store right after a reconfiguration can never
    re-stamp dead plans (and their arenas) with the new generation.  The
    ``max_entries`` cap bounds growth across dynamic-batch tails: a run
    that keeps (batch, tail-batch) pairs per stationary phase stays small,
    but a pathological key churn evicts least-recently-used plans instead
    of accumulating arenas for the life of the trainer.

    ``auto_purge=False`` turns the generation sweep off — the serving
    registry's per-model caches hold *pinned* plans whose validity is
    scoped to the registry entry, not the global generation (loading one
    model must not purge another model's hot plans).  LRU-evicted plans
    then get their buffers released eagerly, since nothing else will.
    """

    def __init__(self, max_entries: int = 8, auto_purge: bool = True) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._plans: Dict[tuple, object] = {}
        self._generation = ws.PLAN_GENERATION
        self.max_entries = max_entries
        self.auto_purge = auto_purge
        self.evictions = 0
        # Lookups/stores may race a generation bump from another thread
        # (ws.invalidate_plans is atomic on its side); RLock because
        # lookup/store call purge_stale internally.
        self._lock = threading.RLock()

    def purge_stale(self) -> None:
        """Drop every entry captured before the current plan generation."""
        if not self.auto_purge:
            return
        with self._lock:
            gen = ws.plan_generation()
            if self._generation != gen:
                self._plans.clear()
                self._generation = gen

    def lookup(self, key: tuple):
        with self._lock:
            self.purge_stale()
            value = self._plans.get(key)
            if value is not None:
                # Refresh LRU position (dict preserves insertion order).
                self._plans.pop(key)
                self._plans[key] = value
            return value

    def store(self, key: tuple, value) -> None:
        with self._lock:
            self.purge_stale()
            self._plans.pop(key, None)
            self._plans[key] = value
            while len(self._plans) > self.max_entries:
                oldest = next(iter(self._plans))
                old = self._plans.pop(oldest)
                self.evictions += 1
                # Pinned serve plans are owned by this cache alone; free
                # their arenas now instead of waiting on the GC.
                if not self.auto_purge and isinstance(old, StepPlan):
                    old.release_buffers()

    def drop(self, key: tuple) -> None:
        with self._lock:
            self._plans.pop(key, None)

    def clear(self, release: bool = False) -> None:
        """Drop every entry; ``release=True`` also frees plan buffers
        (the serve registry's evict path)."""
        with self._lock:
            if release:
                for v in self._plans.values():
                    if isinstance(v, StepPlan):
                        v.release_buffers()
            self._plans.clear()

    def keys(self) -> List[tuple]:
        """Snapshot of cached keys in LRU order (oldest first)."""
        with self._lock:
            return list(self._plans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


# ---------------------------------------------------------------------------
# capture helpers (the trainer's entry points)
# ---------------------------------------------------------------------------
def capture_training_step(model, x: np.ndarray, targets: np.ndarray):
    """Run one eager forward+loss under capture and compile a train plan.

    Returns ``(plan, loss, logits, reason)``.  The forward/loss here *are*
    the step's eager computation (capture only observes), so on success or
    failure alike the caller finishes the step with ``loss.backward()`` and
    the optimizer — the captured batch is bit-identical to an uncaptured
    one, and the plan takes over from the next batch.
    """
    from . import functional as F
    t0 = time.perf_counter()
    # cross_entropy re-wraps targets with np.asarray; pre-wrap here so the
    # recorded attrs object is identical and finalize's identity check holds.
    targets = np.asarray(targets)
    tape = Tape()
    with tape:
        xt = tape.input(x)
        logits = model(xt)
        loss = F.cross_entropy(logits, targets)
    plan, reason = tape.finalize_training(loss, logits, targets)
    if plan is not None:
        STATS.captures += 1
        STATS.capture_seconds += time.perf_counter() - t0
    else:
        STATS.fallbacks += 1
        STATS.last_fallback_reason = reason or "capture failed"
    return plan, loss, logits, reason


def capture_forward(model, x: np.ndarray, *, row_stable: bool = False):
    """Run one inference forward under capture; compile a forward plan.

    Returns ``(plan, logits, reason)``.  Runs under ``no_grad`` (building a
    graph that is never backwarded would strand pooled staging buffers).
    ``row_stable=True`` requests the serving lowering — see
    :meth:`Tape.finalize_forward`.  Note the returned ``logits`` come from
    the eager capture pass (standard lowering); a caller needing
    row-stable outputs must replay the plan.
    """
    t0 = time.perf_counter()
    tape = Tape()
    with tape, no_grad():
        xt = tape.input(x)
        logits = model(xt)
    plan, reason = tape.finalize_forward(logits, row_stable=row_stable)
    if plan is not None:
        STATS.captures += 1
        STATS.capture_seconds += time.perf_counter() - t0
    else:
        STATS.fallbacks += 1
        STATS.last_fallback_reason = reason or "capture failed"
    return plan, logits, reason


class BatchPadder:
    """Reusable zero-padded staging buffer for one (batch, sample) shape.

    The serving tier replays a cached plan of batch ``B`` on ``n <= B``
    requests by staging them into this buffer; rows ``[n:B)`` are zeros.
    Under the row-stable plan contract pad rows cannot perturb real rows,
    but they are still re-zeroed after a larger previous stage so replay
    inputs are a pure function of the current request group.
    """

    def __init__(self, batch: int, sample_shape: tuple, dtype):
        self.batch = int(batch)
        self.sample_shape = tuple(sample_shape)
        self.buf = np.zeros((self.batch,) + self.sample_shape,
                            dtype=np.dtype(dtype))
        self._dirty = 0
        self.staged = 0
        self.padded_rows = 0

    def stage(self, x: np.ndarray) -> np.ndarray:
        """Copy ``x`` (``n <= batch`` samples) in; return the full buffer."""
        n = x.shape[0]
        if n > self.batch:
            raise ValueError(f"group of {n} exceeds padder batch {self.batch}")
        if tuple(x.shape[1:]) != self.sample_shape:
            raise ValueError(f"sample shape {x.shape[1:]} != "
                             f"{self.sample_shape}")
        self.buf[:n] = x
        if self._dirty > n:
            self.buf[n:self._dirty] = 0
        self._dirty = n
        self.staged += 1
        self.padded_rows += self.batch - n
        return self.buf
