"""Static memory planning for compiled step plans (liveness + arena).

PruneTrain's speedup story is a *memory* story as much as a FLOP story: the
paper grows the mini-batch to refill the device capacity that pruning frees
(Sec. 4.3, Fig. 9), so the peak training footprint is a first-class
performance quantity.  The compiled :class:`~repro.tensor.compile.StepPlan`
gives us the exact dataflow of one training step — every buffer, every
def/use — which makes the footprint *plannable* instead of merely observed.

This module provides the planner.  The plan builder describes each
plan-owned buffer as a :class:`Slab` with a **liveness interval** on the
step's execution timeline (forward thunks ``0..F-1``, then backward thunks
``F..F+B-1``): first definition to last use, honoring gradient donation
(a donated buffer lives until the producing op's backward consumes it); a
slab may also be declared *persistent* (cross-step state), which pins it
exclusively across the whole timeline.
:meth:`MemPlanner.solve` then assigns every slab an offset in a
single pre-allocated byte arena by greedy best-fit: slabs whose intervals
do not overlap share memory, and shape-preserving ops (ReLU, the residual
add+ReLU join) may *alias* their output directly onto their input's slab.
:meth:`MemPlanner.materialize` carves the arena into ndarray views; replay
thunks use them exactly like the private buffers they replace, so results
stay bit-identical while the plan's resident footprint drops from
*sum-of-all-buffers* to the liveness peak (plus fragmentation).

The planner's ``arena_bytes`` is also a *measured* capacity signal: divided
by the capture batch size it yields exact peak transient bytes per sample,
which :class:`repro.costmodel.memory.MemoryModel` can consume (via
``observe``) so dynamic mini-batch growth is driven by planned footprint
rather than the analytical estimate.

Lifecycle: arenas are owned by their plan.  Plans retire on
``workspace.PLAN_GENERATION`` bumps (pruning reconfiguration, checkpoint
restore) and are dropped by the trainer's ``PlanCache``; the weakref
registry here lets :func:`live_arena_bytes` report how many arena bytes are
currently resident without keeping any arena alive.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["Slab", "MemPlanner", "MemPlanStats", "STATS",
           "live_arena_bytes", "live_arena_count"]

#: Offset alignment for every slab (bytes).  64 keeps any float64 view
#: aligned and matches a cache line.
ALIGN = 64


class PlanError(Exception):
    """Raised when a buffer request cannot be planned or served."""


def _align(n: int) -> int:
    return (n + ALIGN - 1) // ALIGN * ALIGN


#: Interval end larger than any timeline: persistent slabs remapped onto a
#: different timeline must still overlap every other slab.
_FOREVER = 1 << 40


@dataclass
class Slab:
    """One plan-owned buffer request with its liveness interval.

    ``start``/``end`` are inclusive positions on the step timeline; a
    ``persistent`` slab keeps state across replays (zero-padded borders)
    and therefore spans the whole timeline exclusively.
    """

    shape: tuple
    dtype: np.dtype
    start: int
    end: int
    zero: bool = False
    persistent: bool = False
    tag: str = ""
    #: root slab this one aliases (shares memory with), or None
    alias_of: Optional["Slab"] = None
    offset: int = -1
    arr: Optional[np.ndarray] = None
    #: the original *serial* liveness interval as recorded by the builder.
    #: ``start``/``end`` above are what :meth:`MemPlanner.solve` packs on
    #: and may be rewritten by :meth:`MemPlanner.remap` (level-scheduled
    #: replay re-times every slab onto the level timeline); the serial
    #: ticks are kept so remapping is repeatable and auditable.
    s_start: int = -1
    s_end: int = -1
    #: every serial tick at which some thunk touches this buffer (defaults
    #: to the endpoints).  Needed for remapping: on the level timeline the
    #: serially-last toucher is not necessarily the one scheduled deepest,
    #: so a sound remap must span *all* touching thunks' levels.
    s_ticks: tuple = ()

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize

    def root(self) -> "Slab":
        s = self
        while s.alias_of is not None:
            s = s.alias_of
        return s


@dataclass
class MemPlanStats:
    """Process-wide planning accounting (surfaced by the profiler)."""

    plans: int = 0
    solve_seconds: float = 0.0
    #: last-solved plan's numbers
    arena_bytes: int = 0
    naive_bytes: int = 0
    peak_bytes: int = 0
    alias_buffers: int = 0
    #: planning attempts that fell back to unplanned buffers
    fallbacks: int = 0
    last_fallback_reason: str = ""

    def reset(self) -> None:
        self.plans = self.fallbacks = 0
        self.solve_seconds = 0.0
        self.arena_bytes = self.naive_bytes = self.peak_bytes = 0
        self.alias_buffers = 0
        self.last_fallback_reason = ""

    def as_dict(self) -> Dict[str, object]:
        return {"plans": self.plans,
                "solve_seconds": self.solve_seconds,
                "arena_bytes": self.arena_bytes,
                "naive_bytes": self.naive_bytes,
                "peak_bytes": self.peak_bytes,
                "alias_buffers": self.alias_buffers,
                "fallbacks": self.fallbacks,
                "last_fallback_reason": self.last_fallback_reason,
                "live_arenas": live_arena_count(),
                "live_arena_bytes": live_arena_bytes()}


#: Process-wide planner statistics (``PROFILER.summary()["_memplan"]``).
STATS = MemPlanStats()


class _ArenaHandle:
    """Weakref-able owner of one arena allocation (plain ndarrays cannot
    be weakly referenced)."""

    __slots__ = ("buf", "generation", "__weakref__")

    def __init__(self, buf: np.ndarray, generation: int):
        self.buf = buf
        self.generation = generation


_LIVE_ARENAS: List["weakref.ref[_ArenaHandle]"] = []


def _live_handles() -> List[_ArenaHandle]:
    alive = []
    dead = False
    for ref in _LIVE_ARENAS:
        h = ref()
        if h is None:
            dead = True
        else:
            alive.append(h)
    if dead:
        _LIVE_ARENAS[:] = [weakref.ref(h) for h in alive]
    return alive


def live_arena_bytes() -> int:
    """Total bytes of all arenas still referenced by a live plan."""
    return sum(h.buf.nbytes for h in _live_handles())


def live_arena_count() -> int:
    return len(_live_handles())


class MemPlanner:
    """Liveness-driven arena allocator for one step plan.

    Life of a planner (driven by the plan builder in two passes)::

        mem = MemPlanner(timeline_end)
        # pass 1 — the builder runs once in *plan* mode: every alloc()
        # records a Slab and returns a throwaway array of the right shape
        ... builder pass 1 ...
        mem.solve()          # greedy best-fit offset assignment
        mem.materialize(gen) # one arena; slabs become views into it
        # pass 2 — the builder runs again in *serve* mode: alloc() replays
        # the recorded request sequence and hands out the arena views
        ... builder pass 2 ...
        mem.finish()         # asserts pass 2 consumed every request

    The two passes must make identical requests (the builder is a pure
    function of the captured tape and engine config); any divergence
    raises :class:`PlanError` and the capture falls back to unplanned
    buffers.
    """

    def __init__(self, horizon: int):
        #: one past the last timeline position (persistent slabs span it all)
        self.horizon = horizon
        self.slabs: List[Slab] = []
        self._by_slot: Dict[int, Slab] = {}
        self.serving = False
        self._cursor = 0
        self.arena: Optional[np.ndarray] = None
        self._handle: Optional[_ArenaHandle] = None
        self.released = False
        self.arena_bytes = 0
        self.peak_bytes = 0
        self.alias_buffers = 0
        self.solve_seconds = 0.0
        #: bytes of leaf gradient sinks bound outside the arena (zero-copy
        #: shared-memory segments), keyed by leaf id — see note_external
        self._external: Dict[int, int] = {}

    # -- request / serve ---------------------------------------------------
    def alloc(self, shape: tuple, dtype, start: int, end: int, *,
              zero: bool = False, persistent: bool = False, tag: str = "",
              out_slot: Optional[int] = None,
              alias_slot: Optional[int] = None,
              ticks=None) -> np.ndarray:
        """Request (pass 1) or fetch (pass 2) one plan-owned buffer.

        ``out_slot`` registers the buffer as the value of a plan slot so a
        later shape-preserving consumer can alias onto it via
        ``alias_slot``.  Aliasing is honored only when the target slab
        exists with identical shape/dtype and is not persistent.
        ``ticks`` optionally lists every timeline position that touches
        the buffer (for :meth:`remap`); defaults to the endpoints.
        """
        dtype = np.dtype(dtype)
        if self.serving:
            if self._cursor >= len(self.slabs):
                raise PlanError("serve pass requested more buffers than "
                                "the planning pass recorded")
            slab = self.slabs[self._cursor]
            self._cursor += 1
            if slab.shape != tuple(shape) or slab.dtype != dtype:
                raise PlanError(
                    f"serve pass diverged from planning pass: "
                    f"{slab.shape}/{slab.dtype} vs {tuple(shape)}/{dtype}")
            return slab.arr
        if persistent:
            start, end = 0, self.horizon
        slab = Slab(tuple(shape), dtype, start, end, zero=zero,
                    persistent=persistent, tag=tag,
                    s_start=start, s_end=end,
                    s_ticks=tuple(ticks) if ticks else (start, end))
        if alias_slot is not None:
            target = self._by_slot.get(alias_slot)
            if (target is not None and not target.root().persistent
                    and target.shape == slab.shape
                    and target.dtype == slab.dtype):
                slab.alias_of = target.root()
        self.slabs.append(slab)
        if out_slot is not None:
            self._by_slot[out_slot] = slab
        # Throwaway array for the (discarded) pass-1 thunks: the builder
        # only needs the right shape/dtype to precompute its views.
        arr = np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
        return arr

    def slab_for_slot(self, slot: int) -> Optional[Slab]:
        return self._by_slot.get(slot)

    # -- layout ------------------------------------------------------------
    def remap(self, fn) -> None:
        """Re-time every slab's packing interval from its serial ticks.

        ``fn(s_ticks) -> (start, end)`` maps the recorded touch ticks onto
        a new timeline — parallel replay maps each touched thunk to its
        *level* span and takes the min/max, so slabs of thunks
        co-scheduled in one level get overlapping intervals and
        :meth:`solve` can never share bytes between them.  Persistent
        slabs always span everything.  Call before every :meth:`solve`
        when iterating on a schedule (``fn=None`` restores the recorded
        serial intervals).
        """
        if self.serving:
            raise PlanError("cannot remap a materialized plan")
        for s in self.slabs:
            if s.persistent:
                s.start, s.end = 0, _FOREVER
            elif fn is None:
                s.start, s.end = s.s_start, s.s_end
            else:
                s.start, s.end = fn(s.s_ticks)

    def solve(self) -> int:
        """Assign arena offsets (greedy best-fit); returns arena bytes.

        Aliased slabs collapse onto their root, which inherits the union
        of the group's intervals.  Roots are placed largest-first; each
        goes into the tightest gap among already-placed slabs whose
        intervals overlap its own (best fit), or extends the arena.

        Re-runnable: the arena growth guard for parallel schedules calls
        :meth:`remap` + ``solve`` repeatedly until the level-timed packing
        fits; all per-solve state is reset here.
        """
        t0 = time.perf_counter()
        self.alias_buffers = 0
        roots: List[Slab] = []
        for s in self.slabs:
            if s.alias_of is not None:
                r = s.root()
                r.start = min(r.start, s.start)
                r.end = max(r.end, s.end)
                self.alias_buffers += 1
            else:
                roots.append(s)
        order = sorted(roots, key=lambda s: (-s.nbytes, s.start))
        placed: List[Slab] = []
        arena_end = 0
        for s in order:
            if s.nbytes == 0:
                s.offset = 0
                continue
            need = _align(s.nbytes)
            live = sorted((p for p in placed
                           if p.start <= s.end and s.start <= p.end),
                          key=lambda p: p.offset)
            best = None      # (gap_slack, offset)
            cursor = 0
            for p in live:
                if p.offset > cursor:
                    gap = p.offset - cursor
                    if gap >= need and (best is None or gap - need < best[0]):
                        best = (gap - need, cursor)
                cursor = max(cursor, p.offset + _align(p.nbytes))
            s.offset = best[1] if best is not None else cursor
            placed.append(s)
            arena_end = max(arena_end, s.offset + _align(s.nbytes))
        self.arena_bytes = arena_end
        self.peak_bytes = self._liveness_peak(roots)
        self.solve_seconds = time.perf_counter() - t0
        return arena_end

    def _liveness_peak(self, roots: List[Slab]) -> int:
        """Max over time of simultaneously-live bytes (fragmentation-free
        lower bound on any arena layout)."""
        events: Dict[int, int] = {}
        for s in roots:
            if s.nbytes == 0:
                continue
            events[s.start] = events.get(s.start, 0) + s.nbytes
            events[s.end + 1] = events.get(s.end + 1, 0) - s.nbytes
        peak = cur = 0
        for t in sorted(events):
            cur += events[t]
            peak = max(peak, cur)
        return peak

    @property
    def naive_bytes(self) -> int:
        """What the unplanned builder would allocate: every buffer private."""
        return sum(s.nbytes for s in self.slabs)

    def materialize(self, generation: int) -> None:
        """Allocate the arena and turn every slab into a view into it."""
        if self.arena is not None:
            raise PlanError("arena already materialized")
        self.arena = np.empty(max(self.arena_bytes, 1), dtype=np.uint8)
        self._handle = _ArenaHandle(self.arena, generation)
        _LIVE_ARENAS.append(weakref.ref(self._handle))
        for s in self.slabs:
            root = s.root()
            if s.nbytes == 0:
                s.arr = np.empty(s.shape, s.dtype)
                continue
            view = self.arena[root.offset:root.offset + s.nbytes]
            s.arr = view.view(s.dtype).reshape(s.shape)
        for s in self.slabs:
            # Zero-init once; persistent borders rely on it across steps,
            # the rest matches the unplanned builder's np.zeros allocations.
            if s.zero and s.alias_of is None:
                s.arr.fill(0)
        self.serving = True
        self._cursor = 0
        STATS.plans += 1
        STATS.solve_seconds += self.solve_seconds
        STATS.arena_bytes = self.arena_bytes
        STATS.naive_bytes = self.naive_bytes
        STATS.peak_bytes = self.peak_bytes
        STATS.alias_buffers = self.alias_buffers

    def finish(self) -> None:
        """Assert the serve pass consumed exactly the recorded requests."""
        if self.serving and self._cursor != len(self.slabs):
            raise PlanError(
                f"serve pass consumed {self._cursor} of "
                f"{len(self.slabs)} planned buffers")

    def release(self) -> None:
        """Drop the arena, its handle, and every slab view.

        Deterministic eviction support for the serving tier: releasing the
        handle removes this arena from the ``weakref`` live registry on the
        spot (no GC dependence — the handle has no reference cycles), and
        dropping the slab views lets the arena bytes go as soon as the
        plan's thunks (which close over those views) are cleared.  The
        planner is unusable afterwards; callers discard the plan with it.
        """
        for s in self.slabs:
            s.arr = None
        self._by_slot.clear()
        self.arena = None
        self._handle = None
        self.released = True

    def note_external(self, key: int, nbytes: int) -> None:
        """Account a gradient-sink buffer served from *outside* the arena.

        Zero-copy gradient exchange (:mod:`repro.distributed`) binds leaf
        gradient sinks to shared-memory mmap segments whose offsets are
        fixed by the communication layout — the plan builder writes those
        gradients in place instead of requesting arena slabs, so the bytes
        are reported here rather than in ``arena_bytes``.  Keyed by leaf
        identity: both builder passes note the same sinks without double
        counting.
        """
        self._external[key] = int(nbytes)

    # -- reporting ---------------------------------------------------------
    @property
    def savings(self) -> float:
        """Fraction of the naive resident footprint the arena eliminates."""
        naive = self.naive_bytes
        return 1.0 - self.arena_bytes / naive if naive else 0.0

    def metrics(self) -> Dict[str, float]:
        return {"arena_bytes": float(self.arena_bytes),
                "naive_bytes": float(self.naive_bytes),
                "peak_bytes": float(self.peak_bytes),
                "alias_buffers": float(self.alias_buffers),
                "external_sink_bytes": float(sum(self._external.values())),
                "savings": self.savings}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemPlanner(slabs={len(self.slabs)}, "
                f"arena={self.arena_bytes / 1e6:.2f}MB, "
                f"naive={self.naive_bytes / 1e6:.2f}MB, "
                f"aliased={self.alias_buffers})")
