"""Sparsity-aware compute paths: dead-channel skipping for conv GEMMs.

PruneTrain creates structured sparsity *during* training: between
reconfigurations, channels below the group-lasso threshold are already
effectively dead (with ``zero_sparse`` they are exactly zero) but still cost
full GEMM columns until surgery removes them.  This module is the bridge
between the pruning side, which knows the dead sets, and the compute side,
which can skip them:

- **Registry** — :func:`publish` installs per-conv-weight dead channel sets
  (exported with hysteresis by :class:`repro.prune.tracker.DeadSetExporter`).
  Entries are keyed by the weight array's identity and validated on lookup,
  so stale sets can never leak across surgery.  A publish that changes the
  sets bumps ``PLAN_GENERATION`` (plans respecialize); an identical publish
  is free — the hysteresis contract that keeps oscillating channels from
  thrashing plans.

- **Gate** — :func:`conv_gate_for` decides, per conv GEMM signature, whether
  the sparse pipelines may engage.  The decision is a *measured* one: the
  dense and sparse pipelines run back to back on real capture data
  (:class:`repro.costmodel.time.SparseGemmCostModel`), and sparse is chosen
  only if the probe was **bit-identical** and the measured gain clears
  ``config.sparse_min_gain``.  The parity probe matters because BLAS kernels
  may pair multiply-accumulators differently when the reduction dimension
  shrinks: dropping exactly-zero *columns* from a GEMM reduction is
  bit-identical for most shapes but not all, while dropping output *rows*
  always is (rows are independent).  Parity at a shape signature is
  value-independent (kernel choice depends on shapes/strides), so one probe
  per signature per reconfiguration interval suffices.  Calibrations are
  cached per signature — the memory planner's sizer/assembler double build
  sees identical decisions — and invalidated on every publish, so the gate
  is re-checked each reconfiguration interval.  All decisions are recorded.

- **Kernels** — run-coalesced gather/scatter (:func:`index_runs` turns
  sorted channel indices into ``(dst, src, len)`` slice runs so channel
  selection is a handful of contiguous copies, not fancy indexing) plus the
  calibration probe pipelines.  The compiled thunks live in
  :meth:`repro.tensor.compile._PlanBuilder._build_conv2d_sparse`; the eager
  fallback path lives in :mod:`repro.tensor.ops.conv`.

Dense remains the default and the bit-exact reference: every sparse thunk
carries per-step guards (weights on dead groups still exactly zero; for
``dw``, the measured per-channel zero mask of ``dy`` *is* the compaction, so
it is exact by construction) and falls back to the dense kernels — on the
same worst-case-dense buffers — the moment a guard fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import workspace as ws

__all__ = [
    "DeadSet", "ConvGate", "StepState", "SparseStats", "STATS",
    "index_runs", "publish", "clear", "dead_set_for", "conv_gate_for",
    "weights_dead", "runs_any_ch",
]


# -- run-coalesced channel selection -----------------------------------------

def index_runs(idx: np.ndarray) -> List[Tuple[int, int, int]]:
    """Turn sorted channel indices into ``(dst, src, length)`` slice runs.

    Consecutive source indices coalesce into one run, so gather/scatter over
    a mostly-contiguous live set is a few big ``memcpy``-like slice copies.
    """
    runs: List[Tuple[int, int, int]] = []
    i, m = 0, len(idx)
    while i < m:
        j = i
        while j + 1 < m and idx[j + 1] == idx[j] + 1:
            j += 1
        runs.append((i, int(idx[i]), j - i + 1))
        i = j + 1
    return runs


def runs_any_ch(arr: np.ndarray, runs: List[Tuple[int, int, int]],
                axis: int = 1) -> bool:
    """True if any element in the listed channel runs is non-zero.

    Early-outs on the first dirty run — the common case when a guard fails
    is cheap, and the all-zero case is one bandwidth pass over the dead
    fraction only.
    """
    if axis == 0:
        for _, s0, ln in runs:
            if arr[s0:s0 + ln].any():
                return True
    else:
        for _, s0, ln in runs:
            if arr[:, s0:s0 + ln].any():
                return True
    return False


# -- dead sets ---------------------------------------------------------------

@dataclass
class DeadSet:
    """Dead/live channel index sets for one conv weight, with slice runs."""

    c: int
    k: int
    in_dead: np.ndarray
    out_dead: np.ndarray
    in_live: np.ndarray
    out_live: np.ndarray
    in_live_runs: List[Tuple[int, int, int]] = field(default_factory=list)
    in_dead_runs: List[Tuple[int, int, int]] = field(default_factory=list)
    out_live_runs: List[Tuple[int, int, int]] = field(default_factory=list)
    out_dead_runs: List[Tuple[int, int, int]] = field(default_factory=list)

    @classmethod
    def from_masks(cls, in_dead: np.ndarray, out_dead: np.ndarray
                   ) -> "DeadSet":
        in_dead = np.asarray(in_dead, dtype=bool)
        out_dead = np.asarray(out_dead, dtype=bool)
        ds = cls(c=in_dead.size, k=out_dead.size,
                 in_dead=np.flatnonzero(in_dead),
                 out_dead=np.flatnonzero(out_dead),
                 in_live=np.flatnonzero(~in_dead),
                 out_live=np.flatnonzero(~out_dead))
        ds.in_live_runs = index_runs(ds.in_live)
        ds.in_dead_runs = index_runs(ds.in_dead)
        ds.out_live_runs = index_runs(ds.out_live)
        ds.out_dead_runs = index_runs(ds.out_dead)
        return ds

    @property
    def in_frac(self) -> float:
        return self.in_dead.size / self.c if self.c else 0.0

    @property
    def out_frac(self) -> float:
        return self.out_dead.size / self.k if self.k else 0.0


def weights_dead(w4: np.ndarray, ds: DeadSet) -> bool:
    """Per-step revival guard: every dead group still exactly zero."""
    return not (runs_any_ch(w4, ds.out_dead_runs, axis=0)
                or runs_any_ch(w4, ds.in_dead_runs, axis=1))


class StepState:
    """Mutable per-plan sparse state shared between a conv's thunks.

    ``enabled`` is the sticky revival flag: the forward thunk checks the
    weight guard each step and, on the first failure (a dead channel came
    back mid-interval), drops the whole conv to the dense kernels until the
    next publish respecializes the plan.  ``fwd_live`` records which layout
    (live-compact vs dense) the forward staged into the shared column
    buffer this step, so the unplanned compiled backward only re-gathers on
    a layout mismatch (the planned backward always re-gathers — its column
    staging is point-lived arena scratch).
    """

    __slots__ = ("enabled", "fwd_live")

    def __init__(self) -> None:
        self.enabled = True
        self.fwd_live = False


# -- statistics (PROFILER.summary()["_sparse"]) ------------------------------

@dataclass
class SparseStats:
    publishes: int = 0
    publish_invalidations: int = 0
    gate_accepts: int = 0
    gate_rejects: int = 0
    fwd_sparse_steps: int = 0
    fwd_dense_fallbacks: int = 0
    dw_sparse_steps: int = 0
    dw_dense_steps: int = 0
    dx_sparse_steps: int = 0
    #: GEMM reduction columns skipped, accumulated over steps
    skipped_cols: int = 0
    #: measured zero dy rows beyond the published dead set (ReLU-sparse)
    relu_extra_rows: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        from ..costmodel.time import SPARSE_GEMM
        out["decisions"] = list(SPARSE_GEMM.decisions)
        return out


STATS = SparseStats()


# -- registry ----------------------------------------------------------------

class _Entry:
    __slots__ = ("tensor", "ds")

    def __init__(self, tensor, ds: DeadSet) -> None:
        self.tensor = tensor
        self.ds = ds


_REGISTRY: Dict[int, _Entry] = {}
_published_fp: Optional[tuple] = None


def publish(entries, *, invalidate: bool = True) -> bool:
    """Install the current dead-channel sets.

    ``entries`` is an iterable of ``(weight_tensor, in_dead, out_dead)``
    with boolean masks over the weight's current channel dims.  Returns
    True iff the sets changed vs the previous publish — only then is
    ``PLAN_GENERATION`` bumped (plans respecialize); republishing an
    identical set is free, which is what lets the hysteresis exporter scan
    every interval without churning plans.  Every publish invalidates the
    gate's calibrations so sparse-vs-dense is re-probed on the new sets.
    """
    global _published_fp
    new: Dict[int, _Entry] = {}
    fp = []
    for t, in_dead, out_dead in entries:
        in_dead = np.asarray(in_dead, dtype=bool)
        out_dead = np.asarray(out_dead, dtype=bool)
        if not (in_dead.any() or out_dead.any()):
            continue
        fp.append((id(t), in_dead.tobytes(), out_dead.tobytes()))
        new[id(t.data)] = _Entry(t, DeadSet.from_masks(in_dead, out_dead))
    fingerprint = tuple(fp)
    prev = _published_fp if _published_fp is not None else ()
    changed = fingerprint != prev
    _REGISTRY.clear()
    _REGISTRY.update(new)
    _published_fp = fingerprint
    _gate_memo.clear()
    from ..costmodel.time import SPARSE_GEMM
    SPARSE_GEMM.invalidate()
    STATS.publishes += 1
    if changed and invalidate:
        STATS.publish_invalidations += 1
        ws.invalidate_plans()
    return changed


def clear() -> None:
    """Drop all published dead sets (plans fall back to dense on rebuild)."""
    global _published_fp
    if _REGISTRY:
        _REGISTRY.clear()
        ws.invalidate_plans()
    _published_fp = None
    _gate_memo.clear()


def dead_set_for(w: np.ndarray) -> Optional[DeadSet]:
    """Published dead set for this exact weight array, or None."""
    e = _REGISTRY.get(id(w))
    if e is None or e.tensor.data is not w:
        return None
    ds = e.ds
    if w.ndim != 4 or w.shape[0] != ds.k or w.shape[1] != ds.c:
        return None
    return ds


# -- the gate ----------------------------------------------------------------

@dataclass
class ConvGate:
    """Per-conv gate verdict: which sparse pipelines may engage."""

    ds: DeadSet
    sig: tuple
    use_fwd: bool
    use_dw: bool
    use_dx: bool


_gate_memo: Dict[tuple, Tuple[bool, bool, bool]] = {}


def conv_gate_for(w: np.ndarray, x: np.ndarray, stride: int,
                  padding: int) -> Optional[ConvGate]:
    """Gate decision for one general (RxS) conv at a concrete input shape.

    Returns None when no sparse path should engage (no published dead set,
    or the calibration probe rejected every pipeline) — the caller then
    builds/runs the plain dense kernels.  Decisions are memoized per
    (signature, dead-set content) until the next publish, making the gate
    deterministic across the planner's double build and across plan
    rebuilds within one reconfiguration interval.
    """
    if not ws.config.sparse_compute:
        return None
    ds = dead_set_for(w)
    if ds is None:
        return None
    k, c, r, s = w.shape
    kl, cl = ds.out_live.size, ds.in_live.size
    if kl == 0 or cl == 0 or (kl == k and cl == c):
        return None
    from .ops import conv as _conv
    n, _, h, wd = x.shape
    ho, wo = _conv.conv_out_size(h, wd, r, s, stride, padding)
    sig = (n, c, h, wd, k, r, s, stride, padding, cl, kl,
           len(ds.in_live_runs), len(ds.out_live_runs))
    memo_key = (sig, ds.in_dead.tobytes(), ds.out_dead.tobytes())
    hit = _gate_memo.get(memo_key)
    if hit is not None:
        use_fwd, use_dw, use_dx = hit
        return ConvGate(ds, sig, use_fwd, use_dw, use_dx) if use_fwd \
            else None
    use_fwd, use_dw, use_dx = _calibrate_conv(
        sig, x, w, ds, stride, padding, ho, wo)
    _gate_memo[memo_key] = (use_fwd, use_dw, use_dx)
    if use_fwd:
        STATS.gate_accepts += 1
        return ConvGate(ds, sig, use_fwd, use_dw, use_dx)
    STATS.gate_rejects += 1
    return None


def _calibrate_conv(sig: tuple, x: np.ndarray, w: np.ndarray, ds: DeadSet,
                    stride: int, padding: int, ho: int, wo: int
                    ) -> Tuple[bool, bool, bool]:
    """Measure dense vs sparse pipelines on real data; probe bit-parity.

    The probe pipelines perform the same per-step work as the production
    thunks (guard scans included on the sparse side), on pooled scratch.
    """
    from ..costmodel.time import SPARSE_GEMM, predicted_sparse_gain
    from .ops import conv as _conv

    n, c, h, wd = x.shape
    k, _, r, s = w.shape
    kl, cl = ds.out_live.size, ds.in_live.size
    crs, crs_l = c * r * s, cl * r * s
    p = ho * wo
    dtype = x.dtype
    min_gain = ws.config.sparse_min_gain
    hp, wp = h + 2 * padding, wd + 2 * padding

    xp = ws.acquire((n, c, hp, wp), dtype, zero=True)
    cols6 = ws.acquire((n, c, r, s, ho, wo), dtype)
    y_d = ws.acquire((n, k, p), dtype)
    y_s = ws.acquire((n, k, p), dtype)
    yl = ws.acquire((n, kl, p), dtype)
    wl = ws.acquire((kl, crs_l), dtype)
    try:
        xp_core = xp[:, :, padding:padding + h, padding:padding + wd]
        wdwT = _conv._windows(xp, r, s, stride).transpose(0, 1, 4, 5, 2, 3)
        cols3 = cols6.reshape(n, crs, p)
        xp_l = xp.reshape(-1)[:n * cl * hp * wp].reshape(n, cl, hp, wp)
        xp_l_core = xp_l[:, :, padding:padding + h, padding:padding + wd]
        wdwT_l = _conv._windows(xp_l, r, s, stride) \
            .transpose(0, 1, 4, 5, 2, 3)
        cols6_l = cols6.reshape(-1)[:n * cl * r * s * p] \
            .reshape(n, cl, r, s, ho, wo)
        cols3_l = cols6_l.reshape(n, crs_l, p)
        w3 = w.reshape(k, crs)
        wl4 = wl.reshape(kl, cl, r, s)
        w4 = w

        def regather_dense() -> None:
            xp.fill(0)
            np.copyto(xp_core, x)
            np.copyto(cols6, wdwT)

        def regather_live() -> None:
            xp.fill(0)
            for d0, s0, ln in ds.in_live_runs:
                xp_l_core[:, d0:d0 + ln] = x[:, s0:s0 + ln]
            np.copyto(cols6_l, wdwT_l)

        def fwd_dense() -> None:
            regather_dense()
            np.matmul(w3, cols3, out=y_d)

        def fwd_sparse() -> None:
            weights_dead(w4, ds)              # the per-step guard scan
            regather_live()
            for dk, sk, nk in ds.out_live_runs:
                for dc, sc, nc in ds.in_live_runs:
                    wl4[dk:dk + nk, dc:dc + nc] = w4[sk:sk + nk, sc:sc + nc]
            np.matmul(wl, cols3_l, out=yl)
            for _, s0, ln in ds.out_dead_runs:
                y_s[:, s0:s0 + ln] = 0
            for d0, s0, ln in ds.out_live_runs:
                y_s[:, s0:s0 + ln] = yl[:, d0:d0 + ln]

        def fwd_parity() -> bool:
            fwd_dense()
            fwd_sparse()
            return np.array_equal(y_d, y_s)

        gemm_flops = 2.0 * n * k * crs * p
        gemm_bytes = 4.0 * n * crs * p              # the column gather
        pred_fwd = predicted_sparse_gain(
            gemm_flops, gemm_bytes,
            2.0 * n * kl * crs_l * p,
            4.0 * n * (cl / c) * crs * p + 4.0 * n * kl * p)
        cal = SPARSE_GEMM.calibrate(sig, "fwd", fwd_dense, fwd_sparse,
                                    fwd_parity, pred_fwd)
        use_fwd = SPARSE_GEMM.decide(cal, min_gain)
        if not use_fwd:
            return False, False, False

        # -- dw probe: dy with dead rows zero (what training produces) ----
        dy = y_d                                  # reuse: realistic magnitudes
        for _, s0, ln in ds.out_dead_runs:
            dy[:, s0:s0 + ln] = 0
        dwn = ws.acquire((n, k, crs), dtype)
        dym = ws.acquire((n, kl, p), dtype)
        dw_d = ws.acquire((k, crs), dtype)
        dw_s = ws.acquire((k, crs), dtype)
        try:
            cols3T = cols3.transpose(0, 2, 1)
            cols3_lT = cols3_l.transpose(0, 2, 1)
            dwn_l = dwn.reshape(-1)[:n * kl * crs_l].reshape(n, kl, crs_l)

            def dw_dense() -> None:
                regather_dense()                  # production bwd regathers
                np.matmul(dy, cols3T, out=dwn)
                np.add.reduce(dwn, axis=0, out=dw_d)

            def dw_sparse() -> None:
                dy.any(axis=(0, 2))               # the measured row mask
                runs_any_ch(x, ds.in_dead_runs)   # the x-zero column check
                regather_live()
                for d0, s0, ln in ds.out_live_runs:
                    dym[:, d0:d0 + ln] = dy[:, s0:s0 + ln]
                np.matmul(dym, cols3_lT, out=dwn_l)
                red = np.add.reduce(dwn_l, axis=0)
                dw_s.fill(0)
                dw_s4 = dw_s.reshape(k, c, r, s)
                red4 = red.reshape(kl, cl, r, s)
                for dk, sk, nk in ds.out_live_runs:
                    for dc, sc, nc in ds.in_live_runs:
                        dw_s4[sk:sk + nk, sc:sc + nc] = \
                            red4[dk:dk + nk, dc:dc + nc]

            def dw_parity() -> bool:
                # Row compaction is exact by construction (dy rows are
                # zero); column compaction additionally needs zero x on the
                # dead in-channels, which the per-step check enforces at
                # run time.  The probe validates the row side bitwise.
                dw_dense()
                xz = x.copy()
                for _, s0, ln in ds.in_dead_runs:
                    xz[:, s0:s0 + ln] = 0
                xp.fill(0)
                np.copyto(xp_core, xz)
                np.copyto(cols6, wdwT)
                np.matmul(dy, cols3T, out=dwn)
                np.add.reduce(dwn, axis=0, out=dw_d)
                for d0, s0, ln in ds.in_live_runs:
                    xp_l_core[:, d0:d0 + ln] = xz[:, s0:s0 + ln]
                np.copyto(cols6_l, wdwT_l)
                for d0, s0, ln in ds.out_live_runs:
                    dym[:, d0:d0 + ln] = dy[:, s0:s0 + ln]
                np.matmul(dym, cols3_lT, out=dwn_l)
                red = np.add.reduce(dwn_l, axis=0)
                dw_s.fill(0)
                dw_s4 = dw_s.reshape(k, c, r, s)
                red4 = red.reshape(kl, cl, r, s)
                for dk, sk, nk in ds.out_live_runs:
                    for dc, sc, nc in ds.in_live_runs:
                        dw_s4[sk:sk + nk, sc:sc + nc] = \
                            red4[dk:dk + nk, dc:dc + nc]
                return np.array_equal(dw_d, dw_s)

            pred_dw = predicted_sparse_gain(
                2.0 * n * k * crs * p, gemm_bytes,
                2.0 * n * kl * crs_l * p,
                4.0 * n * (cl / c) * crs * p + 4.0 * n * kl * p)
            cal_dw = SPARSE_GEMM.calibrate(sig, "dw", dw_dense, dw_sparse,
                                           dw_parity, pred_dw)
            use_dw = SPARSE_GEMM.decide(cal_dw, min_gain)
        finally:
            ws.release(dwn)
            ws.release(dym)
            ws.release(dw_d)
            ws.release(dw_s)

        # -- dx probe (tconv form only; reduction-dim compaction) ---------
        use_dx = False
        if stride == 1 and r > padding and s > padding:
            use_dx = _calibrate_dx(sig, dy, w, ds, padding, h, wd, ho, wo,
                                   min_gain)
        return use_fwd, use_dw, use_dx
    finally:
        ws.release(xp)
        ws.release(cols6)
        ws.release(y_d)
        ws.release(y_s)
        ws.release(yl)
        ws.release(wl)


def _calibrate_dx(sig: tuple, dy3: np.ndarray, w: np.ndarray, ds: DeadSet,
                  padding: int, h: int, wd: int, ho: int, wo: int,
                  min_gain: float) -> bool:
    """Probe the compacted transposed-conv dx pipeline (dense vs sparse).

    This is the one pipeline whose compaction shrinks a GEMM *reduction*
    dimension (K*R*S), where BLAS accumulator pairing can change low bits —
    the parity probe is load-bearing here, not a formality.
    """
    from ..costmodel.time import SPARSE_GEMM, predicted_sparse_gain
    from .ops import conv as _conv

    n = dy3.shape[0]
    k, c, r, s = w.shape
    kl, cl = ds.out_live.size, ds.in_live.size
    krs, krs_l = k * r * s, kl * r * s
    pr, ps = r - 1 - padding, s - 1 - padding
    dtype = dy3.dtype
    dy = dy3.reshape(n, k, ho, wo)

    dyp = ws.acquire((n, k, ho + 2 * pr, wo + 2 * ps), dtype, zero=True)
    dyc6 = ws.acquire((n, k, r, s, h, wd), dtype)
    wf = ws.acquire((c, krs), dtype)
    wfl = ws.acquire((cl, krs_l), dtype)
    dx_d = ws.acquire((n, c, h * wd), dtype)
    dx_s = ws.acquire((n, c, h * wd), dtype)
    dxl = ws.acquire((n, cl, h * wd), dtype)
    try:
        dyp_core = dyp[:, :, pr:ho + pr, ps:wo + ps]
        dywT = _conv._windows(dyp, r, s, 1).transpose(0, 1, 4, 5, 2, 3)
        dyc3 = dyc6.reshape(n, krs, h * wd)
        hyp, wyp = ho + 2 * pr, wo + 2 * ps
        dyp_l = dyp.reshape(-1)[:n * kl * hyp * wyp].reshape(n, kl, hyp, wyp)
        dyp_l_core = dyp_l[:, :, pr:ho + pr, ps:wo + ps]
        dywT_l = _conv._windows(dyp_l, r, s, 1).transpose(0, 1, 4, 5, 2, 3)
        dyc6_l = dyc6.reshape(-1)[:n * kl * r * s * h * wd] \
            .reshape(n, kl, r, s, h, wd)
        dyc3_l = dyc6_l.reshape(n, krs_l, h * wd)
        wflip = w[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
        wf4 = wf.reshape(c, k, r, s)
        wfl4 = wfl.reshape(cl, kl, r, s)

        def dx_dense() -> None:
            dyp.fill(0)
            np.copyto(dyp_core, dy)
            np.copyto(dyc6, dywT)
            np.copyto(wf4, wflip)
            np.matmul(wf, dyc3, out=dx_d)

        def dx_sparse() -> None:
            weights_dead(w, ds)
            dyp.fill(0)
            for d0, s0, ln in ds.out_live_runs:
                dyp_l_core[:, d0:d0 + ln] = dy[:, s0:s0 + ln]
            np.copyto(dyc6_l, dywT_l)
            for dc, sc, nc in ds.in_live_runs:
                for dk, sk, nk in ds.out_live_runs:
                    wfl4[dc:dc + nc, dk:dk + nk] = \
                        wflip[sc:sc + nc, sk:sk + nk]
            np.matmul(wfl, dyc3_l, out=dxl)
            for _, s0, ln in ds.in_dead_runs:
                dx_s[:, s0:s0 + ln] = 0
            for d0, s0, ln in ds.in_live_runs:
                dx_s[:, s0:s0 + ln] = dxl[:, d0:d0 + ln]

        def dx_parity() -> bool:
            dx_dense()
            dx_sparse()
            return np.array_equal(dx_d, dx_s)

        pred = predicted_sparse_gain(
            2.0 * n * c * krs * h * wd, 4.0 * n * krs * h * wd,
            2.0 * n * cl * krs_l * h * wd,
            4.0 * n * (kl / k) * krs * h * wd + 4.0 * n * cl * h * wd)
        cal = SPARSE_GEMM.calibrate(sig, "dx", dx_dense, dx_sparse,
                                    dx_parity, pred)
        return SPARSE_GEMM.decide(cal, min_gain)
    finally:
        ws.release(dyp)
        ws.release(dyc6)
        ws.release(wf)
        ws.release(wfl)
        ws.release(dx_d)
        ws.release(dx_s)
        ws.release(dxl)
