"""From-scratch NumPy autograd engine (the reproduction's PyTorch substitute).

Public surface:

- :class:`Tensor` — reverse-mode autodiff array.
- :class:`no_grad` — context manager disabling graph recording.
- :mod:`repro.tensor.functional` — conv2d, linear, batch_norm, pooling,
  activations, losses, and the channel gather/scatter ops used by the
  channel-gating baseline.
"""

from . import functional
from .tensor import Tensor, grad_enabled, no_grad

__all__ = ["Tensor", "no_grad", "grad_enabled", "functional"]
