"""From-scratch NumPy autograd engine (the reproduction's PyTorch substitute).

Public surface:

- :class:`Tensor` — reverse-mode autodiff array.
- :class:`no_grad` — context manager disabling graph recording.
- :mod:`repro.tensor.functional` — conv2d, linear, batch_norm, pooling,
  activations, losses, and the channel gather/scatter ops used by the
  channel-gating baseline.
- :mod:`repro.tensor.workspace` — the shape-keyed buffer pool the kernels
  draw scratch from, plus the engine-optimization switchboard
  (``workspace.config``, ``workspace.baseline_engine``).
- :mod:`repro.tensor.compile` — compiled training steps: capture one eager
  forward/backward as a flat kernel plan (:class:`~repro.tensor.compile.
  StepPlan`) and replay it bit-exactly until the next reconfiguration.
"""

from . import compile, functional, workspace
from .tensor import Tensor, grad_enabled, no_grad
from .workspace import WorkspacePool, baseline_engine

__all__ = ["Tensor", "no_grad", "grad_enabled", "compile", "functional",
           "workspace", "WorkspacePool", "baseline_engine"]
