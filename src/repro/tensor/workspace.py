"""Process-wide workspace buffer pool and engine configuration.

PruneTrain's training loop is shape-stationary *between* reconfigurations:
every iteration runs the same convolutions at the same shapes, so the im2col
padded-input staging, col2im scatter scratch, and gradient buffers requested
on iteration ``i`` are requested again — identically — on iteration ``i+1``.
The :class:`WorkspacePool` exploits this by recycling buffers keyed by
``(shape, dtype)`` instead of allocating fresh arrays in every kernel call,
which converts the engine's hot path from allocator-bound to compute-bound.

At a *reconfiguration* the stationarity assumption breaks on purpose: channel
surgery (``repro.prune.reconfigure``) changes every activation shape in the
model, which is exactly the paper's "dense reconfiguration" moment (Sec. 4.2).
The surgery therefore calls :func:`invalidate` so the pool drops all cached
buffers; the next iteration re-populates it at the new (smaller) shapes.

Ownership contract
------------------
``acquire`` hands out a buffer and records it as *lent*; ``release`` returns
it to the free list.  Kernels that produce results consumed synchronously
(gradients fed straight into ``Tensor._accumulate``) release their buffers in
the autograd closure right after the accumulate; buffers that must survive
from forward to backward (the padded conv input) are released by the backward
closure itself.  ``release`` is a no-op for arrays the pool does not own, so
callers never need to track provenance.  Under ``no_grad`` the functional
layer releases forward staging immediately.

The module also hosts the :class:`EngineConfig` switchboard (``config``):
each optimization introduced by the performance overhaul — buffer pooling,
fused BN+ReLU, the einsum convolution kernels — can be disabled to recover
the seed engine's exact execution path, which is how ``benchmarks/perf``
measures honest before/after numbers in the same process.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


def _env_flag(name: str, default: bool) -> bool:
    val = os.environ.get(name)
    if val is None:
        return default
    return val.strip().lower() not in ("0", "false", "no", "off")


@dataclass
class EngineConfig:
    """Feature switches for the optimized engine.

    All default to on; flip off (or set ``REPRO_WORKSPACE=0`` /
    ``REPRO_FUSED=0`` before import) to run the seed-equivalent path.
    """

    #: serve kernel scratch from the workspace pool instead of fresh allocs
    pooling: bool = True
    #: fuse BatchNorm->ReLU into one kernel at BN call sites that allow it
    fused_bnrelu: bool = True
    #: convolution lowering: "einsum" (direct contraction over the
    #: sliding-window view) or "im2col" (seed column-matrix + GEMM)
    conv_impl: str = "einsum"
    #: static memory planning for compiled step plans
    #: (:mod:`repro.tensor.memplan`): assign all plan-owned transient
    #: buffers into one liveness-shared arena instead of private arrays.
    #: Bit-exact either way; off recovers the PR-3 per-buffer layout.
    mem_plan: bool = True
    #: replay compiled *training* plans on a level-scheduled worker thread
    #: pool (:mod:`repro.tensor.parallel`) instead of the serial thunk loop.
    #: Bit-exact vs serial replay by construction (pinned accumulation
    #: order); off keeps the PR-3/PR-5 single-threaded replay.
    parallel_replay: bool = False
    #: total executor threads for parallel replay (the calling thread
    #: counts as one; ``replay_workers - 1`` daemon workers are spawned).
    #: Values < 2 disable parallel scheduling even if ``parallel_replay``.
    replay_workers: int = 4
    #: elastic engine: launch each gradient bucket's ring exchange as soon
    #: as every worker has produced it (overlapping communication with the
    #: remaining backward compute) instead of one monolithic ring after the
    #: step.  Bit-exact either way (see ``repro.distributed.allreduce``).
    comm_overlap: bool = True
    #: target payload bytes per gradient bucket (module-aligned; the last
    #: bucket takes the remainder)
    comm_bucket_bytes: int = 65536
    #: elastic engine: bind worker gradient sinks directly to the
    #: shared-memory allreduce segments (backward writes gradients in
    #: place; no per-step pack/copy).  Requires compiled worker steps to
    #: take effect; bit-exact either way.
    comm_zero_copy: bool = True
    #: elastic engine: capture-and-replay compiled training steps inside
    #: each worker process (the single-process ``compile_step`` machinery,
    #: one plan per worker)
    dist_compile: bool = True
    #: sparsity-aware compute paths (:mod:`repro.tensor.sparse`): skip
    #: published dead channels in the conv GEMM lowering and run
    #: measured-row-sparse backward GEMMs, gated per shape by the
    #: cost-model calibration (parity probe + measured gain).  Dense stays
    #: the default and the bit-exact reference; sparse engages only for
    #: shapes the gate accepts.
    sparse_compute: bool = False
    #: minimum measured dense/sparse step-time ratio the gate demands
    #: before selecting a sparse path for a shape (1.05 = 5% faster)
    sparse_min_gain: float = 1.05


config = EngineConfig(
    pooling=_env_flag("REPRO_WORKSPACE", True),
    fused_bnrelu=_env_flag("REPRO_FUSED", True),
    conv_impl=os.environ.get("REPRO_CONV_IMPL", "einsum"),
    mem_plan=_env_flag("REPRO_MEM_PLAN", True),
    parallel_replay=_env_flag("REPRO_PARALLEL_REPLAY", False),
    replay_workers=int(os.environ.get("REPRO_REPLAY_WORKERS", "4")),
    comm_overlap=_env_flag("REPRO_COMM_OVERLAP", True),
    comm_bucket_bytes=int(os.environ.get("REPRO_COMM_BUCKET_BYTES", "65536")),
    comm_zero_copy=_env_flag("REPRO_COMM_ZEROCOPY", True),
    dist_compile=_env_flag("REPRO_DIST_COMPILE", True),
    sparse_compute=_env_flag("REPRO_SPARSE_COMPUTE", False),
    sparse_min_gain=float(os.environ.get("REPRO_SPARSE_MIN_GAIN", "1.05")),
)


@contextmanager
def baseline_engine():
    """Temporarily run with every optimization off (the seed engine path)."""
    saved = (config.pooling, config.fused_bnrelu, config.conv_impl,
             config.mem_plan, config.parallel_replay, config.replay_workers,
             config.sparse_compute)
    config.pooling, config.fused_bnrelu, config.conv_impl, \
        config.mem_plan, config.parallel_replay, config.sparse_compute = \
        False, False, "im2col", False, False, False
    try:
        yield
    finally:
        (config.pooling, config.fused_bnrelu, config.conv_impl,
         config.mem_plan, config.parallel_replay,
         config.replay_workers, config.sparse_compute) = saved


@dataclass
class PoolStats:
    """Allocation accounting (feeds the op profiler's bytes counters)."""

    hits: int = 0
    misses: int = 0
    bytes_reused: int = 0
    bytes_allocated: int = 0
    invalidations: int = 0
    #: buffers silently dropped because a key's free list was already at
    #: ``max_per_key`` — nonzero means the pool is undersized for the
    #: workload (or a shape churns faster than it is reused)
    evictions: int = 0
    bytes_evicted: int = 0

    def reset(self) -> None:
        self.hits = self.misses = 0
        self.bytes_reused = self.bytes_allocated = 0
        self.invalidations = 0
        self.evictions = self.bytes_evicted = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "bytes_reused": self.bytes_reused,
                "bytes_allocated": self.bytes_allocated,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "bytes_evicted": self.bytes_evicted}


class WorkspacePool:
    """Shape/dtype-keyed free-list buffer pool.

    Thread-safe: parallel plan replay (:mod:`repro.tensor.parallel`) runs
    same-level thunks on worker threads, and backward thunks call
    ``acquire``/``release`` concurrently.  A single mutex guards the free
    lists, the lent map, and the stats counters; the critical sections are
    dict/list operations only (allocation and zero-fill happen outside the
    lock where possible).
    """

    def __init__(self, max_per_key: int = 8):
        self.max_per_key = max_per_key
        self._free: Dict[Tuple[tuple, object], List[np.ndarray]] = {}
        self._lent: Dict[int, np.ndarray] = {}
        self._lock = threading.Lock()
        self.stats = PoolStats()

    # -- core API ----------------------------------------------------------
    def acquire(self, shape: tuple, dtype=np.float32,
                zero: bool = False) -> np.ndarray:
        """Get a buffer of ``shape``/``dtype`` (contents arbitrary unless
        ``zero``).  With pooling disabled this is a plain allocation."""
        dtype = np.dtype(dtype)
        if not config.pooling:
            return np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
        key = (tuple(shape), dtype)
        with self._lock:
            free = self._free.get(key)
            buf = free.pop() if free else None
            if buf is not None:
                self.stats.hits += 1
                self.stats.bytes_reused += buf.nbytes
                self._lent[id(buf)] = buf
        if buf is not None:
            if zero:
                buf.fill(0)
            return buf
        buf = np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
        with self._lock:
            self.stats.misses += 1
            self.stats.bytes_allocated += buf.nbytes
            self._lent[id(buf)] = buf
        return buf

    def release(self, arr: np.ndarray) -> None:
        """Return a buffer (or a view into one) to the pool.

        No-op for arrays the pool never lent — callers may release
        unconditionally.
        """
        if arr is None or not config.pooling:
            return
        base = arr if arr.base is None else arr.base
        with self._lock:
            buf = self._lent.pop(id(base), None)
            if buf is None:
                return
            key = (buf.shape, buf.dtype)
            free = self._free.setdefault(key, [])
            if len(free) < self.max_per_key:
                free.append(buf)
            else:
                self.stats.evictions += 1
                self.stats.bytes_evicted += buf.nbytes

    def clear(self) -> None:
        """Drop every cached and lent buffer (pruning reconfiguration)."""
        with self._lock:
            self._free.clear()
            self._lent.clear()
            self.stats.invalidations += 1

    def owns(self, arr: np.ndarray) -> bool:
        """Whether ``arr`` (or its base) is currently lent out by this pool."""
        if arr is None:
            return False
        base = arr if arr.base is None else arr.base
        return id(base) in self._lent

    # -- introspection -----------------------------------------------------
    @property
    def lent_count(self) -> int:
        return len(self._lent)

    @property
    def cached_bytes(self) -> int:
        return sum(b.nbytes for bufs in self._free.values() for b in bufs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WorkspacePool(keys={len(self._free)}, "
                f"cached={self.cached_bytes / 1e6:.1f}MB, "
                f"lent={self.lent_count}, hits={self.stats.hits}, "
                f"misses={self.stats.misses})")


#: The process-wide pool every kernel draws from.
POOL = WorkspacePool()

#: Monotonic counter bumped whenever the shape-stationarity assumption is
#: broken (pruning reconfiguration, checkpoint restore).  Compiled step
#: plans (:mod:`repro.tensor.compile`) record the value at capture time and
#: refuse to replay once it moves — the same moments that empty the buffer
#: pool also invalidate every captured kernel schedule.
PLAN_GENERATION = 0

#: Callbacks fired after every PLAN_GENERATION bump.  Plan-lifetime
#: resources that must not outlive a stationary phase register here —
#: :mod:`repro.tensor.memplan` uses it to account stale arenas, and tests
#: can observe invalidation ordering.  Hooks must be cheap and never raise.
_invalidation_hooks: list = []

#: Guards PLAN_GENERATION bumps.  Replay worker threads never bump the
#: generation themselves, but plan-cache maintenance may race a bump from
#: the driver (e.g. a test thread invalidating while another looks up), so
#: the read-modify-write must be atomic.  Plain reads of the counter are a
#: single bytecode and need no lock.
_generation_lock = threading.Lock()


def on_invalidate(hook) -> None:
    """Register a callback run after each plan-generation bump."""
    _invalidation_hooks.append(hook)


def plan_generation() -> int:
    """Atomic read of the current plan generation."""
    return PLAN_GENERATION


def invalidate_plans() -> None:
    """Invalidate every captured step plan without touching the pool.

    Called on its own for state mutations that keep activation shapes but
    swap the underlying arrays (``Module.load_state_dict`` reassigns
    ``param.data``, so array references captured by a plan go stale), and
    as part of :func:`invalidate` for full reconfigurations.  Plan-owned
    arenas (:mod:`repro.tensor.memplan`) die with their plans; the
    registered invalidation hooks let interested parties observe the bump.
    """
    global PLAN_GENERATION
    with _generation_lock:
        PLAN_GENERATION += 1
        gen = PLAN_GENERATION
    for hook in _invalidation_hooks:
        hook(gen)


# -- gradient-sink binding ---------------------------------------------------
#: Leaf-tensor gradient destinations for zero-copy exchange: maps
#: ``id(param Tensor)`` to the shared-memory array (shaped like the
#: parameter) its gradient must land in.  Installed per process by an
#: elastic worker before capturing its step plan; the plan builder
#: (:mod:`repro.tensor.compile`) consults it at capture time and emits
#: ``out=`` kernel forms that write parameter gradients straight into the
#: bound arrays — which *are* the worker's allreduce mmap segments, so the
#: backward pass is the gradient pack.  Empty everywhere else (trainer,
#: tests, simulation); binding nothing recovers the private-buffer layout.
_GRAD_SINKS: Dict[int, np.ndarray] = {}


def bind_grad_sinks(mapping: Dict[int, np.ndarray]) -> None:
    """Install the leaf-gradient destination map (replaces any previous).

    Callers must invalidate existing plans themselves if the binding
    changes between captures of the same generation (in practice the
    binding only changes on resync, which already bumps the generation).
    """
    _GRAD_SINKS.clear()
    _GRAD_SINKS.update(mapping)


def clear_grad_sinks() -> None:
    """Remove every leaf-gradient binding."""
    _GRAD_SINKS.clear()


def grad_sink_for(tensor_id: int):
    """The bound gradient destination for a leaf tensor id, or ``None``."""
    return _GRAD_SINKS.get(tensor_id)


def acquire(shape: tuple, dtype=np.float32, zero: bool = False) -> np.ndarray:
    """Module-level alias for ``POOL.acquire``."""
    return POOL.acquire(shape, dtype, zero)


def release(arr) -> None:
    """Module-level alias for ``POOL.release`` (safe on foreign arrays)."""
    POOL.release(arr)


def invalidate() -> None:
    """Drop all pooled buffers; called on pruning reconfiguration, when the
    model's activation shapes change wholesale.  Also invalidates every
    captured step plan (same stationarity assumption, same breaking point)."""
    POOL.clear()
    invalidate_plans()
