"""Vectorized 2-D convolution kernels (im2col + GEMM).

Following the hpc-parallel optimization guides, the convolution is lowered to
a single large matrix multiplication per call: patches are extracted with
``numpy.lib.stride_tricks.sliding_window_view`` (a zero-copy view), reshaped
once, and multiplied against the flattened filter bank.  The backward pass
reuses the same column matrix for the weight gradient and scatters the input
gradient back with an ``R*S``-iteration strided accumulation (9 iterations
for a 3x3 kernel) instead of an elementwise ``np.add.at`` scatter, which is
orders of magnitude slower.

Layout conventions (PyTorch-compatible):
  activations ``(N, C, H, W)``, filters ``(K, C, R, S)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view


def conv_out_size(h: int, w: int, r: int, s: int, stride: int,
                  padding: int) -> Tuple[int, int]:
    """Spatial output size of a convolution."""
    ho = (h + 2 * padding - r) // stride + 1
    wo = (w + 2 * padding - s) // stride + 1
    return ho, wo


def im2col(x: np.ndarray, r: int, s: int, stride: int,
           padding: int) -> np.ndarray:
    """Extract convolution patches as a matrix.

    Returns an array of shape ``(N*Ho*Wo, C*R*S)``.  The returned matrix is a
    contiguous copy (the GEMM needs contiguity anyway); the patch extraction
    itself is a strided view.
    """
    n, c, h, w = x.shape
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # (N, C, Ho', Wo', R, S) where Ho' spans all window starts
    windows = sliding_window_view(x, (r, s), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]
    n_, c_, ho, wo = windows.shape[:4]
    # -> (N, Ho, Wo, C, R, S) -> (N*Ho*Wo, C*R*S)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n_ * ho * wo, c_ * r * s)
    return np.ascontiguousarray(cols)


def col2im(dcols: np.ndarray, x_shape: Tuple[int, int, int, int], r: int,
           s: int, stride: int, padding: int) -> np.ndarray:
    """Inverse of :func:`im2col` — scatter-add patch gradients back.

    ``dcols`` has shape ``(N*Ho*Wo, C*R*S)``.
    """
    n, c, h, w = x_shape
    ho, wo = conv_out_size(h, w, r, s, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    dxp = np.zeros((n, c, hp, wp), dtype=dcols.dtype)
    # (N, Ho, Wo, C, R, S)
    d6 = dcols.reshape(n, ho, wo, c, r, s).transpose(0, 3, 4, 5, 1, 2)
    # now (N, C, R, S, Ho, Wo); accumulate each (r, s) offset as one strided add
    for ri in range(r):
        h_end = ri + stride * ho
        for si in range(s):
            w_end = si + stride * wo
            dxp[:, :, ri:h_end:stride, si:w_end:stride] += d6[:, :, ri, si]
    if padding > 0:
        return dxp[:, :, padding:padding + h, padding:padding + w]
    return dxp


def _is_pointwise(r: int, s: int, padding: int) -> bool:
    return r == 1 and s == 1 and padding == 0


def conv2d_forward(x: np.ndarray, w: np.ndarray, b: Optional[np.ndarray],
                   stride: int, padding: int
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Forward convolution.  Returns ``(y, cols)``; ``cols`` is kept for backward.

    1x1 convolutions (over half the layers of a bottleneck ResNet) take a
    fast path: the "patch matrix" is just a channel-last reshape of the
    (strided) input, so no sliding-window extraction happens at all.
    """
    n, c, h, wd = x.shape
    k, c2, r, s = w.shape
    if c != c2:
        raise ValueError(f"channel mismatch: input has {c}, filters expect {c2}")
    ho, wo = conv_out_size(h, wd, r, s, stride, padding)
    if _is_pointwise(r, s, padding):
        xs = x[:, :, ::stride, ::stride] if stride > 1 else x
        cols = np.ascontiguousarray(
            xs.transpose(0, 2, 3, 1)).reshape(n * ho * wo, c)
    else:
        cols = im2col(x, r, s, stride, padding)        # (N*Ho*Wo, C*R*S)
    w_mat = w.reshape(k, c * r * s)                    # (K, C*R*S)
    y = cols @ w_mat.T                                 # (N*Ho*Wo, K)
    if b is not None:
        y += b
    y = y.reshape(n, ho, wo, k).transpose(0, 3, 1, 2)  # (N, K, Ho, Wo)
    return np.ascontiguousarray(y), cols


def conv2d_backward(dy: np.ndarray, cols: np.ndarray,
                    x_shape: Tuple[int, int, int, int], w: np.ndarray,
                    stride: int, padding: int, need_dx: bool = True
                    ) -> Tuple[Optional[np.ndarray], np.ndarray,
                               Optional[np.ndarray]]:
    """Backward convolution.

    Returns ``(dx, dw, db)``.  ``dx`` is ``None`` when ``need_dx`` is false
    (first layer of a network).
    """
    n, c, h, wd = x_shape
    k, _, r, s = w.shape
    # dy: (N, K, Ho, Wo) -> (N*Ho*Wo, K)
    dy_mat = np.ascontiguousarray(dy.transpose(0, 2, 3, 1)).reshape(-1, k)
    dw = (dy_mat.T @ cols).reshape(k, c, r, s)
    db = dy_mat.sum(axis=0)
    dx = None
    if need_dx:
        dcols = dy_mat @ w.reshape(k, c * r * s)       # (N*Ho*Wo, C*R*S)
        if _is_pointwise(r, s, padding):
            ho, wo = conv_out_size(h, wd, r, s, stride, padding)
            d4 = dcols.reshape(n, ho, wo, c).transpose(0, 3, 1, 2)
            if stride > 1:
                dx = np.zeros(x_shape, dtype=dcols.dtype)
                dx[:, :, ::stride, ::stride] = d4
            else:
                dx = np.ascontiguousarray(d4)
        else:
            dx = col2im(dcols, x_shape, r, s, stride, padding)
    return dx, dw, db
