"""Vectorized 2-D convolution kernels.

Two lowerings are provided, selected by ``workspace.config.conv_impl``:

``"einsum"`` (default, the optimized engine)
    A *gather-once, GEMM-everywhere* lowering.  The forward pass copies the
    sliding windows of the (padded) input into one pooled column tensor in
    batched-GEMM layout, ``(N, C*R*S, Ho*Wo)``, then computes ``y`` as a
    single batched matrix product against the flattened filter bank — no
    output transpose, because the contraction lands directly in NCHW order.
    The gather is paid exactly once per layer per step: backward reuses the
    same column tensor, so

    - ``dw`` is one batched GEMM ``dy @ cols^T`` summed over the batch
      (the seed engine re-gathered the windows here a second time);
    - ``dx`` for unit stride is the transposed convolution of ``dy`` with
      the spatially flipped filters, expressed as a window contraction —
      ~2x faster than the patch-scatter formulation; strided convs compute
      per-patch gradients with one batched GEMM and scatter-add them in
      ``R*S`` strided slice additions.

    1x1 convolutions skip all of this: they are batched ``(K,C)`` x
    ``(N,C,H*W)`` matrix products in both directions.  Contraction paths
    for the remaining einsums are memoized per shape signature, and all
    staging buffers come from the :mod:`repro.tensor.workspace` pool.

``"im2col"`` (the seed engine, kept for A/B benchmarking)
    Patches are extracted into a column matrix and multiplied against the
    flattened filter bank; the column matrix is retained for backward.

1x1 convolutions (over half the layers of a bottleneck ResNet) take a fast
path in both lowerings: the "patch tensor" is just a (strided) view of the
input, so no window extraction happens at all.

The second value returned by :func:`conv2d_forward` is an opaque context
consumed by :func:`conv2d_backward`; callers that pool buffers must release
it via :func:`release_ctx` once backward has run (or immediately under
``no_grad``).

Layout conventions (PyTorch-compatible):
  activations ``(N, C, H, W)``, filters ``(K, C, R, S)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .. import workspace as ws
from ..workspace import config


def conv_out_size(h: int, w: int, r: int, s: int, stride: int,
                  padding: int) -> Tuple[int, int]:
    """Spatial output size of a convolution."""
    ho = (h + 2 * padding - r) // stride + 1
    wo = (w + 2 * padding - s) // stride + 1
    return ho, wo


def im2col(x: np.ndarray, r: int, s: int, stride: int,
           padding: int) -> np.ndarray:
    """Extract convolution patches as a matrix.

    Returns an array of shape ``(N*Ho*Wo, C*R*S)``.  The returned matrix is a
    contiguous copy (the GEMM needs contiguity anyway); the patch extraction
    itself is a strided view.
    """
    n, c, h, w = x.shape
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # (N, C, Ho', Wo', R, S) where Ho' spans all window starts
    windows = sliding_window_view(x, (r, s), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]
    n_, c_, ho, wo = windows.shape[:4]
    # -> (N, Ho, Wo, C, R, S) -> (N*Ho*Wo, C*R*S)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n_ * ho * wo, c_ * r * s)
    return np.ascontiguousarray(cols)


def col2im(dcols: np.ndarray, x_shape: Tuple[int, int, int, int], r: int,
           s: int, stride: int, padding: int) -> np.ndarray:
    """Inverse of :func:`im2col` — scatter-add patch gradients back.

    ``dcols`` has shape ``(N*Ho*Wo, C*R*S)``.
    """
    n, c, h, w = x_shape
    ho, wo = conv_out_size(h, w, r, s, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    dxp = np.zeros((n, c, hp, wp), dtype=dcols.dtype)
    # (N, Ho, Wo, C, R, S)
    d6 = dcols.reshape(n, ho, wo, c, r, s).transpose(0, 3, 4, 5, 1, 2)
    # now (N, C, R, S, Ho, Wo); accumulate each (r, s) offset as one strided add
    for ri in range(r):
        h_end = ri + stride * ho
        for si in range(s):
            w_end = si + stride * wo
            dxp[:, :, ri:h_end:stride, si:w_end:stride] += d6[:, :, ri, si]
    if padding > 0:
        return dxp[:, :, padding:padding + h, padding:padding + w]
    return dxp


def _is_pointwise(r: int, s: int, padding: int) -> bool:
    return r == 1 and s == 1 and padding == 0


def _pad_into_workspace(x: np.ndarray, padding: int) -> np.ndarray:
    """Copy ``x`` into a pooled padded buffer (zeroed border strips only —
    cheaper than a full memset + interior copy)."""
    n, c, h, w = x.shape
    p = padding
    xp = ws.acquire((n, c, h + 2 * p, w + 2 * p), x.dtype)
    xp[:, :, :p, :] = 0
    xp[:, :, h + p:, :] = 0
    xp[:, :, p:h + p, :p] = 0
    xp[:, :, p:h + p, w + p:] = 0
    xp[:, :, p:h + p, p:w + p] = x
    return xp


def _windows(xp: np.ndarray, r: int, s: int, stride: int) -> np.ndarray:
    wdw = sliding_window_view(xp, (r, s), axis=(2, 3))
    if stride > 1:
        wdw = wdw[:, :, ::stride, ::stride]
    return wdw


def conv2d_forward(x: np.ndarray, w: np.ndarray, b: Optional[np.ndarray],
                   stride: int, padding: int
                   ) -> Tuple[np.ndarray, tuple]:
    """Forward convolution.  Returns ``(y, ctx)``.

    ``ctx`` is an opaque context kept for :func:`conv2d_backward` — the
    column matrix for the im2col lowering, the (padded) input for the einsum
    lowering.  Release it with :func:`release_ctx` once backward has
    consumed it.
    """
    n, c, h, wd = x.shape
    k, c2, r, s = w.shape
    if c != c2:
        raise ValueError(f"channel mismatch: input has {c}, filters expect {c2}")
    ho, wo = conv_out_size(h, wd, r, s, stride, padding)

    if _is_pointwise(r, s, padding):
        if config.conv_impl == "einsum":
            # Batched matmul: (K,C) x (N,C,Ho*Wo).  A strided input is
            # staged through a pooled buffer so the GEMM sees contiguous
            # memory; at stride 1 the reshape is a zero-copy view.
            if stride > 1:
                xm4 = ws.acquire((n, c, ho, wo), x.dtype)
                np.copyto(xm4, x[:, :, ::stride, ::stride])
                xm = xm4.reshape(n, c, ho * wo)
            else:
                xm = x.reshape(n, c, ho * wo)
            y = np.matmul(w.reshape(k, c), xm).reshape(n, k, ho, wo)
            if b is not None:
                y += b[None, :, None, None]
            return y, ("pw", xm)
        xs = x[:, :, ::stride, ::stride] if stride > 1 else x
        cols = np.ascontiguousarray(
            xs.transpose(0, 2, 3, 1)).reshape(n * ho * wo, c)
        return _gemm_forward(cols, w, b, n, k, ho, wo), ("cols", cols)

    if config.conv_impl == "einsum":
        if config.sparse_compute:
            out = _sparse_forward(x, w, b, stride, padding, n, c, h, wd,
                                  k, r, s, ho, wo)
            if out is not None:
                return out
        # Gather the windows once into a pooled (N, C, R, S, Ho, Wo) column
        # tensor: the trailing Wo axis is stride-1 in the source view, so
        # the copy runs in long contiguous spans, and the flattened
        # (N, C*R*S, Ho*Wo) layout feeds batched GEMMs in both passes with
        # the output already in NCHW order (no transpose on y).
        if padding > 0:
            xp = _pad_into_workspace(x, padding)
        else:
            xp = x
        wdw = _windows(xp, r, s, stride)          # (N, C, Ho, Wo, R, S)
        cols6 = ws.acquire((n, c, r, s, ho, wo), x.dtype)
        np.copyto(cols6, wdw.transpose(0, 1, 4, 5, 2, 3))
        if padding > 0:
            ws.release(xp)
        y = np.matmul(w.reshape(k, c * r * s),
                      cols6.reshape(n, c * r * s, ho * wo)
                      ).reshape(n, k, ho, wo)
        if b is not None:
            y += b[None, :, None, None]
        return y, ("cols6", cols6)

    cols = im2col(x, r, s, stride, padding)            # (N*Ho*Wo, C*R*S)
    return _gemm_forward(cols, w, b, n, k, ho, wo), ("cols", cols)


def _gemm_forward(cols: np.ndarray, w: np.ndarray, b: Optional[np.ndarray],
                  n: int, k: int, ho: int, wo: int) -> np.ndarray:
    """Seed GEMM lowering: ``cols @ W.T`` plus layout restore."""
    w_mat = w.reshape(k, -1)                           # (K, C*R*S)
    y = cols @ w_mat.T                                 # (N*Ho*Wo, K)
    if b is not None:
        y += b
    y = y.reshape(n, ho, wo, k).transpose(0, 3, 1, 2)  # (N, K, Ho, Wo)
    return np.ascontiguousarray(y)


class _EagerSparse:
    """Context payload of an eager sparse forward (``"sp6"``).

    Carries the gate verdict, the input (the backward fallback re-stages it)
    and ``extra`` — pooled buffers the non-fast-path backward fallback
    acquires (padded staging + full column tensor), returned to the pool by
    :func:`release_ctx`.
    """

    __slots__ = ("gate", "x", "extra")

    def __init__(self, gate, x: np.ndarray) -> None:
        self.gate = gate
        self.x = x
        self.extra: list = []


def _sparse_forward(x: np.ndarray, w: np.ndarray, b: Optional[np.ndarray],
                    stride: int, padding: int, n: int, c: int, h: int,
                    wd: int, k: int, r: int, s: int, ho: int, wo: int
                    ) -> Optional[Tuple[np.ndarray, tuple]]:
    """Eager dead-channel-skipping forward (general RxS convs).

    Gathers only live input channels into the column tensor and contracts
    against the live filter block; dead output channels are written as the
    exact zeros the dense GEMM would produce.  Engages only when the cost
    model gate accepted this signature (bit-parity probe + measured gain)
    and the dead weight groups are still exactly zero this step.
    """
    from .. import sparse as _sp
    gate = _sp.conv_gate_for(w, x, stride, padding)
    if gate is None or not _sp.weights_dead(w, gate.ds):
        return None
    ds = gate.ds
    cl, kl = ds.in_live.size, ds.out_live.size
    p = padding
    xp = ws.acquire((n, cl, h + 2 * p, wd + 2 * p), x.dtype, zero=(p > 0))
    xp_core = xp[:, :, p:p + h, p:p + wd]
    for d0, s0, ln in ds.in_live_runs:
        xp_core[:, d0:d0 + ln] = x[:, s0:s0 + ln]
    cols6 = ws.acquire((n, cl, r, s, ho, wo), x.dtype)
    np.copyto(cols6, _windows(xp, r, s, stride).transpose(0, 1, 4, 5, 2, 3))
    ws.release(xp)
    wl = ws.acquire((kl, cl * r * s), x.dtype)
    wl4 = wl.reshape(kl, cl, r, s)
    for dk, sk, nk in ds.out_live_runs:
        for dc, sc, nc in ds.in_live_runs:
            wl4[dk:dk + nk, dc:dc + nc] = w[sk:sk + nk, sc:sc + nc]
    yl = np.matmul(wl, cols6.reshape(n, cl * r * s, ho * wo))
    ws.release(wl)
    y = np.empty((n, k, ho, wo), x.dtype)
    y3 = y.reshape(n, k, ho * wo)
    for _, s0, ln in ds.out_dead_runs:
        y3[:, s0:s0 + ln] = 0
    for d0, s0, ln in ds.out_live_runs:
        y3[:, s0:s0 + ln] = yl[:, d0:d0 + ln]
    if b is not None:
        y += b[None, :, None, None]
    _sp.STATS.fwd_sparse_steps += 1
    _sp.STATS.skipped_cols += (c - cl) * r * s
    return y, ("sp6", (cols6, _EagerSparse(gate, x)))


def conv2d_backward(dy: np.ndarray, ctx: tuple,
                    x_shape: Tuple[int, int, int, int], w: np.ndarray,
                    stride: int, padding: int, need_dx: bool = True,
                    need_db: bool = True
                    ) -> Tuple[Optional[np.ndarray], np.ndarray,
                               Optional[np.ndarray]]:
    """Backward convolution.

    Returns ``(dx, dw, db)``.  ``dx`` is ``None`` when ``need_dx`` is false
    (first layer of a network); ``db`` is ``None`` when ``need_db`` is false
    (bias-free convs — every conv followed by BN).  ``dx`` may be a pooled
    buffer — the caller must consume it synchronously and pass it to
    ``workspace.release``.  ``ctx`` is not released here (it may be reused;
    the autograd layer owns its lifetime).
    """
    n, c, h, wd = x_shape
    k, _, r, s = w.shape
    kind, saved = ctx

    if kind == "pw":
        # 1x1 fast path: batched matmul against the staged (N,C,Ho*Wo) input.
        xm = saved
        ho, wo = dy.shape[2], dy.shape[3]
        dym = dy.reshape(n, k, ho * wo)
        dw = np.matmul(dym, xm.transpose(0, 2, 1)).sum(axis=0) \
            .reshape(k, c, 1, 1)
        db = dy.sum(axis=(0, 2, 3)) if need_db else None
        dx = None
        if need_dx:
            w2t = w.reshape(k, c).T
            if stride > 1:
                tmp = ws.acquire((n, c, ho * wo), dy.dtype)
                np.matmul(w2t, dym, out=tmp)
                dx = ws.acquire(x_shape, dy.dtype, zero=True)
                dx[:, :, ::stride, ::stride] = tmp.reshape(n, c, ho, wo)
                ws.release(tmp)
            else:
                dxm = ws.acquire((n, c, ho * wo), dy.dtype)
                np.matmul(w2t, dym, out=dxm)
                dx = dxm.reshape(n, c, h, wd)
        return dx, dw, db

    if kind == "sp6":
        # Sparse forward ran: the saved column tensor holds only live input
        # channels.  The fast path compacts the dw GEMM on both dims; it is
        # exact iff the gate's parity probe passed for the dw pipeline at
        # this signature (``use_dw``) AND the dead weight groups are still
        # zero, dy is zero on the dead output rows, and x is zero on the
        # dead input channels — the latter three measured per step.  Any
        # failure takes the non-fast-path fallback: rebuild the *dense*
        # column tensor and run the dense dw GEMM (bit-identical to the
        # dense engine by construction).
        from .. import sparse as _sp
        cols_l6, es = saved
        ds = es.gate.ds
        cl, kl = ds.in_live.size, ds.out_live.size
        ho, wo = dy.shape[2], dy.shape[3]
        dym_full = dy.reshape(n, k, ho * wo)
        ok = (es.gate.use_dw
              and _sp.weights_dead(w, ds)
              and not _sp.runs_any_ch(dym_full, ds.out_dead_runs)
              and not _sp.runs_any_ch(es.x, ds.in_dead_runs))
        if ok:
            dym = ws.acquire((n, kl, ho * wo), dy.dtype)
            for d0, s0, ln in ds.out_live_runs:
                dym[:, d0:d0 + ln] = dym_full[:, s0:s0 + ln]
            dwn = ws.acquire((n, kl, cl * r * s), dy.dtype)
            np.matmul(dym, cols_l6.reshape(n, cl * r * s, ho * wo)
                      .transpose(0, 2, 1), out=dwn)
            red = dwn.sum(axis=0).reshape(kl, cl, r, s)
            ws.release(dwn)
            ws.release(dym)
            dw = np.zeros((k, c, r, s), dy.dtype)
            for dk, sk, nk in ds.out_live_runs:
                for dc, sc, nc in ds.in_live_runs:
                    dw[sk:sk + nk, sc:sc + nc] = red[dk:dk + nk,
                                                     dc:dc + nc]
            _sp.STATS.dw_sparse_steps += 1
        else:
            if padding > 0:
                xp_f = _pad_into_workspace(es.x, padding)
            else:
                xp_f = es.x
            ho_, wo_ = conv_out_size(h, wd, r, s, stride, padding)
            cols_f = ws.acquire((n, c, r, s, ho_, wo_), dy.dtype)
            np.copyto(cols_f,
                      _windows(xp_f, r, s, stride).transpose(0, 1, 4, 5,
                                                             2, 3))
            dwn = ws.acquire((n, k, c * r * s), dy.dtype)
            np.matmul(dym_full, cols_f.reshape(n, c * r * s, ho * wo)
                      .transpose(0, 2, 1), out=dwn)
            dw = dwn.sum(axis=0).reshape(k, c, r, s)
            ws.release(dwn)
            # Stash the staging buffers on the context: release_ctx returns
            # them to the pool along with the compact column tensor.
            if padding > 0:
                es.extra.append(xp_f)
            es.extra.append(cols_f)
            _sp.STATS.dw_dense_steps += 1
        db = dy.sum(axis=(0, 2, 3)) if need_db else None
        dx = None
        if need_dx:
            if stride == 1 and r > padding and s > padding:
                dx = _tconv_dx(dy, w, x_shape, padding)
            else:
                dx = _dx_scatter(dy, w, x_shape, stride, padding)
        return dx, dw, db

    if kind == "cols6":
        # The forward gather is reused: dw is a pure batched GEMM against
        # the saved column tensor (the pool keeps it alive until the
        # autograd layer calls release_ctx after this returns).
        cols6 = saved
        ho, wo = dy.shape[2], dy.shape[3]
        dym = dy.reshape(n, k, ho * wo)
        cols3 = cols6.reshape(n, c * r * s, ho * wo)
        dwn = ws.acquire((n, k, c * r * s), dy.dtype)
        np.matmul(dym, cols3.transpose(0, 2, 1), out=dwn)
        dw = dwn.sum(axis=0).reshape(k, c, r, s)
        ws.release(dwn)
        db = dy.sum(axis=(0, 2, 3)) if need_db else None
        dx = None
        if need_dx:
            if stride == 1 and r > padding and s > padding:
                dx = _tconv_dx(dy, w, x_shape, padding)
            else:
                dx = _dx_scatter(dy, w, x_shape, stride, padding)
        return dx, dw, db

    # -- seed im2col lowering ---------------------------------------------
    cols = saved
    # dy: (N, K, Ho, Wo) -> (N*Ho*Wo, K)
    dy_mat = np.ascontiguousarray(dy.transpose(0, 2, 3, 1)).reshape(-1, k)
    dw = (dy_mat.T @ cols).reshape(k, c, r, s)
    db = dy_mat.sum(axis=0)
    dx = None
    if need_dx:
        dcols = dy_mat @ w.reshape(k, c * r * s)       # (N*Ho*Wo, C*R*S)
        if _is_pointwise(r, s, padding):
            ho, wo = conv_out_size(h, wd, r, s, stride, padding)
            d4 = dcols.reshape(n, ho, wo, c).transpose(0, 3, 1, 2)
            if stride > 1:
                dx = np.zeros(x_shape, dtype=dcols.dtype)
                dx[:, :, ::stride, ::stride] = d4
            else:
                dx = np.ascontiguousarray(d4)
        else:
            dx = col2im(dcols, x_shape, r, s, stride, padding)
    return dx, dw, db


def _tconv_dx(dy: np.ndarray, w: np.ndarray,
              x_shape: Tuple[int, int, int, int], padding: int) -> np.ndarray:
    """Input gradient for unit stride: transposed convolution via the same
    gather-once batched-GEMM lowering as the forward pass.

    ``dx = conv(pad(dy, R-1-p), flip(w))`` — the exact adjoint of the
    forward correlation.  The windows of the padded ``dy`` are gathered into
    a pooled column tensor and contracted with the flipped filters in one
    batched GEMM whose output lands directly in the (pooled) ``dx``.  Every
    staging buffer is pooled: an einsum formulation of the same contraction
    measures faster in isolation but allocates a multi-megabyte internal
    temporary per call, which loses badly once the whole training step is
    competing for cache.  Requires ``padding < R`` (true for every conv in
    the repo's model zoo); callers fall back to :func:`_dx_scatter`
    otherwise.
    """
    n, c, h, wd = x_shape
    k, _, r, s = w.shape
    ho, wo = dy.shape[2], dy.shape[3]
    pr, ps = r - 1 - padding, s - 1 - padding
    if pr or ps:
        dyp = ws.acquire((n, k, ho + 2 * pr, wo + 2 * ps), dy.dtype)
        dyp[:, :, :pr, :] = 0
        dyp[:, :, ho + pr:, :] = 0
        dyp[:, :, pr:ho + pr, :ps] = 0
        dyp[:, :, pr:ho + pr, wo + ps:] = 0
        dyp[:, :, pr:ho + pr, ps:wo + ps] = dy
    else:
        dyp = dy
    dyw = sliding_window_view(dyp, (r, s), axis=(2, 3))
    dyc6 = ws.acquire((n, k, r, s, h, wd), dy.dtype)
    np.copyto(dyc6, dyw.transpose(0, 1, 4, 5, 2, 3))
    if pr or ps:
        ws.release(dyp)
    # (C, K*R*S): flipped filters with the contraction axis flattened.
    wf = np.ascontiguousarray(
        w[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)).reshape(c, k * r * s)
    dx = ws.acquire((n, c, h, wd), dy.dtype)
    np.matmul(wf, dyc6.reshape(n, k * r * s, h * wd),
              out=dx.reshape(n, c, h * wd))
    ws.release(dyc6)
    return dx


def _dx_scatter(dy: np.ndarray, w: np.ndarray,
                x_shape: Tuple[int, int, int, int], stride: int,
                padding: int) -> np.ndarray:
    """Input gradient: per-patch gradients then RS strided scatter-add.

    Returns a view into a pooled padded buffer when padding > 0; the caller
    releases it (``workspace.release`` resolves views to their base).
    """
    n, c, h, wd = x_shape
    k, _, r, s = w.shape
    ho, wo = dy.shape[2], dy.shape[3]
    hp, wp = h + 2 * padding, wd + 2 * padding
    # Per-patch gradients in one batched GEMM: (C*R*S, K) x (N, K, Ho*Wo).
    dcols = ws.acquire((n, c * r * s, ho * wo), dy.dtype)
    np.matmul(w.reshape(k, c * r * s).T, dy.reshape(n, k, ho * wo),
              out=dcols)
    d6 = dcols.reshape(n, c, r, s, ho, wo)
    dxp = ws.acquire((n, c, hp, wp), dy.dtype, zero=True)
    for ri in range(r):
        h_end = ri + stride * ho
        for si in range(s):
            w_end = si + stride * wo
            dxp[:, :, ri:h_end:stride, si:w_end:stride] += d6[:, :, ri, si]
    ws.release(dcols)
    if padding > 0:
        return dxp[:, :, padding:padding + h, padding:padding + wd]
    return dxp


def release_ctx(ctx: Optional[tuple]) -> None:
    """Return a forward context's staging buffers to the workspace pool.

    Safe to call unconditionally: contexts that hold plain input views or
    unpooled column matrices are ignored by the pool.  Sparse (``"sp6"``)
    contexts carry the compact column tensor *plus* any padded-staging and
    dense column buffers their backward's non-fast-path fallback acquired —
    all of them are returned here, so pool occupancy comes back to baseline
    whether or not the fast path ran.
    """
    if ctx is None:
        return
    kind, saved = ctx
    if kind == "sp6":
        cols_l6, es = saved
        ws.release(cols_l6)
        for buf in es.extra:
            ws.release(buf)
        es.extra.clear()
        return
    ws.release(saved)
