"""Pooling kernels: max pooling, average pooling, global average pooling.

Max pooling is restricted to the non-overlapping case (``kernel == stride``)
used by every model in the paper (VGG 2x2/2, ResNet stem 3x3/2 is replaced by
stride-2 convolutions in the CIFAR variants; the ImageNet stem uses a 2x2/2
approximation — see ``repro.nn.resnet``).  Non-overlapping windows let both
passes be pure reshapes, the fastest possible NumPy formulation.

Backward-pass gradient buffers are drawn from the
:mod:`repro.tensor.workspace` pool: they are consumed synchronously by
``Tensor._accumulate`` and released by the autograd layer right after, so
every iteration reuses the previous iteration's allocations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .. import workspace as ws


def maxpool2d_forward(x: np.ndarray, k: int
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Non-overlapping ``k x k`` max pool.  Returns ``(y, argmax_mask)``."""
    n, c, h, w = x.shape
    if h % k or w % k:
        # truncate ragged edge (matches PyTorch's default floor behaviour)
        x = x[:, :, : (h // k) * k, : (w // k) * k]
        n, c, h, w = x.shape
    ho, wo = h // k, w // k
    blocks = x.reshape(n, c, ho, k, wo, k)
    y = blocks.max(axis=(3, 5))
    # mask marking (one of the) max positions per window, used for backward
    mask = blocks == y[:, :, :, None, :, None]
    # Break ties: keep only the first max in each window so gradient mass is
    # conserved (sum of mask per window == 1).
    flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, ho, wo, k * k)
    first = np.argmax(flat, axis=-1)
    mask = np.zeros_like(flat, dtype=bool)
    np.put_along_axis(mask, first[..., None], True, axis=-1)
    mask = mask.reshape(n, c, ho, wo, k, k).transpose(0, 1, 2, 4, 3, 5)
    return np.ascontiguousarray(y), mask


def maxpool2d_backward(dy: np.ndarray, mask: np.ndarray, k: int,
                       x_shape: Tuple[int, int, int, int]) -> np.ndarray:
    n, c, h, w = x_shape
    ho, wo = dy.shape[2], dy.shape[3]
    dblocks = ws.acquire((n, c, ho, k, wo, k), dy.dtype)
    np.multiply(mask, dy[:, :, :, None, :, None], out=dblocks)
    dx = dblocks.reshape(n, c, ho * k, wo * k)
    if dx.shape[2] != h or dx.shape[3] != w:
        full = ws.acquire(x_shape, dy.dtype, zero=True)
        full[:, :, : dx.shape[2], : dx.shape[3]] = dx
        ws.release(dblocks)
        return full
    return dx


def avgpool2d_forward(x: np.ndarray, k: int) -> np.ndarray:
    n, c, h, w = x.shape
    if h % k or w % k:
        x = x[:, :, : (h // k) * k, : (w // k) * k]
        n, c, h, w = x.shape
    return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))


def avgpool2d_backward(dy: np.ndarray, k: int,
                       x_shape: Tuple[int, int, int, int]) -> np.ndarray:
    n, c, h, w = x_shape
    ho, wo = dy.shape[2], dy.shape[3]
    g6 = ws.acquire((n, c, ho, k, wo, k), dy.dtype)
    g6[:] = dy[:, :, :, None, :, None]
    g6 *= 1.0 / (k * k)
    g = g6.reshape(n, c, ho * k, wo * k)
    if g.shape[2] != h or g.shape[3] != w:
        full = ws.acquire(x_shape, dy.dtype, zero=True)
        full[:, :, : g.shape[2], : g.shape[3]] = g
        ws.release(g6)
        return full
    return g


def global_avgpool_forward(x: np.ndarray) -> np.ndarray:
    """Spatial mean: ``(N, C, H, W) -> (N, C)``."""
    return x.mean(axis=(2, 3))


def global_avgpool_backward(dy: np.ndarray,
                            x_shape: Tuple[int, int, int, int]) -> np.ndarray:
    n, c, h, w = x_shape
    out = ws.acquire(x_shape, dy.dtype)
    out[:] = dy[:, :, None, None]
    out *= 1.0 / (h * w)
    return out
