"""Loss kernels: fused softmax cross-entropy.

The classification term of Eq. 1 in the paper.  Fusing softmax with the
negative log-likelihood gives the numerically stable ``logits - logsumexp``
formulation and the famously simple gradient ``softmax(x) - onehot(y)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def cross_entropy_forward(logits: np.ndarray, targets: np.ndarray
                          ) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss over a batch.

    Parameters
    ----------
    logits: ``(N, num_classes)`` raw scores.
    targets: ``(N,)`` integer class labels.

    Returns ``(loss, probs)``; ``probs`` is cached for backward.
    """
    n = logits.shape[0]
    z = logits - logits.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(z).sum(axis=1))
    nll = logsumexp - z[np.arange(n), targets]
    probs = np.exp(z - logsumexp[:, None])
    return float(nll.mean()), probs


def cross_entropy_backward(probs: np.ndarray, targets: np.ndarray
                           ) -> np.ndarray:
    """Gradient of mean CE loss w.r.t. logits: ``(probs - onehot)/N``."""
    n = probs.shape[0]
    dlogits = probs.copy()
    dlogits[np.arange(n), targets] -= 1.0
    dlogits /= n
    return dlogits


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    return float((logits.argmax(axis=1) == targets).mean())
