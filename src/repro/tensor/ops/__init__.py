"""Raw (graph-free) numerical kernels behind ``repro.tensor.functional``."""

from . import conv, loss, norm, pool

__all__ = ["conv", "loss", "norm", "pool"]
