"""Batch normalization kernels.

Batch normalization is the paper's canonical *memory-bandwidth-bound* layer:
it reads its input several times (mean, variance, normalize) at trivial
arithmetic intensity, which is why PruneTrain's channel pruning cuts BN
memory traffic roughly in proportion to channel count (Sec. 5.1, Fig. 8 "BN
cost").  The kernels below use the standard two-pass formulation and the
fused backward expression from Ioffe & Szegedy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def batchnorm_forward(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                      running_mean: np.ndarray, running_var: np.ndarray,
                      momentum: float, eps: float, training: bool
                      ) -> Tuple[np.ndarray, tuple]:
    """BatchNorm over (N, H, W) for each channel of an ``(N, C, H, W)`` input.

    Running statistics are updated **in place** during training (in-place
    updates per the optimization guide — no reallocation per step).
    Returns ``(y, cache)``.
    """
    if training:
        m = x.shape[0] * x.shape[2] * x.shape[3]
        mu = x.mean(axis=(0, 2, 3))
        # single-pass variance: E[x^2] - E[x]^2 (one einsum, no temporaries)
        ex2 = np.einsum("nchw,nchw->c", x, x,
                        dtype=np.float64 if x.dtype == np.float64
                        else np.float32) / m
        var = np.maximum(ex2 - mu * mu, 0.0)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mu
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mu, var = running_mean, running_var
    inv_std = 1.0 / np.sqrt(var + eps)
    # fused affine: y = x * a + b with a = gamma*inv_std, per channel
    xhat = x * inv_std[None, :, None, None]
    xhat -= (mu * inv_std)[None, :, None, None]
    y = xhat * gamma[None, :, None, None]
    y += beta[None, :, None, None]
    cache = (xhat, gamma, inv_std)
    return y, cache


def batchnorm_backward(dy: np.ndarray, cache: tuple
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns ``(dx, dgamma, dbeta)`` (training-mode statistics)."""
    xhat, gamma, inv_std = cache
    n, c, h, w = dy.shape
    m = n * h * w
    dgamma = (dy * xhat).sum(axis=(0, 2, 3))
    dbeta = dy.sum(axis=(0, 2, 3))
    # dx = (gamma*inv_std/m) * (m*dy - dbeta - xhat*dgamma)
    dx = (gamma * inv_std)[None, :, None, None] / m * (
        m * dy
        - dbeta[None, :, None, None]
        - xhat * dgamma[None, :, None, None]
    )
    return dx, dgamma, dbeta


def batchnorm_eval_backward(dy: np.ndarray, cache: tuple
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward when forward used running statistics (rarely needed)."""
    xhat, gamma, inv_std = cache
    dgamma = (dy * xhat).sum(axis=(0, 2, 3))
    dbeta = dy.sum(axis=(0, 2, 3))
    dx = dy * (gamma * inv_std)[None, :, None, None]
    return dx, dgamma, dbeta
