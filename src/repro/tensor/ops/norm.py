"""Batch normalization kernels (optionally fused with ReLU).

Batch normalization is the paper's canonical *memory-bandwidth-bound* layer:
it reads its input several times (mean, variance, normalize) at trivial
arithmetic intensity, which is why PruneTrain's channel pruning cuts BN
memory traffic roughly in proportion to channel count (Sec. 5.1, Fig. 8 "BN
cost").

The optimized formulation here exploits that both passes are affine in the
input *per channel*:

- forward: ``y = x * a[c] + b[c]`` with ``a = gamma/std`` and
  ``b = beta - mu * a`` — two full-size passes instead of the textbook four,
  and no materialized ``xhat``;
- backward: ``dx = g * c1[c] + x * c2[c] + c0[c]`` where the three channel
  vectors fold the Ioffe & Szegedy fused expression (``dgamma`` is likewise
  recovered from ``sum(g*x)`` without ever forming ``xhat``).

When ``relu=True`` the ReLU is applied in place on the BN output and its
backward mask is recovered from the output sign, so the fused layer saves a
full activation allocation, a bool mask, and an extra graph node.

With ``workspace.config.fused_bnrelu`` disabled the seed engine's xhat-cache
formulation runs instead (kept for honest before/after benchmarking); both
cache formats are handled transparently by the backward kernels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .. import workspace as ws
from ..workspace import config

#: Optional observer called as ``sink(running_mean, mu, var)`` on every
#: *training-mode* BN forward, with the layer's running-mean array (an
#: identity key — each BN layer owns a distinct array object) and the batch
#: statistics just computed.  The elastic data-parallel worker processes
#: (:mod:`repro.distributed.elastic`) use this to ship per-shard BN
#: statistics back to the coordinator, which replays the running-stat
#: updates on its authoritative model in shard order — reproducing the
#: in-process simulation's sequential updates bit-exactly.  ``None``
#: (default) costs one attribute check per BN forward.
_BN_STATS_SINK = None


def set_bn_stats_sink(sink) -> None:
    """Install (or clear, with ``None``) the training BN statistics observer."""
    global _BN_STATS_SINK
    _BN_STATS_SINK = sink


def _batch_stats(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel mean and (biased) variance over (N, H, W)."""
    n, c, h, w = x.shape
    m = n * h * w
    x3 = x.reshape(n, c, h * w)
    mu = x3.mean(axis=(0, 2))
    # single-pass variance: E[x^2] - E[x]^2 (one einsum, no temporaries)
    ex2 = np.einsum("ncp,ncp->c", x3, x3) / m
    var = np.maximum(ex2 - mu * mu, 0.0)
    return mu, var


def batchnorm_forward(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                      running_mean: np.ndarray, running_var: np.ndarray,
                      momentum: float, eps: float, training: bool,
                      relu: bool = False) -> Tuple[np.ndarray, tuple]:
    """BatchNorm over (N, H, W) for each channel of an ``(N, C, H, W)`` input.

    Running statistics are updated **in place** during training (no
    reallocation per step).  With ``relu=True`` the output is rectified in
    place (fused BN+ReLU).  Returns ``(y, cache)``; the cache is opaque and
    consumed by :func:`batchnorm_backward` / :func:`batchnorm_eval_backward`.
    """
    if training:
        mu, var = _batch_stats(x)
        if _BN_STATS_SINK is not None:
            _BN_STATS_SINK(running_mean, mu, var)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mu
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mu, var = running_mean, running_var
    inv_std = 1.0 / np.sqrt(var + eps)

    if not relu and not config.fused_bnrelu:
        # Seed engine formulation (xhat materialized, four passes).
        xhat = x * inv_std[None, :, None, None]
        xhat -= (mu * inv_std)[None, :, None, None]
        y = xhat * gamma[None, :, None, None]
        y += beta[None, :, None, None]
        return y, ("xhat", xhat, gamma, inv_std)

    # Affine-folded formulation: y = x*a + b in two passes, no xhat.
    a = gamma * inv_std
    b = beta - mu * a
    y = x * a[None, :, None, None]
    y += b[None, :, None, None]
    if relu:
        np.maximum(y, 0, out=y)
    cache = ("coef", x, y if relu else None, gamma, mu, inv_std, relu)
    return y, cache


def _coef_backward(dy: np.ndarray, cache: tuple, training: bool
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared backward for the affine-folded cache."""
    _, x, y, gamma, mu, inv_std, relu = cache
    n, c, h, w = dy.shape
    m = n * h * w
    if relu:
        # Fused ReLU mask recovered from the rectified output's sign.
        g = dy * (y > 0)
        g_owned = True
    else:
        g = dy
        g_owned = False
    # Channel reductions over flattened (N, C, H*W) views: the merged inner
    # axis gives NumPy long contiguous inner loops (H and W alone are tiny
    # at the late stages of a CIFAR net).
    g3 = g.reshape(n, c, h * w)
    dbeta = g3.sum(axis=(0, 2))
    sgx = np.einsum("ncp,ncp->c", g3, x.reshape(n, c, h * w))
    # dgamma = sum(g * xhat) = inv_std * (sum(g*x) - mu * sum(g))
    dgamma = (sgx - mu * dbeta) * inv_std
    c1 = (gamma * inv_std).astype(dy.dtype, copy=False)
    if training:
        # dx = (c1/m) * (m*g - dbeta - xhat*dgamma), folded per channel:
        c2 = (-(c1 * inv_std * dgamma) / m).astype(dy.dtype, copy=False)
        c0 = (-(c1 * dbeta) / m - c2 * mu).astype(dy.dtype, copy=False)
        dx = ws.acquire(dy.shape, dy.dtype)
        np.multiply(x, c2[None, :, None, None], out=dx)
        if g_owned:
            g *= c1[None, :, None, None]
            dx += g
        else:
            scratch = ws.acquire(dy.shape, dy.dtype)
            np.multiply(g, c1[None, :, None, None], out=scratch)
            dx += scratch
            ws.release(scratch)
        dx += c0[None, :, None, None]
    else:
        # Running statistics were constants: dx = g * gamma * inv_std.
        if g_owned:
            g *= c1[None, :, None, None]
            dx = g
        else:
            dx = ws.acquire(dy.shape, dy.dtype)
            np.multiply(g, c1[None, :, None, None], out=dx)
    return dx, dgamma, dbeta


def batchnorm_backward(dy: np.ndarray, cache: tuple
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns ``(dx, dgamma, dbeta)`` (training-mode statistics).

    ``dx`` may be a pooled buffer — consume it synchronously and release it
    via ``workspace.release`` (a no-op for unpooled arrays).
    """
    if cache[0] == "coef":
        return _coef_backward(dy, cache, training=True)
    _, xhat, gamma, inv_std = cache
    n, c, h, w = dy.shape
    m = n * h * w
    dgamma = (dy * xhat).sum(axis=(0, 2, 3))
    dbeta = dy.sum(axis=(0, 2, 3))
    # dx = (gamma*inv_std/m) * (m*dy - dbeta - xhat*dgamma)
    dx = (gamma * inv_std)[None, :, None, None] / m * (
        m * dy
        - dbeta[None, :, None, None]
        - xhat * dgamma[None, :, None, None]
    )
    return dx, dgamma, dbeta


def batchnorm_eval_backward(dy: np.ndarray, cache: tuple
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward when forward used running statistics (rarely needed)."""
    if cache[0] == "coef":
        return _coef_backward(dy, cache, training=False)
    _, xhat, gamma, inv_std = cache
    dgamma = (dy * xhat).sum(axis=(0, 2, 3))
    dbeta = dy.sum(axis=(0, 2, 3))
    dx = dy * (gamma * inv_std)[None, :, None, None]
    return dx, dgamma, dbeta
