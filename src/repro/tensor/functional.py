"""Autograd-aware functional ops built on the raw kernels in ``repro.tensor.ops``.

Each function takes and returns :class:`~repro.tensor.tensor.Tensor` objects
and records the backward closure on the output node.  These are the
primitives the ``repro.nn`` layer classes call.

This layer owns two cross-cutting concerns of the performance overhaul:

- **Workspace-buffer lifetimes.**  Kernels may return gradients in pooled
  buffers and stash pooled staging in their forward context.  Kernel-produced
  gradients are *donated* to the receiving tensor whenever possible
  (:func:`_give_grad` / ``Tensor._accumulate_donated``): the array itself
  becomes the gradient — no first-touch copy — and the backward pass returns
  pooled buffers to the workspace when it drops interior gradients.  The one
  case that still copies is a pooled gradient landing on a *leaf* tensor
  (its grad outlives the backward pass, and a retained pool buffer would
  stay lent forever).  Forward staging is released once backward has
  consumed it (or immediately under ``no_grad``).

- **Op-level profiling.**  Every op is bracketed with
  ``repro.profiler.PROFILER`` guards; the disabled cost is one attribute
  check per call.

- **Step capture.**  When a :class:`repro.tensor.compile.Tape` is active
  (``repro.tensor.tensor._TAPE``), every op appends an execution record so
  the step can be replayed as a flat kernel plan.  The disabled cost is one
  ``is not None`` check per call, same pattern as the profiler guard.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..profiler import PROFILER as _P
from . import tensor as _tensor_mod
from . import workspace as ws
from .ops import conv as _conv
from .ops import loss as _loss
from .ops import norm as _norm
from .ops import pool as _pool
from .tensor import Tensor, grad_enabled


def _give_grad(t: Tensor, arr: np.ndarray) -> None:
    """Hand a kernel-produced gradient (exact shape/dtype, unaliased) to ``t``.

    Donates the array outright unless it is a pool buffer landing on a leaf
    tensor — a leaf's grad survives the backward pass, so taking ownership
    of a pooled buffer there would pin it in the pool's lent set; that case
    copies and releases instead.
    """
    if not ws.config.pooling:
        # Seed-engine semantics for honest A/B benchmarks: copy on first
        # touch, no ownership transfer.
        t._accumulate(arr)
        ws.release(arr)
    elif t._backward is not None or not ws.POOL.owns(arr):
        t._accumulate_donated(arr)
    else:
        t._accumulate(arr)
        ws.release(arr)


def relu(x: Tensor) -> Tensor:
    """Elementwise rectifier (single-pass; mask recovered from output sign)."""
    out_data = np.maximum(x.data, 0)

    def backward(g: np.ndarray) -> None:
        _give_grad(x, g * (out_data > 0))

    out = Tensor._make(out_data, (x,), backward)
    if _tensor_mod._TAPE is not None:
        _tensor_mod._TAPE.record("relu", (x,), out, None)
    return out


def add_relu(a: Tensor, b: Tensor) -> Tensor:
    """Fused residual join ``relu(a + b)``.

    One graph node instead of two, and the backward pass donates a fresh
    masked gradient to each parent instead of copying the joint gradient
    twice (the ``__add__`` + ``relu`` formulation's first-touch copies are
    the single largest per-block gradient traffic after the convolutions).
    """
    out_data = a.data + b.data
    np.maximum(out_data, 0, out=out_data)

    def backward(g: np.ndarray) -> None:
        mask = out_data > 0
        _give_grad(a, g * mask)
        _give_grad(b, g * mask)

    out = Tensor._make(out_data, (a, b), backward)
    if _tensor_mod._TAPE is not None:
        _tensor_mod._TAPE.record("add_relu", (a, b), out, None)
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor],
           stride: int = 1, padding: int = 0, first_layer: bool = False
           ) -> Tensor:
    """2-D convolution, NCHW.  ``first_layer`` skips dx for the input layer."""
    prof = _P.enabled
    if prof:
        t0 = time.perf_counter()
    y, ctx = _conv.conv2d_forward(
        x.data, weight.data, bias.data if bias is not None else None,
        stride, padding)
    if prof:
        _P.add("conv2d_fwd", time.perf_counter() - t0, y.nbytes)
    if not grad_enabled():
        _conv.release_ctx(ctx)
        out = Tensor(y)
        if _tensor_mod._TAPE is not None:
            _tensor_mod._TAPE.record("conv2d", (x, weight, bias), out,
                                     (stride, padding, first_layer))
        return out
    x_shape = x.data.shape
    w_data = weight.data
    parents = (x, weight) + ((bias,) if bias is not None else ())

    def backward(g: np.ndarray) -> None:
        prof = _P.enabled
        if prof:
            t0 = time.perf_counter()
        need_dx = x.requires_grad or x._backward is not None
        dx, dw, db = _conv.conv2d_backward(
            g, ctx, x_shape, w_data, stride, padding,
            need_dx=need_dx and not first_layer,
            need_db=bias is not None)
        if dx is not None:
            _give_grad(x, dx)
        _conv.release_ctx(ctx)
        _give_grad(weight, dw)
        if bias is not None:
            _give_grad(bias, db)
        if prof:
            _P.add("conv2d_bwd", time.perf_counter() - t0, dw.nbytes)

    out = Tensor._make(y, parents, backward)
    if _tensor_mod._TAPE is not None:
        _tensor_mod._TAPE.record("conv2d", (x, weight, bias), out,
                                 (stride, padding, first_layer))
    return out


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor]) -> Tensor:
    """Affine map ``y = x @ W.T + b`` with ``W`` of shape ``(out, in)``."""
    y = x.data @ weight.data.T
    if bias is not None:
        y = y + bias.data
    parents = (x, weight) + ((bias,) if bias is not None else ())
    w_data = weight.data
    x_data = x.data

    def backward(g: np.ndarray) -> None:
        _give_grad(x, np.matmul(g, w_data))
        _give_grad(weight, np.matmul(g.T, x_data))
        if bias is not None:
            _give_grad(bias, g.sum(axis=0))

    out = Tensor._make(y, parents, backward)
    if _tensor_mod._TAPE is not None:
        _tensor_mod._TAPE.record("linear", (x, weight, bias), out, None)
    return out


def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               momentum: float = 0.1, eps: float = 1e-5,
               training: bool = True, relu: bool = False) -> Tensor:
    """Channel-wise batch normalization for NCHW inputs.

    ``relu=True`` fuses the following rectifier into the same kernel (one
    output buffer, no separate mask, one graph node instead of two).
    """
    prof = _P.enabled
    if prof:
        t0 = time.perf_counter()
    y, cache = _norm.batchnorm_forward(
        x.data, gamma.data, beta.data, running_mean, running_var,
        momentum, eps, training, relu=relu)
    if prof:
        _P.add("bn_relu_fwd" if relu else "bn_fwd",
               time.perf_counter() - t0, y.nbytes)
    if not grad_enabled():
        out = Tensor(y)
        if _tensor_mod._TAPE is not None:
            _tensor_mod._TAPE.record(
                "batch_norm", (x, gamma, beta), out,
                (running_mean, running_var, momentum, eps, training, relu))
        return out

    def backward(g: np.ndarray) -> None:
        prof = _P.enabled
        if prof:
            t0 = time.perf_counter()
        if training:
            dx, dgamma, dbeta = _norm.batchnorm_backward(g, cache)
        else:
            dx, dgamma, dbeta = _norm.batchnorm_eval_backward(g, cache)
        _give_grad(x, dx)
        _give_grad(gamma, dgamma)
        _give_grad(beta, dbeta)
        if prof:
            _P.add("bn_relu_bwd" if relu else "bn_bwd",
                   time.perf_counter() - t0, 0)

    out = Tensor._make(y, (x, gamma, beta), backward)
    if _tensor_mod._TAPE is not None:
        _tensor_mod._TAPE.record(
            "batch_norm", (x, gamma, beta), out,
            (running_mean, running_var, momentum, eps, training, relu))
    return out


def max_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping max pooling (identity when input is below kernel size)."""
    if x.data.shape[2] < kernel or x.data.shape[3] < kernel:
        return x
    y, mask = _pool.maxpool2d_forward(x.data, kernel)
    x_shape = x.data.shape

    def backward(g: np.ndarray) -> None:
        dx = _pool.maxpool2d_backward(g, mask, kernel, x_shape)
        _give_grad(x, dx)

    out = Tensor._make(y, (x,), backward)
    if _tensor_mod._TAPE is not None:
        _tensor_mod._TAPE.record("max_pool2d", (x,), out, kernel)
    return out


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling (identity when input is below kernel size)."""
    if x.data.shape[2] < kernel or x.data.shape[3] < kernel:
        return x
    y = _pool.avgpool2d_forward(x.data, kernel)
    x_shape = x.data.shape

    def backward(g: np.ndarray) -> None:
        dx = _pool.avgpool2d_backward(g, kernel, x_shape)
        _give_grad(x, dx)

    out = Tensor._make(y, (x,), backward)
    if _tensor_mod._TAPE is not None:
        _tensor_mod._TAPE.record("avg_pool2d", (x,), out, kernel)
    return out


def global_avg_pool(x: Tensor) -> Tensor:
    """Spatial mean pooling ``(N, C, H, W) -> (N, C)``."""
    y = _pool.global_avgpool_forward(x.data)
    x_shape = x.data.shape

    def backward(g: np.ndarray) -> None:
        dx = _pool.global_avgpool_backward(g, x_shape)
        _give_grad(x, dx)

    out = Tensor._make(y, (x,), backward)
    if _tensor_mod._TAPE is not None:
        _tensor_mod._TAPE.record("global_avg_pool", (x,), out, None)
    return out


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy against integer labels."""
    targets = np.asarray(targets)
    loss, probs = _loss.cross_entropy_forward(logits.data, targets)

    def backward(g: np.ndarray) -> None:
        _give_grad(logits, _loss.cross_entropy_backward(probs, targets) * g)

    out = Tensor._make(np.asarray(loss, dtype=logits.data.dtype),
                       (logits,), backward)
    if _tensor_mod._TAPE is not None:
        _tensor_mod._TAPE.record("cross_entropy", (logits,), out, targets)
    return out


def pad_channels(x: Tensor, total: int) -> Tensor:
    """Zero-pad the channel dimension of NCHW ``x`` up to ``total`` channels.

    Used by the channel-*gating* scatter stage and by projection-free
    short-cuts; the gradient simply drops the padded lanes.
    """
    n, c, h, w = x.data.shape
    if total < c:
        raise ValueError(f"cannot pad {c} channels down to {total}")
    if total == c:
        return x
    out = np.zeros((n, total, h, w), dtype=x.data.dtype)
    out[:, :c] = x.data

    def backward(g: np.ndarray) -> None:
        x._accumulate(g[:, :c])

    node = Tensor._make(out, (x,), backward)
    if _tensor_mod._TAPE is not None:
        _tensor_mod._TAPE.record("pad_channels", (x,), node, total)
    return node


def gather_channels(x: Tensor, idx: np.ndarray) -> Tensor:
    """Select a subset of channels (the gating *select* layer).

    This is the tensor-reshaping / indexing operation whose cost the paper's
    channel-union design avoids (Fig. 7): the fancy-index forces a copy.
    """
    idx = np.asarray(idx)
    out = np.ascontiguousarray(x.data[:, idx])
    x_shape = x.data.shape

    def backward(g: np.ndarray) -> None:
        full = np.zeros(x_shape, dtype=g.dtype)
        full[:, idx] = g
        x._accumulate(full)

    node = Tensor._make(out, (x,), backward)
    if _tensor_mod._TAPE is not None:
        _tensor_mod._TAPE.record("gather_channels", (x,), node, idx)
    return node


def scatter_channels(x: Tensor, idx: np.ndarray, total: int) -> Tensor:
    """Scatter channels back into a dense ``total``-channel tensor (gating)."""
    idx = np.asarray(idx)
    n, c, h, w = x.data.shape
    out = np.zeros((n, total, h, w), dtype=x.data.dtype)
    out[:, idx] = x.data

    def backward(g: np.ndarray) -> None:
        x._accumulate(np.ascontiguousarray(g[:, idx]))

    node = Tensor._make(out, (x,), backward)
    if _tensor_mod._TAPE is not None:
        _tensor_mod._TAPE.record("scatter_channels", (x,), node, (idx, total))
    return node
