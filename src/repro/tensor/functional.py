"""Autograd-aware functional ops built on the raw kernels in ``repro.tensor.ops``.

Each function takes and returns :class:`~repro.tensor.tensor.Tensor` objects
and records the backward closure on the output node.  These are the
primitives the ``repro.nn`` layer classes call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .ops import conv as _conv
from .ops import loss as _loss
from .ops import norm as _norm
from .ops import pool as _pool
from .tensor import Tensor, grad_enabled


def relu(x: Tensor) -> Tensor:
    """Elementwise rectifier."""
    mask = x.data > 0
    out_data = x.data * mask

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * mask)

    return Tensor._make(out_data, (x,), backward)


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor],
           stride: int = 1, padding: int = 0, first_layer: bool = False
           ) -> Tensor:
    """2-D convolution, NCHW.  ``first_layer`` skips dx for the input layer."""
    y, cols = _conv.conv2d_forward(
        x.data, weight.data, bias.data if bias is not None else None,
        stride, padding)
    if not grad_enabled():
        return Tensor(y)
    x_shape = x.data.shape
    w_data = weight.data
    parents = (x, weight) + ((bias,) if bias is not None else ())

    def backward(g: np.ndarray) -> None:
        need_dx = x.requires_grad or x._backward is not None
        dx, dw, db = _conv.conv2d_backward(
            g, cols, x_shape, w_data, stride, padding,
            need_dx=need_dx and not first_layer)
        if dx is not None:
            x._accumulate(dx)
        weight._accumulate(dw)
        if bias is not None:
            bias._accumulate(db)

    return Tensor._make(y, parents, backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor]) -> Tensor:
    """Affine map ``y = x @ W.T + b`` with ``W`` of shape ``(out, in)``."""
    y = x.data @ weight.data.T
    if bias is not None:
        y = y + bias.data
    parents = (x, weight) + ((bias,) if bias is not None else ())
    w_data = weight.data
    x_data = x.data

    def backward(g: np.ndarray) -> None:
        x._accumulate(g @ w_data)
        weight._accumulate(g.T @ x_data)
        if bias is not None:
            bias._accumulate(g.sum(axis=0))

    return Tensor._make(y, parents, backward)


def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               momentum: float = 0.1, eps: float = 1e-5,
               training: bool = True) -> Tensor:
    """Channel-wise batch normalization for NCHW inputs."""
    y, cache = _norm.batchnorm_forward(
        x.data, gamma.data, beta.data, running_mean, running_var,
        momentum, eps, training)
    if not grad_enabled():
        return Tensor(y)

    def backward(g: np.ndarray) -> None:
        if training:
            dx, dgamma, dbeta = _norm.batchnorm_backward(g, cache)
        else:
            dx, dgamma, dbeta = _norm.batchnorm_eval_backward(g, cache)
        x._accumulate(dx)
        gamma._accumulate(dgamma)
        beta._accumulate(dbeta)

    return Tensor._make(y, (x, gamma, beta), backward)


def max_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping max pooling (identity when input is below kernel size)."""
    if x.data.shape[2] < kernel or x.data.shape[3] < kernel:
        return x
    y, mask = _pool.maxpool2d_forward(x.data, kernel)
    x_shape = x.data.shape

    def backward(g: np.ndarray) -> None:
        x._accumulate(_pool.maxpool2d_backward(g, mask, kernel, x_shape))

    return Tensor._make(y, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling (identity when input is below kernel size)."""
    if x.data.shape[2] < kernel or x.data.shape[3] < kernel:
        return x
    y = _pool.avgpool2d_forward(x.data, kernel)
    x_shape = x.data.shape

    def backward(g: np.ndarray) -> None:
        x._accumulate(_pool.avgpool2d_backward(g, kernel, x_shape))

    return Tensor._make(y, (x,), backward)


def global_avg_pool(x: Tensor) -> Tensor:
    """Spatial mean pooling ``(N, C, H, W) -> (N, C)``."""
    y = _pool.global_avgpool_forward(x.data)
    x_shape = x.data.shape

    def backward(g: np.ndarray) -> None:
        x._accumulate(_pool.global_avgpool_backward(g, x_shape))

    return Tensor._make(y, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy against integer labels."""
    targets = np.asarray(targets)
    loss, probs = _loss.cross_entropy_forward(logits.data, targets)

    def backward(g: np.ndarray) -> None:
        logits._accumulate(_loss.cross_entropy_backward(probs, targets) * g)

    return Tensor._make(np.asarray(loss, dtype=logits.data.dtype),
                        (logits,), backward)


def pad_channels(x: Tensor, total: int) -> Tensor:
    """Zero-pad the channel dimension of NCHW ``x`` up to ``total`` channels.

    Used by the channel-*gating* scatter stage and by projection-free
    short-cuts; the gradient simply drops the padded lanes.
    """
    n, c, h, w = x.data.shape
    if total < c:
        raise ValueError(f"cannot pad {c} channels down to {total}")
    if total == c:
        return x
    out = np.zeros((n, total, h, w), dtype=x.data.dtype)
    out[:, :c] = x.data

    def backward(g: np.ndarray) -> None:
        x._accumulate(g[:, :c])

    return Tensor._make(out, (x,), backward)


def gather_channels(x: Tensor, idx: np.ndarray) -> Tensor:
    """Select a subset of channels (the gating *select* layer).

    This is the tensor-reshaping / indexing operation whose cost the paper's
    channel-union design avoids (Fig. 7): the fancy-index forces a copy.
    """
    idx = np.asarray(idx)
    out = np.ascontiguousarray(x.data[:, idx])
    x_shape = x.data.shape

    def backward(g: np.ndarray) -> None:
        full = np.zeros(x_shape, dtype=g.dtype)
        full[:, idx] = g
        x._accumulate(full)

    return Tensor._make(out, (x,), backward)


def scatter_channels(x: Tensor, idx: np.ndarray, total: int) -> Tensor:
    """Scatter channels back into a dense ``total``-channel tensor (gating)."""
    idx = np.asarray(idx)
    n, c, h, w = x.data.shape
    out = np.zeros((n, total, h, w), dtype=x.data.dtype)
    out[:, idx] = x.data

    def backward(g: np.ndarray) -> None:
        x._accumulate(np.ascontiguousarray(g[:, idx]))

    return Tensor._make(out, (x,), backward)
