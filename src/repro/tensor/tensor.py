"""Reverse-mode autograd tensor.

A minimal but complete dynamic-graph autodiff engine in pure NumPy.  Every
differentiable operation creates a new :class:`Tensor` holding references to
its parents and a closure that accumulates gradients into them.  Calling
:meth:`Tensor.backward` runs a topological sort over the recorded graph and
invokes the closures in reverse order.

The engine is deliberately eager and define-by-run (the PruneTrain paper's
substrate is PyTorch, which works the same way): network reconfiguration can
therefore change tensor shapes between iterations without any graph
recompilation step.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from .workspace import release as _pool_release

ArrayLike = Union[np.ndarray, float, int, Sequence]

#: Global autograd switch.  ``no_grad()`` flips this off so inference and
#: optimizer updates do not record graph nodes.
_GRAD_ENABLED = True

#: Active capture tape (:class:`repro.tensor.compile.Tape`) or ``None``.
#: While set, every op appends an execution record so the step can later be
#: replayed as a flat kernel plan; the disabled cost is one global load per
#: op.  Set/cleared only by ``Tape.__enter__``/``__exit__``.
_TAPE = None


class no_grad:
    """Context manager disabling graph recording (like ``torch.no_grad``)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def grad_enabled() -> bool:
    """Return whether operations currently record autograd graph nodes."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Added leading axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Broadcast (size-1) axes.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """N-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array data; copied only if not already a float32/float64 ndarray.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100.0  # so ndarray + Tensor defers to Tensor

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self.name = name
        if _TAPE is not None:
            _TAPE.saw_fresh(self)

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a graph node.  ``backward(grad)`` must accumulate into parents."""
        parents = tuple(parents)
        req = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=req)
        if req:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first use).

        Ownership contract: this method never retains a reference to
        ``grad`` — it either copies it (first touch) or ``+=``-reduces it
        into an array it already owns.  Backward kernels may therefore hand
        in workspace-pool buffers and release them immediately after this
        call returns (see :mod:`repro.tensor.workspace`).
        """
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            # Always copy: the incoming array may be aliased by other nodes
            # (e.g. an add fans the same gradient out to both parents), and
            # later in-place accumulation must not corrupt their values.
            self.grad = grad.copy()
        else:
            self.grad += grad

    def _accumulate_donated(self, grad: np.ndarray) -> None:
        """Accumulate ``grad``, taking ownership instead of copying.

        The caller *donates* the array: it must match ``self.data`` in shape
        and dtype exactly, must not alias any other live gradient, and must
        not be used by the caller afterwards.  On first touch the array
        itself becomes ``self.grad`` — a workspace-pool buffer stays lent
        and is returned to the pool when :meth:`backward` drops the interior
        gradient — so the kernels' gradient outputs reach the graph with
        zero copies.  On later touches it is reduced in place and released
        back to the pool (a no-op for unpooled arrays).
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad
        else:
            self.grad += grad
            _pool_release(grad)

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (scalar outputs are the common case:
        losses).  Gradients accumulate into every reachable tensor with
        ``requires_grad=True``.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited and p.requires_grad:
                    stack.append((p, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None:
                continue  # leaf: no closure, and its grad must survive
            if node.grad is not None:
                node._backward(node.grad)
                if node is not self:
                    # Donated pool buffers (see _accumulate_donated) go
                    # back to the workspace here — release is a no-op for
                    # plain arrays.
                    _pool_release(node.grad)
                    node.grad = None
            # Drop the closure and parent references even when this node
            # received no gradient (e.g. a conv that skips dx): a retained
            # closure would keep its entire upstream subgraph — and every
            # activation buffer captured in those closures — alive until
            # the output tensor itself is garbage collected.
            node._backward = None
            node._parents = ()

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # arithmetic ops
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g)
            other._accumulate(g)

        out = Tensor._make(out_data, (self, other), backward)
        if _TAPE is not None:
            _TAPE.record("add", (self, other), out, None)
        return out

    __radd__ = __add__

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * other.data)
            other._accumulate(g * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g)
            other._accumulate(-g)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g / other.data)
            other._accumulate(-g * self.data / (other.data * other.data))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g @ other.data.T)
            other._accumulate(self.data.T @ g)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        orig = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(orig))

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            _TAPE.record("reshape", (self,), out, orig)
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inv = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.transpose(inv))

        return Tensor._make(out_data, (self,), backward)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray) -> None:
            if axis is None:
                self._accumulate(np.broadcast_to(g, shape))
            else:
                ax = (axis,) if isinstance(axis, int) else tuple(axis)
                gg = g
                if not keepdims:
                    gg = np.expand_dims(g, ax)
                self._accumulate(np.broadcast_to(gg, shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            n = self.data.size
        else:
            ax = (axis,) if isinstance(axis, int) else tuple(axis)
            n = int(np.prod([self.data.shape[a] for a in ax]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]
        shape = self.data.shape

        def backward(g: np.ndarray) -> None:
            full = np.zeros(shape, dtype=g.dtype)
            np.add.at(full, idx, g)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)
