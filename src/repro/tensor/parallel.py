"""Level-scheduled parallel replay of compiled step plans.

The compiled training step (:mod:`repro.tensor.compile`) replays a flat
list of zero-argument thunks in serial capture order.  That order is one
valid topological sort of the tape's dataflow graph, but the graph itself
is wider than a chain: ResNet branch/residual paths are independent until
the join, and every convolution's weight-gradient GEMM is independent of
the ``dx`` chain the rest of the backward pass waits on.  NumPy/BLAS
kernels release the GIL, so independent thunks can genuinely overlap on
threads — no processes, no serialization of model state.

This module owns the machinery that is independent of the tape format:

``LevelSchedule``
    A dependency DAG over abstract node indices plus a longest-path level
    partition.  Nodes must be added in a topological order (the serial
    execution order is one, and is what :mod:`compile` uses), which makes
    level computation a single linear pass.  ``serialize_level`` chains a
    level's nodes to shrink its width — the arena growth guard uses it to
    trade parallelism for footprint instead of growing the arena.

``WorkerPool``
    A persistent pool of daemon threads executing one level at a time.
    Dispatch is condition-variable based (never spin-waiting: a Python
    spin loop holds the GIL for the 5 ms switch interval and starves the
    very kernels it waits on).  The calling thread participates in
    draining each level, so ``workers`` counts total executors.  Thunks
    raising propagate the first exception to the caller after the level
    barrier.

``limit_blas_threads``
    Oversubscription guard: while the replay pool is active, each BLAS
    call must not fan out to its own thread team (``pool_width x
    blas_width`` threads thrash).  Uses :mod:`threadpoolctl` when
    available, else talks to OpenBLAS directly via :mod:`ctypes` (the
    bundled scipy-openblas), else degrades to a no-op.

Determinism contract
--------------------
Parallel replay must be bit-identical to serial replay.  The schedule
builder pins every floating-point accumulation order with explicit edges
(multiple writers into one gradient slot or one leaf ``.grad`` are chained
in serial backward order), and the pool only ever reorders *independent*
thunks, so every kernel sees bit-identical operands in either mode.  The
worker that happens to run a thunk is irrelevant to its result.

Interaction with ``ElasticEngine``
----------------------------------
Elastic data-parallel training forks worker *processes*; compiled replay
(and therefore this pool) is bypassed on that path
(``Trainer._compile_active`` requires ``workers == 1``).  The pool's
daemon threads are safe to leave running across a fork — no pool lock is
held between steps — but the forked child never inherits running threads,
so an elastic worker that were to enable parallel replay would lazily
build its own pool.  When combining elastic workers with multi-threaded
BLAS, cap BLAS via ``OPENBLAS_NUM_THREADS`` in the environment instead:
the per-replay limiter below only guards the replay window.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple


# ---------------------------------------------------------------------------
# Scheduling statistics (PROFILER.summary()["_parallel"])
# ---------------------------------------------------------------------------

@dataclass
class ParallelStats:
    """Aggregate accounting for parallel replay."""

    #: schedules built (one per parallel plan capture)
    schedules: int = 0
    #: parallel replays executed
    replays: int = 0
    #: levels executed across all replays
    levels_run: int = 0
    #: thunks executed across all replays
    thunks_run: int = 0
    #: widest level seen in any built schedule
    max_width: int = 0
    #: wall seconds spent inside parallel replay (sum over levels)
    replay_seconds: float = 0.0
    #: seconds the calling thread spent blocked on level barriers
    barrier_seconds: float = 0.0
    #: levels serialized by the arena growth guard
    levels_serialized: int = 0
    #: comm-launch thunks fired at level barriers (plan-scheduled gradient
    #: bucket notifications — :meth:`StepPlan.add_comm_thunk`; fired on the
    #: coordinator thread after the owning level's barrier, never inside a
    #: worker thread, so launch callbacks need no locking of their own)
    comm_thunks_fired: int = 0
    #: whether the BLAS limiter found a backend to pin (None = never tried)
    blas_limited: Optional[bool] = None
    #: per-level timing of the most recent replay: (width, seconds)
    last_levels: List[Tuple[int, float]] = field(default_factory=list)

    def reset(self) -> None:
        self.schedules = self.replays = 0
        self.levels_run = self.thunks_run = 0
        self.max_width = 0
        self.replay_seconds = self.barrier_seconds = 0.0
        self.levels_serialized = 0
        self.comm_thunks_fired = 0
        self.blas_limited = None
        self.last_levels = []

    def as_dict(self) -> Dict[str, object]:
        pool = _POOL
        busy = list(pool.busy_seconds) if pool is not None else []
        return {"schedules": self.schedules, "replays": self.replays,
                "levels_run": self.levels_run, "thunks_run": self.thunks_run,
                "max_width": self.max_width,
                "replay_seconds": self.replay_seconds,
                "barrier_seconds": self.barrier_seconds,
                "levels_serialized": self.levels_serialized,
                "comm_thunks_fired": self.comm_thunks_fired,
                "blas_limited": self.blas_limited,
                "threads": (pool.width if pool is not None else 0),
                "thread_busy_seconds": busy,
                "last_levels": [{"width": w, "seconds": s}
                                for w, s in self.last_levels]}


STATS = ParallelStats()


# ---------------------------------------------------------------------------
# Dependency levels
# ---------------------------------------------------------------------------

class LevelSchedule:
    """Longest-path level partition of a DAG given in topological order.

    Nodes are dense integer indices ``0..n-1``; :meth:`add_node` must be
    called in an order where every edge ``src -> dst`` has ``src < dst``
    (the serial execution order satisfies this by construction).  Levels
    group nodes whose dependencies are all in strictly earlier levels, so
    all nodes of one level may execute concurrently.
    """

    def __init__(self) -> None:
        self.names: List[str] = []
        self.deps: List[List[int]] = []
        self.level_of: List[int] = []
        self.levels: List[List[int]] = []
        self._edge_set: set = set()

    @property
    def n_nodes(self) -> int:
        return len(self.names)

    def add_node(self, name: str) -> int:
        self.names.append(name)
        self.deps.append([])
        return len(self.names) - 1

    def add_edge(self, src: int, dst: int) -> None:
        if src == dst:
            return
        if src > dst:
            raise ValueError(
                f"edge {src}->{dst} violates topological node order")
        if (src, dst) not in self._edge_set:
            self._edge_set.add((src, dst))
            self.deps[dst].append(src)

    def compute_levels(self) -> List[List[int]]:
        """(Re)compute the level partition; safe to call repeatedly."""
        level_of = [0] * self.n_nodes
        for i in range(self.n_nodes):
            deps = self.deps[i]
            if deps:
                level_of[i] = 1 + max(level_of[d] for d in deps)
        n_levels = (max(level_of) + 1) if level_of else 0
        levels: List[List[int]] = [[] for _ in range(n_levels)]
        for i, lv in enumerate(level_of):
            levels[lv].append(i)
        self.level_of = level_of
        self.levels = levels
        return levels

    def widest_level(self) -> int:
        """Index of the widest level (-1 if all levels have width <= 1)."""
        best, width = -1, 1
        for li, nodes in enumerate(self.levels):
            if len(nodes) > width:
                best, width = li, len(nodes)
        return best

    def serialize_level(self, level: int) -> None:
        """Chain the nodes of ``level`` (serial order) and relevel.

        Used by the arena growth guard: co-scheduled thunks may never
        share arena bytes, so a pathologically wide level can inflate the
        arena — chaining its nodes restores the serial footprint for that
        stretch at the cost of its parallelism.
        """
        nodes = self.levels[level]
        for a, b in zip(nodes, nodes[1:]):
            self.add_edge(a, b)
        self.compute_levels()

    def validate(self) -> None:
        """Assert every edge crosses strictly increasing levels."""
        for dst, deps in enumerate(self.deps):
            for src in deps:
                if not self.level_of[src] < self.level_of[dst]:
                    raise AssertionError(
                        f"edge {self.names[src]}->{self.names[dst]} "
                        f"does not cross levels")


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------

class WorkerPool:
    """Persistent thread pool executing one level (task list) at a time.

    ``width`` counts total executors: the caller participates in draining,
    so ``width - 1`` daemon threads are spawned.  ``run_level`` blocks
    until every task of the level completed (the barrier), then re-raises
    the first exception any task produced.  A single pool is process-wide
    (see :func:`get_pool`); concurrent callers are serialized by
    ``caller_lock`` — plans replay one step at a time anyway.
    """

    def __init__(self, width: int):
        self.width = max(2, int(width))
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._done = threading.Condition(self._lock)
        self._tasks: Optional[Sequence[Callable[[], None]]] = None
        self._next = 0
        self._pending = 0
        self._gen = 0
        self._shutdown = False
        self._error: Optional[BaseException] = None
        #: wall seconds each executor spent running thunks (slot 0 = caller)
        self.busy_seconds = [0.0] * self.width
        self.caller_lock = threading.Lock()
        self._threads = []
        for slot in range(1, self.width):
            t = threading.Thread(target=self._worker, args=(slot,),
                                 name=f"replay-worker-{slot}", daemon=True)
            t.start()
            self._threads.append(t)

    # -- execution ---------------------------------------------------------
    def run_level(self, tasks: Sequence[Callable[[], None]]) -> None:
        if not tasks:
            return
        if len(tasks) == 1:
            # width-1 levels run inline: no dispatch, no barrier
            t0 = perf_counter()
            tasks[0]()
            self.busy_seconds[0] += perf_counter() - t0
            return
        with self._lock:
            self._tasks = tasks
            self._next = 0
            self._pending = len(tasks)
            self._gen += 1
            self._work.notify(len(tasks) - 1)
        self._drain(0)
        t0 = perf_counter()
        with self._lock:
            while self._pending:
                self._done.wait()
            self._tasks = None
            err, self._error = self._error, None
        STATS.barrier_seconds += perf_counter() - t0
        if err is not None:
            raise err

    def _drain(self, slot: int) -> None:
        while True:
            with self._lock:
                tasks = self._tasks
                if tasks is None or self._next >= len(tasks):
                    return
                i = self._next
                self._next += 1
            t0 = perf_counter()
            try:
                tasks[i]()
            except BaseException as exc:  # noqa: BLE001 - must reach caller
                with self._lock:
                    if self._error is None:
                        self._error = exc
            finally:
                self.busy_seconds[slot] += perf_counter() - t0
                with self._lock:
                    self._pending -= 1
                    if self._pending == 0:
                        self._done.notify_all()

    def _worker(self, slot: int) -> None:
        seen = 0
        while True:
            with self._lock:
                while self._gen == seen and not self._shutdown:
                    self._work.wait()
                if self._shutdown:
                    return
                seen = self._gen
            self._drain(slot)

    def close(self) -> None:
        with self._lock:
            self._shutdown = True
            self._work.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)


_POOL: Optional[WorkerPool] = None
_POOL_LOCK = threading.Lock()


def get_pool(width: int) -> WorkerPool:
    """Process-wide replay pool with at least ``width`` executors.

    The pool only ever grows (plans captured at different worker counts
    may coexist); shrinking would strand threads mid-level.
    """
    global _POOL
    with _POOL_LOCK:
        if _POOL is None or _POOL.width < width:
            old, _POOL = _POOL, WorkerPool(width)
            if old is not None:
                old.close()
        return _POOL


def close_pool() -> None:
    """Tear down the process-wide pool (tests)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.close()
            _POOL = None


# ---------------------------------------------------------------------------
# BLAS oversubscription guard
# ---------------------------------------------------------------------------

_blas_ctl = None        # resolved limiter backend, memoized
_blas_resolved = False


def _resolve_blas_control():
    """Find a way to set the BLAS thread count; memoized.

    Returns ``(get_fn, set_fn)`` or ``None``.  Preference order:
    :mod:`threadpoolctl` (not bundled in this environment, but the right
    tool where present), then the OpenBLAS C API out of whatever shared
    object NumPy loaded (scipy-openblas here), found via
    ``/proc/self/maps``.
    """
    global _blas_ctl, _blas_resolved
    if _blas_resolved:
        return _blas_ctl
    _blas_resolved = True
    try:
        from threadpoolctl import threadpool_limits  # type: ignore

        _blas_ctl = ("threadpoolctl", threadpool_limits)
        return _blas_ctl
    except ImportError:
        pass
    try:
        import ctypes

        paths = set()
        with open("/proc/self/maps") as fh:
            for line in fh:
                part = line.rstrip("\n").split(" ", 5)[-1].strip()
                if "openblas" in os.path.basename(part).lower():
                    paths.add(part)
        for path in sorted(paths):
            lib = ctypes.CDLL(path)
            # scipy-openblas (numpy's bundled BLAS) namespaces the API
            for prefix in ("openblas", "scipy_openblas"):
                for suffix in ("", "64_", "_64_"):
                    base = f"{prefix}_%s_num_threads{suffix}"
                    get = getattr(lib, base % "get", None)
                    set_ = getattr(lib, base % "set", None)
                    if get is not None and set_ is not None:
                        get.restype = ctypes.c_int
                        set_.argtypes = [ctypes.c_int]
                        _blas_ctl = ("openblas", (get, set_))
                        return _blas_ctl
    except Exception:  # pragma: no cover - permissive: limiter is advisory
        pass
    _blas_ctl = None
    return None


@contextmanager
def limit_blas_threads(n: int = 1):
    """Pin the BLAS thread count to ``n`` for the duration of the block.

    Replay threads each issue their own BLAS calls; letting every call
    also spawn a BLAS team oversubscribes the machine (``levels x blas``
    threads).  No-op when no controllable backend is found — recorded in
    ``STATS.blas_limited`` either way so the profiler shows whether the
    guard is live.
    """
    ctl = _resolve_blas_control()
    if ctl is None:
        STATS.blas_limited = False
        yield
        return
    kind, impl = ctl
    STATS.blas_limited = True
    if kind == "threadpoolctl":
        with impl(limits=n, user_api="blas"):
            yield
        return
    get, set_ = impl
    prev = int(get())
    set_(int(n))
    try:
        yield
    finally:
        set_(prev)
