"""Op-level profiler for the NumPy training engine.

Records per-op wall time, call counts, and bytes allocated, with near-zero
cost when disabled (a single attribute check per instrumented op).  The
functional layer (``repro.tensor.functional``) and the optimizer instrument
themselves; the trainer exposes a ``profile`` config flag that snapshots the
counters into every epoch's log record.

Usage::

    from repro.profiler import PROFILER

    PROFILER.enable()
    ...train...
    print(PROFILER.report())

or scoped::

    with PROFILER.session():
        ...train...

The ``bytes`` column counts the output arrays each op materializes; together
with the workspace-pool hit/miss statistics (merged into :meth:`summary`)
it shows how much of the engine's traffic the buffer pool absorbs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["OpProfiler", "OpStat", "PROFILER", "profile_op"]


@dataclass
class OpStat:
    """Accumulated statistics for one op name."""

    calls: int = 0
    seconds: float = 0.0
    bytes: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {"calls": self.calls, "seconds": self.seconds,
                "bytes": self.bytes}


class OpProfiler:
    """Aggregating wall-time / bytes profiler with a context-manager API.

    Disabled by default; every instrumentation site guards on
    ``PROFILER.enabled`` so the disabled cost is one attribute lookup.
    """

    def __init__(self) -> None:
        self.enabled: bool = False
        self._stats: Dict[str, OpStat] = {}

    # -- switches ----------------------------------------------------------
    def enable(self, reset: bool = True) -> None:
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._stats = {}

    @contextmanager
    def session(self, reset: bool = True):
        """Enable for the duration of a ``with`` block."""
        prev = self.enabled
        self.enable(reset=reset)
        try:
            yield self
        finally:
            self.enabled = prev

    # -- recording ---------------------------------------------------------
    def add(self, name: str, seconds: float, nbytes: int = 0) -> None:
        """Record one completed op invocation (call under an enabled guard)."""
        st = self._stats.get(name)
        if st is None:
            st = self._stats[name] = OpStat()
        st.calls += 1
        st.seconds += seconds
        st.bytes += nbytes

    @contextmanager
    def op(self, name: str, nbytes: int = 0):
        """Context manager timing one op; no-op when disabled."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0, nbytes)

    # -- reporting ---------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-op stats plus workspace-pool, step-plan, memory-planner,
        and parallel-replay counters."""
        out = {name: st.as_dict() for name, st in self._stats.items()}
        try:
            from ..tensor import workspace
            out["_workspace"] = dict(workspace.POOL.stats.as_dict())
        except ImportError:  # pragma: no cover - circular-import guard
            pass
        try:
            from ..tensor import compile as step_compile
            out["_plans"] = step_compile.STATS.as_dict()
        except ImportError:  # pragma: no cover - circular-import guard
            pass
        try:
            from ..tensor import memplan
            out["_memplan"] = memplan.STATS.as_dict()
        except ImportError:  # pragma: no cover - circular-import guard
            pass
        try:
            from ..tensor import parallel
            out["_parallel"] = parallel.STATS.as_dict()
        except ImportError:  # pragma: no cover - circular-import guard
            pass
        try:
            from ..distributed import allreduce
            out["_comm"] = allreduce.COMM_STATS.as_dict()
        except ImportError:  # pragma: no cover - circular-import guard
            pass
        try:
            from ..tensor import sparse
            out["_sparse"] = sparse.STATS.as_dict()
        except ImportError:  # pragma: no cover - circular-import guard
            pass
        return out

    def total_seconds(self) -> float:
        return sum(st.seconds for st in self._stats.values())

    def report(self, top: Optional[int] = None) -> str:
        """Human-readable table sorted by total time."""
        rows = sorted(self._stats.items(), key=lambda kv: -kv[1].seconds)
        if top is not None:
            rows = rows[:top]
        lines = [f"{'op':<24}{'calls':>8}{'total ms':>12}"
                 f"{'ms/call':>10}{'MB':>10}"]
        for name, st in rows:
            per = st.seconds / st.calls * 1e3 if st.calls else 0.0
            lines.append(f"{name:<24}{st.calls:>8}{st.seconds * 1e3:>12.2f}"
                         f"{per:>10.3f}{st.bytes / 1e6:>10.1f}")
        return "\n".join(lines)


#: Process-wide profiler instance used by all instrumentation sites.
PROFILER = OpProfiler()


def profile_op(name: str, nbytes: int = 0):
    """Module-level alias for ``PROFILER.op`` (context manager)."""
    return PROFILER.op(name, nbytes)
