"""Cheap experiment runners (no training): Fig. 6/7 machinery and the CLI."""

import numpy as np
import pytest

from repro.experiments import SMOKE, fig6_fig7
from repro.experiments.__main__ import EXPERIMENTS, main


class TestFig6:
    def test_structure(self):
        result = fig6_fig7.run_fig6(SMOKE)
        assert set(result["models"]) == {"resnet32", "resnet50"}
        for rows in result["models"].values():
            assert len(rows) == len(result["intensities"])
            for r in rows:
                assert 0 < r["gating"] <= r["union"] <= 1.0 + 1e-9

    def test_higher_intensity_fewer_flops(self):
        result = fig6_fig7.run_fig6(SMOKE)
        for rows in result["models"].values():
            unions = [r["union"] for r in rows]
            assert unions[-1] < unions[0]

    def test_report_renders(self):
        result = fig6_fig7.run_fig6(SMOKE)
        out = fig6_fig7.report_fig6(result)
        assert "Fig. 6" in out and "resnet50" in out


class TestFig7:
    def test_measures_all_blocks(self):
        result = fig6_fig7.run_fig7(SMOKE, batch=2, repeats=1)
        assert len(result["blocks"]) == 16  # resnet50 bottlenecks
        for r in result["blocks"]:
            assert r["union_ms"] > 0 and r["gating_ms"] > 0
        assert np.isfinite(result["mean_speedup"])

    def test_report_renders(self):
        result = fig6_fig7.run_fig7(SMOKE, batch=2, repeats=1)
        out = fig6_fig7.report_fig7(result)
        assert "Fig. 7" in out


class TestCLI:
    def test_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "tab1" in out

    def test_registry_covers_every_paper_item(self):
        for required in ["fig2", "fig4", "fig6", "fig7", "fig8", "fig9",
                         "fig10", "fig11", "fig12", "tab1", "tab2", "tab3",
                         "tab4"]:
            assert required in EXPERIMENTS

    def test_runs_cheap_experiment(self, capsys):
        assert main(["fig6", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
