"""Experiment configs, λ calibration math, run cache, and formatting."""

import numpy as np
import pytest

from repro.experiments import (DATASETS, MODELS, PAPER, QUICK, SMOKE, Runs,
                               epochs_for, interval_for, lambda_scale_for,
                               make_dataset, make_model, threshold_for)
from repro.experiments.configs import (LAMBDA_SCALE_MAX,
                                       PAPER_REFERENCE_STEPS)
from repro.experiments.format import pct, series, table


class TestLambdaCalibration:
    def test_paper_scale_is_identity(self):
        """At the paper's own horizon the compression factor ~ 1 (clamped
        at 1 from below) and the threshold is the paper's 1e-4."""
        s = lambda_scale_for(182, 50_000 // 128)
        assert s == 1.0
        assert threshold_for(s) == pytest.approx(1e-4)

    def test_shorter_runs_get_larger_lambda(self):
        s1 = lambda_scale_for(100, 100)
        s2 = lambda_scale_for(50, 100)
        assert s2 > s1

    def test_clamped(self):
        assert lambda_scale_for(1, 1) == LAMBDA_SCALE_MAX

    def test_threshold_scales_linearly(self):
        assert threshold_for(50.0) == pytest.approx(50 * 1e-4)

    def test_reference_steps_value(self):
        assert PAPER_REFERENCE_STEPS == 182 * (50_000 // 128)


class TestScales:
    def test_presets_ordered_by_size(self):
        assert SMOKE.n_train < QUICK.n_train < PAPER.n_train
        assert SMOKE.epochs < QUICK.epochs < PAPER.epochs

    def test_iters_per_epoch(self):
        assert QUICK.iters_per_epoch() == QUICK.n_train // QUICK.batch_size

    def test_epochs_and_interval_for(self):
        assert epochs_for("cifar10s", QUICK) == QUICK.epochs
        assert epochs_for("imagenet-s", QUICK) == QUICK.epochs_large
        assert interval_for("imagenet-s", QUICK) == \
            QUICK.reconfig_interval_large


class TestFactories:
    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_make_model(self, name):
        ds = "imagenet-s" if name.endswith("imagenet") else "cifar10s"
        m = make_model(name, ds, SMOKE)
        assert m.num_parameters() > 0
        m.graph.validate()

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_make_dataset(self, name):
        train, val = make_dataset(name, SMOKE)
        assert len(train) == SMOKE.n_train
        assert len(val) == SMOKE.n_val
        assert train.num_classes == DATASETS[name][0]

    def test_dataset_classes_match_model_head(self):
        m = make_model("resnet32", "cifar100s", SMOKE)
        train, _ = make_dataset("cifar100s", SMOKE)
        assert m.fc.out_features == train.num_classes


class TestRunsCache:
    def test_in_memory_cache_hit(self, tmp_path):
        runs = Runs(SMOKE, cache_dir=str(tmp_path))
        k1, log1 = runs.dense("resnet32", "cifar10s")
        k2, log2 = runs.dense("resnet32", "cifar10s")
        assert k1 == k2
        assert log1 is log2

    def test_disk_cache_roundtrip(self, tmp_path):
        runs = Runs(SMOKE, cache_dir=str(tmp_path))
        k1, log1 = runs.dense("resnet32", "cifar10s")
        fresh = Runs(SMOKE, cache_dir=str(tmp_path))
        k2, log2 = fresh.dense("resnet32", "cifar10s")
        assert k1 == k2
        assert log2.final_val_acc == pytest.approx(log1.final_val_acc)
        # disk hits carry no model
        assert fresh.model_for(k2) is None

    def test_need_model_bypasses_disk(self, tmp_path):
        runs = Runs(SMOKE, cache_dir=str(tmp_path))
        runs.dense("resnet32", "cifar10s")
        fresh = Runs(SMOKE, cache_dir=str(tmp_path))
        k, _ = fresh.dense("resnet32", "cifar10s", need_model=True)
        assert fresh.model_for(k) is not None

    def test_different_params_different_keys(self, tmp_path):
        runs = Runs(SMOKE, cache_dir=str(tmp_path), use_disk_cache=False)
        k1 = runs._key(method="prunetrain", ratio=0.1)
        k2 = runs._key(method="prunetrain", ratio=0.2)
        assert k1 != k2

    def test_prunetrain_run_caches(self, tmp_path):
        runs = Runs(SMOKE, cache_dir=str(tmp_path))
        k1, log1 = runs.prunetrain("resnet32", "cifar10s", ratio=0.3)
        k2, log2 = runs.prunetrain("resnet32", "cifar10s", ratio=0.3)
        assert log1 is log2

    def test_ssl_reuses_dense_pretrain(self, tmp_path):
        runs = Runs(SMOKE, cache_dir=str(tmp_path))
        _, ssl_log = runs.ssl("resnet32", "cifar10s", ratio=0.3)
        _, dense_log = runs.dense("resnet32", "cifar10s")
        # SSL log embeds the dense phase: strictly more records and more
        # cumulative FLOPs
        assert len(ssl_log.records) == 2 * len(dense_log.records)
        assert ssl_log.total_train_flops > 1.9 * dense_log.total_train_flops


class TestFormat:
    def test_table_alignment(self):
        out = table(["a", "bb"], [[1, 2.5], ["xxx", 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "|" in lines[0]

    def test_series_format(self):
        assert series("x", [1.0, 2.0], "{:.1f}") == "x: 1.0 2.0"

    def test_pct(self):
        assert pct(0.5) == "50.0%"

    def test_table_scientific_for_extremes(self):
        out = table(["v"], [[1e-9], [1e9]])
        assert "e" in out
