"""Regression: need_model must retrain past a log-only cache hit."""

from repro.experiments import SMOKE, Runs


def test_need_model_after_log_only_hit(tmp_path):
    runs = Runs(SMOKE, cache_dir=str(tmp_path))
    # first call populates disk; a fresh runner loads log-only
    runs.dense("resnet32", "cifar10s")
    fresh = Runs(SMOKE, cache_dir=str(tmp_path))
    k1, _ = fresh.dense("resnet32", "cifar10s")           # disk hit, no model
    assert fresh.model_for(k1) is None
    k2, _ = fresh.dense("resnet32", "cifar10s", need_model=True)
    assert k1 == k2
    assert fresh.model_for(k2) is not None


def test_need_model_prunetrain_after_log_only_hit(tmp_path):
    runs = Runs(SMOKE, cache_dir=str(tmp_path))
    runs.prunetrain("resnet32", "cifar10s", ratio=0.3)
    fresh = Runs(SMOKE, cache_dir=str(tmp_path))
    k1, _ = fresh.prunetrain("resnet32", "cifar10s", ratio=0.3)
    assert fresh.model_for(k1) is None
    k2, _ = fresh.prunetrain("resnet32", "cifar10s", ratio=0.3,
                             need_model=True)
    assert fresh.model_for(k2) is not None
