"""Coverage of smaller API corners not exercised elsewhere."""

import numpy as np
import pytest

from repro.data import Augmenter, make_synthetic
from repro.nn import resnet20, resnet50_cifar, vgg11
from repro.prune import junctions, union_redundancy
from repro.tensor import Tensor


class TestTensorCorners:
    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)

    def test_transpose_tuple_arg(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose((1, 0, 2)).shape == (3, 2, 4)

    def test_reshape_tuple_arg(self):
        t = Tensor(np.zeros(12))
        assert t.reshape((3, 4)).shape == (3, 4)

    def test_pow_backward_cube(self):
        a = Tensor([2.0], requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, [12.0])

    def test_name_attribute(self):
        t = Tensor([1.0], name="probe")
        assert t.name == "probe"


class TestAugmenterNoise:
    def test_noise_std_adds_fresh_noise(self):
        aug = Augmenter(flip=False, max_shift=0, noise_std=0.5)
        x = np.zeros((4, 1, 6, 6), dtype=np.float32)
        rng = np.random.default_rng(0)
        a = aug(x, rng)
        b = aug(x, rng)
        assert a.std() > 0.3
        assert not np.array_equal(a, b)  # fresh draw each presentation

    def test_zero_noise_is_identity_when_others_off(self):
        aug = Augmenter(flip=False, max_shift=0, noise_std=0.0)
        x = np.ones((2, 1, 4, 4), dtype=np.float32)
        np.testing.assert_array_equal(aug(x, np.random.default_rng(0)), x)


class TestUnionHelpers:
    def test_junction_membership_counts(self):
        m = resnet50_cifar(10, width_mult=0.25, input_hw=16)
        js = junctions(m.graph)
        # 4 stages -> 4 junction spaces, each with many members
        assert len(js) == 4
        for j in js:
            assert j.member_count > 2
            assert j.size > 0

    def test_union_redundancy_zero_when_dense(self):
        m = resnet20(10, width_mult=0.25, input_hw=16)
        red = union_redundancy(m.graph)
        assert all(v == 0.0 for v in red.values())

    def test_union_redundancy_detects_sparse_lanes(self):
        m = resnet20(10, width_mult=0.25, input_hw=16)
        node = m.graph.conv_by_name("s0b0.conv1")
        node.conv.weight.data[0] = 0.0
        red = union_redundancy(m.graph)
        assert red["s0b0.conv1"] > 0.0


class TestDatasetVariants:
    def test_imagenet_s_custom_classes(self):
        from repro.data import imagenet_s
        train, val = imagenet_s(n_train=40, n_val=20, hw=16, num_classes=7)
        assert train.num_classes == 7
        assert train.x.shape[2] == 16

    def test_single_channel_dataset(self):
        ds = make_synthetic(3, 20, hw=8, channels=1, seed=0)
        assert ds.x.shape[1] == 1


class TestAnalysisCorners:
    def test_bound_threshold(self):
        from repro.analysis import LayerSummary
        from repro.costmodel import DeviceModel
        dev = DeviceModel(peak_flops=100.0, mem_bandwidth=10.0)  # ridge=10
        low = LayerSummary("x", "conv", 1, 1, 1, 1, 1.0, 4.0, 5.0)
        high = LayerSummary("y", "conv", 1, 1, 1, 1, 1.0, 4.0, 20.0)
        assert low.bound(dev) == "memory"
        assert high.bound(dev) == "compute"


class TestVGGSmallInputs:
    def test_pools_skipped_below_2px(self, rng):
        from repro.tensor import no_grad
        m = vgg11(10, width_mult=0.125, input_hw=4)  # only 2 pools possible
        m.eval()
        with no_grad():
            out = m(Tensor(rng.normal(size=(1, 3, 4, 4)).astype(np.float32)))
        assert np.isfinite(out.data).all()


class TestCommLatency:
    def test_latency_term_scales_with_workers(self):
        from repro.costmodel import CommModel
        cm = CommModel(latency_per_round=1e-3)
        t4 = cm.allreduce_time(1000, 4)
        t8 = cm.allreduce_time(1000, 8)
        assert t8 > t4  # more rounds -> more latency
