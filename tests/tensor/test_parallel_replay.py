"""Level-scheduled parallel replay: bit-exactness, schedule soundness,
concurrency-aware arena packing, and thread-safety regressions.

The contract under test (repro.tensor.parallel + the schedule surgery in
repro.tensor.compile): a train plan replayed on the worker pool produces
bit-identical results to serial replay — same losses, same parameter
gradients, same BN running stats — because the schedule pins every
floating-point accumulation order and the arena packer never lets
co-scheduled thunks share bytes.
"""

import threading

import numpy as np
import pytest

from repro.nn import resnet20
from repro.optim import SGD
from repro.tensor import workspace
from repro.tensor import compile as C
from repro.tensor import parallel as par
from repro.tensor.compile import StepPlan, capture_training_step


@pytest.fixture(autouse=True)
def _restore_engine():
    saved = (workspace.config.parallel_replay, workspace.config.replay_workers,
             workspace.config.mem_plan)
    yield
    (workspace.config.parallel_replay, workspace.config.replay_workers,
     workspace.config.mem_plan) = saved
    workspace.invalidate()


def _model(seed=3):
    return resnet20(6, width_mult=0.25, input_hw=8, seed=seed)


def _batch(rng, n=8):
    x = rng.standard_normal((n, 3, 8, 8)).astype(np.float32)
    y = rng.integers(0, 6, size=n)
    return x, y


def _capture(parallel, workers=4, mem_plan=True, seed=3, batch=None):
    """Fresh model + plan captured under the requested engine config."""
    workspace.invalidate()
    workspace.config.parallel_replay = parallel
    workspace.config.replay_workers = workers
    workspace.config.mem_plan = mem_plan
    m = _model(seed)
    x, y = batch
    plan, loss, logits, reason = capture_training_step(m, x, y)
    assert reason is None and isinstance(plan, StepPlan)
    # Finish the capture step the way the trainer would.
    loss.backward()
    for p in m.parameters():
        p.grad = None
    return m, plan


def _run_steps(m, plan, batches):
    """Replay with an optimizer; returns (losses, grads-of-last-step)."""
    opt = SGD(m.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4)
    losses = []
    for x, y in batches:
        assert plan.invalid_reason() is None
        opt.zero_grad()
        loss, _ = plan.run(x, y)
        opt.step()
        losses.append(loss.copy())
    grads = {n: p.grad.copy() for n, p in m.named_parameters()}
    return losses, grads


def _bn_stats(m):
    return {n: (mod.running_mean.copy(), mod.running_var.copy())
            for n, mod in m.named_modules() if hasattr(mod, "running_mean")}


class TestParallelBitExact:
    @pytest.mark.parametrize("mem_plan", [True, False],
                             ids=["planned", "unplanned"])
    def test_matches_serial_over_steps(self, mem_plan):
        """Weights, grads, BN stats, and losses identical after 5 steps."""
        rng = np.random.default_rng(0)
        batches = [_batch(rng) for _ in range(5)]
        ms, ps = _capture(False, mem_plan=mem_plan, batch=batches[0])
        losses_s, grads_s = _run_steps(ms, ps, batches)

        mp, pp = _capture(True, mem_plan=mem_plan, batch=batches[0])
        assert pp._levels is not None and len(pp._levels) > 1
        losses_p, grads_p = _run_steps(mp, pp, batches)

        for a, b in zip(losses_s, losses_p):
            assert np.array_equal(a, b)
        for (n, a), (_, b) in zip(sorted(grads_s.items()),
                                  sorted(grads_p.items())):
            assert np.array_equal(a, b), n
        for (n, ws_), (_, wp) in zip(ms.named_parameters(),
                                     mp.named_parameters()):
            assert np.array_equal(ws_.data, wp.data), n
        for (n, (rm_s, rv_s)), (_, (rm_p, rv_p)) in zip(
                sorted(_bn_stats(ms).items()), sorted(_bn_stats(mp).items())):
            assert np.array_equal(rm_s, rm_p), n
            assert np.array_equal(rv_s, rv_p), n

    def test_flat_bwd_matches_unsplit(self):
        """The split dw/dx/fin parts in serial order are bit-equivalent to
        the single-thunk backward (the serial cross-check of the split).

        Unplanned build only: a *planned* parallel plan's arena is packed
        against level liveness, which the flat serial order does not
        respect (that replay path is forbidden for planned plans).
        """
        rng = np.random.default_rng(4)
        batches = [_batch(rng) for _ in range(3)]
        ms, ps = _capture(False, mem_plan=False, batch=batches[0])
        losses_s, grads_s = _run_steps(ms, ps, batches)

        # Parallel-captured plan, but replayed through the *flat* serial
        # lists (what run() uses when levels are disabled post-capture).
        mp, pp = _capture(True, mem_plan=False, batch=batches[0])
        assert any(len(parts) == 3 for parts in pp._schedule.bwd_parts)
        pp._levels = None
        losses_f, grads_f = _run_steps(mp, pp, batches)
        for a, b in zip(losses_s, losses_f):
            assert np.array_equal(a, b)
        for (n, a), (_, b) in zip(sorted(grads_s.items()),
                                  sorted(grads_f.items())):
            assert np.array_equal(a, b), n


class TestScheduleSoundness:
    def test_every_edge_crosses_levels(self):
        rng = np.random.default_rng(1)
        _, plan = _capture(True, batch=_batch(rng))
        g = plan._schedule.graph
        g.validate()
        assert sum(len(l) for l in g.levels) == g.n_nodes
        # Some level must actually be parallel, or the feature is inert.
        assert max(len(l) for l in g.levels) >= 2

    def test_level_count_matches_plan(self):
        rng = np.random.default_rng(2)
        _, plan = _capture(True, batch=_batch(rng))
        assert len(plan._levels) == len(plan._schedule.graph.levels)
        n_thunks = sum(len(l) for l in plan._levels)
        assert n_thunks == len(plan._fwd) + 1 + len(plan._bwd)

    def test_coscheduled_slabs_never_share_bytes(self):
        """Arena invariant: two non-aliasing slabs whose remapped level
        intervals overlap must occupy disjoint byte ranges."""
        rng = np.random.default_rng(3)
        _, plan = _capture(True, batch=_batch(rng))
        mem = plan._mem
        assert mem is not None, "planned build expected"
        roots = [s for s in mem.slabs if s.alias_of is None]
        for i, a in enumerate(roots):
            for b in roots[i + 1:]:
                if a.start <= b.end and b.start <= a.end:
                    disjoint = (a.offset + a.nbytes <= b.offset
                                or b.offset + b.nbytes <= a.offset)
                    assert disjoint, (a.tag, b.tag)

    def test_growth_guard_serializes_instead_of_growing(self, monkeypatch):
        """With a zero growth allowance every parallel level that inflates
        the arena is serialized, and replay stays exact."""
        rng = np.random.default_rng(5)
        batches = [_batch(rng, n=16) for _ in range(2)]
        ms, ps = _capture(False, batch=batches[0])
        serial_arena = ps._mem.metrics()["arena_bytes"]
        losses_s, grads_s = _run_steps(ms, ps, batches)

        monkeypatch.setattr(C, "_ARENA_GROWTH_CAP", 1.0)
        monkeypatch.setattr(C, "_ARENA_GROWTH_FLOOR", 0)
        before = par.STATS.levels_serialized
        mp, pp = _capture(True, batch=batches[0])
        assert pp._mem.metrics()["arena_bytes"] <= serial_arena \
            or par.STATS.levels_serialized > before
        losses_p, grads_p = _run_steps(mp, pp, batches)
        for a, b in zip(losses_s, losses_p):
            assert np.array_equal(a, b)
        for (n, a), (_, b) in zip(sorted(grads_s.items()),
                                  sorted(grads_p.items())):
            assert np.array_equal(a, b), n


class TestLevelSchedule:
    def test_longest_path_levels(self):
        g = par.LevelSchedule()
        a, b, c, d = (g.add_node(s) for s in "abcd")
        g.add_edge(a, b)
        g.add_edge(a, c)
        g.add_edge(b, d)
        g.add_edge(c, d)
        levels = g.compute_levels()
        assert levels == [[a], [b, c], [d]]
        g.validate()

    def test_rejects_backward_edge(self):
        g = par.LevelSchedule()
        a = g.add_node("a")
        b = g.add_node("b")
        with pytest.raises(ValueError):
            g.add_edge(b, a)

    def test_serialize_level_chains_nodes(self):
        g = par.LevelSchedule()
        a, b, c = (g.add_node(s) for s in "abc")
        g.add_edge(a, b)
        g.add_edge(a, c)
        g.compute_levels()
        assert g.widest_level() == 1
        g.serialize_level(1)
        assert [len(l) for l in g.levels] == [1, 1, 1]
        assert g.widest_level() == -1
        g.validate()


class TestWorkerPool:
    def test_exceptions_reach_caller_and_pool_survives(self):
        pool = par.WorkerPool(3)
        try:
            hits = []

            def ok():
                hits.append(1)

            def boom():
                raise RuntimeError("thunk failed")

            with pytest.raises(RuntimeError, match="thunk failed"):
                pool.run_level([ok, boom, ok])
            assert len(hits) == 2
            hits.clear()
            pool.run_level([ok, ok, ok, ok])
            assert len(hits) == 4
        finally:
            pool.close()

    def test_single_task_runs_inline(self):
        pool = par.WorkerPool(2)
        try:
            ident = []
            pool.run_level([lambda: ident.append(threading.get_ident())])
            assert ident == [threading.get_ident()]
        finally:
            pool.close()

    def test_all_tasks_run_once(self):
        pool = par.WorkerPool(4)
        try:
            counts = [0] * 64
            for _ in range(20):
                def mk(i):
                    return lambda: counts.__setitem__(i, counts[i] + 1)
                pool.run_level([mk(i) for i in range(64)])
            assert counts == [20] * 64
        finally:
            pool.close()


class TestThreadSafetyRegressions:
    def test_generation_bumps_race_plan_cache(self):
        """Concurrent invalidate_plans + PlanCache traffic: no lost bumps,
        no stale entries surviving a bump observed by the cache."""
        cache = C.PlanCache(max_entries=16)
        start = workspace.plan_generation()
        bumps = 200
        stop = threading.Event()
        errors = []

        def bumper():
            for _ in range(bumps):
                workspace.invalidate_plans()
            stop.set()

        def churner():
            i = 0
            try:
                while not stop.is_set():
                    cache.store(("k", i % 4), object())
                    cache.lookup(("k", (i + 1) % 4))
                    len(cache)
                    i += 1
            except Exception as e:  # pragma: no cover - failure path
                errors.append(e)

        threads = [threading.Thread(target=bumper)] + \
            [threading.Thread(target=churner) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert workspace.plan_generation() == start + bumps
        cache.purge_stale()
        assert cache._generation == workspace.plan_generation()

    def test_pool_acquire_release_hammer(self):
        """The workspace pool under concurrent acquire/release keeps its
        lent accounting consistent (no double-lend, no lost buffers)."""
        workspace.config.pooling = True
        pool = workspace.WorkspacePool(max_per_key=8)
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(300):
                    shape = (int(rng.integers(1, 4)), 16)
                    buf = pool.acquire(shape, zero=True)
                    assert not buf.any()
                    buf.fill(seed)
                    pool.release(buf)
            except Exception as e:  # pragma: no cover - failure path
                errors.append(e)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert pool.lent_count == 0
