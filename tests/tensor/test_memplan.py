"""Unit tests for the static memory planner (solver + compile integration).

Solver tests drive :class:`MemPlanner` directly with hand-built request
sequences; integration tests capture real training/forward plans and check
that planning engages, aliases fire, replay is bit-identical to the
unplanned build, and every failure path falls back cleanly.
"""

import numpy as np
import pytest

from repro.tensor import workspace
from repro.tensor.memplan import (ALIGN, MemPlanner, PlanError, STATS,
                                  live_arena_bytes, live_arena_count)
from repro.tensor.compile import capture_training_step

from .test_compile import _batch, _model


F32 = np.float32


def _planned(mem):
    """Run solve+materialize and flip into serve mode."""
    mem.solve()
    mem.materialize(workspace.PLAN_GENERATION)
    return mem


class TestSolver:
    def test_disjoint_intervals_share_one_offset(self):
        mem = MemPlanner(horizon=10)
        mem.alloc((64,), F32, 0, 1, tag="a")
        mem.alloc((64,), F32, 2, 3, tag="b")
        mem.solve()
        a, b = mem.slabs
        assert a.offset == b.offset == 0
        assert mem.arena_bytes == 256  # one 64-float slab, aligned

    def test_overlapping_intervals_get_distinct_regions(self):
        mem = MemPlanner(horizon=10)
        mem.alloc((64,), F32, 0, 5, tag="a")
        mem.alloc((64,), F32, 3, 8, tag="b")
        mem.solve()
        a, b = mem.slabs
        assert {a.offset, b.offset} == {0, 256}
        assert mem.arena_bytes == 512

    def test_gap_fill_reuses_freed_hole(self):
        # M dies at t=4 leaving a hole between A and B; D (t>=6) must land
        # in that hole instead of extending the arena.
        mem = MemPlanner(horizon=10)
        mem.alloc((128,), F32, 0, 9, tag="A")   # 512B, pins offset 0
        mem.alloc((64,), F32, 0, 4, tag="M")    # 256B hole donor
        mem.alloc((32,), F32, 0, 9, tag="B")    # 128B after the hole
        mem.alloc((32,), F32, 6, 9, tag="D")    # fits M's hole
        mem.solve()
        a, m, b, d = mem.slabs
        assert (a.offset, m.offset, b.offset) == (0, 512, 768)
        assert d.offset == 512
        assert mem.arena_bytes == 896

    def test_alias_collapses_onto_root_with_interval_union(self):
        mem = MemPlanner(horizon=10)
        mem.alloc((32,), F32, 0, 3, tag="x", out_slot=1)
        mem.alloc((32,), F32, 2, 7, tag="y", alias_slot=1)
        mem.solve()
        x, y = mem.slabs
        assert y.alias_of is x
        assert (x.start, x.end) == (0, 7)  # union
        assert mem.alias_buffers == 1
        assert mem.arena_bytes == _align_up(32 * 4)

    def test_alias_refused_on_shape_or_persistent_mismatch(self):
        mem = MemPlanner(horizon=10)
        mem.alloc((32,), F32, 0, 3, out_slot=1)
        bad_shape = mem.alloc((16,), F32, 2, 4, alias_slot=1)
        assert bad_shape.shape == (16,)
        assert mem.slabs[-1].alias_of is None
        mem2 = MemPlanner(horizon=10)
        mem2.alloc((32,), F32, 0, 3, out_slot=1, persistent=True)
        mem2.alloc((32,), F32, 2, 4, alias_slot=1)
        assert mem2.slabs[-1].alias_of is None

    def test_persistent_spans_whole_timeline(self):
        mem = MemPlanner(horizon=10)
        mem.alloc((8,), F32, 4, 4, persistent=True, zero=True)
        mem.alloc((8,), F32, 0, 1)
        mem.solve()
        p, other = mem.slabs
        assert (p.start, p.end) == (0, 10)
        assert p.offset != other.offset  # never shared

    def test_arena_never_exceeds_naive(self):
        rng = np.random.default_rng(0)
        mem = MemPlanner(horizon=50)
        for _ in range(40):
            a = int(rng.integers(0, 50))
            b = int(rng.integers(0, 50))
            mem.alloc((int(rng.integers(1, 500)),), F32, min(a, b),
                      max(a, b))
        mem.solve()
        assert mem.peak_bytes <= mem.arena_bytes
        assert mem.arena_bytes <= _align_up_sum(mem)
        assert 0.0 <= mem.savings < 1.0

    def test_serve_replays_in_order_and_zero_fills(self):
        mem = MemPlanner(horizon=4)
        mem.alloc((4,), F32, 0, 1, zero=True)
        mem.alloc((4,), F32, 2, 3)
        _planned(mem)
        z = mem.alloc((4,), F32, 0, 1, zero=True)
        assert np.array_equal(z, np.zeros(4, F32))
        other = mem.alloc((4,), F32, 2, 3)
        assert np.shares_memory(other, mem.arena)
        assert np.shares_memory(z, mem.arena)
        mem.finish()

    def test_serve_divergence_raises(self):
        mem = MemPlanner(horizon=4)
        mem.alloc((4,), F32, 0, 1)
        _planned(mem)
        with pytest.raises(PlanError):
            mem.alloc((8,), F32, 0, 1)     # wrong shape
        mem2 = MemPlanner(horizon=4)
        mem2.alloc((4,), F32, 0, 1)
        _planned(mem2)
        mem2.alloc((4,), F32, 0, 1)
        with pytest.raises(PlanError):
            mem2.alloc((4,), F32, 0, 1)    # more requests than planned

    def test_finish_detects_underconsumption(self):
        mem = MemPlanner(horizon=4)
        mem.alloc((4,), F32, 0, 1)
        mem.alloc((4,), F32, 2, 3)
        _planned(mem)
        mem.alloc((4,), F32, 0, 1)
        with pytest.raises(PlanError):
            mem.finish()

    def test_double_materialize_raises(self):
        mem = MemPlanner(horizon=4)
        mem.alloc((4,), F32, 0, 1)
        _planned(mem)
        with pytest.raises(PlanError):
            mem.materialize(workspace.PLAN_GENERATION)


def _align_up(n):
    return (n + ALIGN - 1) // ALIGN * ALIGN


def _align_up_sum(mem):
    return sum(_align_up(s.nbytes) for s in mem.slabs)


class TestArenaRegistry:
    def test_live_arena_accounting_follows_plan_lifetime(self):
        base_count = live_arena_count()
        base_bytes = live_arena_bytes()
        mem = MemPlanner(horizon=4)
        mem.alloc((1024,), F32, 0, 1)
        _planned(mem)
        assert live_arena_count() == base_count + 1
        assert live_arena_bytes() >= base_bytes + 4096
        del mem
        assert live_arena_count() == base_count
        assert live_arena_bytes() == base_bytes


class TestCompileIntegration:
    @pytest.fixture(autouse=True)
    def _planner_on(self):
        """Pin the planner on: these tests assert planner behaviour and must
        not depend on the suite-level REPRO_MEM_PLAN default (the CI matrix
        runs a leg with it disabled)."""
        saved = workspace.config.mem_plan
        workspace.config.mem_plan = True
        try:
            yield
        finally:
            workspace.config.mem_plan = saved

    def _capture(self, seed=0):
        rng = np.random.default_rng(seed)
        x, y = _batch(rng)
        model = _model()
        plan, loss_t, logits_t, reason = capture_training_step(model, x, y)
        assert reason is None, reason
        loss_t.backward()
        return model, plan, x, y

    def test_planner_engages_and_reports(self):
        STATS.reset()
        _, plan, _, _ = self._capture()
        m = plan.mem_metrics()
        assert m is not None
        assert 0 < m["arena_bytes"] <= m["naive_bytes"]
        assert 0 < m["peak_bytes"] <= m["arena_bytes"]
        assert m["savings"] > 0.2
        assert STATS.plans == 1 and STATS.fallbacks == 0

    def test_residual_alias_buffers_fire(self):
        # The test model (see test_compile._model) has a residual
        # add+relu join: at least one alias must have been taken.
        _, plan, _, _ = self._capture()
        assert plan.mem_metrics()["alias_buffers"] >= 1

    def test_planned_replay_bit_identical_to_unplanned(self):
        model, plan_on, x, y = self._capture()
        saved = workspace.config.mem_plan
        try:
            workspace.config.mem_plan = False
            model2, plan_off, _, _ = self._capture()
        finally:
            workspace.config.mem_plan = saved
        assert plan_off.mem_metrics() is None
        rng = np.random.default_rng(99)
        x2 = rng.standard_normal(x.shape).astype(np.float32)
        for _ in range(3):
            l1, g1 = plan_on.run(x2, y)
            l2, g2 = plan_off.run(x2, y)
            assert np.array_equal(l1, l2)
            assert np.array_equal(g1, g2)
            for (n, p1), (_, p2) in zip(model.named_parameters(),
                                        model2.named_parameters()):
                assert np.array_equal(p1.grad.data, p2.grad.data), n
                p1.grad = p2.grad = None

    def test_mem_plan_off_is_recorded_in_engine_sig(self):
        model, plan, x, y = self._capture()
        saved = workspace.config.mem_plan
        try:
            workspace.config.mem_plan = False
            assert plan.invalid_reason() is not None
        finally:
            workspace.config.mem_plan = saved
        assert plan.invalid_reason() is None

    def test_solver_failure_falls_back_to_unplanned(self, monkeypatch):
        from repro.tensor import memplan
        STATS.reset()

        def boom(self):
            raise PlanError("forced")

        monkeypatch.setattr(memplan.MemPlanner, "solve", boom)
        _, plan, _, _ = self._capture(seed=3)
        assert plan is not None              # plan still built, unplanned
        assert plan.mem_metrics() is None
        assert STATS.fallbacks == 1
        assert STATS.last_fallback_reason == "forced"
