"""Autograd-wired functional ops: relu, conv2d, linear, batch_norm, pooling,
cross_entropy, and the channel gather/scatter used by gating."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad
from repro.tensor import functional as F


class TestRelu:
    def test_forward(self):
        x = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(F.relu(x).data, [0, 0, 2])

    def test_backward_masks_negatives(self):
        x = Tensor([-1.0, 1.0], requires_grad=True)
        F.relu(x).sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1])


class TestConv2dFunctional:
    def test_forward_backward_shapes(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)), requires_grad=False)
        w = Tensor(rng.normal(size=(4, 3, 3, 3)), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        y = F.conv2d(x, w, b, stride=2, padding=1)
        assert y.shape == (2, 4, 4, 4)
        y.sum().backward()
        assert w.grad.shape == w.data.shape
        assert b.grad.shape == (4,)

    def test_input_grad_flows_through_chain(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)))
        w1 = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        w2 = Tensor(rng.normal(size=(2, 3, 3, 3)), requires_grad=True)
        y = F.conv2d(F.conv2d(x, w1, None, 1, 1), w2, None, 1, 1)
        y.sum().backward()
        assert w1.grad is not None and np.abs(w1.grad).max() > 0

    def test_no_grad_conv_cheap(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        with no_grad():
            y = F.conv2d(x, w, None, 1, 1)
        assert y._backward is None and not y.requires_grad


class TestLinearFunctional:
    def test_matches_manual(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))
        w = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        y = F.linear(x, w, b)
        np.testing.assert_allclose(y.data, x.data @ w.data.T, rtol=1e-6)
        y.sum().backward()
        np.testing.assert_allclose(w.grad, np.ones((4, 3)).T @ x.data,
                                   rtol=1e-5)
        np.testing.assert_allclose(b.grad, [4, 4, 4])


class TestBatchNormFunctional:
    def test_training_vs_eval(self, rng):
        x = Tensor(rng.normal(2.0, 1.0, size=(8, 3, 4, 4)))
        gamma = Tensor(np.ones(3), requires_grad=True)
        beta = Tensor(np.zeros(3), requires_grad=True)
        rm, rv = np.zeros(3, np.float32), np.ones(3, np.float32)
        y_train = F.batch_norm(x, gamma, beta, rm, rv, training=True)
        assert abs(y_train.data.mean()) < 1e-5
        y_eval = F.batch_norm(x, gamma, beta, np.zeros(3, np.float32),
                              np.ones(3, np.float32), training=False)
        # eval with zero-mean/unit-var running stats is nearly identity
        np.testing.assert_allclose(y_eval.data, x.data, atol=1e-4)

    def test_grad_reaches_gamma_beta(self, rng):
        x = Tensor(rng.normal(size=(4, 2, 3, 3)))
        gamma = Tensor(np.ones(2), requires_grad=True)
        beta = Tensor(np.zeros(2), requires_grad=True)
        y = F.batch_norm(x, gamma, beta, np.zeros(2, np.float32),
                         np.ones(2, np.float32), training=True)
        (y * y).sum().backward()
        assert gamma.grad is not None and beta.grad is not None


class TestPoolingFunctional:
    def test_max_pool_grad(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        assert x.grad.sum() == pytest.approx(4.0)

    def test_avg_pool_grad(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(x.shape, 0.25))

    def test_global_avg_pool(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
        y = F.global_avg_pool(x)
        assert y.shape == (2, 3)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.full(x.shape, 1 / 16))


class TestCrossEntropyFunctional:
    def test_loss_decreases_under_gradient_step(self, rng):
        logits = Tensor(rng.normal(size=(8, 5)), requires_grad=True)
        y = rng.integers(0, 5, size=8)
        loss = F.cross_entropy(logits, y)
        loss.backward()
        new_logits = logits.data - 1.0 * logits.grad
        new_loss, _ = __import__(
            "repro.tensor.ops.loss", fromlist=["x"]
        ).cross_entropy_forward(new_logits, y)
        assert new_loss < loss.item()


class TestGatherScatter:
    def test_gather_selects(self, rng):
        x = Tensor(rng.normal(size=(2, 6, 3, 3)))
        idx = np.array([0, 2, 5])
        y = F.gather_channels(x, idx)
        np.testing.assert_allclose(y.data, x.data[:, idx])

    def test_gather_backward(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 2, 2)), requires_grad=True)
        F.gather_channels(x, np.array([1, 3])).sum().backward()
        np.testing.assert_allclose(x.grad[:, [1, 3]], 1.0)
        np.testing.assert_allclose(x.grad[:, [0, 2]], 0.0)

    def test_scatter_places(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 2, 2)))
        y = F.scatter_channels(x, np.array([1, 3]), 5)
        assert y.shape == (1, 5, 2, 2)
        np.testing.assert_allclose(y.data[:, [1, 3]], x.data)
        np.testing.assert_allclose(y.data[:, [0, 2, 4]], 0.0)

    def test_scatter_backward(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 2, 2)), requires_grad=True)
        F.scatter_channels(x, np.array([0, 4]), 6).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(x.data))

    def test_gather_scatter_roundtrip(self, rng):
        x = Tensor(rng.normal(size=(1, 5, 2, 2)))
        idx = np.array([0, 2, 4])
        y = F.scatter_channels(F.gather_channels(x, idx), idx, 5)
        np.testing.assert_allclose(y.data[:, idx], x.data[:, idx])
        np.testing.assert_allclose(y.data[:, [1, 3]], 0.0)

    def test_pad_channels(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 2, 2)), requires_grad=True)
        y = F.pad_channels(x, 5)
        assert y.shape == (1, 5, 2, 2)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(x.data))

    def test_pad_channels_noop_and_error(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 2, 2)))
        assert F.pad_channels(x, 3) is x
        with pytest.raises(ValueError):
            F.pad_channels(x, 2)
