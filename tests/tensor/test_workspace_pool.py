"""Workspace pool: ownership contract, reconfiguration invalidation, and
numerical equivalence of the pooled engine with the seed engine.

The acceptance-critical test here trains, runs a full pruning
reconfiguration (which changes every activation shape in the model), and
trains again — once with pooling on and once with pooling off — and
requires bit-comparable parameters.  A stale pooled buffer surviving the
reconfiguration would surface as a shape error or a numerical divergence.
"""

import numpy as np
import pytest

from repro.nn import resnet20
from repro.optim import SGD
from repro.prune import prune_and_reconfigure
from repro.tensor import Tensor, workspace
from repro.tensor import functional as F
from repro.tensor.workspace import WorkspacePool, baseline_engine

from ..conftest import sparsify_space


@pytest.fixture(autouse=True)
def optimized_config():
    """Pin the optimized engine (pooling on) regardless of REPRO_* env."""
    cfg = workspace.config
    saved = (cfg.pooling, cfg.fused_bnrelu, cfg.conv_impl)
    cfg.pooling, cfg.fused_bnrelu, cfg.conv_impl = True, True, "einsum"
    workspace.invalidate()
    workspace.POOL.stats.reset()
    yield
    workspace.invalidate()
    cfg.pooling, cfg.fused_bnrelu, cfg.conv_impl = saved


class TestPoolMechanics:
    def test_acquire_release_roundtrip(self):
        pool = WorkspacePool()
        a = pool.acquire((4, 5), np.float32)
        assert a.shape == (4, 5) and a.dtype == np.float32
        assert pool.owns(a) and pool.lent_count == 1
        pool.release(a)
        assert not pool.owns(a) and pool.lent_count == 0
        b = pool.acquire((4, 5), np.float32)
        assert b is a, "released buffer must be recycled"
        assert pool.stats.hits == 1 and pool.stats.misses == 1

    def test_overflow_release_counts_eviction(self):
        """A release onto a full free list drops the buffer and says so."""
        pool = WorkspacePool(max_per_key=2)
        bufs = [pool.acquire((8, 8), np.float32) for _ in range(3)]
        for b in bufs:
            pool.release(b)
        assert pool.stats.evictions == 1
        assert pool.stats.bytes_evicted == bufs[0].nbytes
        assert pool.cached_bytes == 2 * bufs[0].nbytes
        # a different key has its own headroom
        c = pool.acquire((4,), np.float32)
        pool.release(c)
        assert pool.stats.evictions == 1
        d = pool.stats.as_dict()
        assert d["evictions"] == 1 and d["bytes_evicted"] == bufs[0].nbytes
        pool.stats.reset()
        assert pool.stats.evictions == pool.stats.bytes_evicted == 0

    def test_release_resolves_views(self):
        pool = WorkspacePool()
        a = pool.acquire((4, 6), np.float32)
        pool.release(a[:, 1:5])
        assert pool.lent_count == 0

    def test_release_foreign_array_is_noop(self):
        pool = WorkspacePool()
        pool.release(np.zeros(3, dtype=np.float32))
        assert pool.lent_count == 0 and not pool._free

    def test_dtype_and_shape_keys_are_distinct(self):
        pool = WorkspacePool()
        a = pool.acquire((3, 3), np.float32)
        pool.release(a)
        b = pool.acquire((3, 3), np.float64)
        assert b is not a and b.dtype == np.float64
        c = pool.acquire((9,), np.float32)
        assert c is not a

    def test_zero_flag(self):
        pool = WorkspacePool()
        a = pool.acquire((8,), np.float32)
        a[:] = 7
        pool.release(a)
        b = pool.acquire((8,), np.float32, zero=True)
        assert b is a and (b == 0).all()

    def test_clear_drops_everything(self):
        pool = WorkspacePool()
        a = pool.acquire((2, 2))
        pool.release(pool.acquire((3, 3)))
        pool.clear()
        assert pool.lent_count == 0 and pool.cached_bytes == 0
        assert not pool.owns(a)
        assert pool.stats.invalidations == 1

    def test_pooling_disabled_bypasses_pool(self):
        with baseline_engine():
            a = workspace.acquire((4, 4))
            assert not workspace.POOL.owns(a)
            workspace.release(a)  # must be a silent no-op


def _sparsify_all(model, frac=0.4, seed=0):
    rng = np.random.default_rng(seed)
    g = model.graph
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < frac
        kill[0] = False
        sparsify_space(g, sid, kill)


def _train_reconfigure_train(pooled: bool, steps: int = 3):
    """Train -> prune_and_reconfigure -> train; return final parameters."""

    def body():
        rng = np.random.default_rng(3)
        model = resnet20(num_classes=6, width_mult=0.25, input_hw=8, seed=1)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9,
                  weight_decay=1e-4)
        xb = rng.normal(size=(8, 3, 8, 8)).astype(np.float32)
        yb = rng.integers(0, 6, size=8)

        def step():
            logits = model(Tensor(xb))
            loss = F.cross_entropy(logits, yb)
            opt.zero_grad()
            loss.backward()
            opt.step()

        for _ in range(steps):
            step()
        _sparsify_all(model)
        prune_and_reconfigure(model, opt)
        for _ in range(steps):
            step()
        return [p.data.copy() for p in model.parameters()]

    if pooled:
        return body()
    with baseline_engine():
        return body()


class TestReconfigurationInvalidation:
    def test_surgery_invalidates_pool(self):
        model = resnet20(num_classes=6, width_mult=0.25, input_hw=8, seed=1)
        x = Tensor(np.random.default_rng(0)
                   .normal(size=(4, 3, 8, 8)).astype(np.float32))
        loss = F.cross_entropy(model(x), np.array([0, 1, 2, 3]))
        loss.backward()
        assert workspace.POOL.cached_bytes > 0
        before = workspace.POOL.stats.invalidations
        _sparsify_all(model)
        prune_and_reconfigure(model)
        assert workspace.POOL.stats.invalidations == before + 1
        assert workspace.POOL.cached_bytes == 0
        assert workspace.POOL.lent_count == 0

    def test_train_reconfigure_train_matches_unpooled(self):
        """The pooled engine must track the seed copy-semantics engine
        through a full reconfiguration, parameter for parameter.

        Pooling and gradient donation change buffer reuse, not math, so the
        only tolerated differences are float32 reduction-order rounding from
        the different conv lowerings.
        """
        pooled = _train_reconfigure_train(pooled=True)
        unpooled = _train_reconfigure_train(pooled=False)
        assert len(pooled) == len(unpooled)
        for a, b in zip(pooled, unpooled):
            assert a.shape == b.shape
            np.testing.assert_allclose(a, b, rtol=2e-3, atol=2e-5)

    def test_no_buffers_leak_across_steps(self):
        """Interior gradients and staging all return to the pool each step."""
        rng = np.random.default_rng(5)
        model = resnet20(num_classes=6, width_mult=0.25, input_hw=8, seed=1)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        xb = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        yb = rng.integers(0, 6, size=4)
        for _ in range(3):
            logits = model(Tensor(xb))
            loss = F.cross_entropy(logits, yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
            assert workspace.POOL.lent_count == 0
