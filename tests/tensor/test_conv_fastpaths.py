"""Fast-path coverage for the optimized convolution lowering.

Covers the 1x1 pointwise batched-matmul path, the ``need_dx=False``
first-layer skip, the ``need_db=False`` bias-free skip, and the workspace
ownership contract around the forward context (``release_ctx``).
"""

import numpy as np
import pytest

from repro.tensor import Tensor, workspace
from repro.tensor import functional as F
from repro.tensor.ops import conv as conv_ops
from repro.tensor.workspace import baseline_engine


@pytest.fixture(autouse=True)
def optimized_config():
    """Pin the optimized engine: these tests cover its fast paths, so they
    must not silently degrade when the suite runs with REPRO_* overrides."""
    cfg = workspace.config
    saved = (cfg.pooling, cfg.fused_bnrelu, cfg.conv_impl)
    cfg.pooling, cfg.fused_bnrelu, cfg.conv_impl = True, True, "einsum"
    workspace.invalidate()
    yield
    workspace.invalidate()
    cfg.pooling, cfg.fused_bnrelu, cfg.conv_impl = saved


def _run_both_engines(x, w, b, stride, pad, need_dx=True, need_db=True):
    """fwd+bwd under the optimized and the seed engine; returns both tuples."""
    dy = np.random.default_rng(7).normal(
        size=conv_ops.conv2d_forward(x, w, b, stride, pad)[0].shape
    ).astype(x.dtype)

    def run():
        y, ctx = conv_ops.conv2d_forward(x, w, b, stride, pad)
        dx, dw, db = conv_ops.conv2d_backward(
            dy, ctx, x.shape, w, stride, pad,
            need_dx=need_dx, need_db=need_db)
        out = (y.copy(), None if dx is None else dx.copy(),
               dw.copy(), None if db is None else db.copy())
        workspace.release(dx)
        conv_ops.release_ctx(ctx)
        return out

    opt = run()
    with baseline_engine():
        seed = run()
    return opt, seed


class TestPointwiseFastPath:
    def test_ctx_kind_is_pw(self, rng):
        x = rng.normal(size=(2, 5, 6, 6)).astype(np.float32)
        w = rng.normal(size=(3, 5, 1, 1)).astype(np.float32)
        y, ctx = conv_ops.conv2d_forward(x, w, None, 1, 0)
        assert ctx[0] == "pw"
        conv_ops.release_ctx(ctx)

    @pytest.mark.parametrize("stride", [1, 2])
    def test_matches_seed_engine(self, rng, stride):
        x = rng.normal(size=(2, 5, 6, 6)).astype(np.float32)
        w = rng.normal(size=(3, 5, 1, 1)).astype(np.float32)
        b = rng.normal(size=3).astype(np.float32)
        (y, dx, dw, db), (y0, dx0, dw0, db0) = _run_both_engines(
            x, w, b, stride, 0)
        np.testing.assert_allclose(y, y0, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(dx, dx0, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(dw, dw0, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(db, db0, rtol=1e-5, atol=1e-6)

    def test_stride1_ctx_is_input_view(self, rng):
        """At stride 1 the pw path must not copy the input at all."""
        x = rng.normal(size=(2, 5, 6, 6)).astype(np.float32)
        w = rng.normal(size=(3, 5, 1, 1)).astype(np.float32)
        _, ctx = conv_ops.conv2d_forward(x, w, None, 1, 0)
        saved = ctx[1]
        assert saved.base is x or saved is x
        conv_ops.release_ctx(ctx)


class TestBackwardSkips:
    @pytest.mark.parametrize("k,stride,pad", [(3, 1, 1), (3, 2, 1), (1, 1, 0)])
    def test_need_dx_false_returns_none(self, rng, k, stride, pad):
        x = rng.normal(size=(2, 4, 8, 8)).astype(np.float32)
        w = rng.normal(size=(4, 4, k, k)).astype(np.float32)
        (_, dx, dw, _), (_, _, dw0, _) = _run_both_engines(
            x, w, None, stride, pad, need_dx=False)
        assert dx is None
        np.testing.assert_allclose(dw, dw0, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("k,stride,pad", [(3, 1, 1), (1, 1, 0)])
    def test_need_db_false_returns_none(self, rng, k, stride, pad):
        x = rng.normal(size=(2, 4, 8, 8)).astype(np.float32)
        w = rng.normal(size=(4, 4, k, k)).astype(np.float32)
        y, ctx = conv_ops.conv2d_forward(x, w, None, stride, pad)
        dy = np.ones_like(y)
        _, _, db = conv_ops.conv2d_backward(dy, ctx, x.shape, w, stride,
                                            pad, need_db=False)
        assert db is None
        conv_ops.release_ctx(ctx)

    def test_first_layer_skips_input_grad(self, rng):
        """``first_layer=True`` never materializes dx, even for a grad-
        requiring input tensor."""
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(rng.normal(size=(4, 3, 3, 3)).astype(np.float32),
                   requires_grad=True)
        y = F.conv2d(x, w, None, stride=1, padding=1, first_layer=True)
        y.backward(np.ones(y.shape, dtype=np.float32))
        assert x.grad is None
        assert w.grad is not None

    def test_bias_free_conv_via_functional(self, rng):
        """The functional layer requests the db skip for bias-free convs and
        still produces exact weight/input grads."""
        xd = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        wd = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)

        def grads():
            x = Tensor(xd, requires_grad=True)
            w = Tensor(wd, requires_grad=True)
            y = F.conv2d(x, w, None, stride=1, padding=1)
            y.backward(np.ones(y.shape, dtype=np.float32))
            return x.grad.copy(), w.grad.copy()

        dx, dw = grads()
        with baseline_engine():
            dx0, dw0 = grads()
        np.testing.assert_allclose(dx, dx0, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(dw, dw0, rtol=1e-4, atol=1e-5)


class TestWorkspaceContract:
    @pytest.mark.parametrize("k,stride,pad", [(3, 1, 1), (3, 2, 1),
                                              (1, 1, 0), (1, 2, 0)])
    def test_all_buffers_returned(self, rng, k, stride, pad):
        """After fwd+bwd+release the pool must have zero buffers lent."""
        x = rng.normal(size=(2, 4, 8, 8)).astype(np.float32)
        w = rng.normal(size=(4, 4, k, k)).astype(np.float32)
        y, ctx = conv_ops.conv2d_forward(x, w, None, stride, pad)
        dy = np.ones_like(y)
        dx, dw, db = conv_ops.conv2d_backward(dy, ctx, x.shape, w,
                                              stride, pad)
        workspace.release(dx)
        conv_ops.release_ctx(ctx)
        assert workspace.POOL.lent_count == 0

    def test_second_call_hits_pool(self, rng):
        x = rng.normal(size=(2, 4, 8, 8)).astype(np.float32)
        w = rng.normal(size=(4, 4, 3, 3)).astype(np.float32)
        for _ in range(2):
            y, ctx = conv_ops.conv2d_forward(x, w, None, 1, 1)
            dx, _, _ = conv_ops.conv2d_backward(np.ones_like(y), ctx,
                                                x.shape, w, 1, 1)
            workspace.release(dx)
            conv_ops.release_ctx(ctx)
        assert workspace.POOL.stats.hits > 0
