"""Convolution kernels: im2col/col2im correctness and gradient exactness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.ops.conv import (col2im, conv2d_backward, conv2d_forward,
                                   conv_out_size, im2col)


def reference_conv(x, w, b, stride, pad):
    """Naive loop convolution for cross-checking."""
    n, c, h, wd = x.shape
    k, _, r, s = w.shape
    ho, wo = conv_out_size(h, wd, r, s, stride, pad)
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    y = np.zeros((n, k, ho, wo))
    for i in range(ho):
        for j in range(wo):
            patch = xp[:, :, i * stride:i * stride + r,
                       j * stride:j * stride + s]
            y[:, :, i, j] = np.einsum("ncrs,kcrs->nk", patch, w)
    if b is not None:
        y += b[None, :, None, None]
    return y


class TestForward:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_reference(self, rng, stride, pad):
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        y, _ = conv2d_forward(x, w, b, stride, pad)
        np.testing.assert_allclose(y, reference_conv(x, w, b, stride, pad),
                                   rtol=1e-10, atol=1e-12)

    def test_1x1_conv(self, rng):
        x = rng.normal(size=(2, 5, 4, 4))
        w = rng.normal(size=(3, 5, 1, 1))
        y, _ = conv2d_forward(x, w, None, 1, 0)
        expect = np.einsum("nchw,kc->nkhw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(y, expect, rtol=1e-10)

    def test_no_bias(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(2, 2, 3, 3))
        y, _ = conv2d_forward(x, w, None, 1, 1)
        assert y.shape == (1, 2, 5, 5)

    def test_output_size_formula(self):
        assert conv_out_size(32, 32, 3, 3, 1, 1) == (32, 32)
        assert conv_out_size(32, 32, 3, 3, 2, 1) == (16, 16)
        assert conv_out_size(7, 7, 1, 1, 1, 0) == (7, 7)

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 3, 5, 5))
        w = rng.normal(size=(2, 4, 3, 3))
        with pytest.raises(ValueError, match="channel mismatch"):
            conv2d_forward(x, w, None, 1, 1)


class TestIm2Col:
    def test_col2im_is_adjoint_of_im2col(self, rng):
        """col2im must be the exact adjoint: <im2col(x), d> == <x, col2im(d)>."""
        x = rng.normal(size=(2, 3, 6, 6))
        for stride, pad in [(1, 1), (2, 0), (2, 1)]:
            cols = im2col(x, 3, 3, stride, pad)
            d = rng.normal(size=cols.shape)
            lhs = (cols * d).sum()
            rhs = (x * col2im(d, x.shape, 3, 3, stride, pad)).sum()
            np.testing.assert_allclose(lhs, rhs, rtol=1e-10)

    def test_im2col_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2 * 8 * 8, 3 * 3 * 3)


class TestBackward:
    @pytest.mark.parametrize("stride,pad", [(1, 1), (2, 1), (1, 0)])
    def test_gradients_match_numerical(self, rng, stride, pad):
        x = rng.normal(size=(2, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        y, cols = conv2d_forward(x, w, b, stride, pad)
        dy = rng.normal(size=y.shape)
        dx, dw, db = conv2d_backward(dy, cols, x.shape, w, stride, pad)
        eps = 1e-6

        def f():
            yy, _ = conv2d_forward(x, w, b, stride, pad)
            return (yy * dy).sum()

        for arr, ana in [(x, dx), (w, dw), (b, db)]:
            flat, fana = arr.reshape(-1), ana.reshape(-1)
            for i in rng.integers(0, flat.size, size=6):
                orig = flat[i]
                flat[i] = orig + eps
                lp = f()
                flat[i] = orig - eps
                lm = f()
                flat[i] = orig
                np.testing.assert_allclose(fana[i], (lp - lm) / (2 * eps),
                                           rtol=1e-4, atol=1e-7)

    def test_need_dx_false_skips_dx(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(2, 2, 3, 3))
        y, cols = conv2d_forward(x, w, None, 1, 1)
        dx, dw, db = conv2d_backward(np.ones_like(y), cols, x.shape, w, 1, 1,
                                     need_dx=False)
        assert dx is None
        assert dw.shape == w.shape

    def test_dw_accumulation_linearity(self, rng):
        """dw is linear in dy: dw(2*dy) == 2*dw(dy)."""
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(2, 2, 3, 3))
        y, cols = conv2d_forward(x, w, None, 1, 1)
        dy = rng.normal(size=y.shape)
        _, dw1, _ = conv2d_backward(dy, cols, x.shape, w, 1, 1)
        _, dw2, _ = conv2d_backward(2 * dy, cols, x.shape, w, 1, 1)
        np.testing.assert_allclose(dw2, 2 * dw1, rtol=1e-10)


@given(st.integers(1, 3), st.integers(1, 4), st.integers(1, 4),
       st.integers(1, 2), st.integers(0, 1))
@settings(max_examples=20, deadline=None)
def test_property_conv_shapes(n, c, k, stride, pad):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(n, c, 8, 8))
    w = rng.normal(size=(k, c, 3, 3))
    y, _ = conv2d_forward(x, w, None, stride, pad)
    ho, wo = conv_out_size(8, 8, 3, 3, stride, pad)
    assert y.shape == (n, k, ho, wo)
