"""Sparsity-aware compute paths (repro.tensor.sparse).

The contract under test: with ``sparse_compute`` on, dead-channel-skipping
forward GEMMs and compacted backward GEMMs may engage — but only behind the
measured cost-model gate (bit-parity probe + measured gain), and every
result must be bit-identical to the dense reference.  Dense remains the
default; a revived channel drops the conv back to dense mid-plan (sticky);
publishing an unchanged dead set never churns plans.
"""

import numpy as np
import pytest

from repro.nn import resnet20
from repro.optim import SGD
from repro.prune import DeadSetExporter, zero_sparsified_groups
from repro.prune.sparsity import conv_sparsity
from repro.tensor import Tensor, functional as F, workspace
from repro.tensor import sparse
from repro.tensor.compile import StepPlan, capture_training_step
from repro.tensor.ops import conv as conv_ops

from ..conftest import sparsify_space


@pytest.fixture(autouse=True)
def sparse_engine():
    """Pin the optimized engine with sparse compute on and a zero gain bar
    (the gate then accepts whenever its bit-parity probe passes, which makes
    engagement deterministic on a given machine)."""
    cfg = workspace.config
    saved = (cfg.pooling, cfg.conv_impl, cfg.sparse_compute,
             cfg.sparse_min_gain, cfg.mem_plan, cfg.parallel_replay)
    cfg.pooling, cfg.conv_impl = True, "einsum"
    cfg.sparse_compute, cfg.sparse_min_gain = True, 0.0
    sparse.clear()
    sparse.STATS.reset()
    workspace.invalidate()
    yield
    sparse.clear()
    sparse.STATS.reset()
    workspace.invalidate()
    (cfg.pooling, cfg.conv_impl, cfg.sparse_compute,
     cfg.sparse_min_gain, cfg.mem_plan, cfg.parallel_replay) = saved


# -- run-coalesced selection --------------------------------------------------

class TestRuns:
    def test_index_runs_coalesces(self):
        assert sparse.index_runs(np.array([0, 1, 2, 5, 7, 8])) == \
            [(0, 0, 3), (3, 5, 1), (4, 7, 2)]
        assert sparse.index_runs(np.array([], dtype=np.int64)) == []

    def test_roundtrip_gather(self, rng):
        src = rng.normal(size=(2, 10, 3))
        live = np.array([1, 2, 3, 6, 9])
        out = np.empty((2, live.size, 3))
        for d0, s0, ln in sparse.index_runs(live):
            out[:, d0:d0 + ln] = src[:, s0:s0 + ln]
        assert np.array_equal(out, src[:, live])

    def test_runs_any_ch(self):
        a = np.zeros((2, 6, 3))
        runs = sparse.index_runs(np.array([1, 2, 4]))
        assert not sparse.runs_any_ch(a, runs)
        a[1, 4, 2] = 1e-30
        assert sparse.runs_any_ch(a, runs)
        assert not sparse.runs_any_ch(a[0], sparse.index_runs(np.array([0])),
                                      axis=0)


# -- registry / publish -------------------------------------------------------

def _mask(size, dead):
    m = np.zeros(size, dtype=bool)
    m[list(dead)] = True
    return m


class TestPublish:
    def test_empty_publish_never_invalidates(self):
        w = Tensor(np.zeros((4, 4, 3, 3), np.float32))
        gen0 = workspace.PLAN_GENERATION
        changed = sparse.publish([(w, _mask(4, []), _mask(4, []))])
        assert not changed
        assert workspace.PLAN_GENERATION == gen0
        assert sparse.dead_set_for(w.data) is None

    def test_changed_publish_bumps_once_identical_is_free(self):
        w = Tensor(np.zeros((4, 4, 3, 3), np.float32))
        entries = [(w, _mask(4, [1]), _mask(4, [2, 3]))]
        gen0 = workspace.PLAN_GENERATION
        assert sparse.publish(entries)
        assert workspace.PLAN_GENERATION == gen0 + 1
        for _ in range(3):  # hysteresis contract: identical republish free
            assert not sparse.publish(entries)
        assert workspace.PLAN_GENERATION == gen0 + 1
        ds = sparse.dead_set_for(w.data)
        assert ds is not None and list(ds.in_dead) == [1] \
            and list(ds.out_dead) == [2, 3]

    def test_dead_set_for_validates_identity_and_shape(self):
        w = Tensor(np.zeros((4, 4, 3, 3), np.float32))
        sparse.publish([(w, _mask(4, [0]), _mask(4, []))])
        assert sparse.dead_set_for(w.data) is not None
        assert sparse.dead_set_for(w.data.copy()) is None
        w.data = np.zeros((3, 4, 3, 3), np.float32)  # surgery-style swap
        assert sparse.dead_set_for(w.data) is None

    def test_weights_dead_guard(self):
        w = np.zeros((4, 4, 3, 3), np.float32)
        ds = sparse.DeadSet.from_masks(_mask(4, [1]), _mask(4, [3]))
        assert sparse.weights_dead(w, ds)
        w[3, 0, 0, 0] = 1e-20
        assert not sparse.weights_dead(w, ds)


# -- eager op-level parity ----------------------------------------------------

def _dead_conv_arrays(rng, n=4, c=16, k=16, hw=12, dead_in=(2, 3, 4, 10),
                      dead_out=(0, 1, 8, 9, 10, 11)):
    x = rng.normal(size=(n, c, hw, hw)).astype(np.float32)
    w = rng.normal(size=(k, c, 3, 3)).astype(np.float32) * 0.1
    w[:, list(dead_in)] = 0.0
    w[list(dead_out)] = 0.0
    wt = Tensor(w)
    sparse.publish([(wt, _mask(c, dead_in), _mask(k, dead_out))])
    return x, wt


class TestEagerParity:
    def test_forward_backward_bit_identical(self, rng):
        x, wt = _dead_conv_arrays(rng)
        dy = rng.normal(size=(4, 16, 12, 12)).astype(np.float32)
        dy[:, [0, 1, 8, 9, 10, 11]] = 0.0   # dy of dead outputs is zero

        def run():
            y, ctx = conv_ops.conv2d_forward(x, wt.data, None, 1, 1)
            dx, dw, _ = conv_ops.conv2d_backward(
                dy, ctx, x.shape, wt.data, 1, 1,
                need_dx=True, need_db=False)
            out = (y.copy(), dx.copy(), dw.copy())
            workspace.release(dx)
            conv_ops.release_ctx(ctx)
            return out

        y_s, dx_s, dw_s = run()
        workspace.config.sparse_compute = False
        y_d, dx_d, dw_d = run()
        workspace.config.sparse_compute = True
        assert np.array_equal(y_s, y_d)
        assert np.array_equal(dx_s, dx_d)
        assert np.array_equal(dw_s, dw_d)
        # the gate ran either way; if it accepted, the sparse path was live
        st = sparse.STATS
        assert st.gate_accepts + st.gate_rejects >= 1
        if st.gate_accepts:
            assert st.fwd_sparse_steps >= 1

    def test_revived_weight_falls_back_to_dense(self, rng):
        x, wt = _dead_conv_arrays(rng)
        if sparse.conv_gate_for(wt.data, x, 1, 1) is None:
            pytest.skip("gate rejected this shape on this machine")
        before = sparse.STATS.fwd_sparse_steps
        wt.data[0, 0, 0, 0] = 0.5    # revive a dead output channel
        y, ctx = conv_ops.conv2d_forward(x, wt.data, None, 1, 1)
        assert ctx[0] != "sp6"       # guard refused the sparse forward
        assert sparse.STATS.fwd_sparse_steps == before
        wt.data[0, 0, 0, 0] = 0.0
        y2, ctx2 = conv_ops.conv2d_forward(x, wt.data, None, 1, 1)
        conv_ops.release_ctx(ctx)
        conv_ops.release_ctx(ctx2)

    def test_fallback_backward_returns_buffers_to_pool(self, rng):
        """Regression: the non-fast-path backward of a sparse forward
        acquires a padded staging + full column tensor; ``release_ctx``
        must return *all* of them (pool occupancy back to baseline)."""
        x, wt = _dead_conv_arrays(rng)
        if sparse.conv_gate_for(wt.data, x, 1, 1) is None:
            pytest.skip("gate rejected this shape on this machine")
        baseline = workspace.POOL.lent_count
        y, ctx = conv_ops.conv2d_forward(x, wt.data, None, 1, 1)
        assert ctx[0] == "sp6"
        # dirty dy rows on dead channels force the dense fallback backward
        dy = rng.normal(size=y.shape).astype(np.float32)
        dx, dw, _ = conv_ops.conv2d_backward(
            dy, ctx, x.shape, wt.data, 1, 1, need_dx=True, need_db=False)
        assert sparse.STATS.dw_dense_steps >= 1
        workspace.release(dx)
        conv_ops.release_ctx(ctx)
        assert workspace.POOL.lent_count == baseline

        # reference: dense path on the same inputs is bit-identical
        workspace.config.sparse_compute = False
        y_d, ctx_d = conv_ops.conv2d_forward(x, wt.data, None, 1, 1)
        dx_d, dw_d, _ = conv_ops.conv2d_backward(
            dy, ctx_d, x.shape, wt.data, 1, 1, need_dx=True, need_db=False)
        workspace.config.sparse_compute = True
        assert np.array_equal(y, y_d)
        assert np.array_equal(dw, dw_d)
        assert np.array_equal(dx, dx_d)
        workspace.release(dx_d)
        conv_ops.release_ctx(ctx_d)


# -- compiled-plan parity -----------------------------------------------------

def _dead_resnet(seed=3, kill_names=("s0b1.conv1", "s1b1.conv1"),
                 frac=0.5):
    """resnet20 with ~half the channels of two interior spaces hard-dead
    (weights + BN gamma/beta + any momentum), the way ``zero_sparse``
    reconfigurations leave them."""
    m = resnet20(6, width_mult=0.5, input_hw=8, seed=seed)
    g = m.graph
    for name in kill_names:
        node = g.conv_by_name(name)
        k = node.conv.weight.data.shape[0]
        kill = np.arange(k)[: int(k * frac)]
        sparsify_space(g, node.out_space, kill)
    zero_sparsified_groups(g, 1e-4)
    return m


def _publish_from_graph(m, threshold=1e-4):
    entries = []
    for node in m.graph.active_convs():
        sp = conv_sparsity(node, threshold)
        entries.append((node.conv.weight,
                        np.asarray(sp.in_sparse, dtype=bool),
                        np.asarray(sp.out_sparse, dtype=bool)))
    sparse.publish(entries)


def _batch(rng, n=8):
    x = rng.standard_normal((n, 3, 8, 8)).astype(np.float32)
    y = rng.integers(0, 6, size=n)
    return x, y


def _eager_step(model, opt, x, y):
    logits = model(Tensor(x))
    loss = F.cross_entropy(logits, y)
    opt.zero_grad()
    loss.backward()
    opt.step()
    return float(loss.data)


class TestCompiledParity:
    @pytest.mark.parametrize("mem_plan,parallel", [(False, False),
                                                   (True, False),
                                                   (True, True)])
    def test_sparse_plan_bit_identical_to_dense_eager(self, mem_plan,
                                                      parallel):
        """Multi-step compiled-sparse run == eager-dense run, bitwise."""
        workspace.config.mem_plan = mem_plan
        workspace.config.parallel_replay = parallel
        rng = np.random.default_rng(0)
        batches = [_batch(rng) for _ in range(4)]

        workspace.config.sparse_compute = False
        m_e = _dead_resnet()
        o_e = SGD(m_e.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4)
        losses_e = [_eager_step(m_e, o_e, x, y) for x, y in batches]
        workspace.config.sparse_compute = True

        m_c = _dead_resnet()
        _publish_from_graph(m_c)
        o_c = SGD(m_c.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4)
        x0, y0 = batches[0]
        o_c.zero_grad()
        plan, loss_t, _, reason = capture_training_step(m_c, x0, y0)
        assert reason is None and isinstance(plan, StepPlan)
        loss_t.backward()
        o_c.step()
        losses_c = [float(loss_t.data)]
        for x, y in batches[1:]:
            assert plan.invalid_reason() is None
            o_c.zero_grad()
            loss_arr, _ = plan.run(x, y)
            o_c.step()
            losses_c.append(float(loss_arr))

        assert losses_e == losses_c
        for (n, pe), (_, pc) in zip(m_e.named_parameters(),
                                    m_c.named_parameters()):
            assert np.array_equal(pe.data, pc.data), n
            assert np.array_equal(o_e.state_for(pe), o_c.state_for(pc)), n
        st = sparse.STATS
        assert st.gate_accepts + st.gate_rejects >= 1
        if st.gate_accepts:
            assert st.fwd_sparse_steps >= 1

    def test_engine_sig_includes_sparse_flags(self):
        m = _dead_resnet()
        _publish_from_graph(m)
        rng = np.random.default_rng(1)
        x, y = _batch(rng)
        plan, loss_t, _, reason = capture_training_step(m, x, y)
        assert reason is None
        loss_t.backward()
        assert plan.invalid_reason() is None
        workspace.config.sparse_compute = False
        assert plan.invalid_reason() is not None
        workspace.config.sparse_compute = True
        assert plan.invalid_reason() is None

    def test_sticky_revival_mid_plan_stays_bit_exact(self):
        """A dead channel revived mid-interval: the plan must drop that
        conv to dense (sticky) and still match eager dense bitwise."""
        rng = np.random.default_rng(2)
        batches = [_batch(rng) for _ in range(3)]

        workspace.config.sparse_compute = False
        m_e = _dead_resnet()
        o_e = SGD(m_e.parameters(), lr=0.05, momentum=0.9)
        workspace.config.sparse_compute = True
        m_c = _dead_resnet()
        _publish_from_graph(m_c)
        o_c = SGD(m_c.parameters(), lr=0.05, momentum=0.9)

        x0, y0 = batches[0]
        o_c.zero_grad()
        plan, loss_t, _, reason = capture_training_step(m_c, x0, y0)
        assert reason is None
        loss_t.backward()
        o_c.step()
        workspace.config.sparse_compute = False
        losses_e = [_eager_step(m_e, o_e, x0, y0)]
        workspace.config.sparse_compute = True
        if sparse.STATS.fwd_sparse_steps == 0:
            pytest.skip("gate rejected every conv on this machine")

        # revive one dead weight in BOTH models identically
        name = "s0b1.conv1"
        for mm in (m_e, m_c):
            w = mm.graph.conv_by_name(name).conv.weight.data
            w[0, 0, 0, 0] = 0.25
        fallbacks0 = sparse.STATS.fwd_dense_fallbacks
        for x, y in batches[1:]:
            o_c.zero_grad()
            loss_arr, _ = plan.run(x, y)
            o_c.step()
            workspace.config.sparse_compute = False
            losses_e.append(_eager_step(m_e, o_e, x, y))
            workspace.config.sparse_compute = True
            assert float(loss_arr) == losses_e[-1]
        assert sparse.STATS.fwd_dense_fallbacks > fallbacks0
        for (n, pe), (_, pc) in zip(m_e.named_parameters(),
                                    m_c.named_parameters()):
            assert np.array_equal(pe.data, pc.data), n

    def test_gate_decisions_are_recorded(self):
        m = _dead_resnet()
        _publish_from_graph(m)
        rng = np.random.default_rng(4)
        x, y = _batch(rng)
        plan, loss_t, _, reason = capture_training_step(m, x, y)
        assert reason is None
        loss_t.backward()
        decisions = sparse.STATS.as_dict()["decisions"]
        assert decisions, "gate ran but recorded nothing"
        for d in decisions:
            for key in ("sig", "path", "dense_ms", "sparse_ms", "parity",
                        "measured_gain", "accepted"):
                assert key in d
            if d["accepted"]:
                assert d["parity"]


# -- plan-churn hysteresis (satellite: oscillating channels) ------------------

class TestPlanChurnHysteresis:
    def test_oscillating_channel_does_not_thrash_plans(self):
        """A channel flipping across the threshold every scan must not bump
        PLAN_GENERATION more than once per reconfiguration interval."""
        m = _dead_resnet(kill_names=("s0b1.conv1",))
        g = m.graph
        exporter = DeadSetExporter(hysteresis=2)

        def scan_publish():
            sparse.publish([(node.conv.weight, si, so)
                            for node, si, so in exporter.scan(g, 1e-4)])

        # two scans establish the stable dead set: exactly one bump
        gen0 = workspace.PLAN_GENERATION
        scan_publish()
        scan_publish()
        assert workspace.PLAN_GENERATION == gen0 + 1

        # oscillate one *live* channel of another conv across the threshold
        w = g.conv_by_name("s1b1.conv1").conv.weight.data
        saved = w[0].copy()
        gen1 = workspace.PLAN_GENERATION
        for i in range(6):   # one simulated reconfiguration interval
            if i % 2 == 0:
                w[0] = 0.0                    # dips below threshold
            else:
                w[0] = saved                  # revives
            scan_publish()
        w[0] = saved
        # hysteresis holds the oscillator out of the published set entirely
        assert workspace.PLAN_GENERATION == gen1

    def test_stable_new_dead_channel_bumps_exactly_once(self):
        m = _dead_resnet(kill_names=("s0b1.conv1",))
        g = m.graph
        exporter = DeadSetExporter(hysteresis=2)

        def scan_publish():
            sparse.publish([(node.conv.weight, si, so)
                            for node, si, so in exporter.scan(g, 1e-4)])

        scan_publish()
        scan_publish()
        w = g.conv_by_name("s1b1.conv1").conv.weight.data
        w[0] = 0.0          # genuinely dies
        gen = workspace.PLAN_GENERATION
        for _ in range(4):  # stays dead for the rest of the interval
            scan_publish()
        assert workspace.PLAN_GENERATION == gen + 1
