"""Dtype guard: every op preserves float32 forward *and* through gradients.

The optimized engine routes activations and gradients through pooled
buffers, fused kernels, and donated arrays; an accidental promotion to
float64 anywhere (a Python-scalar multiply, an un-dtyped ``np.zeros``)
would silently double memory traffic and desynchronize the pool's
shape/dtype keys.  These tests run each op in ``repro.tensor.functional``
on float32 inputs under both engine configurations and assert the output
and every accumulated gradient stay float32.
"""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.tensor import workspace
from repro.tensor.workspace import baseline_engine

F32 = np.float32


@pytest.fixture(params=["optimized", "baseline"])
def engine(request):
    """Run the test body under the optimized or the seed engine config
    (pinned explicitly so REPRO_* env overrides cannot collapse the two)."""
    cfg = workspace.config
    saved = (cfg.pooling, cfg.fused_bnrelu, cfg.conv_impl)
    if request.param == "baseline":
        with baseline_engine():
            yield request.param
    else:
        cfg.pooling, cfg.fused_bnrelu, cfg.conv_impl = True, True, "einsum"
        yield request.param
    cfg.pooling, cfg.fused_bnrelu, cfg.conv_impl = saved
    workspace.invalidate()


def t32(rng, *shape, grad=True):
    return Tensor(rng.normal(size=shape).astype(F32), requires_grad=grad)


def assert_f32(*tensors):
    for t in tensors:
        assert t.data.dtype == F32, f"forward promoted to {t.data.dtype}"
        if t.requires_grad:
            assert t.grad is not None, "gradient missing"
            assert t.grad.dtype == F32, f"grad promoted to {t.grad.dtype}"


class TestConv:
    @pytest.mark.parametrize("k,stride,pad", [(3, 1, 1), (3, 2, 1),
                                              (1, 1, 0), (1, 2, 0)])
    def test_conv2d(self, rng, engine, k, stride, pad):
        x = t32(rng, 2, 3, 8, 8)
        w = t32(rng, 4, 3, k, k)
        b = t32(rng, 4)
        y = F.conv2d(x, w, b, stride=stride, padding=pad)
        assert y.data.dtype == F32
        y.backward(np.ones(y.shape, dtype=F32))
        assert_f32(x, w, b)

    def test_conv2d_no_bias(self, rng, engine):
        x = t32(rng, 2, 3, 6, 6)
        w = t32(rng, 4, 3, 3, 3)
        y = F.conv2d(x, w, None, stride=1, padding=1)
        y.backward(np.ones(y.shape, dtype=F32))
        assert_f32(x, w)


class TestNormAndElementwise:
    @pytest.mark.parametrize("relu", [False, True])
    @pytest.mark.parametrize("training", [True, False])
    def test_batch_norm(self, rng, engine, relu, training):
        x = t32(rng, 4, 3, 5, 5)
        gamma = Tensor(np.ones(3, dtype=F32), requires_grad=True)
        beta = Tensor(np.zeros(3, dtype=F32), requires_grad=True)
        rm = np.zeros(3, dtype=F32)
        rv = np.ones(3, dtype=F32)
        y = F.batch_norm(x, gamma, beta, rm, rv, training=training,
                         relu=relu)
        assert y.data.dtype == F32
        assert rm.dtype == F32 and rv.dtype == F32
        y.backward(np.ones(y.shape, dtype=F32))
        assert_f32(x, gamma, beta)

    def test_relu(self, rng, engine):
        x = t32(rng, 3, 7)
        y = F.relu(x)
        y.backward(np.ones(y.shape, dtype=F32))
        assert_f32(x)

    def test_add_relu(self, rng, engine):
        a = t32(rng, 2, 3, 4, 4)
        b = t32(rng, 2, 3, 4, 4)
        y = F.add_relu(a, b)
        assert y.data.dtype == F32
        y.backward(np.ones(y.shape, dtype=F32))
        assert_f32(a, b)


class TestPoolLinearLoss:
    @pytest.mark.parametrize("op", [F.max_pool2d, F.avg_pool2d])
    def test_pool2d(self, rng, engine, op):
        x = t32(rng, 2, 3, 6, 6)
        y = op(x, 2)
        y.backward(np.ones(y.shape, dtype=F32))
        assert_f32(x)

    def test_global_avg_pool(self, rng, engine):
        x = t32(rng, 2, 3, 4, 4)
        y = F.global_avg_pool(x)
        y.backward(np.ones(y.shape, dtype=F32))
        assert_f32(x)

    def test_linear(self, rng, engine):
        x = t32(rng, 5, 8)
        w = t32(rng, 3, 8)
        b = t32(rng, 3)
        y = F.linear(x, w, b)
        y.backward(np.ones(y.shape, dtype=F32))
        assert_f32(x, w, b)

    def test_cross_entropy(self, rng, engine):
        logits = t32(rng, 6, 4)
        targets = rng.integers(0, 4, size=6)
        loss = F.cross_entropy(logits, targets)
        assert loss.data.dtype == F32
        loss.backward()
        assert_f32(logits)


class TestChannelOps:
    def test_pad_channels(self, rng, engine):
        x = t32(rng, 2, 3, 4, 4)
        y = F.pad_channels(x, 5)
        y.backward(np.ones(y.shape, dtype=F32))
        assert_f32(x)

    def test_gather_scatter_channels(self, rng, engine):
        x = t32(rng, 2, 4, 3, 3)
        y = F.gather_channels(x, np.array([0, 2]))
        z = F.scatter_channels(y, np.array([1, 3]), 4)
        z.backward(np.ones(z.shape, dtype=F32))
        assert z.data.dtype == F32
        assert_f32(x)


def test_end_to_end_step_stays_f32(rng, engine):
    """A whole ResNet training step keeps every grad and buffer float32."""
    from repro.nn import resnet20
    from repro.optim import SGD

    model = resnet20(num_classes=4, width_mult=0.25, input_hw=8, seed=0)
    opt = SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=1e-4)
    xb = rng.normal(size=(4, 3, 8, 8)).astype(F32)
    yb = rng.integers(0, 4, size=4)
    logits = model(Tensor(xb))
    loss = F.cross_entropy(logits, yb)
    opt.zero_grad()
    loss.backward()
    for p in model.parameters():
        assert p.data.dtype == F32
        assert p.grad is None or p.grad.dtype == F32
    opt.step()
    for p in model.parameters():
        assert p.data.dtype == F32
