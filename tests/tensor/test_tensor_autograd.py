"""Autograd core: graph construction, backward, broadcasting, no_grad."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import Tensor, grad_enabled, no_grad


def _finite_arrays(shape):
    return arrays(np.float64, shape,
                  elements=st.floats(-10, 10, allow_nan=False, width=32))


class TestBasicOps:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1, 1])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3, 4])
        np.testing.assert_allclose(b.grad, [1, 2])

    def test_sub_neg_div(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        out = (a - b) / b + (-a)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1 / 2 - 1])
        np.testing.assert_allclose(b.grad, [-1 / 2 - (4 - 2) / 4])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_matmul_backward(self):
        a = Tensor(np.eye(2), requires_grad=True)
        b = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(b.grad, np.ones((2, 2)))
        np.testing.assert_allclose(a.grad, [[3, 7], [3, 7]])

    def test_radd_rmul_scalars(self):
        a = Tensor([2.0], requires_grad=True)
        (3.0 + 2.0 * a).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0])

    def test_rsub_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        out = 6.0 / a + (1.0 - a)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [-6.0 / 4 - 1.0])


class TestBroadcasting:
    def test_broadcast_add_grad_shape(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, [3, 3, 3, 3])

    def test_broadcast_keepdim_axis(self):
        a = Tensor(np.ones((2, 1, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 5, 3)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (2, 1, 3)
        np.testing.assert_allclose(a.grad, np.full((2, 1, 3), 5.0))

    def test_scalar_broadcast(self):
        a = Tensor(2.0, requires_grad=True)
        b = Tensor(np.ones((3, 3)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, 9.0)


class TestReductions:
    def test_sum_axis(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a.sum(axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_sum_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean(self):
        a = Tensor(np.ones((4,)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 4), 0.25))


class TestShapeOps:
    def test_reshape_roundtrip(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        assert a.grad.shape == (6,)

    def test_transpose(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        b = a.transpose(1, 0)
        assert b.shape == (3, 2)
        (b * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        np.testing.assert_allclose(
            a.grad, np.arange(6.0).reshape(3, 2).T)

    def test_getitem(self):
        a = Tensor(np.arange(10.0), requires_grad=True)
        a[2:5].sum().backward()
        expect = np.zeros(10)
        expect[2:5] = 1
        np.testing.assert_allclose(a.grad, expect)


class TestGraphMechanics:
    def test_diamond_graph_accumulates(self):
        # y = a*a + a  -> dy/da = 2a + 1
        a = Tensor([3.0], requires_grad=True)
        ((a * a) + a).sum().backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_reused_node(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        (b + b).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2.0
        assert not b.requires_grad
        assert b._backward is None

    def test_no_grad_restores(self):
        assert grad_enabled()
        with no_grad():
            assert not grad_enabled()
        assert grad_enabled()

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert d.data is a.data

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_backward_twice_accumulates_leaf(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_no_grad_tensor_creation(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad


class TestDtype:
    def test_int_input_coerced_to_float32(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_repr_and_props(self):
        t = Tensor(np.zeros((2, 3)), requires_grad=True)
        assert "requires_grad" in repr(t)
        assert t.ndim == 2 and t.size == 6 and len(t) == 2


@given(_finite_arrays((3, 4)), _finite_arrays((3, 4)))
@settings(max_examples=25, deadline=None)
def test_property_add_grad_is_ones(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta + tb).sum().backward()
    np.testing.assert_allclose(ta.grad, np.ones_like(a))
    np.testing.assert_allclose(tb.grad, np.ones_like(b))


@given(_finite_arrays((2, 5)))
@settings(max_examples=25, deadline=None)
def test_property_mul_grad_matches_operand(a):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(a.copy() + 1.0, requires_grad=True)
    (ta * tb).sum().backward()
    np.testing.assert_allclose(ta.grad, tb.data, rtol=1e-5)
    np.testing.assert_allclose(tb.grad, ta.data, rtol=1e-5)


class TestGraphReleasedAfterBackward:
    """backward() must drop parent links and closures as it walks the tape,
    so the whole graph (and every activation it pins) becomes collectable
    the moment the step's local references go away."""

    def test_interior_nodes_unreachable(self):
        # Tensor defines __slots__ without __weakref__, so reachability is
        # checked through the garbage collector's live-object list instead
        # of weak references.
        import gc

        from repro.tensor import functional as F

        gc.collect()
        before = {id(o) for o in gc.get_objects() if isinstance(o, Tensor)}

        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((4, 3, 8, 8)).astype(np.float32))
        w = Tensor(rng.standard_normal((8, 3, 3, 3)).astype(np.float32) * 0.1,
                   requires_grad=True)
        wl = Tensor(rng.standard_normal((6, 8 * 8 * 8))
                    .astype(np.float32) * 0.1, requires_grad=True)
        bl = Tensor(np.zeros(6, np.float32), requires_grad=True)
        h = F.relu(F.conv2d(x, w, None, padding=1))
        flat = h.reshape(4, -1)
        logits = F.linear(flat, wl, bl)
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        loss.backward()
        assert w.grad is not None
        keep = {id(t) for t in (x, w, wl, bl)}
        del h, flat, logits, loss
        gc.collect()
        leaked = [o for o in gc.get_objects()
                  if isinstance(o, Tensor)
                  and id(o) not in keep and id(o) not in before]
        assert not leaked, \
            "backward() left the autograd graph reachable"

    def test_node_fields_cleared_in_place(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        c = a + b
        s = c.sum()
        s.backward()
        for node in (c, s):
            assert node._backward is None
            assert node._parents == ()
        # leaves keep their identity (and their grads)
        np.testing.assert_allclose(a.grad, [1, 1])
