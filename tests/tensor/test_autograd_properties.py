"""Property-based tests of the autograd engine on composite expressions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import Tensor
from repro.tensor import functional as F


def finite(shape, lo=-3.0, hi=3.0):
    return arrays(np.float64, shape,
                  elements=st.floats(lo, hi, allow_nan=False, width=32))


@given(finite((4, 3)), finite((4, 3)))
@settings(max_examples=25, deadline=None)
def test_sum_rule(a, b):
    """d(f+g) = df + dg on elementwise polynomials."""
    ta = Tensor(a, requires_grad=True)
    ((ta * ta) + (ta * 3.0)).sum().backward()
    np.testing.assert_allclose(ta.grad, 2 * a + 3, rtol=1e-5, atol=1e-6)


@given(finite((3, 3), 0.125, 3.0))
@settings(max_examples=25, deadline=None)
def test_quotient_rule(a):
    ta = Tensor(a, requires_grad=True)
    (1.0 / ta).sum().backward()
    np.testing.assert_allclose(ta.grad, -1.0 / (a * a), rtol=1e-4)


@given(finite((2, 4)), finite((4, 3)))
@settings(max_examples=25, deadline=None)
def test_matmul_chain_grad_shapes(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    out = (ta @ tb) * 2.0
    out.sum().backward()
    assert ta.grad.shape == a.shape
    assert tb.grad.shape == b.shape
    np.testing.assert_allclose(ta.grad, 2.0 * np.ones((2, 3)) @ b.T,
                               rtol=1e-5)


@given(finite((2, 2, 4, 4)))
@settings(max_examples=15, deadline=None)
def test_relu_grad_is_indicator(x):
    tx = Tensor(x, requires_grad=True)
    F.relu(tx).sum().backward()
    np.testing.assert_allclose(tx.grad, (x > 0).astype(float))


@given(finite((3, 5)), st.integers(0, 4))
@settings(max_examples=20, deadline=None)
def test_cross_entropy_nonnegative_and_grad_sums_zero(logits, label):
    t = Tensor(logits, requires_grad=True)
    y = np.full(3, label)
    loss = F.cross_entropy(t, y)
    assert loss.item() >= -1e-6
    loss.backward()
    np.testing.assert_allclose(t.grad.sum(axis=1), 0.0, atol=1e-6)


@given(finite((2, 3, 4, 4)), st.integers(1, 2))
@settings(max_examples=15, deadline=None)
def test_pool_grad_mass_conservation(x, k):
    """Average pooling preserves gradient mass; max pooling routes it."""
    tx = Tensor(x, requires_grad=True)
    F.avg_pool2d(tx, k).sum().backward()
    expected = x[:, :, :(4 // k) * k, :(4 // k) * k].size / (k * k)
    np.testing.assert_allclose(tx.grad.sum(), expected, rtol=1e-5)

    ty = Tensor(x, requires_grad=True)
    F.max_pool2d(ty, k).sum().backward()
    n_windows = x.shape[0] * x.shape[1] * (4 // k) ** 2
    np.testing.assert_allclose(ty.grad.sum(), n_windows, rtol=1e-5)


@given(finite((2, 6, 3, 3)),
       st.lists(st.integers(0, 5), min_size=1, max_size=6, unique=True))
@settings(max_examples=20, deadline=None)
def test_gather_scatter_adjoint(x, idx):
    """<gather(x), g> == <x, scatter(g)> — exact adjoint pair."""
    idx = np.array(sorted(idx))
    tx = Tensor(x, requires_grad=True)
    g = np.random.default_rng(0).normal(size=(2, len(idx), 3, 3))
    out = F.gather_channels(tx, idx)
    lhs = float((out.data * g).sum())
    out.backward(g)
    rhs = float((x * tx.grad).sum())
    np.testing.assert_allclose(lhs, rhs, rtol=1e-6)


@given(st.integers(2, 5), st.integers(2, 8))
@settings(max_examples=15, deadline=None)
def test_linear_vs_manual_grad(n, d):
    rng = np.random.default_rng(n * 100 + d)
    x = rng.normal(size=(n, d))
    w = Tensor(rng.normal(size=(3, d)), requires_grad=True)
    b = Tensor(np.zeros(3), requires_grad=True)
    dy = rng.normal(size=(n, 3))
    out = F.linear(Tensor(x), w, b)
    out.backward(dy)
    np.testing.assert_allclose(w.grad, dy.T @ x, rtol=1e-6)
    np.testing.assert_allclose(b.grad, dy.sum(axis=0), rtol=1e-6)
