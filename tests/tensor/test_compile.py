"""Compiled step plans: capture/replay bit-exactness, invalidation, fallback.

The contract under test (repro.tensor.compile): a StepPlan captured from one
eager step replays the *identical* floating-point computation — losses,
parameter gradients, BN running stats, everything — as a flat list of kernel
thunks, and retires itself (``invalid_reason``) whenever the network is
reconfigured, the engine switchboard changes, or parameter shapes move.
"""

import numpy as np
import pytest

from repro.nn import resnet20
from repro.nn.module import Module
from repro.optim import SGD
from repro.tensor import Tensor, functional as F, no_grad, workspace
from repro.tensor.compile import (STATS, PlanCache, StepPlan, Tape,
                                  capture_forward, capture_training_step)


def _model(seed=3):
    return resnet20(6, width_mult=0.25, input_hw=8, seed=seed)


def _batch(rng, n=8):
    x = rng.standard_normal((n, 3, 8, 8)).astype(np.float32)
    y = rng.integers(0, 6, size=n)
    return x, y


def _eager_step(model, opt, x, y):
    logits = model(Tensor(x))
    loss = F.cross_entropy(logits, y)
    opt.zero_grad()
    loss.backward()
    opt.step()
    return float(loss.data), logits.data.copy()


class TestTrainPlanBitExact:
    def test_replay_matches_eager_exactly(self):
        """Losses, params, and momentum identical over a multi-step run."""
        rng = np.random.default_rng(0)
        batches = [_batch(rng) for _ in range(4)]

        m_e = _model()
        o_e = SGD(m_e.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4)
        losses_e = [_eager_step(m_e, o_e, x, y)[0] for x, y in batches]

        m_c = _model()
        o_c = SGD(m_c.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4)
        x0, y0 = batches[0]
        o_c.zero_grad()
        plan, loss_t, logits_t, reason = capture_training_step(m_c, x0, y0)
        assert reason is None and isinstance(plan, StepPlan)
        loss_t.backward()
        o_c.step()
        losses_c = [float(loss_t.data)]
        for x, y in batches[1:]:
            assert plan.invalid_reason() is None
            o_c.zero_grad()
            loss_arr, _ = plan.run(x, y)
            o_c.step()
            losses_c.append(float(loss_arr))

        assert losses_e == losses_c
        for (n, pe), (_, pc) in zip(m_e.named_parameters(),
                                    m_c.named_parameters()):
            assert np.array_equal(pe.data, pc.data), n
            assert np.array_equal(o_e.state_for(pe), o_c.state_for(pc)), n

    def test_bn_running_stats_track_eager(self):
        """Replay updates BN EMA in place exactly as the eager step does."""
        rng = np.random.default_rng(1)
        batches = [_batch(rng) for _ in range(3)]
        m_e, m_c = _model(), _model()
        o_e = SGD(m_e.parameters(), lr=0.05)
        o_c = SGD(m_c.parameters(), lr=0.05)
        for x, y in batches:
            _eager_step(m_e, o_e, x, y)
        x0, y0 = batches[0]
        o_c.zero_grad()
        plan, loss_t, _, _ = capture_training_step(m_c, x0, y0)
        loss_t.backward()
        o_c.step()
        for x, y in batches[1:]:
            o_c.zero_grad()
            plan.run(x, y)
            o_c.step()
        se, sc = m_e.state_dict(), m_c.state_dict()
        assert se.keys() == sc.keys()
        for k in se:
            assert np.array_equal(se[k], sc[k]), k

    def test_logits_and_grads_match_single_replay(self):
        rng = np.random.default_rng(2)
        x, y = _batch(rng)
        x2, y2 = _batch(rng)
        m_e, m_c = _model(), _model()
        # warm both models one eager step so replay hits non-capture state
        logits_e = m_e(Tensor(x2))
        loss_e = F.cross_entropy(logits_e, y2)
        m_e.zero_grad()
        loss_e.backward()

        plan, loss_t, _, reason = capture_training_step(m_c, x2, y2)
        assert reason is None
        loss_t.backward()
        assert float(loss_t.data) == float(loss_e.data)
        m_c.zero_grad()
        loss_arr, logits_arr = plan.run(x2, y2)
        assert np.array_equal(loss_arr, loss_e.data)
        assert np.array_equal(logits_arr, logits_e.data)
        for (n, pe), (_, pc) in zip(m_e.named_parameters(),
                                    m_c.named_parameters()):
            assert pe.grad is not None and pc.grad is not None, n
            assert np.array_equal(pe.grad, pc.grad), n


class TestForwardPlan:
    def test_eval_replay_matches_eager(self):
        rng = np.random.default_rng(3)
        x, _ = _batch(rng)
        x2, _ = _batch(rng)
        model = _model()
        model.eval()
        plan, logits_t, reason = capture_forward(model, x)
        assert reason is None and plan.kind == "forward"
        with no_grad():
            ref = model(Tensor(x2)).data
        out = plan.run_forward(x2)
        assert np.array_equal(out, ref)
        assert np.array_equal(logits_t.data, plan.run_forward(x))


class TestInvalidation:
    def test_generation_bump_retires_plan(self):
        rng = np.random.default_rng(4)
        x, y = _batch(rng)
        plan, loss_t, _, reason = capture_training_step(_model(), x, y)
        assert reason is None
        loss_t.backward()
        assert plan.invalid_reason() is None
        workspace.invalidate()          # what channel surgery calls
        assert "reconfigured" in plan.invalid_reason()

    def test_engine_config_change_retires_plan(self):
        rng = np.random.default_rng(5)
        x, y = _batch(rng)
        plan, loss_t, _, _ = capture_training_step(_model(), x, y)
        loss_t.backward()
        assert plan.invalid_reason() is None
        # flip one switchboard field directly (baseline_engine() would be a
        # no-op when the suite already runs the baseline configuration)
        old = workspace.config.fused_bnrelu
        workspace.config.fused_bnrelu = not old
        try:
            assert "engine configuration" in plan.invalid_reason()
        finally:
            workspace.config.fused_bnrelu = old
        assert plan.invalid_reason() is None

    def test_parameter_shape_change_retires_plan(self):
        rng = np.random.default_rng(6)
        x, y = _batch(rng)
        model = _model()
        plan, loss_t, _, _ = capture_training_step(model, x, y)
        loss_t.backward()
        p = model.parameters()[0]
        old = p.data
        p.data = old[:-1]               # simulate surgery without invalidate
        assert "parameter shape" in plan.invalid_reason()
        p.data = old

    def test_load_state_dict_bumps_generation(self):
        model = _model()
        state = model.state_dict()
        gen = workspace.PLAN_GENERATION
        model.load_state_dict(state)
        assert workspace.PLAN_GENERATION > gen


class TestFallback:
    def test_unrecorded_op_fails_capture_cleanly(self):
        """A graph op without a capture hook falls back, never crashes."""

        class Scaled(Module):
            def __init__(self):
                super().__init__()
                self.inner = _model()

            def forward(self, x):
                return self.inner(x) * 2.0   # __mul__ has no capture hook

        rng = np.random.default_rng(7)
        x, y = _batch(rng)
        STATS.reset()
        plan, loss_t, logits_t, reason = capture_training_step(
            Scaled(), x, y)
        assert plan is None and reason
        assert STATS.fallbacks == 1
        assert STATS.last_fallback_reason == reason
        # the capture batch is still a perfectly good eager step
        loss_t.backward()
        assert logits_t.data.shape == (8, 6)

    def test_nested_capture_raises(self):
        with Tape():
            with pytest.raises(RuntimeError):
                Tape().__enter__()
        # outer context exited cleanly: a fresh capture works again
        rng = np.random.default_rng(8)
        x, y = _batch(rng)
        plan, loss_t, _, reason = capture_training_step(_model(), x, y)
        assert reason is None
        loss_t.backward()


class TestPlanCache:
    def test_store_lookup_and_sentinels(self):
        cache = PlanCache()
        cache.store(("train", (8, 3, 8, 8)), "unsupported op")
        assert cache.lookup(("train", (8, 3, 8, 8))) == "unsupported op"
        assert cache.lookup(("train", (16, 3, 8, 8))) is None
        assert len(cache) == 1

    def test_generation_bump_clears(self):
        cache = PlanCache()
        cache.store(("k",), "x")
        workspace.invalidate_plans()
        assert cache.lookup(("k",)) is None
        assert len(cache) == 0

    def test_drop(self):
        cache = PlanCache()
        cache.store(("k",), "x")
        cache.drop(("k",))
        assert cache.lookup(("k",)) is None

    def test_entry_cap_evicts_least_recently_used(self):
        cache = PlanCache(max_entries=2)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        assert cache.lookup(("a",)) == 1     # refresh "a": "b" is now LRU
        cache.store(("c",), 3)
        assert cache.lookup(("b",)) is None  # evicted
        assert cache.lookup(("a",)) == 1
        assert cache.lookup(("c",)) == 3
        assert cache.evictions == 1 and len(cache) == 2

    def test_restore_refreshes_lru_position(self):
        cache = PlanCache(max_entries=2)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        cache.store(("a",), 10)              # re-store also refreshes
        cache.store(("c",), 3)
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) == 10

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)

    def test_store_after_generation_bump_purges_stale_entries(self):
        """Regression: a store right after a reconfiguration must not
        re-stamp plans captured in the previous generation as current."""
        cache = PlanCache()
        cache.store(("old",), "stale-plan")
        workspace.invalidate_plans()
        cache.store(("new",), "fresh-plan")  # no lookup in between
        assert cache.lookup(("old",)) is None
        assert cache.lookup(("new",)) == "fresh-plan"
        assert len(cache) == 1


def test_stats_surface_in_profiler_summary():
    from repro.profiler import PROFILER
    assert "_plans" in PROFILER.summary()
    d = STATS.as_dict()
    assert set(d) == {"captures", "capture_seconds", "replays",
                      "replay_seconds", "fallbacks", "last_fallback_reason"}
