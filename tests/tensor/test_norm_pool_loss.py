"""BatchNorm, pooling, and loss kernels."""

import numpy as np
import pytest

from repro.tensor.ops.loss import (accuracy, cross_entropy_backward,
                                   cross_entropy_forward, softmax)
from repro.tensor.ops.norm import batchnorm_backward, batchnorm_forward
from repro.tensor.ops.pool import (avgpool2d_backward, avgpool2d_forward,
                                   global_avgpool_backward,
                                   global_avgpool_forward, maxpool2d_backward,
                                   maxpool2d_forward)


class TestBatchNorm:
    def test_forward_normalizes(self, rng):
        x = rng.normal(3.0, 2.0, size=(8, 4, 5, 5))
        gamma, beta = np.ones(4), np.zeros(4)
        rm, rv = np.zeros(4), np.ones(4)
        y, _ = batchnorm_forward(x, gamma, beta, rm, rv, 0.1, 1e-5, True)
        np.testing.assert_allclose(y.mean(axis=(0, 2, 3)), 0, atol=1e-6)
        np.testing.assert_allclose(y.var(axis=(0, 2, 3)), 1, atol=1e-3)

    def test_running_stats_updated_inplace(self, rng):
        x = rng.normal(5.0, 1.0, size=(16, 2, 4, 4))
        rm, rv = np.zeros(2), np.ones(2)
        rm_id, rv_id = id(rm), id(rv)
        batchnorm_forward(x, np.ones(2), np.zeros(2), rm, rv, 0.5, 1e-5, True)
        assert id(rm) == rm_id and id(rv) == rv_id
        assert (rm > 2.0).all()  # moved toward 5.0

    def test_eval_uses_running_stats(self, rng):
        x = rng.normal(size=(4, 2, 3, 3))
        rm = np.array([10.0, -10.0])
        rv = np.ones(2)
        y, _ = batchnorm_forward(x, np.ones(2), np.zeros(2), rm, rv,
                                 0.1, 1e-5, False)
        # channel 0 shifted by -10, channel 1 by +10
        assert (y[:, 0] < 0).all()
        assert (y[:, 1] > 0).all()

    def test_backward_matches_numerical(self, rng):
        x = rng.normal(size=(4, 3, 4, 4))
        gamma = rng.normal(1.0, 0.1, size=3)
        beta = rng.normal(size=3)
        dy = rng.normal(size=x.shape)
        rm, rv = np.zeros(3), np.ones(3)
        _, cache = batchnorm_forward(x, gamma, beta, rm.copy(), rv.copy(),
                                     0.1, 1e-5, True)
        dx, dgamma, dbeta = batchnorm_backward(dy, cache)
        eps = 1e-6

        def f():
            y, _ = batchnorm_forward(x, gamma, beta, rm.copy(), rv.copy(),
                                     0.1, 1e-5, True)
            return (y * dy).sum()

        for arr, ana in [(x, dx), (gamma, dgamma), (beta, dbeta)]:
            flat, fana = arr.reshape(-1), ana.reshape(-1)
            for i in rng.integers(0, flat.size, size=5):
                orig = flat[i]
                flat[i] = orig + eps
                lp = f()
                flat[i] = orig - eps
                lm = f()
                flat[i] = orig
                np.testing.assert_allclose(fana[i], (lp - lm) / (2 * eps),
                                           rtol=1e-3, atol=1e-6)

    def test_backward_gradient_mean_free(self, rng):
        """BN training backward projects out the per-channel mean component."""
        x = rng.normal(size=(8, 2, 3, 3))
        dy = np.ones_like(x)  # constant upstream grad
        _, cache = batchnorm_forward(x, np.ones(2), np.zeros(2), np.zeros(2),
                                     np.ones(2), 0.1, 1e-5, True)
        dx, _, _ = batchnorm_backward(dy, cache)
        np.testing.assert_allclose(dx.sum(axis=(0, 2, 3)), 0, atol=1e-8)


class TestMaxPool:
    def test_forward_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        y, _ = maxpool2d_forward(x, 2)
        np.testing.assert_allclose(y[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_max(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        y, mask = maxpool2d_forward(x, 2)
        dx = maxpool2d_backward(np.ones_like(y), mask, 2, x.shape)
        assert dx.sum() == 4.0
        assert dx[0, 0, 1, 1] == 1.0 and dx[0, 0, 0, 0] == 0.0

    def test_gradient_mass_conserved_with_ties(self):
        x = np.zeros((1, 1, 4, 4))  # every window fully tied
        y, mask = maxpool2d_forward(x, 2)
        dx = maxpool2d_backward(np.ones_like(y), mask, 2, x.shape)
        assert dx.sum() == 4.0  # one winner per window, not 4

    def test_ragged_edge_truncated(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        y, mask = maxpool2d_forward(x, 2)
        assert y.shape == (1, 1, 2, 2)
        dx = maxpool2d_backward(np.ones_like(y), mask, 2, (1, 1, 5, 5))
        assert dx.shape == (1, 1, 5, 5)
        assert dx[:, :, 4, :].sum() == 0  # truncated rows get no gradient


class TestAvgPool:
    def test_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        y = avgpool2d_forward(x, 2)
        np.testing.assert_allclose(y[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_backward_uniform(self):
        x = np.zeros((1, 1, 4, 4))
        y = avgpool2d_forward(x, 2)
        dx = avgpool2d_backward(np.ones_like(y), 2, x.shape)
        np.testing.assert_allclose(dx, np.full_like(x, 0.25))


class TestGlobalAvgPool:
    def test_forward_backward(self, rng):
        x = rng.normal(size=(3, 4, 5, 5))
        y = global_avgpool_forward(x)
        np.testing.assert_allclose(y, x.mean(axis=(2, 3)))
        dx = global_avgpool_backward(np.ones((3, 4)), x.shape)
        np.testing.assert_allclose(dx, np.full(x.shape, 1 / 25))


class TestCrossEntropy:
    def test_softmax_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(6, 10)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-6)

    def test_loss_of_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss, _ = cross_entropy_forward(logits, np.array([1, 2]))
        assert loss < 1e-6

    def test_uniform_logits_loss_is_log_k(self):
        logits = np.zeros((4, 10))
        loss, _ = cross_entropy_forward(logits, np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(loss, np.log(10), rtol=1e-6)

    def test_numerical_stability_large_logits(self):
        logits = np.array([[1e4, 0.0], [0.0, 1e4]])
        loss, probs = cross_entropy_forward(logits, np.array([0, 1]))
        assert np.isfinite(loss)
        assert np.isfinite(probs).all()

    def test_gradient_is_probs_minus_onehot(self, rng):
        logits = rng.normal(size=(5, 4))
        y = np.array([0, 1, 2, 3, 0])
        loss, probs = cross_entropy_forward(logits, y)
        g = cross_entropy_backward(probs, y)
        expect = probs.copy()
        expect[np.arange(5), y] -= 1
        np.testing.assert_allclose(g, expect / 5, rtol=1e-10)

    def test_gradient_rows_sum_to_zero(self, rng):
        logits = rng.normal(size=(5, 7))
        y = np.array([0, 1, 2, 3, 4])
        _, probs = cross_entropy_forward(logits, y)
        g = cross_entropy_backward(probs, y)
        np.testing.assert_allclose(g.sum(axis=1), 0, atol=1e-12)

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
