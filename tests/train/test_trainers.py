"""Trainers: dense baseline, PruneTrain (Algorithm 1), SSL, one-time, AMC.

These tests run tiny configurations and verify *mechanics* (λ setup, reg
gradients applied, reconfigurations executed, logs populated, state
consistency) rather than learning outcomes, which the benchmark suite
exercises at a larger scale.
"""

import numpy as np
import pytest

from repro.costmodel import MemoryModel, iteration_memory_bytes
from repro.data import make_synthetic
from repro.distributed import DynamicBatchAdjuster
from repro.nn import resnet20, resnet50_cifar, vgg11
from repro.train import (AMCLikeConfig, AMCLikePruner, OneTimeConfig,
                         OneTimeTrainer, PruneTrainConfig, PruneTrainTrainer,
                         RunLog, SSLConfig, SSLTrainer, Trainer,
                         TrainerConfig)


@pytest.fixture(scope="module")
def data():
    train = make_synthetic(10, 128, hw=8, noise=0.8, seed=0, name="t")
    val = make_synthetic(10, 64, hw=8, noise=0.8, seed=1, name="v")
    return train, val


def tiny_cfg(**kw):
    base = dict(epochs=3, batch_size=32, augment=False, log_every=0)
    base.update(kw)
    return base


class TestDenseTrainer:
    def test_produces_full_log(self, data):
        train, val = data
        tr = Trainer(resnet20(10, width_mult=0.25, input_hw=8), train, val,
                     TrainerConfig(**tiny_cfg()))
        log = tr.train()
        assert len(log.records) == 3
        rec = log.records[-1]
        assert rec.inference_flops > 0
        assert rec.memory_bytes > 0
        assert rec.bn_bytes_per_iter > 0
        assert rec.cumulative_train_flops > 0
        assert "1080ti" in rec.epoch_time_model
        assert 0 <= rec.val_acc <= 1

    def test_loss_decreases(self, data):
        train, val = data
        tr = Trainer(resnet20(10, width_mult=0.5, input_hw=8), train, val,
                     TrainerConfig(**tiny_cfg(epochs=5)))
        log = tr.train()
        losses = log.series("train_loss")
        assert losses[-1] < losses[0]

    def test_lr_schedule_applied(self, data):
        train, val = data
        tr = Trainer(resnet20(10, width_mult=0.25, input_hw=8), train, val,
                     TrainerConfig(**tiny_cfg(epochs=4, lr=0.1)))
        log = tr.train()
        lrs = log.series("lr")
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[-1] < 0.1  # decayed at 50%/75% milestones

    def test_cumulative_flops_monotone(self, data):
        train, val = data
        tr = Trainer(resnet20(10, width_mult=0.25, input_hw=8), train, val,
                     TrainerConfig(**tiny_cfg()))
        log = tr.train()
        cum = log.series("cumulative_train_flops")
        assert (np.diff(cum) > 0).all()

    def test_data_parallel_workers(self, data):
        train, val = data
        tr = Trainer(resnet20(10, width_mult=0.25, input_hw=8), train, val,
                     TrainerConfig(**tiny_cfg(epochs=2, workers=2)))
        log = tr.train()
        assert log.records[-1].comm_bytes_epoch > 0

    def test_evaluate_restores_model_mode(self, data):
        """evaluate() must put the model back in whatever mode it found it
        in — not force training mode on a model being used for inference."""
        train, val = data
        tr = Trainer(resnet20(10, width_mult=0.25, input_hw=8), train, val,
                     TrainerConfig(**tiny_cfg(epochs=1)))
        tr.model.eval()
        tr.evaluate()
        assert not tr.model.training
        tr.model.train()
        tr.evaluate()
        assert tr.model.training


class TestPruneTrainTrainer:
    def _trainer(self, data, **cfg_kw):
        train, val = data
        base = dict(penalty_ratio=0.25, reconfig_interval=1,
                    lambda_scale=50.0, threshold=5e-3, zero_sparse=True)
        base.update(cfg_kw)
        model = resnet50_cifar(10, width_mult=0.25, input_hw=8)
        return PruneTrainTrainer(model, train, val,
                                 PruneTrainConfig(**tiny_cfg(), **base))

    def test_lambda_set_on_first_batch(self, data):
        tr = self._trainer(data)
        assert tr.lasso.lam is None
        tr.train()
        assert tr.lasso.lam is not None and tr.lasso.lam > 0

    def test_lambda_scale_applied(self, data):
        t1 = self._trainer(data, lambda_scale=1.0)
        t1.train()
        t2 = self._trainer(data, lambda_scale=50.0)
        t2.train()
        assert t2.lasso.lam == pytest.approx(50.0 * t1.lasso.lam, rel=0.3)

    def test_rate_mode_lambda_architecture_independent(self, data):
        """In "rate" mode, λ targets a fixed norm-decay budget, so it must
        be of the same magnitude for small and large models (unlike Eq. 3's
        λ ∝ 1/R, which starves big models on short schedules)."""
        train, val = data
        lams = {}
        for name, factory, wm in [("small", resnet20, 0.25),
                                  ("large", resnet50_cifar, 0.375)]:
            model = factory(10, width_mult=wm, input_hw=8)
            cfg = PruneTrainConfig(**tiny_cfg(epochs=1), penalty_ratio=0.25,
                                   lambda_mode="rate", reconfig_interval=0)
            tr = PruneTrainTrainer(model, train, val, cfg)
            tr.train()
            lams[name] = tr.lasso.lam
        assert 0.2 < lams["large"] / lams["small"] < 5.0

    def test_rate_mode_scales_with_ratio(self, data):
        train, val = data
        lams = []
        for ratio in (0.1, 0.25, 0.4):
            model = resnet20(10, width_mult=0.25, input_hw=8)
            cfg = PruneTrainConfig(**tiny_cfg(epochs=1), penalty_ratio=ratio,
                                   lambda_mode="rate", reconfig_interval=0)
            tr = PruneTrainTrainer(model, train, val, cfg)
            tr.train()
            lams.append(tr.lasso.lam)
        assert lams[0] < lams[1] < lams[2]

    def test_unknown_lambda_mode_raises(self, data):
        train, val = data
        model = resnet20(10, width_mult=0.25, input_hw=8)
        cfg = PruneTrainConfig(**tiny_cfg(epochs=1), penalty_ratio=0.25,
                               lambda_mode="bogus")
        tr = PruneTrainTrainer(model, train, val, cfg)
        with pytest.raises(ValueError, match="lambda_mode"):
            tr.train()

    def test_auto_threshold_set_above_floor(self, data):
        train, val = data
        model = resnet20(10, width_mult=0.25, input_hw=8)
        cfg = PruneTrainConfig(**tiny_cfg(epochs=1), penalty_ratio=0.25,
                               lambda_mode="rate", threshold=None,
                               reconfig_interval=0)
        tr = PruneTrainTrainer(model, train, val, cfg)
        tr.train()
        assert tr.threshold >= 1e-4
        assert tr.threshold == pytest.approx(
            max(1e-4, 3.0 * cfg.lr * tr.lasso.lam))

    def test_derived_threshold_does_not_mutate_config(self, data):
        """Regression: the derived threshold used to be written back into
        the (possibly shared) config, so a sweep preset reused across runs
        silently carried run 1's derived value into run 2."""
        train, val = data
        cfg = PruneTrainConfig(**tiny_cfg(epochs=1), penalty_ratio=0.25,
                               lambda_mode="rate", threshold=None,
                               reconfig_interval=0)
        tr1 = PruneTrainTrainer(resnet20(10, width_mult=0.25, input_hw=8),
                                train, val, cfg)
        tr1.train()
        assert cfg.threshold is None
        # a second run sharing the config must derive its own threshold
        tr2 = PruneTrainTrainer(resnet20(10, width_mult=0.5, input_hw=8),
                                train, val, cfg)
        assert tr2._derived_threshold is None
        tr2.train()
        assert cfg.threshold is None
        assert tr2.threshold == pytest.approx(
            max(1e-4, 3.0 * cfg.lr * tr2.lasso.lam))

    def test_reconfigures_every_interval(self, data):
        tr = self._trainer(data)
        tr.train()
        # interval=1, 3 epochs, margin 0 -> reconfigs at end of epochs 1, 2
        assert len(tr.reports) == 2

    def test_no_reconfig_when_interval_zero(self, data):
        tr = self._trainer(data, reconfig_interval=0)
        tr.train()
        assert tr.reports == []

    def test_reg_loss_logged(self, data):
        tr = self._trainer(data)
        log = tr.train()
        assert log.records[-1].reg_loss > 0
        assert log.records[-1].lam > 0

    def test_graph_valid_throughout(self, data):
        tr = self._trainer(data)
        tr.train()
        tr.model.graph.validate()

    def test_regularization_shrinks_weight_norms(self, data):
        dense = Trainer(resnet50_cifar(10, width_mult=0.25, input_hw=8),
                        *data, TrainerConfig(**tiny_cfg()))
        dense.train()
        pt = self._trainer(data, reconfig_interval=0)
        pt.train()
        norm_dense = sum(float((p.data ** 2).sum())
                         for p in dense.model.parameters())
        norm_pt = sum(float((p.data ** 2).sum())
                      for p in pt.model.parameters())
        assert norm_pt < norm_dense

    def test_tracker_integration(self, data):
        train, val = data
        model = resnet50_cifar(10, width_mult=0.25, input_hw=8)
        cfg = PruneTrainConfig(**tiny_cfg(), penalty_ratio=0.25,
                               reconfig_interval=1, lambda_scale=50.0,
                               threshold=5e-3)
        tr = PruneTrainTrainer(model, train, val, cfg,
                               track_convs=("s0b0.conv1",))
        tr.train()
        assert tr.tracker.matrix("s0b0.conv1").shape[0] == 3

    def test_last_reconfig_margin(self, data):
        tr = self._trainer(data, last_reconfig_margin=3)
        tr.train()
        assert tr.reports == []  # margin blocks all reconfigs in 3 epochs


class TestDynamicBatch:
    def test_batch_grows_when_capacity_allows(self, data):
        train, val = data
        model = resnet50_cifar(10, width_mult=0.25, input_hw=8)
        cap = iteration_memory_bytes(model.graph, 32) * 4  # generous
        adjuster = DynamicBatchAdjuster(MemoryModel(cap), granularity=8,
                                        max_batch=128)
        cfg = PruneTrainConfig(**tiny_cfg(), penalty_ratio=0.25,
                               reconfig_interval=1, lambda_scale=50.0,
                               threshold=5e-3)
        tr = PruneTrainTrainer(model, train, val, cfg,
                               batch_adjuster=adjuster)
        log = tr.train()
        assert log.records[-1].batch_size > 32
        assert tr.lr_scale > 1.0

    def test_lr_scale_tracks_batch_ratio(self, data):
        train, val = data
        model = resnet50_cifar(10, width_mult=0.25, input_hw=8)
        cap = iteration_memory_bytes(model.graph, 32) * 4
        adjuster = DynamicBatchAdjuster(MemoryModel(cap), granularity=8,
                                        max_batch=128)
        cfg = PruneTrainConfig(**tiny_cfg(), penalty_ratio=0.25,
                               reconfig_interval=1, lambda_scale=50.0,
                               threshold=5e-3)
        tr = PruneTrainTrainer(model, train, val, cfg,
                               batch_adjuster=adjuster)
        log = tr.train()
        assert tr.lr_scale == pytest.approx(
            log.records[-1].batch_size / 32, rel=1e-6)


class TestSSLTrainer:
    def test_two_phases_merged(self, data):
        train, val = data
        model = resnet20(10, width_mult=0.25, input_hw=8)
        cfg = SSLConfig(**tiny_cfg(epochs=2), penalty_ratio=0.25,
                        lambda_scale=50.0, threshold=5e-3,
                        pretrain_epochs=2)
        tr = SSLTrainer(model, train, val, cfg)
        log = tr.train()
        assert len(log.records) == 4  # 2 pretrain + 2 sparsify
        assert log.method == "ssl"
        # cumulative FLOPs continue across phases
        cum = log.series("cumulative_train_flops")
        assert (np.diff(cum) > 0).all()

    def test_ssl_never_reconfigures_midrun(self, data):
        train, val = data
        model = resnet20(10, width_mult=0.25, input_hw=8)
        cfg = SSLConfig(**tiny_cfg(epochs=2), penalty_ratio=0.25,
                        lambda_scale=50.0, threshold=5e-3,
                        pretrain_epochs=1)
        assert cfg.reconfig_interval == 0
        tr = SSLTrainer(model, train, val, cfg)
        log = tr.train()
        # params constant until the final one-shot prune
        params = log.series("params")
        assert (params == params[0]).all()

    def test_ssl_training_cost_about_twice_dense(self, data):
        train, val = data
        dense_model = resnet20(10, width_mult=0.25, input_hw=8)
        dense = Trainer(dense_model, train, val,
                        TrainerConfig(**tiny_cfg(epochs=2))).train()
        model = resnet20(10, width_mult=0.25, input_hw=8)
        cfg = SSLConfig(**tiny_cfg(epochs=2), penalty_ratio=0.25,
                        lambda_scale=1.0, threshold=1e-4, pretrain_epochs=2)
        ssl = SSLTrainer(model, train, val, cfg).train()
        ratio = ssl.total_train_flops / dense.total_train_flops
        assert ratio == pytest.approx(2.0, rel=0.05)


class TestOneTimeTrainer:
    def test_single_reconfiguration(self, data):
        train, val = data
        model = resnet50_cifar(10, width_mult=0.25, input_hw=8)
        cfg = OneTimeConfig(**tiny_cfg(epochs=4), penalty_ratio=0.25,
                            lambda_scale=50.0, threshold=5e-3,
                            reconfig_epoch=2)
        tr = OneTimeTrainer(model, train, val, cfg)
        tr.train()
        assert len(tr.reports) == 1

    def test_no_reconfig_before_epoch(self, data):
        train, val = data
        model = resnet50_cifar(10, width_mult=0.25, input_hw=8)
        cfg = OneTimeConfig(**tiny_cfg(epochs=2), penalty_ratio=0.25,
                            lambda_scale=50.0, threshold=5e-3,
                            reconfig_epoch=10)
        tr = OneTimeTrainer(model, train, val, cfg)
        tr.train()
        assert tr.reports == []


class TestAMCLike:
    def test_reaches_flops_target(self, data):
        from repro.costmodel import inference_flops
        train, val = data
        model = resnet20(10, width_mult=0.5, input_hw=8)
        cfg = AMCLikeConfig(**tiny_cfg(epochs=1), pretrain_epochs=1,
                            finetune_epochs=1, max_rounds=10,
                            target_inference_ratio=0.6)
        pruner = AMCLikePruner(model, train, val, cfg)
        log = pruner.run()
        assert log.notes["dense_inference_flops"] > 0
        assert inference_flops(model.graph) <= \
            0.65 * log.notes["dense_inference_flops"]

    def test_model_still_functional(self, data, rng):
        from repro.tensor import Tensor, no_grad
        train, val = data
        model = resnet20(10, width_mult=0.5, input_hw=8)
        cfg = AMCLikeConfig(**tiny_cfg(epochs=1), pretrain_epochs=1,
                            finetune_epochs=1, max_rounds=4,
                            target_inference_ratio=0.7)
        AMCLikePruner(model, train, val, cfg).run()
        model.eval()
        with no_grad():
            out = model(Tensor(rng.normal(size=(2, 3, 8, 8))
                               .astype(np.float32)))
        assert np.isfinite(out.data).all()

    def test_channel_importance_ranks_magnitudes(self):
        from repro.train import channel_importance
        m = vgg11(10, width_mult=0.25, input_hw=8)
        node = m.graph.conv_by_name("conv2")
        node.conv.weight.data[0] *= 0.01  # make channel 0 unimportant
        reader = m.graph.readers(node.out_space)[0]
        reader.conv.weight.data[:, 0] *= 0.01
        scores = channel_importance(m.graph)
        sid = node.out_space
        vals = [scores[(sid, c)] for c in range(node.conv.out_channels)]
        assert np.argmin(vals) == 0


class TestRunLogSerialization:
    def test_roundtrip(self, data):
        train, val = data
        tr = Trainer(resnet20(10, width_mult=0.25, input_hw=8), train, val,
                     TrainerConfig(**tiny_cfg(epochs=2)))
        log = tr.train()
        log2 = RunLog.from_dict(log.to_dict())
        assert log2.final_val_acc == log.final_val_acc
        assert log2.total_train_flops == log.total_train_flops
        assert len(log2.records) == len(log.records)
        assert log2.records[0].epoch_time_model == \
            log.records[0].epoch_time_model

    def test_relative_to_keys(self, data):
        train, val = data
        tr = Trainer(resnet20(10, width_mult=0.25, input_hw=8), train, val,
                     TrainerConfig(**tiny_cfg(epochs=2)))
        log = tr.train()
        rel = log.relative_to(log)
        assert rel["train_flops_ratio"] == pytest.approx(1.0)
        assert rel["inference_flops_ratio"] == pytest.approx(1.0)
        assert rel["val_acc_delta"] == pytest.approx(0.0)
