"""Exact-resume checkpointing: kill/resume equivalence and run recovery.

The acceptance bar is *bit-exact* resume: a run checkpointed and killed at
a mid-run epoch, then resumed into a freshly constructed trainer, must
produce an :class:`~repro.train.metrics.EpochRecord` trajectory identical
to the uninterrupted run's — including runs that pruned channels, removed
layers, and grew the mini-batch before the kill.  The uninterrupted run
doubles as the killed run: training is deterministic per seed, so its
epoch-k checkpoint is exactly what a run killed after epoch k left behind.
"""

import os

import numpy as np
import pytest

from repro.costmodel import MemoryModel, iteration_memory_bytes
from repro.data import make_synthetic
from repro.distributed import DynamicBatchAdjuster
from repro.io import checkpoint_path, latest_checkpoint
from repro.nn import resnet20
from repro.train import (PruneTrainConfig, PruneTrainTrainer, Trainer,
                         TrainerConfig)

#: every scalar field of EpochRecord that must match exactly across resume
RECORD_FIELDS = (
    "epoch", "train_loss", "train_acc", "val_acc", "reg_loss", "lam", "lr",
    "batch_size", "params", "inference_flops", "train_flops_per_sample",
    "cumulative_train_flops", "memory_bytes", "bn_bytes_per_iter",
    "comm_bytes_epoch", "channel_sparsity", "removed_layers",
)


@pytest.fixture(scope="module")
def data():
    train = make_synthetic(10, 192, hw=8, noise=0.8, seed=0, name="t")
    val = make_synthetic(10, 96, hw=8, noise=0.8, seed=1, name="v")
    return train, val


def assert_logs_identical(full, resumed):
    assert len(full.records) == len(resumed.records)
    for rf, rr in zip(full.records, resumed.records):
        for field in RECORD_FIELDS:
            assert getattr(rf, field) == getattr(rr, field), \
                f"epoch {rf.epoch}: {field} diverged"


def assert_models_identical(m1, m2):
    names1 = [n for n, _ in m1.named_parameters()]
    names2 = [n for n, _ in m2.named_parameters()]
    assert names1 == names2
    for (n, p1), (_, p2) in zip(m1.named_parameters(),
                                m2.named_parameters()):
        assert np.array_equal(p1.data, p2.data), f"{n} diverged"


class TestDenseResume:
    def _trainer(self, data, ckpt_dir):
        train, val = data
        cfg = TrainerConfig(epochs=5, batch_size=32, augment=True,
                            log_every=0, checkpoint_every=1,
                            checkpoint_dir=ckpt_dir, checkpoint_keep=0)
        model = resnet20(10, width_mult=0.25, input_hw=8, seed=11)
        return Trainer(model, train, val, cfg)

    def test_kill_resume_bit_exact(self, data, tmp_path):
        d_full = str(tmp_path / "full")
        full = self._trainer(data, d_full)
        log_full = full.train()

        # "kill" after epoch 2: resume a fresh identical trainer from the
        # epoch-2 checkpoint (shuffle + augmentation RNG mid-stream)
        resumed = self._trainer(data, str(tmp_path / "resumed"))
        log_res = resumed.train(resume_from=checkpoint_path(d_full, 2))

        assert_logs_identical(log_full, log_res)
        assert_models_identical(full.model, resumed.model)


class TestPruneTrainResume:
    """The hard case: architecture, optimizer state, λ/threshold, batch
    size, and LR scaling all co-evolved before the kill."""

    def _trainer(self, data, ckpt_dir):
        train, val = data
        model = resnet20(10, width_mult=0.375, input_hw=8, seed=0)
        # nudge one residual-path conv toward death so the first
        # reconfiguration also removes layers
        model.graph.conv_by_name("s2b1.conv1").conv.weight.data *= 0.02
        cfg = PruneTrainConfig(
            epochs=6, batch_size=32, augment=True, log_every=0,
            penalty_ratio=0.3, reconfig_interval=2, lambda_scale=400.0,
            threshold=None, zero_sparse=True,
            checkpoint_every=1, checkpoint_dir=ckpt_dir, checkpoint_keep=0)
        cap = iteration_memory_bytes(model.graph, 32) * 4
        adjuster = DynamicBatchAdjuster(MemoryModel(cap), granularity=8,
                                        max_batch=128)
        return PruneTrainTrainer(model, train, val, cfg,
                                 batch_adjuster=adjuster,
                                 track_convs=("s0b0.conv1",))

    def test_kill_resume_bit_exact(self, data, tmp_path):
        d_full = str(tmp_path / "full")
        full = self._trainer(data, d_full)
        log_full = full.train()

        # the run must have exercised every dynamic before the kill point
        # (epoch 2, i.e. after the first reconfiguration at end of epoch 1)
        assert full.reports[0].channels_pruned > 0
        assert full.reports[0].removed_layers > 0
        assert log_full.records[1].batch_size > 32
        assert full.lr_scale > 1.0

        resumed = self._trainer(data, str(tmp_path / "resumed"))
        log_res = resumed.train(resume_from=checkpoint_path(d_full, 2))

        assert_logs_identical(log_full, log_res)
        assert_models_identical(full.model, resumed.model)
        # derived run state restored and evolved identically
        assert resumed.lasso.lam == full.lasso.lam
        assert resumed.threshold == full.threshold
        assert resumed.lr_scale == full.lr_scale
        assert len(resumed.reports) == len(full.reports)
        for rf, rr in zip(full.reports, resumed.reports):
            assert rf.space_sizes == rr.space_sizes
            assert rf.removed_paths == rr.removed_paths
        # tracker history (Fig. 4 state) identical, original indexing kept
        np.testing.assert_array_equal(
            full.tracker.matrix("s0b0.conv1"),
            resumed.tracker.matrix("s0b0.conv1"))

    def test_resume_does_not_rerun_lambda_setup(self, data, tmp_path):
        """λ/threshold are derived once at step 1; a resumed run must carry
        the recorded values, not re-derive them from its first batch."""
        d_full = str(tmp_path / "full")
        full = self._trainer(data, d_full)
        full.train()
        resumed = self._trainer(data, str(tmp_path / "resumed"))
        resumed.resume(checkpoint_path(d_full, 2))
        assert resumed._first_batch_done
        assert resumed.lasso.lam == full.lasso.lam
        assert resumed._derived_threshold == full._derived_threshold


class TestCheckpointMechanics:
    def test_retention_keeps_last_n(self, data, tmp_path):
        train, val = data
        ckpt_dir = str(tmp_path / "ck")
        cfg = TrainerConfig(epochs=5, batch_size=64, augment=False,
                            log_every=0, checkpoint_every=1,
                            checkpoint_dir=ckpt_dir, checkpoint_keep=2)
        Trainer(resnet20(10, width_mult=0.25, input_hw=8, seed=3),
                train, val, cfg).train()
        kept = sorted(f for f in os.listdir(ckpt_dir)
                      if f.endswith(".npz"))
        assert kept == ["ckpt-ep00003.npz", "ckpt-ep00004.npz"]
        assert latest_checkpoint(ckpt_dir).endswith("ckpt-ep00004.npz")

    def test_no_checkpoints_by_default(self, data, tmp_path):
        train, val = data
        cfg = TrainerConfig(epochs=2, batch_size=64, augment=False,
                            log_every=0)
        tr = Trainer(resnet20(10, width_mult=0.25, input_hw=8, seed=3),
                     train, val, cfg)
        tr.train()
        assert list(tmp_path.iterdir()) == []

    def test_resume_from_v1_checkpoint_raises(self, data, tmp_path):
        from repro.io import save_checkpoint
        train, val = data
        model = resnet20(10, width_mult=0.25, input_hw=8, seed=3)
        path = str(tmp_path / "v1.npz")
        save_checkpoint(path, model)  # no train_state
        tr = Trainer(resnet20(10, width_mult=0.25, input_hw=8, seed=3),
                     train, val, TrainerConfig(epochs=2, batch_size=64,
                                               augment=False, log_every=0))
        with pytest.raises(ValueError, match="no training state"):
            tr.train(resume_from=path)


class TestRunnerAutoResume:
    def test_interrupted_sweep_picks_up_from_checkpoint(self, tmp_path):
        """Kill a Runs training mid-sweep; the next invocation must resume
        from the newest checkpoint instead of retraining from scratch."""
        from repro.experiments import Runs
        from repro.experiments.configs import SMOKE

        kw = dict(cache_dir=str(tmp_path / "cache"), use_disk_cache=False,
                  checkpoint_dir=str(tmp_path / "ckpts"),
                  checkpoint_every=1, checkpoint_keep=2)

        # uninterrupted reference
        runs_ref = Runs(SMOKE, **kw)
        key, log_ref = runs_ref.dense("resnet32", "cifar10s")

        # simulate the kill: drop the newest checkpoint (as if the run died
        # before writing it), then rerun in a fresh Runs (fresh "process",
        # warm checkpoint dir)
        ckpt_dir = os.path.join(str(tmp_path / "ckpts"), key)
        kept = sorted(os.listdir(ckpt_dir))
        assert len(kept) == 2  # retention
        os.remove(os.path.join(ckpt_dir, kept[-1]))
        kept = kept[:-1]

        calls = {"n": 0}
        orig = Trainer.train

        def counting_train(self, resume_from=None):
            calls["n"] += 1
            calls["resume_from"] = resume_from
            return orig(self, resume_from=resume_from)

        Trainer.train = counting_train
        try:
            runs2 = Runs(SMOKE, **kw)
            key2, log2 = runs2.dense("resnet32", "cifar10s")
        finally:
            Trainer.train = orig

        assert key2 == key
        assert calls["n"] == 1
        assert calls["resume_from"] is not None
        assert calls["resume_from"].endswith(kept[-1])
        # the resumed sweep reproduces the reference trajectory exactly
        assert_logs_identical(log_ref, log2)
