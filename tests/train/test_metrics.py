"""RunLog aggregation and serialization edge cases."""

import numpy as np
import pytest

from repro.train import EpochRecord, RunLog


def make_log(n=5, flops=100.0, bs=32, train_size=320):
    log = RunLog(model_name="m", dataset_name="d", method="x")
    log.notes["train_size"] = train_size
    cum = 0.0
    for e in range(n):
        cum += flops * 3 * train_size
        log.append(EpochRecord(
            epoch=e, train_loss=1.0 / (e + 1), train_acc=0.5 + 0.1 * e,
            val_acc=0.4 + 0.1 * e, batch_size=bs,
            inference_flops=flops * (1 - 0.1 * e),
            train_flops_per_sample=3 * flops * (1 - 0.1 * e),
            cumulative_train_flops=cum,
            bn_bytes_per_iter=1000.0, comm_bytes_epoch=5000.0,
            memory_bytes=1e6, params=1000,
            epoch_time_model={"1080ti": 2.0, "v100": 1.0}))
    return log


class TestAggregates:
    def test_final_and_best_val_acc(self):
        log = make_log(5)
        assert log.final_val_acc == pytest.approx(0.8)
        assert log.best_val_acc == pytest.approx(0.8)

    def test_empty_log_safe(self):
        log = RunLog()
        assert log.final_val_acc == 0.0
        assert log.best_val_acc == 0.0
        assert log.total_train_flops == 0.0

    def test_total_train_flops_is_last_cumulative(self):
        log = make_log(4)
        assert log.total_train_flops == \
            log.records[-1].cumulative_train_flops

    def test_total_epoch_time(self):
        log = make_log(5)
        assert log.total_epoch_time("1080ti") == pytest.approx(10.0)
        assert log.total_epoch_time("v100") == pytest.approx(5.0)
        assert log.total_epoch_time("unknown") == 0.0

    def test_total_bn_bytes_uses_iterations(self):
        log = make_log(2, bs=32, train_size=320)  # 10 iters/epoch
        assert log.total_bn_bytes == pytest.approx(2 * 10 * 1000.0)

    def test_total_comm(self):
        log = make_log(3)
        assert log.total_comm_bytes == pytest.approx(15000.0)

    def test_series(self):
        log = make_log(3)
        np.testing.assert_allclose(log.series("epoch"), [0, 1, 2])
        assert log.series("val_acc").shape == (3,)


class TestRelativeTo:
    def test_identity(self):
        log = make_log(4)
        rel = log.relative_to(log)
        assert rel["train_flops_ratio"] == pytest.approx(1.0)
        assert rel["inference_flops_ratio"] == pytest.approx(1.0)
        assert rel["comm_ratio"] == pytest.approx(1.0)
        assert rel["bn_ratio"] == pytest.approx(1.0)
        assert rel["time_ratio_v100"] == pytest.approx(1.0)
        assert rel["val_acc_delta"] == pytest.approx(0.0)

    def test_cheaper_run_has_smaller_ratios(self):
        base = make_log(4, flops=100.0)
        cheap = make_log(4, flops=50.0)
        rel = cheap.relative_to(base)
        assert rel["train_flops_ratio"] == pytest.approx(0.5)
        assert rel["inference_flops_ratio"] == pytest.approx(0.5)


class TestSerialization:
    def test_roundtrip_preserves_everything(self):
        log = make_log(3)
        log2 = RunLog.from_dict(log.to_dict())
        assert log2.model_name == "m"
        assert log2.notes["train_size"] == 320
        for a, b in zip(log.records, log2.records):
            assert a == b

    def test_dict_is_json_safe(self):
        import json
        log = make_log(2)
        json.dumps(log.to_dict())  # must not raise
