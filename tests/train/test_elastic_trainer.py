"""Trainer-level elastic data parallelism: the differential acceptance test.

An elastic (multi-process) PruneTrain run at K=2 must be bit-identical to
the in-process simulation at K=2 across a *full* schedule — group lasso,
channel pruning with layer removal, and dynamic batch growth — while a
single-worker run differs by design (per-shard batch-norm statistics).
Fault injection and kill/resume must compose with all of it.
"""

import numpy as np
import pytest

from repro.costmodel import MemoryModel, iteration_memory_bytes
from repro.data import make_synthetic
from repro.distributed import DynamicBatchAdjuster, FaultPlan
from repro.io import checkpoint_path
from repro.nn import resnet20
from repro.train import PruneTrainConfig, PruneTrainTrainer

from .test_resume import (RECORD_FIELDS, assert_logs_identical,
                          assert_models_identical)

pytestmark = pytest.mark.distributed


@pytest.fixture(scope="module")
def data():
    train = make_synthetic(10, 192, hw=8, noise=0.8, seed=0, name="t")
    val = make_synthetic(10, 96, hw=8, noise=0.8, seed=1, name="v")
    return train, val


def make_trainer(data, workers, dist_engine="elastic", epochs=5,
                 ckpt_dir=None, fault_plan=None, timeout=10.0):
    """PruneTrain setup whose short run still exercises every dynamic:
    channel pruning, residual-layer removal, and batch growth."""
    train, val = data
    model = resnet20(10, width_mult=0.375, input_hw=8, seed=0)
    # nudge one residual-path conv toward death so the first
    # reconfiguration also removes layers
    model.graph.conv_by_name("s2b1.conv1").conv.weight.data *= 0.02
    cfg = PruneTrainConfig(
        epochs=epochs, batch_size=32, augment=True, log_every=0,
        penalty_ratio=0.3, reconfig_interval=2, lambda_scale=400.0,
        threshold=None, zero_sparse=True,
        workers=workers, dist_engine=dist_engine,
        dist_heartbeat_timeout=timeout, dist_fault_plan=fault_plan,
        checkpoint_every=1 if ckpt_dir else 0, checkpoint_dir=ckpt_dir,
        checkpoint_keep=0)
    cap = iteration_memory_bytes(model.graph, 32) * 4
    adjuster = DynamicBatchAdjuster(MemoryModel(cap), granularity=8,
                                    max_batch=128)
    return PruneTrainTrainer(model, train, val, cfg,
                             batch_adjuster=adjuster)


def assert_full_schedule(trainer, log):
    """The run must actually have pruned channels, removed layers, and
    grown the batch — otherwise the differential test proves nothing."""
    assert trainer.reports[0].channels_pruned > 0
    assert trainer.reports[0].removed_layers > 0
    assert log.records[-1].batch_size > 32


def normalized(log):
    """RunLog as a dict with the wall-clock-dependent fields zeroed (the
    only fields allowed to differ between identical invocations)."""
    d = log.to_dict()
    for r in d["records"]:
        r["wall_time"] = 0.0
        r["dist_stall_time"] = 0.0
    return d


class TestDifferential:
    def test_elastic_matches_simulation_bit_exact(self, data):
        """Tentpole acceptance: elastic K=2 == in-process sim K=2, bit for
        bit, across reconfiguration and batch growth; K=1 differs."""
        sim = make_trainer(data, workers=2, dist_engine="sim")
        log_sim = sim.train()
        assert_full_schedule(sim, log_sim)

        ela = make_trainer(data, workers=2, dist_engine="elastic")
        log_ela = ela.train()
        assert_full_schedule(ela, log_ela)
        assert ela._elastic is None  # pool released by train()

        assert_logs_identical(log_sim, log_ela)
        assert_models_identical(sim.model, ela.model)
        assert all(r.dist_failures == 0 for r in log_ela.records)
        assert all(r.dist_active_workers == 2 for r in log_ela.records)

        # K=1 is a *different* trajectory by design: data-parallel BN uses
        # per-shard statistics, so the sharded loss differs from epoch one.
        single = make_trainer(data, workers=1)
        log_one = single.train()
        assert log_one.records[0].train_loss != log_sim.records[0].train_loss

    def test_fault_free_run_is_deterministic(self, data):
        """Two identical elastic invocations produce identical RunLogs
        (everything but wall time, which is zeroed for comparison)."""
        a = make_trainer(data, workers=2, epochs=3).train()
        b = make_trainer(data, workers=2, epochs=3).train()
        assert normalized(a) == normalized(b)


class TestElasticResume:
    def test_kill_resume_bit_exact_under_elastic(self, data, tmp_path):
        """Checkpoint/kill/resume composes with the elastic engine: the
        resumed run re-forks replicas from the restored model and stays on
        the uninterrupted run's trajectory bit for bit."""
        d_full = str(tmp_path / "full")
        full = make_trainer(data, workers=2, ckpt_dir=d_full)
        log_full = full.train()
        assert_full_schedule(full, log_full)

        resumed = make_trainer(data, workers=2,
                               ckpt_dir=str(tmp_path / "resumed"))
        log_res = resumed.train(resume_from=checkpoint_path(d_full, 2))

        assert_logs_identical(log_full, log_res)
        assert_models_identical(full.model, resumed.model)


class TestTrainerFaults:
    def test_scripted_failure_degrades_and_completes(self, data):
        """A worker killed mid-run is recorded in the epoch telemetry and
        the run still completes (on the survivor) with a pruned model."""
        plan = FaultPlan().kill(1, at_step=8)
        tr = make_trainer(data, workers=2, fault_plan=plan, timeout=5.0)
        log = tr.train()
        assert log.records[-1].dist_active_workers == 1
        assert log.records[-1].dist_failures == 1
        assert tr.reports[0].channels_pruned > 0
        # telemetry is cumulative: the failure epoch and all later ones
        # report it, earlier ones do not
        fail_epochs = [r.epoch for r in log.records if r.dist_failures]
        assert fail_epochs == list(range(fail_epochs[0],
                                         len(log.records)))

    def test_scripted_failure_is_reproducible(self, data):
        """Same fault plan, same run: the degraded trajectory is exactly
        reproducible (scriptable chaos, deterministic outcome)."""
        plan = FaultPlan().kill(1, at_step=8)
        a = make_trainer(data, workers=2, epochs=4, fault_plan=plan,
                         timeout=5.0).train()
        plan_b = FaultPlan().kill(1, at_step=8)
        b = make_trainer(data, workers=2, epochs=4, fault_plan=plan_b,
                         timeout=5.0).train()
        assert normalized(a) == normalized(b)

    def test_bad_dist_engine_rejected(self, data):
        with pytest.raises(ValueError, match="dist_engine"):
            make_trainer(data, workers=2, dist_engine="nccl")
