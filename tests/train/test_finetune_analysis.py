"""Fine-tuning phase and model-analysis utilities."""

import numpy as np
import pytest

from repro.analysis import LayerSummary, summarize, summary_table
from repro.costmodel import GTX_1080TI, inference_flops
from repro.nn import resnet20, resnet50_cifar
from repro.train.finetune import fine_tune


class TestFineTune:
    def test_runs_and_logs(self, tiny_train, tiny_val):
        m = resnet20(10, width_mult=0.25, input_hw=8)
        log = fine_tune(m, tiny_train, tiny_val, epochs=2, lr=1e-2,
                        batch_size=64)
        assert log.method == "finetune"
        assert len(log.records) == 2
        np.testing.assert_allclose(log.series("lr"), 1e-2, rtol=1e-9)

    def test_improves_training_loss(self, tiny_train, tiny_val):
        m = resnet20(10, width_mult=0.5, input_hw=8)
        log1 = fine_tune(m, tiny_train, tiny_val, epochs=1, lr=5e-2,
                         batch_size=64)
        log2 = fine_tune(m, tiny_train, tiny_val, epochs=1, lr=5e-2,
                         batch_size=64)
        assert log2.records[-1].train_loss < log1.records[0].train_loss


class TestSummary:
    def test_rows_cover_all_layers(self):
        m = resnet50_cifar(10, width_mult=0.25, input_hw=16)
        rows = summarize(m)
        conv_rows = [r for r in rows if r.kind.startswith("conv")]
        bn_rows = [r for r in rows if r.kind == "batchnorm"]
        assert len(conv_rows) == len(m.graph.active_convs())
        assert len(bn_rows) == len(conv_rows)  # every conv has a BN
        assert any(r.kind == "linear" for r in rows)

    def test_flops_total_consistent_with_costmodel(self):
        m = resnet20(10, width_mult=0.25, input_hw=16)
        rows = summarize(m)
        total = sum(r.flops for r in rows)
        assert total == pytest.approx(inference_flops(m.graph), rel=0.02)

    def test_bn_is_memory_bound_conv_mostly_compute_bound(self):
        m = resnet50_cifar(10, width_mult=1.0, input_hw=32)
        rows = summarize(m)
        bns = [r for r in rows if r.kind == "batchnorm"]
        assert all(r.bound(GTX_1080TI) == "memory" for r in bns)
        conv3x3 = [r for r in rows if r.kind == "conv3x3"
                   and r.in_channels >= 64]
        assert any(r.bound(GTX_1080TI) == "compute" for r in conv3x3)

    def test_table_renders(self):
        m = resnet20(10, width_mult=0.25, input_hw=8)
        out = summary_table(m, GTX_1080TI)
        assert "stem" in out and "total:" in out and "bound" in out

    def test_summary_tracks_pruning(self):
        from repro.prune import prune_and_reconfigure
        m = resnet20(10, width_mult=0.5, input_hw=8)
        before = sum(r.params for r in summarize(m))
        node = m.graph.conv_by_name("s0b0.conv1")
        node.conv.weight.data[1] = 0
        reader = m.graph.readers(node.out_space)[0]
        reader.conv.weight.data[:, 1] = 0
        prune_and_reconfigure(m)
        after = sum(r.params for r in summarize(m))
        assert after < before
