"""Compiled stepping is bit-exact across a full PruneTrain run.

The acceptance bar for ``TrainerConfig(compile_step=True)``: a run that
prunes channels, removes a layer, grows the mini-batch, and is killed and
resumed from a format-v2 checkpoint mid-phase must produce *identical* bits
— every EpochRecord scalar, every parameter, every momentum buffer — to the
same run stepped eagerly.  Capture/recapture points (run start, each
reconfiguration, each batch-size change, resume) are exactly where the
eager and compiled executions may diverge if the plan machinery is wrong,
so the fixture is built to hit all of them (same dynamics as
tests/train/test_resume.py).
"""

import numpy as np
import pytest

from repro.costmodel import MemoryModel, iteration_memory_bytes
from repro.data import make_synthetic
from repro.distributed import DynamicBatchAdjuster
from repro.io import checkpoint_path
from repro.nn import resnet20
from repro.tensor.compile import STATS
from repro.train import PruneTrainConfig, PruneTrainTrainer

from .test_resume import assert_logs_identical, assert_models_identical


@pytest.fixture(scope="module")
def data():
    train = make_synthetic(10, 192, hw=8, noise=0.8, seed=0, name="t")
    val = make_synthetic(10, 96, hw=8, noise=0.8, seed=1, name="v")
    return train, val


def _trainer(data, ckpt_dir, compile_step, mem_plan=None,
             parallel_replay=None, replay_workers=None):
    train, val = data
    model = resnet20(10, width_mult=0.375, input_hw=8, seed=0)
    # nudge one residual-path conv toward death so the first
    # reconfiguration also removes layers
    model.graph.conv_by_name("s2b1.conv1").conv.weight.data *= 0.02
    cfg = PruneTrainConfig(
        epochs=6, batch_size=32, augment=True, log_every=0,
        penalty_ratio=0.3, reconfig_interval=2, lambda_scale=400.0,
        threshold=None, zero_sparse=True,
        checkpoint_every=1, checkpoint_dir=ckpt_dir, checkpoint_keep=0,
        compile_step=compile_step, mem_plan=mem_plan,
        parallel_replay=parallel_replay, replay_workers=replay_workers)
    cap = iteration_memory_bytes(model.graph, 32) * 4
    adjuster = DynamicBatchAdjuster(MemoryModel(cap), granularity=8,
                                    max_batch=128)
    return PruneTrainTrainer(model, train, val, cfg,
                             batch_adjuster=adjuster,
                             track_convs=("s0b0.conv1",))


def _assert_velocities_identical(t1, t2):
    for (n, p1), (_, p2) in zip(t1.model.named_parameters(),
                                t2.model.named_parameters()):
        assert np.array_equal(t1.optimizer.state_for(p1),
                              t2.optimizer.state_for(p2)), f"{n} velocity"


@pytest.fixture(scope="module")
def runs(data, tmp_path_factory):
    eager = _trainer(data, str(tmp_path_factory.mktemp("eager")),
                     compile_step=False)
    log_eager = eager.train()
    STATS.reset()
    # mem_plan pinned on (not left to the REPRO_MEM_PLAN default): the
    # planner-vs-off differential below must hold on every CI matrix leg
    compiled = _trainer(data, str(tmp_path_factory.mktemp("compiled")),
                        compile_step=True, mem_plan=True)
    log_compiled = compiled.train()
    return eager, log_eager, compiled, log_compiled


class TestCompiledPruneTrainBitExact:
    def test_run_exercised_every_dynamic(self, runs):
        eager, log_eager, _, _ = runs
        assert eager.reports[0].channels_pruned > 0
        assert eager.reports[0].removed_layers > 0
        assert log_eager.records[1].batch_size > 32
        assert eager.lr_scale > 1.0

    def test_compiled_run_actually_replayed(self, runs):
        assert STATS.captures > 0
        from repro.tensor import workspace
        if workspace.config.sparse_compute:
            # with sparse compute armed, every epoch-end dead-set publish
            # that *changes* the stable sets retires the plans (the baked
            # gate decisions are stale) — at this fixture's 6 batches per
            # epoch captures legitimately rival replays, so only assert
            # that replay happened at all
            assert STATS.replays > 0
        else:
            assert STATS.replays > STATS.captures
        assert STATS.fallbacks == 0, STATS.last_fallback_reason

    def test_logs_params_velocity_identical(self, runs):
        eager, log_eager, compiled, log_compiled = runs
        assert_logs_identical(log_eager, log_compiled)
        assert_models_identical(eager.model, compiled.model)
        _assert_velocities_identical(eager, compiled)

    def test_kill_resume_compiled_matches_eager_full(self, runs, data,
                                                     tmp_path):
        """Kill the compiled run after epoch 2 (mid-phase: one
        reconfiguration and the batch growth already happened) and resume
        a fresh compiled trainer from its checkpoint: the stitched run
        must still match the uninterrupted eager run bit-for-bit."""
        eager, log_eager, compiled, _ = runs
        ckpt = checkpoint_path(compiled.cfg.checkpoint_dir, 2)
        resumed = _trainer(data, str(tmp_path / "resumed"),
                           compile_step=True)
        log_res = resumed.train(resume_from=ckpt)
        assert_logs_identical(log_eager, log_res)
        assert_models_identical(eager.model, resumed.model)
        _assert_velocities_identical(eager, resumed)


class TestMemPlanBitExact:
    """The memory planner changes *where* plan buffers live, never values.

    The compiled run above already exercises planner-on (mem_plan pinned
    on) across pruning, layer removal, batch growth, and
    kill/resume; here the same schedule runs with the planner forced off
    and every bit must agree — plus the planner-on run must actually have
    planned (per-epoch arena metrics recorded).
    """

    @pytest.fixture(scope="class")
    def planner_off(self, data, tmp_path_factory):
        t = _trainer(data, str(tmp_path_factory.mktemp("noplan")),
                     compile_step=True, mem_plan=False)
        return t, t.train()

    def test_planner_on_off_bit_identical(self, runs, planner_off):
        _, log_eager, compiled, log_on = runs
        off, log_off = planner_off
        assert_logs_identical(log_on, log_off)
        assert_logs_identical(log_eager, log_off)
        assert_models_identical(compiled.model, off.model)
        _assert_velocities_identical(compiled, off)

    def test_planner_on_recorded_arena_metrics(self, runs):
        _, _, _, log_on = runs
        for rec in log_on.records:
            assert rec.arena_bytes > 0
            assert rec.mem_peak_bytes > 0
            assert 0.0 < rec.mem_plan_savings < 1.0
        # pruning shrinks the model, so the planned footprint per sample
        # must shrink too (raw arena bytes can grow: the freed memory is
        # deliberately refilled by dynamic batch growth)
        first, last = log_on.records[0], log_on.records[-1]
        assert (last.arena_bytes / last.batch_size
                < first.arena_bytes / first.batch_size)

    def test_planner_off_recorded_no_metrics(self, planner_off):
        _, log_off = planner_off
        assert all(r.arena_bytes == 0 for r in log_off.records)

    def test_resume_across_planner_configs(self, runs, data, tmp_path):
        """A checkpoint written by a planner-on run resumes bit-exactly in
        a planner-off trainer: plan layout is not run state."""
        eager, log_eager, compiled, _ = runs
        ckpt = checkpoint_path(compiled.cfg.checkpoint_dir, 2)
        resumed = _trainer(data, str(tmp_path / "res-noplan"),
                           compile_step=True, mem_plan=False)
        log_res = resumed.train(resume_from=ckpt)
        assert_logs_identical(log_eager, log_res)
        assert_models_identical(eager.model, resumed.model)
        _assert_velocities_identical(eager, resumed)


class TestParallelReplayBitExact:
    """Level-scheduled multi-threaded replay across the full PruneTrain
    schedule — pruning, layer removal, batch growth, kill/resume — must be
    bit-identical to the serial compiled run (itself bit-identical to
    eager).  Replay order is pinned by the schedule's accumulation-order
    edges, so the thread count must never show up in the bits.
    """

    @pytest.fixture(scope="class")
    def parallel_run(self, data, tmp_path_factory):
        from repro.tensor import parallel as par
        par.STATS.reset()
        t = _trainer(data, str(tmp_path_factory.mktemp("parallel")),
                     compile_step=True, mem_plan=True,
                     parallel_replay=True, replay_workers=4)
        return t, t.train()

    def test_parallel_matches_eager_and_serial(self, runs, parallel_run):
        _, log_eager, compiled, log_serial = runs
        par_t, log_par = parallel_run
        assert_logs_identical(log_serial, log_par)
        assert_logs_identical(log_eager, log_par)
        assert_models_identical(compiled.model, par_t.model)
        _assert_velocities_identical(compiled, par_t)

    def test_parallel_replay_actually_ran(self, parallel_run):
        from repro.tensor import parallel as par
        assert par.STATS.schedules > 0
        assert par.STATS.replays > 0
        assert par.STATS.max_width >= 2
        assert par.STATS.thunks_run > par.STATS.levels_run

    def test_resume_across_parallel_serial_boundary(self, runs, data,
                                                    parallel_run, tmp_path):
        """A checkpoint written by the *parallel* run resumes bit-exactly
        in a *serial* trainer and vice versa: replay scheduling is not run
        state."""
        eager, log_eager, compiled, _ = runs
        par_t, _ = parallel_run
        # parallel checkpoint -> serial resume
        ckpt_p = checkpoint_path(par_t.cfg.checkpoint_dir, 2)
        res_s = _trainer(data, str(tmp_path / "res-serial"),
                         compile_step=True, parallel_replay=False)
        log_s = res_s.train(resume_from=ckpt_p)
        assert_logs_identical(log_eager, log_s)
        assert_models_identical(eager.model, res_s.model)
        _assert_velocities_identical(eager, res_s)
        # serial checkpoint -> parallel resume
        ckpt_s = checkpoint_path(compiled.cfg.checkpoint_dir, 2)
        res_p = _trainer(data, str(tmp_path / "res-parallel"),
                         compile_step=True, parallel_replay=True,
                         replay_workers=4)
        log_p = res_p.train(resume_from=ckpt_s)
        assert_logs_identical(log_eager, log_p)
        assert_models_identical(eager.model, res_p.model)
        _assert_velocities_identical(eager, res_p)
