"""Compiled stepping is bit-exact across a full PruneTrain run.

The acceptance bar for ``TrainerConfig(compile_step=True)``: a run that
prunes channels, removes a layer, grows the mini-batch, and is killed and
resumed from a format-v2 checkpoint mid-phase must produce *identical* bits
— every EpochRecord scalar, every parameter, every momentum buffer — to the
same run stepped eagerly.  Capture/recapture points (run start, each
reconfiguration, each batch-size change, resume) are exactly where the
eager and compiled executions may diverge if the plan machinery is wrong,
so the fixture is built to hit all of them (same dynamics as
tests/train/test_resume.py).
"""

import numpy as np
import pytest

from repro.costmodel import MemoryModel, iteration_memory_bytes
from repro.data import make_synthetic
from repro.distributed import DynamicBatchAdjuster
from repro.io import checkpoint_path
from repro.nn import resnet20
from repro.tensor.compile import STATS
from repro.train import PruneTrainConfig, PruneTrainTrainer

from .test_resume import assert_logs_identical, assert_models_identical


@pytest.fixture(scope="module")
def data():
    train = make_synthetic(10, 192, hw=8, noise=0.8, seed=0, name="t")
    val = make_synthetic(10, 96, hw=8, noise=0.8, seed=1, name="v")
    return train, val


def _trainer(data, ckpt_dir, compile_step):
    train, val = data
    model = resnet20(10, width_mult=0.375, input_hw=8, seed=0)
    # nudge one residual-path conv toward death so the first
    # reconfiguration also removes layers
    model.graph.conv_by_name("s2b1.conv1").conv.weight.data *= 0.02
    cfg = PruneTrainConfig(
        epochs=6, batch_size=32, augment=True, log_every=0,
        penalty_ratio=0.3, reconfig_interval=2, lambda_scale=400.0,
        threshold=None, zero_sparse=True,
        checkpoint_every=1, checkpoint_dir=ckpt_dir, checkpoint_keep=0,
        compile_step=compile_step)
    cap = iteration_memory_bytes(model.graph, 32) * 4
    adjuster = DynamicBatchAdjuster(MemoryModel(cap), granularity=8,
                                    max_batch=128)
    return PruneTrainTrainer(model, train, val, cfg,
                             batch_adjuster=adjuster,
                             track_convs=("s0b0.conv1",))


def _assert_velocities_identical(t1, t2):
    for (n, p1), (_, p2) in zip(t1.model.named_parameters(),
                                t2.model.named_parameters()):
        assert np.array_equal(t1.optimizer.state_for(p1),
                              t2.optimizer.state_for(p2)), f"{n} velocity"


class TestCompiledPruneTrainBitExact:
    @pytest.fixture(scope="class")
    def runs(self, data, tmp_path_factory):
        eager = _trainer(data, str(tmp_path_factory.mktemp("eager")),
                         compile_step=False)
        log_eager = eager.train()
        STATS.reset()
        compiled = _trainer(data, str(tmp_path_factory.mktemp("compiled")),
                            compile_step=True)
        log_compiled = compiled.train()
        return eager, log_eager, compiled, log_compiled

    def test_run_exercised_every_dynamic(self, runs):
        eager, log_eager, _, _ = runs
        assert eager.reports[0].channels_pruned > 0
        assert eager.reports[0].removed_layers > 0
        assert log_eager.records[1].batch_size > 32
        assert eager.lr_scale > 1.0

    def test_compiled_run_actually_replayed(self, runs):
        assert STATS.captures > 0
        assert STATS.replays > STATS.captures
        assert STATS.fallbacks == 0, STATS.last_fallback_reason

    def test_logs_params_velocity_identical(self, runs):
        eager, log_eager, compiled, log_compiled = runs
        assert_logs_identical(log_eager, log_compiled)
        assert_models_identical(eager.model, compiled.model)
        _assert_velocities_identical(eager, compiled)

    def test_kill_resume_compiled_matches_eager_full(self, runs, data,
                                                     tmp_path):
        """Kill the compiled run after epoch 2 (mid-phase: one
        reconfiguration and the batch growth already happened) and resume
        a fresh compiled trainer from its checkpoint: the stitched run
        must still match the uninterrupted eager run bit-for-bit."""
        eager, log_eager, compiled, _ = runs
        ckpt = checkpoint_path(compiled.cfg.checkpoint_dir, 2)
        resumed = _trainer(data, str(tmp_path / "resumed"),
                           compile_step=True)
        log_res = resumed.train(resume_from=ckpt)
        assert_logs_identical(log_eager, log_res)
        assert_models_identical(eager.model, resumed.model)
        _assert_velocities_identical(eager, resumed)
