"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.data import make_synthetic


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_train():
    """Small but learnable dataset reused across training tests."""
    return make_synthetic(10, 256, hw=8, noise=0.8, seed=0, name="tiny")


@pytest.fixture(scope="session")
def tiny_val():
    return make_synthetic(10, 128, hw=8, noise=0.8, seed=1, name="tiny-val")


def sparsify_space(graph, sid, kill, factor=1e-9):
    """Test helper: multiply all weights of channels ``kill`` of space ``sid``
    (in every member conv) by ``factor`` so they fall below threshold."""
    for node in graph.writers(sid):
        node.conv.weight.data[kill] *= factor
    for node in graph.readers(sid):
        node.conv.weight.data[:, kill] *= factor
