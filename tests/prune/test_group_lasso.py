"""Group-lasso regularizer: Eq. 2 structure, Eq. 3 coefficient setup,
subgradient correctness."""

import numpy as np
import pytest

from repro.nn import resnet20, vgg11
from repro.prune import GroupLasso

SMALL = dict(width_mult=0.25, input_hw=16)


class TestRawLoss:
    def test_matches_manual_sum(self):
        m = vgg11(10, **SMALL)
        gl = GroupLasso(m.graph)
        manual = 0.0
        for node in m.graph.active_convs():
            w = node.conv.weight.data
            out_n = np.sqrt((w ** 2).sum(axis=(1, 2, 3)))
            in_n = np.sqrt((w ** 2).sum(axis=(0, 2, 3)))
            manual += out_n.sum()
            if node.name != "conv0":  # first conv: input groups excluded
                manual += in_n.sum()
        assert gl.raw_loss() == pytest.approx(manual, rel=1e-6)

    def test_first_conv_input_excluded(self):
        """Paper: no lasso on the RGB input channels of the first conv."""
        m = vgg11(10, **SMALL)
        gl = GroupLasso(m.graph)
        base = gl.raw_loss()
        first = m.graph.conv_by_name("conv0")
        w = first.conv.weight.data
        # Scaling one *input* channel of conv0 changes its in-norms and also
        # out-norms; verify the in-norm part is not counted by comparing to
        # explicit recomputation.
        assert "conv0" in gl._first_conv_names
        assert base > 0

    def test_loss_zero_before_coefficient(self):
        m = vgg11(10, **SMALL)
        gl = GroupLasso(m.graph)
        assert gl.loss() == 0.0

    def test_size_scaling_ablation_changes_value(self):
        m = resnet20(10, **SMALL)
        a = GroupLasso(m.graph, per_group_size_scaling=False).raw_loss()
        b = GroupLasso(m.graph, per_group_size_scaling=True).raw_loss()
        assert b > a  # scaled by sqrt(group size) > 1


class TestCoefficientSetup:
    def test_eq3_ratio_holds_at_setup(self):
        """After set_coefficient, the Eq. 3 penalty ratio must equal target."""
        m = resnet20(10, **SMALL)
        gl = GroupLasso(m.graph)
        cls_loss = 2.30
        for target in (0.05, 0.1, 0.2, 0.25, 0.3):
            gl.set_coefficient(cls_loss, target)
            assert gl.penalty_ratio(cls_loss) == pytest.approx(target,
                                                               rel=1e-6)

    def test_lambda_monotone_in_ratio(self):
        m = resnet20(10, **SMALL)
        gl = GroupLasso(m.graph)
        lams = [gl.set_coefficient(2.3, r) for r in (0.05, 0.1, 0.2, 0.3)]
        assert all(a < b for a, b in zip(lams, lams[1:]))

    def test_invalid_ratio_raises(self):
        m = resnet20(10, **SMALL)
        gl = GroupLasso(m.graph)
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                gl.set_coefficient(2.3, bad)

    def test_add_gradients_requires_coefficient(self):
        m = resnet20(10, **SMALL)
        gl = GroupLasso(m.graph)
        with pytest.raises(RuntimeError):
            gl.add_gradients()


class TestSubgradient:
    def test_matches_numerical(self):
        m = vgg11(10, width_mult=0.125, input_hw=8)
        for p in m.parameters():  # float64 so finite differences resolve
            p.data = p.data.astype(np.float64)
        gl = GroupLasso(m.graph)
        gl.set_coefficient(2.3, 0.2)
        for p in m.parameters():
            p.grad = None
        gl.add_gradients()
        node = m.graph.conv_by_name("conv2")
        w = node.conv.weight
        g = w.grad.copy()
        rng = np.random.default_rng(0)
        eps = 1e-5
        flat = w.data.reshape(-1)
        for i in rng.integers(0, flat.size, size=8):
            orig = flat[i]
            flat[i] = orig + eps
            lp = gl.loss()
            flat[i] = orig - eps
            lm = gl.loss()
            flat[i] = orig
            num = (lp - lm) / (2 * eps)
            assert g.reshape(-1)[i] == pytest.approx(num, rel=2e-2, abs=1e-6)

    def test_zero_group_has_zero_subgradient(self):
        m = vgg11(10, width_mult=0.125, input_hw=8)
        node = m.graph.conv_by_name("conv3")
        node.conv.weight.data[0] = 0.0  # zero an output channel
        gl = GroupLasso(m.graph)
        gl.set_coefficient(2.3, 0.2)
        for p in m.parameters():
            p.grad = None
        gl.add_gradients()
        g = node.conv.weight.grad
        # the zeroed output channel's weights get gradient only from their
        # input-channel groups, which are tiny contributions; the out-group
        # subgradient must be exactly zero -> check no NaN/inf anywhere
        assert np.isfinite(g).all()

    def test_gradient_shrinks_norms(self):
        """A pure-lasso gradient step must decrease every group norm."""
        m = vgg11(10, width_mult=0.125, input_hw=8)
        gl = GroupLasso(m.graph)
        gl.set_coefficient(2.3, 0.2)
        before = gl.raw_loss()
        for p in m.parameters():
            p.grad = None
        gl.add_gradients()
        for node in m.graph.active_convs():
            w = node.conv.weight
            w.data -= 0.01 * w.grad
        assert gl.raw_loss() < before

    def test_accumulates_into_existing_grad(self):
        m = vgg11(10, width_mult=0.125, input_hw=8)
        gl = GroupLasso(m.graph)
        gl.set_coefficient(2.3, 0.2)
        node = m.graph.conv_by_name("conv1")
        node.conv.weight.grad = np.ones_like(node.conv.weight.data)
        gl.add_gradients()
        assert (node.conv.weight.grad != 1.0).any()

    def test_per_layer_norm_summary(self):
        m = resnet20(10, **SMALL)
        gl = GroupLasso(m.graph)
        summary = gl.per_layer_norm_summary()
        assert "stem" in summary
        assert all(v[0] >= 0 and v[1] > 0 for v in summary.values())
