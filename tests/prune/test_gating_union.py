"""Channel gating vs channel union: plans, execution equivalence, FLOPs."""

import numpy as np
import pytest

from repro.costmodel import conv_dims_gating, conv_dims_union, inference_flops
from repro.nn import resnet20, resnet50_cifar
from repro.prune import (GatedPathRunner, UnionPathRunner, all_path_plans,
                         path_plan, prune_and_reconfigure,
                         zero_sparsified_groups)
from repro.tensor import Tensor, no_grad

SMALL = dict(width_mult=0.25, input_hw=16)


def sparsify_path_interior(model, path_name, frac=0.5, seed=0):
    """Sparsify interior channels of one residual path only (both sides)."""
    rng = np.random.default_rng(seed)
    g = model.graph
    path = next(p for p in g.paths.values() if p.name == path_name)
    nodes = [g.conv_by_name(n) for n in path.conv_names]
    for a, b in zip(nodes[:-1], nodes[1:]):
        size = a.conv.out_channels
        kill = rng.random(size) < frac
        kill[0] = False
        a.conv.weight.data[kill] = 0.0
        b.conv.weight.data[:, kill] = 0.0
        if a.bn is not None:
            a.bn.weight.data[kill] = 0.0
            a.bn.bias.data[kill] = 0.0
    return path


class TestPathPlan:
    def test_dense_path_plan_is_identity(self):
        m = resnet50_cifar(10, **SMALL)
        path = next(iter(m.graph.paths.values()))
        plan = path_plan(m.graph, path)
        for cp, name in zip(plan.convs, path.conv_names):
            node = m.graph.conv_by_name(name)
            assert cp.in_idx.size == node.conv.in_channels
            assert cp.out_idx.size == node.conv.out_channels

    def test_interior_intersection(self):
        m = resnet50_cifar(10, **SMALL)
        path = sparsify_path_interior(m, "s0b1", frac=0.5)
        plan = path_plan(m.graph, path)
        n0 = m.graph.conv_by_name(path.conv_names[0])
        assert plan.convs[0].out_idx.size < n0.conv.out_channels
        # conv2 input must equal conv1 output under gating
        np.testing.assert_array_equal(plan.convs[0].out_idx,
                                      plan.convs[1].in_idx)

    def test_all_path_plans_skips_inactive(self):
        m = resnet50_cifar(10, **SMALL)
        path = next(iter(m.graph.paths.values()))
        path.block.active = False
        plans = all_path_plans(m.graph)
        assert path.pid not in plans


class TestRunners:
    def test_gating_equals_union_when_sparse_lanes_zero(self, rng):
        """With sparse lanes hard-zeroed (incl. BN params), gating's output
        must match union's — gating only skips channels that contribute 0."""
        m = resnet50_cifar(10, **SMALL)
        m.eval()
        path = sparsify_path_interior(m, "s0b1", frac=0.5)
        zero_sparsified_groups(m.graph)
        g = m.graph
        gated = GatedPathRunner(g, path)
        union = UnionPathRunner(g, path)
        cin = g.spaces[g.conv_by_name(path.conv_names[0]).in_space].size
        x = Tensor(rng.normal(size=(2, cin, 8, 8)).astype(np.float32))
        with no_grad():
            yg = gated.forward(x).data
            yu = union.forward(x).data
        np.testing.assert_allclose(yg, yu, rtol=1e-4, atol=1e-5)

    def test_union_runner_matches_block_path_math(self, rng):
        m = resnet50_cifar(10, **SMALL)
        m.eval()
        path = next(iter(m.graph.paths.values()))
        union = UnionPathRunner(m.graph, path)
        cin = m.graph.spaces[
            m.graph.conv_by_name(path.conv_names[0]).in_space].size
        x = Tensor(rng.normal(size=(1, cin, 8, 8)).astype(np.float32))
        with no_grad():
            y = union.forward(x)
        assert np.isfinite(y.data).all()


class TestFlopsComparison:
    def test_gating_flops_leq_union(self):
        """Fig. 6: gating removes the union's redundant lanes, so its FLOPs
        are <= union's, with a small gap (a few percent)."""
        m = resnet50_cifar(10, **SMALL)
        for name in ("s0b1", "s1b2", "s2b0"):
            sparsify_path_interior(m, name, frac=0.4, seed=hash(name) % 100)
        fu = inference_flops(m.graph, mode="union")
        fg = inference_flops(m.graph, mode="gating")
        fd = inference_flops(m.graph, mode="current")
        assert fg <= fu <= fd
        assert fg > 0.5 * fu  # the gap is small, not catastrophic

    def test_dims_union_vs_gating(self):
        m = resnet50_cifar(10, **SMALL)
        path = sparsify_path_interior(m, "s0b1", frac=0.5)
        du = conv_dims_union(m.graph)
        dg = conv_dims_gating(m.graph)
        name = path.conv_names[0]
        node = m.graph.conv_by_name(name)
        # interior channels: union keeps them (writer sparse, reader sparse
        # -> actually both agree here so union prunes them too); check
        # consistency instead: gating dims <= union dims
        assert dg[name][1] <= du[name][1]

    def test_union_surgery_matches_union_dims_prediction(self):
        """inference_flops(mode='union') must predict post-surgery FLOPs."""
        m = resnet50_cifar(10, **SMALL)
        for name in ("s0b1", "s3b1"):
            sparsify_path_interior(m, name, frac=0.5, seed=1)
        predicted = inference_flops(m.graph, mode="union")
        prune_and_reconfigure(m)
        actual = inference_flops(m.graph, mode="current")
        assert actual == pytest.approx(predicted, rel=1e-6)
