"""Channel trajectory tracker (Fig. 4 machinery) and the dead-set exporter."""

import numpy as np
import pytest

from repro.nn import resnet20
from repro.prune import (ChannelTracker, DeadSetExporter, RevivalStats,
                         prune_and_reconfigure)

SMALL = dict(width_mult=0.25, input_hw=16)


class TestTracker:
    def test_records_max_abs_per_channel(self):
        m = resnet20(10, **SMALL)
        t = ChannelTracker(m.graph, ["s0b0.conv1"])
        t.record()
        mat = t.matrix("s0b0.conv1")
        node = m.graph.conv_by_name("s0b0.conv1")
        expect = np.abs(node.conv.weight.data).max(axis=(1, 2, 3))
        np.testing.assert_allclose(mat[0], expect, rtol=1e-6)

    def test_matrix_shape_grows_with_epochs(self):
        m = resnet20(10, **SMALL)
        t = ChannelTracker(m.graph, ["s0b0.conv1"])
        for _ in range(5):
            t.record()
        assert t.matrix("s0b0.conv1").shape[0] == 5

    def test_pruned_channels_carry_last_value(self):
        m = resnet20(10, **SMALL)
        name = "s0b0.conv1"
        t = ChannelTracker(m.graph, [name])
        node = m.graph.conv_by_name(name)
        k = node.conv.out_channels
        t.record()
        # sparsify channel 1 on both sides and prune
        node.conv.weight.data[1] = 0.0
        reader = m.graph.readers(node.out_space)[0]
        reader.conv.weight.data[:, 1] = 0.0
        t.record()

        def on_masks(masks):
            keep = masks[node.out_space]
            t.note_reconfigure(name, keep)

        prune_and_reconfigure(m, on_masks=on_masks)
        t.record()
        mat = t.matrix(name)
        assert mat.shape[1] == k  # original indexing preserved
        assert mat[2, 1] == mat[1, 1]  # pruned channel frozen at last value
        assert mat[2, 1] < 1e-4

    def test_revival_stats_no_revival(self):
        m = resnet20(10, **SMALL)
        name = "s0b0.conv1"
        t = ChannelTracker(m.graph, [name])
        node = m.graph.conv_by_name(name)
        t.record()
        node.conv.weight.data[2] = 0.0
        t.record()
        t.record()
        stats = t.revival_stats(name)
        assert stats.ever_sparse == 1
        assert stats.revived == 0
        assert stats.revival_rate == 0.0

    def test_revival_stats_detects_revival(self):
        m = resnet20(10, **SMALL)
        name = "s0b0.conv1"
        t = ChannelTracker(m.graph, [name])
        node = m.graph.conv_by_name(name)
        node.conv.weight.data[3] = 0.0
        t.record()
        node.conv.weight.data[3] = 0.5  # revives strongly
        t.record()
        stats = t.revival_stats(name)
        assert stats.revived == 1
        assert stats.max_post_sparse_value == pytest.approx(0.5)

    def test_empty_history(self):
        m = resnet20(10, **SMALL)
        t = ChannelTracker(m.graph, ["s0b0.conv1"])
        stats = t.revival_stats("s0b0.conv1")
        assert stats.channels == 0
        assert t.matrix("s0b0.conv1").shape[0] == 0

    def test_empty_history_stats_never_divide_by_zero(self):
        """Regression: revival_stats with no recorded intervals must return
        an empty RevivalStats whose per-interval rate is 0.0, not raise."""
        m = resnet20(10, **SMALL)
        t = ChannelTracker(m.graph, ["s0b0.conv1"])
        stats = t.revival_stats("s0b0.conv1")
        assert stats == RevivalStats(0, 0, 0, 0.0, intervals=0)
        assert stats.intervals == 0
        assert stats.revivals_per_interval == 0.0
        assert stats.revival_rate == 0.0

    def test_intervals_counted_and_rate_normalized(self):
        m = resnet20(10, **SMALL)
        name = "s0b0.conv1"
        t = ChannelTracker(m.graph, [name])
        node = m.graph.conv_by_name(name)
        node.conv.weight.data[3] = 0.0
        t.record()
        node.conv.weight.data[3] = 0.5
        t.record()
        stats = t.revival_stats(name)
        assert stats.intervals == 2
        assert stats.revivals_per_interval == pytest.approx(0.5)


class TestDeadSetExporter:
    def _kill(self, node, ch):
        node.conv.weight.data[ch] = 0.0

    def _masks_for(self, scanned, name):
        for node, si, so in scanned:
            if node.name == name:
                return si, so
        raise KeyError(name)

    def test_hysteresis_delays_one_scan(self):
        m = resnet20(10, **SMALL)
        name = "s0b0.conv1"
        node = m.graph.conv_by_name(name)
        self._kill(node, 2)
        ex = DeadSetExporter(hysteresis=2)
        _, so1 = self._masks_for(ex.scan(m.graph, 1e-4), name)
        assert not so1.any()            # first sighting: not yet stable
        _, so2 = self._masks_for(ex.scan(m.graph, 1e-4), name)
        assert so2[2] and so2.sum() == 1

    def test_not_exactly_zero_is_never_exported(self):
        m = resnet20(10, **SMALL)
        name = "s0b0.conv1"
        node = m.graph.conv_by_name(name)
        node.conv.weight.data[2] *= 1e-9   # below threshold but nonzero
        ex = DeadSetExporter(hysteresis=2)
        ex.scan(m.graph, 1e-4)
        _, so = self._masks_for(ex.scan(m.graph, 1e-4), name)
        assert not so[2]

    def test_history_resets_on_channel_count_change(self):
        m = resnet20(10, **SMALL)
        name = "s0b0.conv1"
        node = m.graph.conv_by_name(name)
        self._kill(node, 2)
        ex = DeadSetExporter(hysteresis=2)
        ex.scan(m.graph, 1e-4)
        # simulate surgery: shrink the weight by one output channel
        node.conv.weight.data = node.conv.weight.data[1:].copy()
        scanned = ex.scan(m.graph, 1e-4)
        _, so = self._masks_for(scanned, name)
        assert so.size == node.conv.weight.data.shape[0]
        assert not so.any()             # fresh history: nothing stable yet

    def test_current_reports_without_rescanning(self):
        m = resnet20(10, **SMALL)
        name = "s0b0.conv1"
        node = m.graph.conv_by_name(name)
        self._kill(node, 1)
        ex = DeadSetExporter(hysteresis=2)
        ex.scan(m.graph, 1e-4)
        ex.scan(m.graph, 1e-4)
        hist_len = {n: len(h) for n, h in ex._hist.items()}
        _, so = self._masks_for(ex.current(m.graph), name)
        assert so[1]
        assert {n: len(h) for n, h in ex._hist.items()} == hist_len
