"""Reconfiguration surgery: dimension consistency, state carry-over,
function preservation, layer removal."""

import numpy as np
import pytest

from repro.nn import resnet20, resnet50_cifar, vgg11
from repro.optim import SGD
from repro.prune import (prune_and_reconfigure, remove_dead_paths,
                         space_keep_masks, zero_sparsified_groups)
from repro.tensor import Tensor, no_grad

from ..conftest import sparsify_space

SMALL = dict(width_mult=0.25, input_hw=16)


def random_sparsify(model, frac=0.4, seed=0):
    """Consistently sparsify ``frac`` of each non-frozen space's channels."""
    rng = np.random.default_rng(seed)
    g = model.graph
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < frac
        kill[0] = False
        sparsify_space(g, sid, kill)


class TestSurgery:
    @pytest.mark.parametrize("factory", [resnet20, resnet50_cifar, vgg11])
    def test_graph_valid_after_surgery(self, factory):
        m = factory(10, **SMALL)
        random_sparsify(m)
        prune_and_reconfigure(m)
        m.graph.validate()

    @pytest.mark.parametrize("factory", [resnet20, resnet50_cifar, vgg11])
    def test_forward_works_after_surgery(self, factory, rng):
        m = factory(10, **SMALL)
        random_sparsify(m)
        prune_and_reconfigure(m)
        m.eval()
        with no_grad():
            out = m(Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32)))
        assert out.shape == (2, 10)
        assert np.isfinite(out.data).all()

    def test_backward_works_after_surgery(self, rng):
        from repro.tensor import functional as F
        m = resnet20(10, **SMALL)
        random_sparsify(m)
        opt = SGD(m.parameters(), 0.1)
        prune_and_reconfigure(m, opt)
        logits = m(Tensor(rng.normal(size=(4, 3, 16, 16)).astype(np.float32)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        loss.backward()
        opt.step()  # shapes must all be consistent

    def test_params_strictly_reduced(self):
        m = resnet50_cifar(10, **SMALL)
        before = m.num_parameters()
        random_sparsify(m)
        rep = prune_and_reconfigure(m)
        assert rep.params_after < before
        assert rep.params_before == before
        assert rep.channels_pruned > 0

    def test_function_preserved_when_pruned_channels_exactly_zero(self, rng):
        """Removing exactly-zero channels must not change the network
        function (up to BN beta effects, which are also zeroed here)."""
        m = vgg11(10, **SMALL)
        g = m.graph
        # zero channels AND their BN gamma/beta so removal is exact
        kill_per_space = {}
        rngl = np.random.default_rng(3)
        for sid, sp in g.spaces.items():
            if sp.frozen:
                continue
            kill = rngl.random(sp.size) < 0.3
            kill[0] = False
            kill_per_space[sid] = kill
            sparsify_space(g, sid, kill, factor=0.0)
        for node in g.active_convs():
            kill = kill_per_space.get(node.out_space)
            if kill is not None and node.bn is not None:
                node.bn.weight.data[kill] = 0.0
                node.bn.bias.data[kill] = 0.0
        x = rng.normal(size=(4, 3, 16, 16)).astype(np.float32)
        m.eval()
        with no_grad():
            before = m(Tensor(x)).data.copy()
        prune_and_reconfigure(m)
        m.eval()
        with no_grad():
            after = m(Tensor(x)).data
        np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-5)

    def test_momentum_sliced_with_weights(self):
        m = vgg11(10, **SMALL)
        opt = SGD(m.parameters(), 0.1, momentum=0.9)
        # fabricate momentum equal to weights so slicing is checkable
        for p in opt.params:
            opt.set_state_for(p, p.data.copy())
        random_sparsify(m)
        prune_and_reconfigure(m, opt)
        for node in m.graph.active_convs():
            w = node.conv.weight
            buf = opt.state_for(w)
            assert buf.shape == w.data.shape
            np.testing.assert_allclose(buf, w.data)

    def test_bn_running_stats_sliced(self):
        m = vgg11(10, **SMALL)
        g = m.graph
        node = g.conv_by_name("conv2")
        node.bn.running_mean[:] = np.arange(node.bn.num_features)
        kill = np.zeros(g.spaces[node.out_space].size, dtype=bool)
        kill[2] = True
        sparsify_space(g, node.out_space, kill)
        prune_and_reconfigure(m)
        assert node.bn.num_features == node.conv.out_channels
        assert 2.0 not in node.bn.running_mean

    def test_optimizer_param_list_refreshed(self):
        m = resnet50_cifar(10, **SMALL)
        opt = SGD(m.parameters(), 0.1)
        # kill a whole path -> its params leave the model
        node = m.graph.conv_by_name("s1b1.conv2")
        node.conv.weight.data[:] = 0.0
        prune_and_reconfigure(m, opt)
        assert len(opt.params) == len(m.parameters())

    def test_optimizer_state_of_removed_layers_purged(self):
        """Layer removal must purge momentum/scratch entries of departed
        parameters — stale id-keyed entries leak and can be inherited by a
        later parameter allocated at a recycled id."""
        m = resnet50_cifar(10, **SMALL)
        opt = SGD(m.parameters(), 0.1, momentum=0.9)
        for p in opt.params:
            p.grad = np.ones_like(p.data)
        opt.step()  # populate velocity + scratch for every param
        assert len(opt._velocity) == len(m.parameters())
        m.graph.conv_by_name("s2b1.conv1").conv.weight.data[:] = 0.0
        prune_and_reconfigure(m, opt)
        live = {id(p) for p in m.parameters()}
        assert set(opt._velocity) <= live
        assert set(opt._scratch) <= live

    def test_idempotent_when_nothing_sparse(self):
        m = resnet20(10, **SMALL)
        before = m.num_parameters()
        rep = prune_and_reconfigure(m)
        assert rep.params_after == before
        assert rep.channels_pruned == 0

    def test_frozen_spaces_untouched(self):
        m = vgg11(10, **SMALL)
        m.graph.conv_by_name("conv0").conv.weight.data[:, 1] = 0.0
        prune_and_reconfigure(m)
        assert m.graph.conv_by_name("conv0").conv.in_channels == 3
        assert m.fc.out_features == 10


class TestLayerRemoval:
    def test_dead_path_removed(self):
        m = resnet50_cifar(10, **SMALL)
        node = m.graph.conv_by_name("s2b1.conv1")
        node.conv.weight.data[:] = 0.0
        removed = remove_dead_paths(m.graph)
        assert "s2b1" in removed
        assert m.graph.removed_layers() == 3

    def test_forward_after_path_removal(self, rng):
        m = resnet50_cifar(10, **SMALL)
        m.graph.conv_by_name("s2b1.conv1").conv.weight.data[:] = 0.0
        prune_and_reconfigure(m)
        m.eval()
        with no_grad():
            out = m(Tensor(rng.normal(size=(1, 3, 16, 16)).astype(np.float32)))
        assert np.isfinite(out.data).all()

    def test_removed_params_leave_model(self):
        m = resnet50_cifar(10, **SMALL)
        before = m.num_parameters()
        m.graph.conv_by_name("s2b1.conv1").conv.weight.data[:] = 0.0
        prune_and_reconfigure(m)
        assert m.num_parameters() < before

    def test_remove_layers_flag_off(self):
        m = resnet50_cifar(10, **SMALL)
        m.graph.conv_by_name("s2b1.conv1").conv.weight.data[:] = 0.0
        rep = prune_and_reconfigure(m, remove_layers=False)
        assert rep.removed_layers == 0

    def test_projection_convs_never_removed(self):
        m = resnet50_cifar(10, **SMALL)
        proj = m.graph.conv_by_name("s1b0.proj")
        proj.conv.weight.data[:] = 1e-9  # fully sparse projection
        prune_and_reconfigure(m)
        # proj is trunk (path=None): still active (possibly 1-channel guard)
        assert m.graph._active(proj)

    def test_double_removal_is_safe(self):
        m = resnet50_cifar(10, **SMALL)
        m.graph.conv_by_name("s2b1.conv1").conv.weight.data[:] = 0.0
        remove_dead_paths(m.graph)
        removed_again = remove_dead_paths(m.graph)
        assert removed_again == []


class TestZeroSparsifiedGroups:
    def test_zeroes_below_threshold(self):
        m = vgg11(10, **SMALL)
        node = m.graph.conv_by_name("conv3")
        node.conv.weight.data[1] = 5e-5
        n = zero_sparsified_groups(m.graph, threshold=1e-4)
        assert n >= 1
        np.testing.assert_array_equal(node.conv.weight.data[1], 0.0)

    def test_momentum_zeroed_too(self):
        m = vgg11(10, **SMALL)
        opt = SGD(m.parameters(), 0.1, momentum=0.9)
        node = m.graph.conv_by_name("conv3")
        node.conv.weight.data[1] = 5e-5
        opt.set_state_for(node.conv.weight,
                          np.ones_like(node.conv.weight.data))
        zero_sparsified_groups(m.graph, threshold=1e-4, optimizer=opt)
        np.testing.assert_array_equal(opt.state_for(node.conv.weight)[1], 0.0)
