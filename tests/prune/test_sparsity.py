"""Sparsity analysis: channel masks, union rule, density report."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import resnet20, resnet50_cifar, vgg11
from repro.prune import (conv_sparsity, density_report,
                         model_channel_sparsity, space_keep_masks)

from ..conftest import sparsify_space

SMALL = dict(width_mult=0.25, input_hw=16)


class TestConvSparsity:
    def test_fresh_model_dense(self):
        m = vgg11(10, **SMALL)
        for node in m.graph.active_convs():
            sp = conv_sparsity(node)
            assert not sp.in_sparse.any()
            assert not sp.out_sparse.any()

    def test_detects_zeroed_out_channel(self):
        m = vgg11(10, **SMALL)
        node = m.graph.conv_by_name("conv2")
        node.conv.weight.data[3] = 0.0
        sp = conv_sparsity(node)
        assert sp.out_sparse[3]
        assert sp.out_sparse.sum() == 1

    def test_detects_zeroed_in_channel(self):
        m = vgg11(10, **SMALL)
        node = m.graph.conv_by_name("conv2")
        node.conv.weight.data[:, 5] = 0.0
        sp = conv_sparsity(node)
        assert sp.in_sparse[5]

    def test_threshold_respected(self):
        m = vgg11(10, **SMALL)
        node = m.graph.conv_by_name("conv1")
        node.conv.weight.data[0] = 5e-3
        assert not conv_sparsity(node, threshold=1e-4).out_sparse[0]
        assert conv_sparsity(node, threshold=1e-2).out_sparse[0]


class TestSpaceKeepMasks:
    def test_frozen_spaces_fully_kept(self):
        m = vgg11(10, **SMALL)
        masks = space_keep_masks(m.graph)
        for sid, space in m.graph.spaces.items():
            if space.frozen:
                assert masks[sid].all()

    def test_intersection_rule_plain_chain(self):
        """VGG: a channel prunes only when writer out AND reader in agree."""
        m = vgg11(10, **SMALL)
        g = m.graph
        n1 = g.conv_by_name("conv1")
        sid = n1.out_space
        # only writer side sparse -> kept
        n1.conv.weight.data[2] = 0.0
        assert space_keep_masks(g)[sid][2]
        # both sides sparse -> pruned
        reader = g.readers(sid)[0]
        reader.conv.weight.data[:, 2] = 0.0
        assert not space_keep_masks(g)[sid][2]

    def test_union_rule_junction(self):
        """ResNet junction: every member must agree before pruning."""
        m = resnet20(10, **SMALL)
        g = m.graph
        junction = next(sid for sid in g.spaces if len(g.writers(sid)) > 2)
        members_w = g.writers(junction)
        members_r = g.readers(junction)
        ch = 1
        # all but one member sparse -> still kept (union keeps it)
        for node in members_w[:-1]:
            node.conv.weight.data[ch] = 0.0
        for node in members_r:
            node.conv.weight.data[:, ch] = 0.0
        assert space_keep_masks(g)[junction][ch]
        # last member agrees -> pruned
        members_w[-1].conv.weight.data[ch] = 0.0
        assert not space_keep_masks(g)[junction][ch]

    def test_connectivity_guard_keeps_one_channel(self):
        m = vgg11(10, **SMALL)
        g = m.graph
        node = g.conv_by_name("conv3")
        sid = node.out_space
        sparsify_space(g, sid, np.ones(g.spaces[sid].size, dtype=bool))
        keep = space_keep_masks(g)[sid]
        assert keep.sum() == 1

    def test_linear_reader_does_not_veto(self):
        """FC columns follow the channel space; they cannot keep it alive."""
        m = vgg11(10, **SMALL)
        g = m.graph
        last_conv = g.convs[-1]
        sid = last_conv.out_space
        assert g.linear_readers(sid)
        kill = np.zeros(g.spaces[sid].size, dtype=bool)
        kill[4] = True
        sparsify_space(g, sid, kill)
        assert not space_keep_masks(g)[sid][4]


class TestDensityReport:
    def test_fresh_model_fully_dense(self):
        m = resnet20(10, **SMALL)
        rep = density_report(m.graph)
        assert all(d == pytest.approx(1.0) for d in rep.channel_density)
        assert all(d > 0.95 for d in rep.weight_density)

    def test_sparse_channels_lower_density(self):
        m = vgg11(10, **SMALL)
        node = m.graph.conv_by_name("conv4")
        k = node.conv.out_channels
        node.conv.weight.data[: k // 2] = 0.0
        rep = density_report(m.graph)
        i = rep.layer_names.index("conv4")
        assert rep.channel_density[i] == pytest.approx(
            1.0 * (1 - (k // 2) / k), rel=1e-6)
        assert rep.weight_density[i] < 0.6

    def test_includes_fc(self):
        m = vgg11(10, **SMALL)
        rep = density_report(m.graph)
        assert "fc" in rep.layer_names

    def test_model_channel_sparsity_range(self):
        m = resnet20(10, **SMALL)
        assert model_channel_sparsity(m.graph) == 0.0
        for node in m.graph.active_convs():
            node.conv.weight.data[:] = 0.0
        assert model_channel_sparsity(m.graph) == 1.0


@given(st.integers(0, 2 ** 12 - 1))
@settings(max_examples=30, deadline=None)
def test_property_union_mask_is_and_of_members(pattern):
    """For any sparsity pattern applied to a junction's members, the keep
    mask equals NOT(AND of all members' sparsity) with the >=1 guard."""
    m = resnet20(10, width_mult=0.125, input_hw=8)
    g = m.graph
    junction = next(sid for sid in g.spaces if len(g.writers(sid)) > 2)
    size = g.spaces[junction].size
    members = g.writers(junction) + g.readers(junction)
    bits = np.array([(pattern >> i) & 1 for i in range(size)], dtype=bool)
    expected_prunable = np.ones(size, dtype=bool)
    rngl = np.random.default_rng(pattern)
    for node in members:
        # each member sparsifies `bits` channels plus maybe extra
        extra = rngl.random(size) < 0.2
        member_sparse = bits | extra
        if node.out_space == junction:
            node.conv.weight.data[member_sparse] = 0.0
        else:
            node.conv.weight.data[:, member_sparse] = 0.0
        expected_prunable &= member_sparse
    keep = space_keep_masks(g)[junction]
    expect_keep = ~expected_prunable
    if not expect_keep.any():
        expect_keep[0] = True
    np.testing.assert_array_equal(keep, expect_keep)
