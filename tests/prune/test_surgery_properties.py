"""Property-based tests of the reconfiguration surgery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import inference_flops
from repro.nn import resnet20, vgg11
from repro.optim import SGD
from repro.prune import prune_and_reconfigure, space_keep_masks
from repro.tensor import Tensor, no_grad


def _apply_kills(graph, kills):
    for sid, kill in kills.items():
        for node in graph.writers(sid):
            node.conv.weight.data[kill] = 0.0
        for node in graph.readers(sid):
            node.conv.weight.data[:, kill] = 0.0


@given(st.integers(0, 10_000))
@settings(max_examples=12, deadline=None)
def test_surgery_invariants_random_patterns(seed):
    """For random consistent sparsity patterns: graph stays valid, params
    never grow, forward stays finite, FLOPs prediction matches surgery."""
    rng = np.random.default_rng(seed)
    model = vgg11(10, width_mult=0.25, input_hw=8, seed=0)
    g = model.graph
    kills = {}
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < rng.uniform(0.0, 0.7)
        kill[0] = False
        kills[sid] = kill
    _apply_kills(g, kills)
    predicted = inference_flops(g, mode="union")
    params_before = model.num_parameters()
    prune_and_reconfigure(model)
    g.validate()
    assert model.num_parameters() <= params_before
    assert inference_flops(g) == pytest.approx(predicted, rel=1e-6)
    model.eval()
    with no_grad():
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))
                           .astype(np.float32)))
    assert np.isfinite(out.data).all()


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_momentum_alignment_random_patterns(seed):
    """Momentum buffers always mirror their parameter shapes after surgery."""
    rng = np.random.default_rng(seed)
    model = resnet20(10, width_mult=0.25, input_hw=8, seed=1)
    opt = SGD(model.parameters(), 0.1, momentum=0.9)
    for p in opt.params:
        opt.set_state_for(p, rng.normal(size=p.data.shape)
                          .astype(np.float32))
    g = model.graph
    kills = {}
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < 0.5
        kill[0] = False
        kills[sid] = kill
    _apply_kills(g, kills)
    prune_and_reconfigure(model, opt)
    for p in model.parameters():
        buf = opt.state_for(p)
        if buf is not None:
            assert buf.shape == p.data.shape


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_masks_monotone_in_sparsity(seed):
    """Adding more sparsity never keeps *more* channels."""
    rng = np.random.default_rng(seed)
    model = vgg11(10, width_mult=0.25, input_hw=8, seed=2)
    g = model.graph
    kills1 = {}
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < 0.3
        kill[0] = False
        kills1[sid] = kill
    _apply_kills(g, kills1)
    keep1 = {sid: m.sum() for sid, m in space_keep_masks(g).items()}
    # extend the sparsity pattern
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        extra = rng.random(sp.size) < 0.3
        extra[0] = False
        kills1[sid] |= extra
    _apply_kills(g, kills1)
    keep2 = {sid: m.sum() for sid, m in space_keep_masks(g).items()}
    for sid in keep1:
        assert keep2[sid] <= keep1[sid]
