"""Synthetic datasets, loader, and augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (Augmenter, DataLoader, Dataset, cifar10s, cifar100s,
                        imagenet_s, make_synthetic)


class TestSynthetic:
    def test_shapes_and_labels(self):
        ds = make_synthetic(10, 100, hw=16)
        assert ds.x.shape == (100, 3, 16, 16)
        assert ds.y.shape == (100,)
        assert ds.x.dtype == np.float32
        assert set(np.unique(ds.y)) <= set(range(10))

    def test_deterministic(self):
        a = make_synthetic(5, 50, hw=8, seed=3)
        b = make_synthetic(5, 50, hw=8, seed=3)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_seed_changes_data(self):
        a = make_synthetic(5, 50, hw=8, seed=3)
        b = make_synthetic(5, 50, hw=8, seed=4)
        assert not np.array_equal(a.x, b.x)

    def test_standardized(self):
        ds = make_synthetic(10, 500, hw=16)
        np.testing.assert_allclose(ds.x.mean(axis=(0, 2, 3)), 0, atol=1e-4)
        np.testing.assert_allclose(ds.x.std(axis=(0, 2, 3)), 1, atol=1e-3)

    def test_classes_are_separable(self):
        """A nearest-prototype classifier beats chance by a wide margin —
        the task must be learnable for the training experiments to work."""
        ds = make_synthetic(10, 400, hw=16, noise=1.0, seed=0)
        protos = np.stack([ds.x[ds.y == k].mean(axis=0)
                           for k in range(10)])
        flat = ds.x.reshape(len(ds.x), -1)
        pf = protos.reshape(10, -1)
        pred = ((flat[:, None, :] - pf[None]) ** 2).sum(-1).argmin(1)
        assert (pred == ds.y).mean() > 0.5

    def test_prototypes_shared_across_sample_seeds(self):
        """Train/val splits (different sample seeds) must share class
        prototypes, or the task is unlearnable across splits: per-class
        means of two splits must correlate strongly."""
        a = make_synthetic(5, 400, hw=12, noise=0.8, seed=0)
        b = make_synthetic(5, 400, hw=12, noise=0.8, seed=99)
        for k in range(5):
            ma = a.x[a.y == k].mean(axis=0).reshape(-1)
            mb = b.x[b.y == k].mean(axis=0).reshape(-1)
            corr = np.corrcoef(ma, mb)[0, 1]
            assert corr > 0.5, f"class {k}: prototype corr {corr:.2f}"

    def test_class_seed_changes_prototypes(self):
        a = make_synthetic(5, 50, hw=8, seed=0, class_seed=1)
        b = make_synthetic(5, 50, hw=8, seed=0, class_seed=2)
        assert not np.array_equal(a.x, b.x)

    def test_subset(self):
        ds = make_synthetic(5, 50, hw=8)
        sub = ds.subset(10)
        assert len(sub) == 10
        np.testing.assert_array_equal(sub.x, ds.x[:10])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 1, 2, 2)), np.zeros(2, dtype=np.int64), 2)

    @pytest.mark.parametrize("fn,classes", [(cifar10s, 10), (cifar100s, 100),
                                            (imagenet_s, 200)])
    def test_presets(self, fn, classes):
        train, val = fn(n_train=64, n_val=32)
        assert train.num_classes == classes
        assert len(train) == 64 and len(val) == 32


class TestDataLoader:
    def test_covers_dataset_once(self):
        ds = make_synthetic(5, 100, hw=8)
        loader = DataLoader(ds, 32, shuffle=False)
        seen = sum(len(y) for _, y in loader)
        assert seen == 100

    def test_drop_last(self):
        ds = make_synthetic(5, 100, hw=8)
        loader = DataLoader(ds, 32, drop_last=True)
        sizes = [len(y) for _, y in loader]
        assert sizes == [32, 32, 32]

    def test_batches_per_epoch(self):
        ds = make_synthetic(5, 100, hw=8)
        assert DataLoader(ds, 32).batches_per_epoch() == 4
        assert DataLoader(ds, 32, drop_last=True).batches_per_epoch() == 3
        assert len(DataLoader(ds, 50)) == 2

    def test_shuffle_changes_order_per_epoch(self):
        ds = make_synthetic(5, 64, hw=8)
        loader = DataLoader(ds, 64, shuffle=True, seed=0)
        y1 = next(iter(loader))[1].copy()
        y2 = next(iter(loader))[1].copy()
        assert not np.array_equal(y1, y2)

    def test_set_batch_size_mid_run(self):
        """The dynamic mini-batch hook: batch size changes between epochs."""
        ds = make_synthetic(5, 120, hw=8)
        loader = DataLoader(ds, 30)
        assert len([1 for _ in loader]) == 4
        loader.set_batch_size(60)
        assert len([1 for _ in loader]) == 2

    def test_invalid_batch_size(self):
        ds = make_synthetic(5, 10, hw=8)
        with pytest.raises(ValueError):
            DataLoader(ds, 0)
        loader = DataLoader(ds, 2)
        with pytest.raises(ValueError):
            loader.set_batch_size(-1)


class TestAugmenter:
    def test_preserves_shape_dtype(self, rng):
        aug = Augmenter()
        x = rng.normal(size=(16, 3, 8, 8)).astype(np.float32)
        out = aug(x, rng)
        assert out.shape == x.shape and out.dtype == x.dtype

    def test_does_not_mutate_input(self, rng):
        aug = Augmenter()
        x = rng.normal(size=(16, 3, 8, 8)).astype(np.float32)
        orig = x.copy()
        aug(x, rng)
        np.testing.assert_array_equal(x, orig)

    def test_flip_only_reverses_rows(self, rng):
        aug = Augmenter(flip=True, max_shift=0)
        x = rng.normal(size=(64, 1, 4, 4)).astype(np.float32)
        out = aug(x, np.random.default_rng(0))
        flipped = np.array([np.array_equal(out[i], x[i, :, :, ::-1])
                            for i in range(64)])
        same = np.array([np.array_equal(out[i], x[i]) for i in range(64)])
        assert (flipped | same).all()
        assert flipped.any() and same.any()

    def test_shift_is_roll(self, rng):
        aug = Augmenter(flip=False, max_shift=2)
        x = rng.normal(size=(8, 1, 6, 6)).astype(np.float32)
        out = aug(x, np.random.default_rng(1))
        # each sample must equal some roll of the original
        for i in range(8):
            found = any(
                np.array_equal(out[i], np.roll(x[i], (dy, dx), axis=(1, 2)))
                for dy in range(-2, 3) for dx in range(-2, 3))
            assert found


@given(st.integers(1, 64), st.integers(1, 32))
@settings(max_examples=20, deadline=None)
def test_property_loader_batch_sizes(n, bs):
    ds = make_synthetic(3, n, hw=4, seed=0)
    loader = DataLoader(ds, bs, shuffle=False)
    sizes = [len(y) for _, y in loader]
    assert sum(sizes) == n
    assert all(s == bs for s in sizes[:-1])
    assert sizes[-1] <= bs


class TestAugmenterNoiseBuffer:
    """The noise path samples into reusable buffers: no fresh full-batch
    float64 allocation per call, no dtype drift, and values bit-identical
    to the original ``rng.normal(...).astype(dtype)`` formulation (resume
    checkpoints replay the same RNG stream either way)."""

    def _x(self, n=16, dtype=np.float32):
        return np.random.default_rng(0).standard_normal(
            (n, 3, 8, 8)).astype(dtype)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_dtype_stable(self, dtype):
        aug = Augmenter(flip=False, max_shift=0, noise_std=0.2)
        out = aug(self._x(dtype=dtype), np.random.default_rng(1))
        assert out.dtype == dtype

    def test_values_match_reference_formula(self):
        x = self._x()
        aug = Augmenter(flip=False, max_shift=0, noise_std=0.3)
        out = aug(x.copy(), np.random.default_rng(5))
        ref_rng = np.random.default_rng(5)
        ref = x.copy()
        ref += ref_rng.normal(0.0, 0.3, size=x.shape).astype(x.dtype)
        assert np.array_equal(out, ref)

    def test_rng_stream_position_unchanged(self):
        """Buffered sampling consumes exactly the same stream as before."""
        r1, r2 = np.random.default_rng(9), np.random.default_rng(9)
        aug = Augmenter(flip=False, max_shift=0, noise_std=0.1)
        aug(self._x(), r1)
        r2.normal(0.0, 0.1, size=self._x().shape)
        assert np.array_equal(r1.random(8), r2.random(8))

    def test_buffers_reused_across_calls(self):
        aug = Augmenter(flip=False, max_shift=0, noise_std=0.1)
        rng = np.random.default_rng(2)
        aug(self._x(), rng)
        b64, bcast = aug._noise64, aug._noise_cast
        aug(self._x(), rng)
        assert aug._noise64 is b64 and aug._noise_cast is bcast
        # shape change (batch growth / tail batch) resizes, then re-reuses
        aug(self._x(n=8), rng)
        assert aug._noise64.shape == (8, 3, 8, 8)

    def test_float64_skips_cast_buffer(self):
        aug = Augmenter(flip=False, max_shift=0, noise_std=0.1)
        aug(self._x(dtype=np.float64), np.random.default_rng(3))
        assert aug._noise_cast is None
