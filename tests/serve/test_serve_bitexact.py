"""Differential tests: served logits vs eager forward vs eval plan.

The serving contract (row-stable forward plans, see
``Tape.finalize_forward``) guarantees every served request's logits are
**bit-identical** to a batch-1 eager forward of that request alone —
single request, padded batch, and on-demand tail-shape batch alike, for
dense and pruned checkpoints, at every CPU-tractable Scale.

Against ``evaluate()``'s compiled forward plan (the trainer's
``_forward_compiled``, standard batched GEMM lowering) the comparison is
bitwise at batch 1 and allclose + identical argmax at larger batches:
2-D GEMM *rows* are not bit-stable across the batch dimension (BLAS
blocks/kernels change with M), which is exactly why serve plans lower the
final Linear per sample.  Demanding bitwise equality between the two
lowerings at batch > 1 would pin a property BLAS does not provide.
"""

import numpy as np
import pytest

from repro.data import make_synthetic
from repro.experiments.configs import QUICK, SMOKE, make_model
from repro.io import save_checkpoint
from repro.prune import prune_and_reconfigure
from repro.serve import ModelRegistry
from repro.tensor import Tensor, no_grad
from repro.tensor.compile import StepPlan
from repro.train import Trainer, TrainerConfig

from ..conftest import sparsify_space

#: PAPER is excluded by repo convention (documented GPU-scale; see configs).
SCALES = [pytest.param(SMOKE, id="smoke"), pytest.param(QUICK, id="quick")]
VARIANTS = ["dense", "pruned"]


def _sparsify(model, frac=0.5, seed=0):
    rng = np.random.default_rng(seed)
    g = model.graph
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < frac
        kill[0] = False
        sparsify_space(g, sid, kill)


def _checkpointed_model(scale, variant, tmp_path):
    """Build (and for 'pruned': surgically compress) a model, round-trip it
    through the repro.io checkpoint format, and register it for serving."""
    m = make_model("resnet32", "cifar10s", scale, seed=3)
    if variant == "pruned":
        _sparsify(m)
        prune_and_reconfigure(m)
    path = str(tmp_path / f"{variant}.npz")
    save_checkpoint(path, m)
    registry = ModelRegistry(max_models=2)
    registry.register(variant, path,
                      lambda: make_model("resnet32", "cifar10s", scale, seed=3))
    return registry, registry.served(variant).model


def _eager_rows(model, x):
    """Reference: one eager batch-1 forward per sample."""
    rows = []
    with no_grad():
        for i in range(x.shape[0]):
            rows.append(np.array(model(Tensor(x[i:i + 1])).data[0], copy=True))
    return np.stack(rows)


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("variant", VARIANTS)
class TestServedBitExact:
    def _setup(self, scale, variant, tmp_path):
        registry, model = _checkpointed_model(scale, variant, tmp_path)
        rng = np.random.default_rng(7)
        x = rng.normal(size=(9, 3, scale.hw, scale.hw)).astype(np.float32)
        return registry, model, x

    def test_single_request(self, scale, variant, tmp_path):
        registry, model, x = self._setup(scale, variant, tmp_path)
        out = registry.run(variant, x[:1])
        ref = _eager_rows(model, x[:1])
        assert np.array_equal(out, ref)
        served = registry.served(variant)
        assert served.captures == 1 and served.eager_rows == 0
        # second request replays the cached plan, still bit-identical
        out2 = registry.run(variant, x[:1])
        assert np.array_equal(out2, ref)
        assert served.exact_replays == 1

    def test_padded_batch(self, scale, variant, tmp_path):
        registry, model, x = self._setup(scale, variant, tmp_path)
        served = registry.served(variant)
        assert served.warm(6, x.shape[1:])
        out = registry.run(variant, x[:4])  # 4 rows padded up to the 6-plan
        assert served.padded_replays == 1 and served.padded_rows == 2
        assert out.shape[0] == 4
        assert np.array_equal(out, _eager_rows(model, x[:4]))

    def test_tail_shape_batch(self, scale, variant, tmp_path):
        registry, model, x = self._setup(scale, variant, tmp_path)
        served = registry.served(variant)
        assert served.warm(6, x.shape[1:])
        out = registry.run(variant, x[:8])  # 8 > 6: tail plan on demand
        assert served.captures == 2 and served.padded_replays == 0
        assert np.array_equal(out, _eager_rows(model, x[:8]))
        # tail plan is now cached; next group of 8 is an exact replay
        out2 = registry.run(variant, x[1:9])
        assert served.exact_replays == 1
        assert np.array_equal(out2, _eager_rows(model, x[1:9]))

    def test_vs_evaluate_forward_plan(self, scale, variant, tmp_path):
        registry, model, x = self._setup(scale, variant, tmp_path)
        data = make_synthetic(10, 32, hw=scale.hw, noise=0.8, seed=0,
                              name="serve-diff")
        trainer = Trainer(model, data, data,
                          TrainerConfig(epochs=1, bn_recal_batches=0))
        model.eval()
        # batch 1: the standard and row-stable lowerings coincide bitwise
        served_1 = registry.run(variant, x[:1])
        eval_1 = trainer._forward_compiled(x[:1])
        assert np.array_equal(served_1, eval_1)
        # the eval path must have gone through a compiled plan, not eager
        key = ("eval", x[:1].shape, x.dtype.str)
        assert isinstance(trainer._eval_plans.lookup(key), StepPlan)
        # batch > 1: allclose + identical argmax across lowerings
        served_n = registry.run(variant, x)
        eval_n = trainer._forward_compiled(x)
        np.testing.assert_allclose(served_n, eval_n, rtol=1e-5, atol=1e-6)
        assert np.array_equal(served_n.argmax(axis=1), eval_n.argmax(axis=1))
        with no_grad():
            eager_n = model(Tensor(x)).data
        np.testing.assert_allclose(served_n, eager_n, rtol=1e-5, atol=1e-6)


def test_padding_level_never_changes_logits(tmp_path):
    """The same request group padded to different plan batches yields
    byte-identical responses (padding rows are inert, not just small)."""
    registry, model, x = (None, None, None)
    registry, model = _checkpointed_model(SMOKE, "dense", tmp_path)
    rng = np.random.default_rng(11)
    x = rng.normal(size=(3, 3, SMOKE.hw, SMOKE.hw)).astype(np.float32)
    served = registry.served("dense")
    assert served.warm(4, x.shape[1:])
    out_pad4 = registry.run("dense", x)
    served.plans.clear(release=True)
    assert served.warm(8, x.shape[1:])
    out_pad8 = registry.run("dense", x)
    assert np.array_equal(out_pad4, out_pad8)
    assert np.array_equal(out_pad4, _eager_rows(model, x))
