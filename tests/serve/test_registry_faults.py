"""Fault-injection tests for the serving registry.

Pins the three failure-path behaviors the serving tier promises:

- **evict-under-load**: evicting a model with a batch in flight defers
  the buffer release until the batch completes, then frees the plan
  arenas deterministically (``memplan`` weakref registry empties without
  a GC pass) while the in-flight response stays correct;
- **corrupt / truncated checkpoint**: registration fails with a clean
  :class:`RegistryError` and the registry is left exactly as it was — no
  partial entry, and an existing entry under the same name survives;
- **re-register after evict**: a fresh entry at a higher generation is
  built and plans are recompiled — the evicted entry's plans are released,
  never reused, and re-registration with different weights changes the
  served outputs.
"""

import threading

import numpy as np
import pytest

from repro.experiments.configs import SMOKE, make_model
from repro.io import save_checkpoint
from repro.serve import ModelRegistry, RegistryError
from repro.tensor import Tensor, no_grad
from repro.tensor import memplan
from repro.tensor import workspace as ws
from repro.tensor.compile import StepPlan

HW = SMOKE.hw


def _model(seed=3):
    return make_model("resnet32", "cifar10s", SMOKE, seed=seed)


def _x(n=4, seed=7):
    return np.random.default_rng(seed).normal(
        size=(n, 3, HW, HW)).astype(np.float32)


class TestEvictUnderLoad:
    def test_inflight_batch_completes_then_arena_releases(self):
        registry = ModelRegistry(max_models=2)
        served = registry.register_model("m", _model())
        x = _x()
        assert served.warm(4, x.shape[1:])
        planned = ws.config.mem_plan
        base = memplan.live_arena_count()

        entered = threading.Event()
        gate = threading.Event()
        original_forward = served.forward

        def stalled_forward(arr):
            entered.set()
            assert gate.wait(10), "test deadlock"
            return original_forward(arr)

        served.forward = stalled_forward
        results = []
        worker = threading.Thread(
            target=lambda: results.append(registry.run("m", x)))
        worker.start()
        assert entered.wait(10)

        registry.evict("m")
        # the in-flight lease defers the release: plans still cached,
        # arenas still live, the running batch keeps its buffers
        assert len(served.plans) == 1
        if planned:
            assert memplan.live_arena_count() == base

        gate.set()
        worker.join(10)
        assert not worker.is_alive()
        # the batch completed correctly despite the eviction
        with no_grad():
            ref = np.stack([served.model(Tensor(x[i:i + 1])).data[0]
                            for i in range(len(x))])
        assert np.array_equal(results[0], ref)
        # ... and the last lease drain released everything, without any
        # gc.collect(): the weakref registry must already be empty
        assert len(served.plans) == 0
        if planned:
            assert memplan.live_arena_count() == base - 1
        with pytest.raises(RegistryError):
            registry.run("m", x)

    def test_idle_evict_releases_immediately(self):
        registry = ModelRegistry(max_models=2)
        served = registry.register_model("m", _model())
        x = _x()
        assert served.warm(4, x.shape[1:])
        key = (4, tuple(x.shape[1:]), x.dtype.str)
        plan = served.plans.lookup(key)
        assert isinstance(plan, StepPlan)
        base = memplan.live_arena_count()
        registry.evict("m")
        assert len(served.plans) == 0
        assert plan._released
        if ws.config.mem_plan:
            assert memplan.live_arena_count() == base - 1
        with pytest.raises(RuntimeError):
            plan.run_forward(x)


class TestCorruptCheckpoint:
    def _good_checkpoint(self, tmp_path):
        path = str(tmp_path / "good.npz")
        save_checkpoint(path, _model())
        return path

    @pytest.mark.parametrize("kind", ["truncated", "garbage", "missing"])
    def test_clean_error_no_partial_registration(self, tmp_path, kind):
        good = self._good_checkpoint(tmp_path)
        if kind == "truncated":
            raw = open(good, "rb").read()
            bad = str(tmp_path / "trunc.npz")
            with open(bad, "wb") as fh:
                fh.write(raw[:len(raw) // 3])
        elif kind == "garbage":
            bad = str(tmp_path / "garbage.npz")
            with open(bad, "wb") as fh:
                fh.write(b"this is not an npz archive")
        else:
            bad = str(tmp_path / "does-not-exist.npz")
        registry = ModelRegistry(max_models=2)
        with pytest.raises(RegistryError):
            registry.register("m", bad, _model)
        assert registry.models() == []
        with pytest.raises(RegistryError):
            registry.run("m", _x())
        # the registry is not poisoned: a good checkpoint registers fine
        registry.register("m", good, _model)
        assert registry.run("m", _x()).shape == (4, 10)

    def test_failed_reregister_keeps_existing_entry(self, tmp_path):
        good = self._good_checkpoint(tmp_path)
        bad = str(tmp_path / "garbage.npz")
        with open(bad, "wb") as fh:
            fh.write(b"junk")
        registry = ModelRegistry(max_models=2)
        registry.register("m", good, _model)
        before = registry.run("m", _x())
        with pytest.raises(RegistryError):
            registry.register("m", bad, _model)
        assert registry.models() == ["m"]
        assert np.array_equal(registry.run("m", _x()), before)


class TestReRegister:
    def test_recompiles_fresh_generation_plan(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, _model())
        registry = ModelRegistry(max_models=2)
        served1 = registry.register("m", path, _model)
        x = _x()
        out1 = registry.run("m", x)
        key = (4, tuple(x.shape[1:]), x.dtype.str)
        plan1 = served1.plans.lookup(key)
        assert isinstance(plan1, StepPlan)
        assert plan1.serve_generation == served1.generation

        registry.evict("m")
        served2 = registry.register("m", path, _model)
        assert served2 is not served1
        assert served2.generation > served1.generation
        out2 = registry.run("m", x)
        plan2 = served2.plans.lookup(key)
        # recompiled, not reused: new plan object at the new generation,
        # old plan's buffers are gone
        assert isinstance(plan2, StepPlan) and plan2 is not plan1
        assert plan2.serve_generation == served2.generation
        assert plan1._released
        assert served2.captures == 1
        # identical weights -> identical logits through the fresh plan
        assert np.array_equal(out1, out2)

    def test_reregister_with_new_weights_changes_outputs(self):
        registry = ModelRegistry(max_models=2)
        m1 = _model()
        registry.register_model("m", m1)
        x = _x()
        out1 = registry.run("m", x)
        # a retrained/repruned model re-registers under the same name;
        # a stale plan replaying old weights would reproduce out1
        m2 = _model()
        first = next(iter(m2.parameters()))
        first.data = first.data * 1.5
        served2 = registry.register_model("m", m2)
        out2 = registry.run("m", x)
        assert not np.array_equal(out1, out2)
        with no_grad():
            ref = np.stack([m2(Tensor(x[i:i + 1])).data[0]
                            for i in range(len(x))])
        assert np.array_equal(out2, ref)
        assert served2.captures == 1

    def test_lru_eviction_bounds_models_and_arenas(self):
        registry = ModelRegistry(max_models=2)
        x = _x(2)
        base = memplan.live_arena_count()
        for k in range(3):
            registry.register_model(f"m{k}", _model(seed=k))
            registry.run(f"m{k}", x)
        assert registry.evictions == 1
        assert registry.models() == ["m1", "m2"]
        if ws.config.mem_plan:
            assert memplan.live_arena_count() == base + 2
        with pytest.raises(RegistryError):
            registry.run("m0", x)
