"""Regression: Tab. 2 throughput measures the serve plan path and the
paper-shape speedup invariant survives the reroute.

``experiments.tab2._throughput`` used to time a hand-rolled eager forward
loop; it now routes through ``repro.serve.ModelRegistry`` so Tab. 2 and
``BENCH_serve.json`` measure the same code.  This test pins (a) that the
measurement really is plan replays (not an eager fallback), and (b) the
Tab. 2 invariants — pruned >= 1x dense, and large-batch utilization not
collapsing vs small-batch — on a heavily pruned model where the margin is
far above CPU timing noise.  The full-strength gate over all four model
pairs runs in the benchmark suite (``benchmarks/test_tab2_inference_
throughput.py``), now through this same serve path.
"""

import numpy as np

from repro.experiments import tab2
from repro.experiments.configs import SMOKE, make_model
from repro.prune import prune_and_reconfigure

from ..conftest import sparsify_space


def _heavily_pruned(seed=3, frac=0.6):
    m = make_model("resnet32", "cifar10s", SMOKE, seed=seed)
    rng = np.random.default_rng(0)
    g = m.graph
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < frac
        kill[0] = False
        sparsify_space(g, sid, kill)
    prune_and_reconfigure(m)
    return m


def test_throughput_goes_through_serve_plans():
    dense = make_model("resnet32", "cifar10s", SMOKE, seed=3)
    stats = {}
    thr = tab2._throughput(dense, SMOKE.hw, batch=10, repeats=3, stats=stats)
    assert thr > 0
    # one capture (warmup) then pure plan replays; never the eager fallback
    assert stats["captures"] == 1
    assert stats["exact_replays"] == 3
    assert stats["eager_rows"] == 0


def test_tab2_speedup_invariant_holds_on_serve_path():
    dense = make_model("resnet32", "cifar10s", SMOKE, seed=3)
    pruned = _heavily_pruned()
    b_small, b_large = 10, 100
    base_small = tab2._throughput(dense, SMOKE.hw, b_small, repeats=5)
    fast_small = tab2._throughput(pruned, SMOKE.hw, b_small, repeats=5)
    base_large = tab2._throughput(dense, SMOKE.hw, b_large, repeats=5)
    fast_large = tab2._throughput(pruned, SMOKE.hw, b_large, repeats=5)
    # paper Tab. 2 shape: the pruned model serves more images/second
    assert fast_small / base_small > 1.0, (
        f"pruned slower at batch {b_small}: "
        f"{fast_small:.0f} vs {base_small:.0f} img/s")
    assert fast_large / base_large > 1.0, (
        f"pruned slower at batch {b_large}: "
        f"{fast_large:.0f} vs {base_large:.0f} img/s")
    # larger batches keep utilization: per-image throughput at batch 100
    # is at least comparable to batch 10 (0.8 guard mirrors the benchmark
    # suite's noise tolerance)
    assert base_large > 0.8 * base_small
    assert fast_large > 0.8 * fast_small


def test_tab2_run_reports_serve_evidence():
    """tab2.run rows carry the serve-path counters for the bench gate."""
    # run() needs trained models; emulate its per-row measurement contract
    # on one pair without training by calling the row pieces directly.
    dense = make_model("resnet32", "cifar10s", SMOKE, seed=3)
    stats = {}
    tab2._throughput(dense, SMOKE.hw, 10, stats=stats)
    assert set(stats) >= {"exact_replays", "captures", "eager_rows"}
