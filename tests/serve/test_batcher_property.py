"""Property tests for the dynamic batcher, driven in virtual time.

The batcher is a pure state machine (no clock, no threads), so these
tests run seeded arrival processes through a deterministic event loop and
check the dispatch invariants exhaustively:

- every submitted request is dispatched exactly once;
- no batch exceeds ``max_batch`` and no batch mixes models;
- per-model FIFO order is preserved;
- the batcher itself never holds a request past ``arrival +
  latency_budget`` — with an idle worker, every request dispatches by its
  deadline; with a busy worker, the only extra wait is the service window
  of batches already executing (at most one batch window at the modeled
  sub-capacity load);
- padding rows never leak into responses (checked end-to-end through a
  real server, since padding happens at the plan-replay layer).
"""

import numpy as np
import pytest

from repro.experiments.configs import SMOKE, make_model
from repro.serve import (BatcherConfig, DynamicBatcher, InferenceServer,
                         ModelRegistry)
from repro.tensor import Tensor, no_grad

SEEDS = [0, 1, 2, 3, 4]


def _arrival_process(seed, n_req, n_models, mean_gap):
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(mean_gap, size=n_req))
    models = [f"m{k}" for k in rng.integers(0, n_models, size=n_req)]
    return arrivals, models


def _drive(batcher, arrivals, models, service=0.0):
    """Deterministic event loop: submit arrivals on schedule, take batches
    when due and the (virtual) worker is idle; each batch occupies the
    worker for ``service`` seconds.  Returns per-request dispatch records
    ``rid -> (model, dispatch_time, batch_id)`` and batch metadata.
    """
    n = len(arrivals)
    INF = float("inf")
    i = 0
    now = 0.0
    busy_until = 0.0
    dispatch = {}
    batch_meta = []
    while i < n or batcher.pending():
        next_arrival = arrivals[i] if i < n else INF
        deadline = batcher.next_deadline()
        # a full queue's deadline is its (past) head arrival; virtual time
        # never runs backwards, so clamp the take to `now`
        next_take = (max(deadline, busy_until, now)
                     if deadline is not None else INF)
        if next_arrival <= next_take:
            now = next_arrival
            while i < n and arrivals[i] <= now:
                batcher.submit(models[i], i, now=arrivals[i])
                i += 1
            # a full batch formed by this arrival dispatches as soon as
            # the worker is free, checked on the next loop turn
            continue
        t = now = next_take
        start = max(t, busy_until)
        for model, items in batcher.take(t):
            bid = len(batch_meta)
            for item in items:
                assert item not in dispatch, "request dispatched twice"
                dispatch[item] = (model, start, bid)
            batch_meta.append((model, items, start))
            start += service
            busy_until = start
    return dispatch, batch_meta


@pytest.mark.parametrize("seed", SEEDS)
def test_batcher_invariants_idle_worker(seed):
    cfg = BatcherConfig(max_batch=8, latency_budget=5.0)
    batcher = DynamicBatcher(cfg)
    arrivals, models = _arrival_process(seed, n_req=400, n_models=3,
                                        mean_gap=1.0)
    dispatch, batch_meta = _drive(batcher, arrivals, models, service=0.0)

    # exactly once
    assert sorted(dispatch) == list(range(len(arrivals)))
    assert batcher.pending() == 0
    # batch caps and model purity
    for model, items, _t in batch_meta:
        assert 1 <= len(items) <= cfg.max_batch
        assert all(models[i] == model for i in items)
    # per-model FIFO
    for m in set(models):
        order = [i for _, items, _t in batch_meta
                 for i in items if models[i] == m]
        assert order == sorted(order)
    # with an idle worker, nobody waits past the latency budget
    for rid, (_m, t_dispatch, _b) in dispatch.items():
        wait = t_dispatch - arrivals[rid]
        assert wait <= cfg.latency_budget + 1e-9, (
            f"request {rid} waited {wait:.3f} > budget")


@pytest.mark.parametrize("seed", SEEDS)
def test_batcher_wait_bound_busy_worker(seed):
    """With a busy worker at sub-capacity load, waits exceed the budget by
    at most one batch window (the batch executing / just taken ahead)."""
    service = 2.0
    cfg = BatcherConfig(max_batch=8, latency_budget=5.0)
    batcher = DynamicBatcher(cfg)
    # offered 1 req/s vs capacity max_batch/service = 4 req/s
    arrivals, models = _arrival_process(seed, n_req=300, n_models=2,
                                        mean_gap=1.0)
    dispatch, batch_meta = _drive(batcher, arrivals, models, service=service)

    assert sorted(dispatch) == list(range(len(arrivals)))
    for model, items, _t in batch_meta:
        assert len(items) <= cfg.max_batch
        assert all(models[i] == model for i in items)
    window = service  # one batch occupies the worker for `service` seconds
    for rid, (_m, t_dispatch, _b) in dispatch.items():
        wait = t_dispatch - arrivals[rid]
        assert wait <= cfg.latency_budget + 2 * window + 1e-9, (
            f"request {rid} waited {wait:.3f}s — more than budget + "
            f"one in-flight window + one same-take window")


@pytest.mark.parametrize("seed", SEEDS)
def test_full_batches_dispatch_without_budget_wait(seed):
    """Back-to-back arrivals form full batches dispatched at formation
    time, never held for the latency budget."""
    cfg = BatcherConfig(max_batch=4, latency_budget=100.0)
    batcher = DynamicBatcher(cfg)
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(0.01, size=64))
    models = ["m0"] * 64
    dispatch, batch_meta = _drive(batcher, arrivals, models, service=0.0)
    full = [items for _m, items, _t in batch_meta if len(items) == 4]
    assert len(full) == 16
    for _m, items, t in batch_meta:
        formed = arrivals[items[-1]] if len(items) == cfg.max_batch else None
        if formed is not None:
            assert t == pytest.approx(formed), "full batch was held back"


def test_padding_rows_never_leak_into_responses():
    """End-to-end: groups that get zero-padded to a larger plan batch
    return responses bit-identical to each request's own batch-1 eager
    forward — pad rows cannot influence any real row."""
    model = make_model("resnet32", "cifar10s", SMOKE, seed=3)
    registry = ModelRegistry(max_models=1)
    served = registry.register_model("m", model)
    rng = np.random.default_rng(5)
    # distinct-constant images: any row/pad mixup would be visible
    samples = np.stack([
        np.full((3, SMOKE.hw, SMOKE.hw), float(i + 1), dtype=np.float32)
        + rng.normal(scale=0.1, size=(3, SMOKE.hw, SMOKE.hw))
        .astype(np.float32) for i in range(6)])
    assert served.warm(4, samples.shape[1:])
    with InferenceServer(registry, max_batch=4,
                         latency_budget=0.002) as server:
        futures = [server.submit("m", samples[i]) for i in range(6)]
        results = [f.result(timeout=30) for f in futures]
    assert served.padded_replays >= 1, "test did not exercise padding"
    for i in range(6):
        with no_grad():
            ref = model(Tensor(samples[i:i + 1])).data[0]
        assert np.array_equal(results[i], ref), f"response {i} corrupted"
