"""Public API surface: everything the README documents must import and have
docstrings — a guard against silent API drift."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.tensor", "repro.tensor.functional",
    "repro.nn", "repro.nn.graph", "repro.nn.bn_utils",
    "repro.data", "repro.optim",
    "repro.prune",
    "repro.costmodel",
    "repro.distributed",
    "repro.train",
    "repro.io", "repro.analysis",
    "repro.experiments",
]

PUBLIC_NAMES = {
    "repro.tensor": ["Tensor", "no_grad"],
    "repro.nn": ["Module", "Parameter", "Conv2d", "BatchNorm2d", "Linear",
                 "ModelGraph", "resnet20", "resnet32", "resnet56",
                 "resnet50_cifar", "resnet50_imagenet", "wide_resnet16",
                 "vgg11", "vgg13"],
    "repro.data": ["Dataset", "DataLoader", "Augmenter", "make_synthetic",
                   "cifar10s", "cifar100s", "imagenet_s"],
    "repro.optim": ["SGD", "StepLR", "ConstantLR", "milestones_for"],
    "repro.prune": ["GroupLasso", "prune_and_reconfigure",
                    "space_keep_masks", "zero_sparsified_groups",
                    "ChannelTracker", "GatedPathRunner", "UnionPathRunner",
                    "density_report", "junctions"],
    "repro.costmodel": ["inference_flops", "training_flops_per_sample",
                        "MemoryModel", "iteration_memory_bytes",
                        "bn_traffic_bytes", "ring_allreduce_bytes",
                        "DeviceModel", "iteration_time", "epoch_time",
                        "V100", "GTX_1080TI"],
    "repro.distributed": ["ring_allreduce", "data_parallel_step",
                          "DynamicBatchAdjuster"],
    "repro.train": ["Trainer", "TrainerConfig", "PruneTrainTrainer",
                    "PruneTrainConfig", "SSLTrainer", "OneTimeTrainer",
                    "AMCLikePruner", "fine_tune", "RunLog"],
    "repro.io": ["save_checkpoint", "load_checkpoint"],
    "repro.analysis": ["summarize", "summary_table"],
    "repro.experiments": ["SMOKE", "QUICK", "PAPER", "Runs", "get_runs",
                          "make_model", "make_dataset"],
}


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
def test_module_imports_and_documented(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, \
        f"{modname} lacks a module docstring"


@pytest.mark.parametrize("modname", sorted(PUBLIC_NAMES))
def test_public_names_exist(modname):
    mod = importlib.import_module(modname)
    for name in PUBLIC_NAMES[modname]:
        assert hasattr(mod, name), f"{modname}.{name} missing"


@pytest.mark.parametrize("modname", sorted(PUBLIC_NAMES))
def test_public_callables_have_docstrings(modname):
    mod = importlib.import_module(modname)
    for name in PUBLIC_NAMES[modname]:
        obj = getattr(mod, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__, f"{modname}.{name} lacks a docstring"


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2
