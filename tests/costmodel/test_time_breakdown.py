"""TimeBreakdown composition and device preset sanity."""

import pytest

from repro.costmodel import (DEVICES, GTX_1080TI, TITAN_XP, V100,
                             TimeBreakdown, iteration_time)
from repro.nn import resnet32, vgg11

SMALL = dict(width_mult=0.25, input_hw=16)


class TestTimeBreakdown:
    def test_total_is_sum_of_parts(self):
        bd = TimeBreakdown(conv_time=1.0, bn_time=0.5, comm_time=0.25,
                           overhead=0.25)
        assert bd.total == pytest.approx(2.0)

    def test_components_populated(self):
        bd = iteration_time(resnet32(10, **SMALL).graph, 32, V100)
        assert bd.conv_time > 0
        assert bd.bn_time > 0
        assert bd.overhead > 0
        assert bd.comm_time == 0.0

    def test_inference_cheaper_than_training(self):
        g = vgg11(10, **SMALL).graph
        train = iteration_time(g, 32, V100, training=True).total
        infer = iteration_time(g, 32, V100, training=False).total
        assert infer < train / 2

    def test_time_scales_with_batch(self):
        g = resnet32(10, **SMALL).graph
        t32 = iteration_time(g, 32, V100).conv_time
        t64 = iteration_time(g, 64, V100).conv_time
        assert 1.5 < t64 / t32 < 2.5


class TestDevicePresets:
    def test_registry_complete(self):
        assert set(DEVICES) == {"1080ti", "titanxp", "v100"}

    def test_v100_fastest(self):
        g = resnet32(10, **SMALL).graph
        times = {name: iteration_time(g, 64, dev).total
                 for name, dev in DEVICES.items()}
        assert times["v100"] < times["1080ti"]
        assert times["v100"] < times["titanxp"]

    def test_spec_ordering(self):
        assert V100.peak_flops > TITAN_XP.peak_flops > 0
        assert V100.mem_bandwidth > GTX_1080TI.mem_bandwidth
