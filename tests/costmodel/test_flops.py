"""FLOPs model: exactness against hand counts, mode consistency."""

import numpy as np
import pytest

from repro.costmodel import (TRAINING_FLOPS_FACTOR, conv_flops,
                             inference_flops, per_layer_inference_flops,
                             training_flops_per_sample)
from repro.nn import resnet20, resnet32, resnet50_cifar, vgg11
from repro.prune import prune_and_reconfigure

SMALL = dict(width_mult=0.25, input_hw=16)


class TestConvFlops:
    def test_hand_count(self):
        m = vgg11(10, width_mult=1.0, input_hw=32)
        node = m.graph.conv_by_name("conv0")  # 3->64, 3x3, 32x32 out
        assert conv_flops(node) == 2 * 64 * 3 * 9 * 32 * 32

    def test_override_dims(self):
        m = vgg11(10, width_mult=1.0, input_hw=32)
        node = m.graph.conv_by_name("conv1")
        full = conv_flops(node)
        half = conv_flops(node, c_in=node.conv.in_channels // 2)
        assert half == pytest.approx(full / 2)


class TestInferenceFlops:
    def test_resnet20_magnitude(self):
        """Canonical ResNet-20 on 32x32 is ~41 MFLOPs (2*20.5M MACs)."""
        m = resnet20(10, width_mult=1.0, input_hw=32)
        f = inference_flops(m.graph, include_small_layers=False)
        assert 70e6 < f < 95e6  # 2 FLOPs/MAC convention: ~82M

    def test_scales_quadratically_with_width(self):
        f1 = inference_flops(resnet20(10, width_mult=1.0).graph,
                             include_small_layers=False)
        f2 = inference_flops(resnet20(10, width_mult=0.5).graph,
                             include_small_layers=False)
        assert f2 == pytest.approx(f1 / 4, rel=0.15)

    def test_small_layers_toggle(self):
        g = resnet20(10, **SMALL).graph
        assert inference_flops(g, include_small_layers=True) > \
            inference_flops(g, include_small_layers=False)

    def test_training_factor(self):
        g = resnet32(10, **SMALL).graph
        assert training_flops_per_sample(g) == pytest.approx(
            TRAINING_FLOPS_FACTOR * inference_flops(g))

    def test_unknown_mode_raises(self):
        g = resnet20(10, **SMALL).graph
        with pytest.raises(ValueError):
            inference_flops(g, mode="bogus")

    def test_dead_path_excluded_in_union_mode(self):
        m = resnet50_cifar(10, **SMALL)
        full = inference_flops(m.graph, mode="union")
        m.graph.conv_by_name("s2b1.conv1").conv.weight.data[:] = 0.0
        reduced = inference_flops(m.graph, mode="union")
        assert reduced < full

    def test_per_layer_sums_to_conv_total(self):
        m = resnet32(10, **SMALL)
        per = per_layer_inference_flops(m.graph)
        total = inference_flops(m.graph, include_small_layers=False)
        fc = 2.0 * m.fc.in_features * m.fc.out_features
        assert sum(per.values()) == pytest.approx(total - fc)

    def test_flops_drop_after_surgery(self):
        m = resnet50_cifar(10, **SMALL)
        rng = np.random.default_rng(0)
        before = inference_flops(m.graph)
        for sid, sp in m.graph.spaces.items():
            if sp.frozen:
                continue
            kill = rng.random(sp.size) < 0.5
            kill[0] = False
            for node in m.graph.writers(sid):
                node.conv.weight.data[kill] = 0
            for node in m.graph.readers(sid):
                node.conv.weight.data[:, kill] = 0
        prune_and_reconfigure(m)
        after = inference_flops(m.graph)
        assert after < 0.6 * before
