"""Memory, communication, and execution-time models."""

import numpy as np
import pytest

from repro.costmodel import (GTX_1080TI, V100, CommModel, DeviceModel,
                             MemoryModel, activation_bytes_per_sample,
                             bn_traffic_bytes, epoch_comm_bytes, epoch_time,
                             gradient_payload_bytes,
                             hierarchical_allreduce_bytes,
                             iteration_memory_bytes, iteration_time,
                             model_state_bytes, ring_allreduce_bytes)
from repro.nn import resnet20, resnet50_cifar, vgg11
from repro.prune import prune_and_reconfigure

SMALL = dict(width_mult=0.25, input_hw=16)


def _sparsify_half(model, seed=0):
    rng = np.random.default_rng(seed)
    g = model.graph
    for sid, sp in g.spaces.items():
        if sp.frozen:
            continue
        kill = rng.random(sp.size) < 0.5
        kill[0] = False
        for node in g.writers(sid):
            node.conv.weight.data[kill] = 0
        for node in g.readers(sid):
            node.conv.weight.data[:, kill] = 0


class TestMemoryModel:
    def test_activation_bytes_linear_in_batch(self):
        g = resnet20(10, **SMALL).graph
        m1 = iteration_memory_bytes(g, 32)
        m2 = iteration_memory_bytes(g, 64)
        per_sample = activation_bytes_per_sample(g)
        assert m2 - m1 == pytest.approx(32 * per_sample)

    def test_model_state_is_3x_params(self):
        m = resnet20(10, **SMALL)
        assert model_state_bytes(m.graph) == pytest.approx(
            3 * 4 * m.num_parameters(), rel=0.02)

    def test_memory_drops_after_pruning(self):
        m = resnet50_cifar(10, **SMALL)
        before = iteration_memory_bytes(m.graph, 64)
        _sparsify_half(m)
        prune_and_reconfigure(m)
        assert iteration_memory_bytes(m.graph, 64) < 0.8 * before

    def test_max_batch_granularity(self):
        m = resnet20(10, **SMALL)
        mm = MemoryModel(capacity_bytes=100e6)
        b = mm.max_batch(m.graph, granularity=32)
        assert b % 32 == 0
        assert mm.fits(m.graph, b)
        assert not mm.fits(m.graph, b + 64)

    def test_max_batch_grows_after_pruning(self):
        m = resnet50_cifar(10, **SMALL)
        mm = MemoryModel(capacity_bytes=50e6)
        before = mm.max_batch(m.graph, granularity=8)
        _sparsify_half(m)
        prune_and_reconfigure(m)
        assert mm.max_batch(m.graph, granularity=8) > before

    def test_max_batch_respects_ceiling(self):
        m = resnet20(10, width_mult=0.125, input_hw=8)
        mm = MemoryModel(capacity_bytes=1e12)
        assert mm.max_batch(m.graph, ceiling=256) == 256

    def test_max_batch_floor_when_granularity_does_not_fit(self):
        """Capacity too small for even one granularity unit: the model
        still answers ``granularity`` (callers clamp, never zero/negative)."""
        m = resnet20(10, width_mult=1.0, input_hw=32)
        mm = MemoryModel(capacity_bytes=1e6)
        assert mm.max_batch(m.graph, granularity=32) == 32

    def test_max_batch_measured_overrides_analytical(self):
        m = resnet20(10, **SMALL)
        mm = MemoryModel(capacity_bytes=100e6)
        analytical = mm.max_batch(m.graph, granularity=8)
        # planner measured half the analytical bytes/sample -> ~2x batch
        mm.observe(activation_bytes_per_sample(m.graph) / 2)
        measured = mm.max_batch(m.graph, granularity=8, measured=True)
        assert measured > analytical
        # measured=False ignores the observation entirely
        assert mm.max_batch(m.graph, granularity=8) == analytical
        mm.clear_measurement()
        assert mm.max_batch(m.graph, granularity=8,
                            measured=True) == analytical

    def test_max_batch_measured_fixed_bytes_and_validation(self):
        m = resnet20(10, **SMALL)
        mm = MemoryModel(capacity_bytes=100e6)
        per = activation_bytes_per_sample(m.graph)
        mm.observe(per, fixed_bytes=mm.usable_bytes - 10 * per)
        b = mm.max_batch(m.graph, granularity=2, measured=True)
        assert b == 10
        with pytest.raises(ValueError):
            mm.observe(0.0)
        with pytest.raises(ValueError):
            mm.observe(-5.0)

    def test_bn_traffic_proportional_to_batch_and_channels(self):
        m = vgg11(10, **SMALL)
        t1 = bn_traffic_bytes(m.graph, 32)
        t2 = bn_traffic_bytes(m.graph, 64)
        assert t2 == pytest.approx(2 * t1)
        assert bn_traffic_bytes(m.graph, 32, training=False) < t1


class TestCommModel:
    def test_ring_formula(self):
        assert ring_allreduce_bytes(1000, 4) == pytest.approx(1500)
        assert ring_allreduce_bytes(1000, 1) == 0.0

    def test_hierarchical_volume_matches_flat(self):
        """Both schemes are volume-optimal; hierarchical shifts traffic to
        fast links rather than reducing total bytes."""
        flat = ring_allreduce_bytes(1e6, 16)
        hier = hierarchical_allreduce_bytes(1e6, 16, group_size=4)
        assert hier == pytest.approx(flat, rel=0.01)

    def test_hierarchical_interlink_traffic_much_smaller(self):
        from repro.costmodel.comm import hierarchical_interlink_bytes
        flat = ring_allreduce_bytes(1e6, 16)
        inter = hierarchical_interlink_bytes(1e6, 16, group_size=4)
        assert inter < 0.3 * flat

    def test_hierarchical_faster_on_two_tier_fabric(self):
        cm = CommModel(intra_bandwidth=50e9, inter_bandwidth=10e9)
        assert cm.allreduce_time(1e8, 16, hierarchical=True) < \
            cm.allreduce_time(1e8, 16, hierarchical=False)

    def test_gradient_payload_tracks_params(self):
        m = resnet20(10, **SMALL)
        assert gradient_payload_bytes(m.graph) == pytest.approx(
            4 * m.num_parameters(), rel=0.02)

    def test_payload_drops_after_pruning(self):
        m = resnet50_cifar(10, **SMALL)
        before = gradient_payload_bytes(m.graph)
        _sparsify_half(m)
        prune_and_reconfigure(m)
        assert gradient_payload_bytes(m.graph) < 0.6 * before

    def test_epoch_comm_counts_iterations(self):
        g = resnet20(10, **SMALL).graph
        e1 = epoch_comm_bytes(g, dataset_size=1000, global_batch=100,
                              workers=4)
        e2 = epoch_comm_bytes(g, dataset_size=1000, global_batch=200,
                              workers=4)
        assert e1 == pytest.approx(2 * e2)

    def test_allreduce_time_positive(self):
        cm = CommModel()
        assert cm.allreduce_time(1e6, 4) > 0
        assert cm.allreduce_time(1e6, 1) == 0.0


class TestTimeModel:
    def test_utilization_bounds(self):
        d = DeviceModel()
        for c_in, c_out, rows in [(1, 1, 1), (64, 64, 4096),
                                  (1000, 1000, 1e6)]:
            u = d.utilization(c_in, c_out, int(rows))
            assert 0 < u <= 0.85

    def test_narrow_channels_less_efficient(self):
        d = DeviceModel()
        assert d.utilization(8, 8, 4096) < d.utilization(64, 64, 4096)

    def test_irregular_dims_penalized(self):
        d = DeviceModel()
        assert d.utilization(64, 63, 4096) < d.utilization(64, 64, 4096)

    def test_time_savings_lag_flops_savings(self):
        """The paper's Sec. 5.1 observation, reproduced by the model."""
        from repro.costmodel import inference_flops
        m = resnet50_cifar(10, **SMALL)
        f0 = inference_flops(m.graph)
        t0 = iteration_time(m.graph, 64, GTX_1080TI).total
        _sparsify_half(m)
        prune_and_reconfigure(m)
        f1 = inference_flops(m.graph)
        t1 = iteration_time(m.graph, 64, GTX_1080TI).total
        flops_saving = 1 - f1 / f0
        time_saving = 1 - t1 / t0
        assert 0 < time_saving < flops_saving

    def test_v100_saves_more_time_than_1080ti(self):
        """Higher memory bandwidth -> BN-bound share smaller -> pruning's
        compute savings more visible (paper Sec. 5.1).  Evaluated at the
        paper's model scale (full width); the model is deterministic, so a
        strict inequality is meaningful."""
        m = resnet50_cifar(10, width_mult=1.0, input_hw=32)
        t0_g = iteration_time(m.graph, 64, GTX_1080TI).total
        t0_v = iteration_time(m.graph, 64, V100).total
        _sparsify_half(m)
        prune_and_reconfigure(m)
        t1_g = iteration_time(m.graph, 64, GTX_1080TI).total
        t1_v = iteration_time(m.graph, 64, V100).total
        assert (1 - t1_v / t0_v) > (1 - t1_g / t0_g)

    def test_epoch_time_scales_with_dataset(self):
        g = resnet20(10, **SMALL).graph
        assert epoch_time(g, 2000, 64, V100) == pytest.approx(
            2 * epoch_time(g, 1000, 64, V100), rel=0.05)

    def test_comm_time_included_for_multiworker(self):
        g = resnet20(10, **SMALL).graph
        t1 = iteration_time(g, 64, V100, workers=1)
        t4 = iteration_time(g, 64, V100, workers=4)
        assert t1.comm_time == 0.0
        assert t4.comm_time > 0.0
