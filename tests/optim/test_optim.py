"""SGD and LR schedules."""

import numpy as np
import pytest

from repro.nn import Linear, Parameter
from repro.optim import SGD, ConstantLR, StepLR, milestones_for


def make_param(val=1.0, n=4):
    return Parameter(np.full(n, val, dtype=np.float32))


class TestSGD:
    def test_plain_step(self):
        p = make_param(1.0)
        opt = SGD([p], lr=0.1, momentum=0.0)
        p.grad = np.full(4, 2.0, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, 0.8)

    def test_momentum_accumulates(self):
        p = make_param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.5)
        for expect in [-1.0, -2.5, -4.25]:
            p.grad = np.ones(4, dtype=np.float32)
            opt.step()
            np.testing.assert_allclose(p.data, expect, rtol=1e-6)

    def test_weight_decay(self):
        p = make_param(1.0)
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        p.grad = np.zeros(4, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, 1.0 - 0.1 * 0.5)

    def test_none_grad_skipped(self):
        p = make_param(1.0)
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set
        np.testing.assert_allclose(p.data, 1.0)

    def test_zero_grad(self):
        p = make_param()
        opt = SGD([p], lr=0.1)
        p.grad = np.ones(4, dtype=np.float32)
        opt.zero_grad()
        assert p.grad is None

    def test_state_for_and_set_state_for(self):
        p = make_param()
        opt = SGD([p], lr=0.1, momentum=0.9)
        assert opt.state_for(p) is None
        p.grad = np.ones(4, dtype=np.float32)
        opt.step()
        buf = opt.state_for(p)
        assert buf is not None and buf.shape == (4,)
        opt.set_state_for(p, np.zeros(4, dtype=np.float32))
        np.testing.assert_allclose(opt.state_for(p), 0.0)

    def test_set_state_shape_mismatch_raises(self):
        p = make_param()
        opt = SGD([p], lr=0.1)
        with pytest.raises(ValueError):
            opt.set_state_for(p, np.zeros(7))

    def test_momentum_survives_param_data_swap(self):
        """The reconfiguration contract: momentum is keyed by parameter
        identity, so replacing ``.data`` keeps the buffer attached."""
        p = make_param(n=6)
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.ones(6, dtype=np.float32)
        opt.step()
        keep = np.array([True, False, True, True, False, True])
        p.data = p.data[keep]
        opt.set_state_for(p, opt.state_for(p)[keep])
        p.grad = np.ones(4, dtype=np.float32)
        opt.step()  # must not raise; shapes consistent

    def test_in_place_update_keeps_array_identity(self):
        p = make_param()
        arr_id = id(p.data)
        opt = SGD([p], lr=0.1)
        p.grad = np.ones(4, dtype=np.float32)
        opt.step()
        assert id(p.data) == arr_id  # in-place per the optimization guides

    def test_scale_lr(self):
        p = make_param()
        opt = SGD([p], lr=0.1)
        opt.scale_lr(2.0)
        assert opt.lr == pytest.approx(0.2)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_sync_params_purges_stale_state(self):
        """When a layer is removed its parameters leave the optimizer; the
        momentum/scratch entries keyed by their ids must go too, or a new
        parameter allocated at a recycled id inherits a foreign buffer."""
        keep, drop = make_param(n=4), make_param(n=4)
        opt = SGD([keep, drop], lr=1.0, momentum=0.9)
        for p in (keep, drop):
            p.grad = np.ones(4, dtype=np.float32)
        opt.step()
        assert opt.state_for(drop) is not None
        stale_buf = opt.state_for(drop).copy()

        opt.sync_params([keep])
        assert opt.params == [keep]
        assert opt.state_for(keep) is not None
        assert opt.state_for(drop) is None
        assert id(drop) not in opt._velocity
        assert id(drop) not in opt._scratch

        # a fresh param landing on the dropped id must start clean
        del drop
        fresh = make_param(0.0, n=4)
        opt.sync_params([keep, fresh])
        buf = opt.state_for(fresh)
        assert buf is None or not np.array_equal(buf, stale_buf)

    def test_sync_params_empty_raises(self):
        p = make_param()
        opt = SGD([p], lr=0.1)
        with pytest.raises(ValueError):
            opt.sync_params([])
        assert opt.params == [p]


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(0.05)
        assert s.lr_at(0) == s.lr_at(100) == 0.05

    def test_step_decay(self):
        s = StepLR(0.1, milestones=[10, 20], gamma=0.1)
        assert s.lr_at(0) == pytest.approx(0.1)
        assert s.lr_at(9) == pytest.approx(0.1)
        assert s.lr_at(10) == pytest.approx(0.01)
        assert s.lr_at(20) == pytest.approx(0.001)

    def test_milestones_for(self):
        assert milestones_for(182, (0.5, 0.75)) == [91, 136]
        assert milestones_for(4) == [2, 3]
