"""Cross-module integration tests: full PruneTrain pipelines end to end."""

import numpy as np
import pytest

from repro.costmodel import (gradient_payload_bytes, inference_flops,
                             iteration_memory_bytes)
from repro.data import make_synthetic
from repro.nn import resnet20, resnet50_cifar, vgg11
from repro.optim import SGD
from repro.prune import (GroupLasso, prune_and_reconfigure, space_keep_masks,
                         zero_sparsified_groups)
from repro.tensor import Tensor, no_grad
from repro.tensor import functional as F
from repro.train import PruneTrainConfig, PruneTrainTrainer


@pytest.fixture(scope="module")
def data():
    train = make_synthetic(10, 192, hw=8, noise=0.8, seed=0, name="it")
    val = make_synthetic(10, 96, hw=8, noise=0.8, seed=1, name="it-val")
    return train, val


class TestEndToEndPipelines:
    @pytest.mark.parametrize("factory", [resnet20, vgg11])
    def test_prunetrain_full_pipeline(self, factory, data):
        """Train -> sparsify -> reconfigure -> keep training -> infer.

        Uses a deliberately strong λ so pruning definitely happens within
        the short run, then checks every derived quantity moved coherently.
        """
        train, val = data
        model = factory(10, width_mult=0.375, input_hw=8, seed=0)
        flops0 = inference_flops(model.graph)
        mem0 = iteration_memory_bytes(model.graph, 32)
        payload0 = gradient_payload_bytes(model.graph)
        # deliberately strong λ: the run is only ~36 steps, and this test
        # needs pruning to definitely trigger (accuracy is not asserted)
        cfg = PruneTrainConfig(epochs=6, batch_size=32, augment=False,
                               penalty_ratio=0.3, reconfig_interval=2,
                               lambda_scale=400.0, threshold=None,
                               zero_sparse=True)
        trainer = PruneTrainTrainer(model, train, val, cfg)
        log = trainer.train()

        assert inference_flops(model.graph) < flops0
        assert iteration_memory_bytes(model.graph, 32) < mem0
        assert gradient_payload_bytes(model.graph) < payload0
        model.graph.validate()

        # the logged trajectory is internally consistent
        infs = log.series("inference_flops")
        assert infs[-1] == pytest.approx(inference_flops(model.graph))
        assert (np.diff(infs) <= 1e-6).all()

        # the pruned model still does useful inference
        model.eval()
        with no_grad():
            out = model(Tensor(val.x[:16]))
        assert np.isfinite(out.data).all()

    def test_surgery_is_idempotent(self, data):
        """A second reconfiguration without new sparsification is a no-op."""
        model = resnet50_cifar(10, width_mult=0.25, input_hw=8, seed=1)
        rng = np.random.default_rng(0)
        g = model.graph
        for sid, sp in g.spaces.items():
            if sp.frozen:
                continue
            kill = rng.random(sp.size) < 0.4
            kill[0] = False
            for node in g.writers(sid):
                node.conv.weight.data[kill] = 0.0
            for node in g.readers(sid):
                node.conv.weight.data[:, kill] = 0.0
        rep1 = prune_and_reconfigure(model)
        rep2 = prune_and_reconfigure(model)
        assert rep1.channels_pruned > 0
        assert rep2.channels_pruned == 0
        assert rep2.params_before == rep2.params_after

    def test_gradient_flow_intact_after_multiple_surgeries(self, data):
        train, _ = data
        model = resnet50_cifar(10, width_mult=0.25, input_hw=8, seed=2)
        opt = SGD(model.parameters(), 0.05, momentum=0.9)
        rng = np.random.default_rng(1)
        for round_ in range(3):
            # train a couple of steps
            for i in range(2):
                xb = train.x[i * 32:(i + 1) * 32]
                yb = train.y[i * 32:(i + 1) * 32]
                loss = F.cross_entropy(model(Tensor(xb)), yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
            # sparsify a little more and reconfigure
            g = model.graph
            for sid, sp in g.spaces.items():
                if sp.frozen or sp.size <= 2:
                    continue
                kill = rng.random(sp.size) < 0.15
                kill[0] = False
                for node in g.writers(sid):
                    node.conv.weight.data[kill] = 0.0
                for node in g.readers(sid):
                    node.conv.weight.data[:, kill] = 0.0
            prune_and_reconfigure(model, opt)
            g.validate()
        # all gradients still finite and shaped right
        xb, yb = train.x[:32], train.y[:32]
        loss = F.cross_entropy(model(Tensor(xb)), yb)
        opt.zero_grad()
        loss.backward()
        for p in model.parameters():
            if p.grad is not None:
                assert p.grad.shape == p.data.shape
                assert np.isfinite(p.grad).all()

    def test_lasso_plus_surgery_plus_zeroing_consistency(self, data):
        """GroupLasso gradients remain well-formed after surgery + zeroing."""
        model = vgg11(10, width_mult=0.25, input_hw=8, seed=3)
        lasso = GroupLasso(model.graph)
        lasso.set_coefficient(2.3, 0.25)
        node = model.graph.conv_by_name("conv3")
        node.conv.weight.data[2] = 0.0
        reader = model.graph.readers(node.out_space)[0]
        reader.conv.weight.data[:, 2] = 0.0
        prune_and_reconfigure(model)
        zero_sparsified_groups(model.graph)
        for p in model.parameters():
            p.grad = None
        lasso.add_gradients()
        for n in model.graph.active_convs():
            assert n.conv.weight.grad.shape == n.conv.weight.data.shape
            assert np.isfinite(n.conv.weight.grad).all()

    def test_masks_stable_under_permutation(self):
        """Property: union masks commute with consistent channel shuffles."""
        m1 = resnet20(10, width_mult=0.25, input_hw=8, seed=4)
        rng = np.random.default_rng(2)
        g = m1.graph
        junction = next(sid for sid in g.spaces if len(g.writers(sid)) > 2)
        size = g.spaces[junction].size
        kill = rng.random(size) < 0.5
        kill[0] = False
        for node in g.writers(junction):
            node.conv.weight.data[kill] = 0.0
        for node in g.readers(junction):
            node.conv.weight.data[:, kill] = 0.0
        masks1 = space_keep_masks(g)
        perm = rng.permutation(size)
        for node in g.writers(junction):
            node.conv.weight.data = node.conv.weight.data[perm]
        for node in g.readers(junction):
            node.conv.weight.data = node.conv.weight.data[:, perm]
        masks2 = space_keep_masks(g)
        np.testing.assert_array_equal(masks1[junction][perm],
                                      masks2[junction])
