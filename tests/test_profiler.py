"""Op profiler: opt-in semantics, counter correctness, trainer wiring.

The profiler must be strictly opt-in — disabled, the instrumented ops pay
one attribute check and record nothing — and when enabled it must attribute
wall time and bytes to the engine's kernels and surface in each epoch's
log record via ``TrainerConfig(profile=True)``.
"""

import numpy as np

from repro.data import make_synthetic
from repro.nn import resnet20
from repro.profiler import PROFILER, OpProfiler
from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.train import Trainer, TrainerConfig


def _one_forward_backward(rng):
    x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32),
               requires_grad=True)
    w = Tensor(rng.normal(size=(4, 3, 3, 3)).astype(np.float32),
               requires_grad=True)
    y = F.conv2d(x, w, None, stride=1, padding=1)
    y.backward(np.ones(y.shape, dtype=np.float32))


class TestOptIn:
    def test_disabled_by_default_records_nothing(self, rng):
        PROFILER.disable()
        PROFILER.reset()
        _one_forward_backward(rng)
        assert PROFILER.summary().get("conv2d_fwd") is None
        assert PROFILER.total_seconds() == 0.0

    def test_session_scopes_enablement(self, rng):
        with PROFILER.session():
            _one_forward_backward(rng)
            stats = PROFILER.summary()
        assert stats["conv2d_fwd"]["calls"] == 1
        assert stats["conv2d_bwd"]["calls"] == 1
        assert stats["conv2d_fwd"]["seconds"] > 0
        assert stats["conv2d_fwd"]["bytes"] > 0
        assert not PROFILER.enabled
        _one_forward_backward(rng)  # must not record after the session
        assert PROFILER.summary()["conv2d_fwd"]["calls"] == 1
        PROFILER.reset()

    def test_summary_includes_workspace_counters(self, rng):
        with PROFILER.session():
            _one_forward_backward(rng)
            stats = PROFILER.summary()
        assert "_workspace" in stats
        assert stats["_workspace"]["hits"] >= 0
        assert stats["_workspace"]["evictions"] >= 0
        assert stats["_workspace"]["bytes_evicted"] >= 0
        assert "_memplan" in stats
        for key in ("plans", "arena_bytes", "naive_bytes", "peak_bytes",
                    "fallbacks", "live_arenas", "live_arena_bytes"):
            assert key in stats["_memplan"]
        PROFILER.reset()


class TestCounters:
    def test_add_aggregates(self):
        p = OpProfiler()
        p.enable()
        p.add("op", 0.25, 100)
        p.add("op", 0.75, 300)
        st = p.summary()["op"]
        assert st["calls"] == 2
        assert st["seconds"] == 1.0
        assert st["bytes"] == 400
        assert p.total_seconds() == 1.0

    def test_op_context_manager(self):
        p = OpProfiler()
        with p.op("noop"):  # disabled: records nothing
            pass
        assert "noop" not in p.summary()
        p.enable()
        with p.op("noop", 42):
            pass
        assert p.summary()["noop"]["calls"] == 1

    def test_report_renders_table(self):
        p = OpProfiler()
        p.enable()
        p.add("conv", 0.002, 1000)
        text = p.report()
        assert "conv" in text and "calls" in text


class TestTrainerWiring:
    def test_profile_flag_snapshots_each_epoch(self):
        train = make_synthetic(4, 32, hw=8, noise=0.8, seed=0, name="t")
        val = make_synthetic(4, 16, hw=8, noise=0.8, seed=1, name="v")
        model = resnet20(4, width_mult=0.25, input_hw=8)
        tr = Trainer(model, train, val,
                     TrainerConfig(epochs=2, batch_size=16, augment=False,
                                   log_every=0, profile=True))
        log = tr.train()
        assert not PROFILER.enabled, "trainer must disable on exit"
        for rec in log.records:
            assert rec.op_profile, "profile missing from epoch record"
            assert rec.op_profile["conv2d_fwd"]["calls"] > 0
            assert rec.op_profile["conv2d_bwd"]["seconds"] > 0

    def test_epoch_profile_excludes_eval_phase(self):
        """Epoch records must profile the training phase only: the summary
        is snapshotted before evaluation/BN recalibration runs."""
        class MarkedEval(Trainer):
            def evaluate(self):
                if PROFILER.enabled:
                    PROFILER.add("eval_marker", 0.001, 0)
                return super().evaluate()

        train = make_synthetic(4, 32, hw=8, noise=0.8, seed=0, name="t")
        val = make_synthetic(4, 16, hw=8, noise=0.8, seed=1, name="v")
        model = resnet20(4, width_mult=0.25, input_hw=8)
        tr = MarkedEval(model, train, val,
                        TrainerConfig(epochs=2, batch_size=16, augment=False,
                                      log_every=0, profile=True))
        log = tr.train()
        for rec in log.records:
            assert "eval_marker" not in rec.op_profile
            assert rec.op_profile["conv2d_fwd"]["calls"] > 0

    def test_profile_off_leaves_records_empty(self):
        train = make_synthetic(4, 32, hw=8, noise=0.8, seed=0, name="t")
        val = make_synthetic(4, 16, hw=8, noise=0.8, seed=1, name="v")
        model = resnet20(4, width_mult=0.25, input_hw=8)
        tr = Trainer(model, train, val,
                     TrainerConfig(epochs=1, batch_size=16, augment=False,
                                   log_every=0))
        log = tr.train()
        assert log.records[0].op_profile == {}
