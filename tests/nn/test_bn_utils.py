"""BN running-stat recalibration."""

import numpy as np
import pytest

from repro.nn import BatchNorm2d, Conv2d, resnet20
from repro.nn.bn_utils import recalibrate_bn
from repro.tensor import Tensor, no_grad


class TestRecalibrateBn:
    def test_stats_match_data_after_recal(self, rng):
        m = resnet20(10, width_mult=0.25, input_hw=8)
        x = rng.normal(size=(64, 3, 8, 8)).astype(np.float32)
        # corrupt running stats badly
        for mod in m.modules():
            if isinstance(mod, BatchNorm2d):
                mod.running_mean[:] = 100.0
                mod.running_var[:] = 1e-6
        recalibrate_bn(m, [x[:32], x[32:]])
        stem_bn = m.stem_bn
        # stem BN stats should now reflect the stem conv's output over x
        m.train()
        with no_grad():
            out = m.stem(Tensor(x)).data
        np.testing.assert_allclose(stem_bn.running_mean,
                                   out.mean(axis=(0, 2, 3)), rtol=1e-2,
                                   atol=1e-2)

    def test_restores_momentum_and_mode(self, rng):
        m = resnet20(10, width_mult=0.25, input_hw=8)
        m.eval()
        recalibrate_bn(m, [rng.normal(size=(8, 3, 8, 8)).astype(np.float32)])
        assert not m.training
        for mod in m.modules():
            if isinstance(mod, BatchNorm2d):
                assert mod.momentum == pytest.approx(0.1)

    def test_no_parameter_changes(self, rng):
        m = resnet20(10, width_mult=0.25, input_hw=8)
        before = {n: p.data.copy() for n, p in m.named_parameters()}
        recalibrate_bn(m, [rng.normal(size=(8, 3, 8, 8)).astype(np.float32)])
        for n, p in m.named_parameters():
            np.testing.assert_array_equal(before[n], p.data)

    def test_empty_batches_noop(self):
        m = resnet20(10, width_mult=0.25, input_hw=8)
        rm = m.stem_bn.running_mean.copy()
        assert recalibrate_bn(m, []) == 0
        np.testing.assert_array_equal(m.stem_bn.running_mean, rm)

    def test_cumulative_average_two_batches(self, rng):
        """Stats after two batches equal the average of per-batch stats."""
        conv = Conv2d(2, 3, 3, padding=1)

        class Tiny:
            training = True

            def modules(self):
                return [conv, bn]

            def train(self, mode=True):
                return self

            def __call__(self, x):
                return bn(conv(x))

        bn = BatchNorm2d(3)
        b1 = rng.normal(size=(16, 2, 6, 6)).astype(np.float32)
        b2 = rng.normal(2.0, 1.0, size=(16, 2, 6, 6)).astype(np.float32)
        model = Tiny()
        recalibrate_bn(model, [b1, b2])
        with no_grad():
            m1 = conv(Tensor(b1)).data.mean(axis=(0, 2, 3))
            m2 = conv(Tensor(b2)).data.mean(axis=(0, 2, 3))
        np.testing.assert_allclose(bn.running_mean, (m1 + m2) / 2, rtol=1e-4,
                                   atol=1e-5)
