"""Module system: parameter discovery, modes, state dicts."""

import numpy as np
import pytest

from repro.nn import (BatchNorm2d, Conv2d, Linear, Module, Parameter, ReLU,
                      Sequential, resnet20)
from repro.tensor import Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.conv = Conv2d(3, 4, 3, padding=1)
        self.bn = BatchNorm2d(4)
        self.blocks = [[Linear(4, 4), Linear(4, 4)], Linear(4, 2)]

    def forward(self, x):
        return self.conv(x)


class TestDiscovery:
    def test_named_parameters_finds_nested_lists(self):
        toy = Toy()
        names = {n for n, _ in toy.named_parameters()}
        assert "conv.weight" in names
        assert "bn.weight" in names and "bn.bias" in names
        assert "blocks.0.0.weight" in names
        assert "blocks.0.1.weight" in names
        assert "blocks.1.weight" in names

    def test_parameter_count_matches_manual(self):
        toy = Toy()
        expect = 4 * 3 * 9 + 4 + 4 + 3 * (4 * 4 + 4) / 1  # conv + bn + linears
        # linears: two 4x4 (+bias 4) and one 2x4 (+bias 2)
        expect = 4 * 3 * 9 + 4 + 4 + (16 + 4) * 2 + (8 + 2)
        assert toy.num_parameters() == expect

    def test_no_duplicate_parameters(self):
        toy = Toy()
        ids = [id(p) for _, p in toy.named_parameters()]
        assert len(ids) == len(set(ids))

    def test_resnet_parameter_count_sane(self):
        m = resnet20(10, width_mult=1.0)
        # canonical resnet20 has ~272k params
        assert 250_000 < m.num_parameters() < 300_000


class TestModes:
    def test_train_eval_propagates(self):
        toy = Toy()
        toy.eval()
        assert not toy.bn.training
        toy.train()
        assert toy.bn.training

    def test_zero_grad(self):
        toy = Toy()
        for p in toy.parameters():
            p.grad = np.ones_like(p.data)
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a, b = Toy(), Toy()
        for p in a.parameters():
            p.data = p.data + 1.0
        b.load_state_dict(a.state_dict())
        for (na, pa), (nb, pb) in zip(a.named_parameters(),
                                      b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_includes_bn_buffers(self):
        toy = Toy()
        sd = toy.state_dict()
        assert "bn.running_mean" in sd
        assert "bn.running_var" in sd

    def test_shape_mismatch_raises(self):
        a, b = Toy(), Toy()
        sd = a.state_dict()
        sd["conv.weight"] = np.zeros((1, 1, 1, 1))
        with pytest.raises(ValueError, match="shape mismatch"):
            b.load_state_dict(sd)

    def test_unknown_key_raises(self):
        toy = Toy()
        with pytest.raises(KeyError):
            toy.load_state_dict({"nope": np.zeros(1)})

    def test_state_dict_is_a_copy(self):
        toy = Toy()
        sd = toy.state_dict()
        sd["conv.weight"][:] = 99.0
        assert toy.conv.weight.data.max() < 99.0


class TestSequential:
    def test_runs_in_order(self, rng):
        seq = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        out = seq(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 2)

    def test_container_protocol(self):
        seq = Sequential(ReLU(), ReLU())
        assert len(seq) == 2
        assert isinstance(seq[0], ReLU)
        assert len(list(iter(seq))) == 2


class TestLayers:
    def test_conv_repr(self):
        c = Conv2d(3, 8, 3, stride=2, padding=1)
        assert "Conv2d(3, 8" in repr(c)

    def test_conv_bias_optional(self):
        assert Conv2d(2, 2, 3).bias is None
        assert Conv2d(2, 2, 3, bias=True).bias is not None

    def test_linear_shapes(self, rng):
        lin = Linear(5, 3)
        out = lin(Tensor(rng.normal(size=(2, 5))))
        assert out.shape == (2, 3)

    def test_bn_updates_running_stats_only_in_training(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(5.0, 1.0, size=(8, 2, 4, 4)))
        bn.eval()
        bn(x)
        np.testing.assert_allclose(bn.running_mean, 0.0)
        bn.train()
        bn(x)
        assert bn.running_mean.max() > 0.1
