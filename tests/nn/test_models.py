"""Model zoo: forward shapes, graph consistency, architecture invariants."""

import numpy as np
import pytest

from repro.nn import (VGG_PLANS, resnet20, resnet32, resnet50_cifar,
                      resnet50_imagenet, resnet56, vgg11, vgg13)
from repro.tensor import Tensor, no_grad

SMALL = dict(width_mult=0.25, input_hw=16)


@pytest.mark.parametrize("factory", [resnet20, resnet32, resnet56,
                                     resnet50_cifar, vgg11, vgg13])
def test_forward_shape(factory, rng):
    m = factory(num_classes=7, **SMALL)
    m.eval()
    with no_grad():
        out = m(Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32)))
    assert out.shape == (2, 7)


def test_imagenet_stem_downsamples(rng):
    m = resnet50_imagenet(num_classes=11, width_mult=0.125, input_hw=32)
    m.eval()
    with no_grad():
        out = m(Tensor(rng.normal(size=(1, 3, 32, 32)).astype(np.float32)))
    assert out.shape == (1, 11)
    # stem conv stride 2 + pool 2: first bottleneck conv sees hw/4
    stem = m.graph.conv_by_name("stem")
    assert stem.out_hw == 16  # conv stride 2 only; pool happens after


class TestGraphConsistency:
    @pytest.mark.parametrize("factory", [resnet20, resnet50_cifar, vgg11])
    def test_validate_passes(self, factory):
        factory(10, **SMALL).graph.validate()

    def test_depth_counts(self):
        # basic-block resnets: stem + 2 convs/block + projections
        m32 = resnet32(10, **SMALL)
        path_convs = sum(len(p.conv_names) for p in m32.graph.paths.values())
        assert path_convs == 30  # 15 blocks x 2
        assert m32.graph.total_conv_layers() == 1 + 30 + 2  # stem + paths + 2 proj

        m56 = resnet56(10, **SMALL)
        assert sum(len(p.conv_names)
                   for p in m56.graph.paths.values()) == 54

    def test_resnet50_block_structure(self):
        m = resnet50_cifar(10, **SMALL)
        assert len(m.graph.paths) == 3 + 4 + 6 + 3
        path_convs = sum(len(p.conv_names) for p in m.graph.paths.values())
        assert path_convs == 48  # 16 bottlenecks x 3

    def test_junction_spaces_are_shared(self):
        """All blocks of a stage read and write the same channel space."""
        m = resnet20(10, **SMALL)
        g = m.graph
        # find stage-1 junction: space written by >1 conv
        shared = [sid for sid in g.spaces
                  if len(g.writers(sid)) > 1]
        assert shared, "residual junctions must be shared spaces"
        for sid in shared:
            sizes = {c.conv.out_channels for c in g.writers(sid)}
            assert len(sizes) == 1

    def test_frozen_spaces(self):
        m = vgg11(10, **SMALL)
        frozen = [s for s in m.graph.spaces.values() if s.frozen]
        assert len(frozen) == 2  # input RGB + logits

    def test_vgg_chain_has_no_junctions(self):
        from repro.prune import junctions
        m = vgg13(10, **SMALL)
        assert junctions(m.graph) == []

    def test_resnet_has_junctions(self):
        from repro.prune import junctions
        m = resnet50_cifar(10, **SMALL)
        assert len(junctions(m.graph)) >= 4

    def test_out_hw_tracks_strides(self):
        m = resnet32(10, width_mult=0.25, input_hw=32)
        g = m.graph
        assert g.conv_by_name("stem").out_hw == 32
        assert g.conv_by_name("s0b0.conv1").out_hw == 32
        assert g.conv_by_name("s1b0.conv1").out_hw == 16
        assert g.conv_by_name("s2b0.conv1").out_hw == 8


class TestWidthMult:
    def test_scales_channels(self):
        m1 = resnet20(10, width_mult=1.0)
        m2 = resnet20(10, width_mult=0.5)
        assert m2.num_parameters() < m1.num_parameters() / 3

    def test_min_one_channel(self):
        m = resnet20(10, width_mult=0.001)
        for node in m.graph.active_convs():
            assert node.conv.out_channels >= 1


class TestVGGPlans:
    def test_vgg11_has_8_convs(self):
        assert sum(1 for x in VGG_PLANS["vgg11"] if x != "M") == 8

    def test_vgg13_has_10_convs(self):
        assert sum(1 for x in VGG_PLANS["vgg13"] if x != "M") == 10


class TestWideResNet:
    def test_forward_and_graph(self, rng):
        from repro.nn import wide_resnet16
        m = wide_resnet16(10, widen=2, width_mult=0.25, input_hw=16)
        m.graph.validate()
        m.eval()
        with no_grad():
            out = m(Tensor(rng.normal(size=(2, 3, 16, 16))
                           .astype(np.float32)))
        assert out.shape == (2, 10)

    def test_widen_factor_scales_params(self):
        from repro.nn import wide_resnet16
        m1 = wide_resnet16(10, widen=1, width_mult=0.5)
        m2 = wide_resnet16(10, widen=2, width_mult=0.5)
        assert m2.num_parameters() > 3 * m1.num_parameters()

    def test_prunable_like_any_resnet(self):
        from repro.nn import wide_resnet16
        from repro.prune import prune_and_reconfigure
        m = wide_resnet16(10, widen=2, width_mult=0.25, input_hw=8)
        g = m.graph
        rngl = np.random.default_rng(0)
        for sid, sp in g.spaces.items():
            if sp.frozen:
                continue
            kill = rngl.random(sp.size) < 0.4
            kill[0] = False
            for node in g.writers(sid):
                node.conv.weight.data[kill] = 0
            for node in g.readers(sid):
                node.conv.weight.data[:, kill] = 0
        rep = prune_and_reconfigure(m)
        assert rep.channels_pruned > 0
        g.validate()


def test_deterministic_construction():
    a = resnet20(10, width_mult=0.25, seed=7)
    b = resnet20(10, width_mult=0.25, seed=7)
    for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)


def test_training_reduces_loss(tiny_train):
    """One epoch of SGD on a small model reduces training loss."""
    from repro.optim import SGD
    from repro.tensor import functional as F
    m = resnet20(10, width_mult=0.25, input_hw=8, seed=0)
    opt = SGD(m.parameters(), lr=0.05)
    x, y = tiny_train.x[:128], tiny_train.y[:128]
    losses = []
    for _ in range(12):
        logits = m(Tensor(x))
        loss = F.cross_entropy(logits, y)
        opt.zero_grad()
        loss.backward()
        opt.step()
        losses.append(loss.item())
    assert losses[-1] < losses[0] * 0.8
