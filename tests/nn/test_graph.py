"""ModelGraph API unit tests (independent of the model zoo)."""

import numpy as np
import pytest

from repro.nn import BatchNorm2d, Conv2d, Linear
from repro.nn.graph import ModelGraph


class Block:
    """Minimal path-block stub with the `active` contract."""

    def __init__(self):
        self.active = True


def tiny_graph():
    """input -> convA -> (mid) -> convB -> (junction) <- convC (2nd writer)"""
    g = ModelGraph()
    rgb = g.new_space(3, frozen=True, name="in")
    mid = g.new_space(8, name="mid")
    junction = g.new_space(6, name="junction")
    a = Conv2d(3, 8, 3, padding=1)
    b = Conv2d(8, 6, 3, padding=1)
    c = Conv2d(3, 6, 1)
    g.add_conv("a", a, BatchNorm2d(8), rgb, mid, 8)
    g.add_conv("b", b, BatchNorm2d(6), mid, junction, 8)
    g.add_conv("c", c, None, rgb, junction, 8)
    lin = Linear(6, 4)
    logits = g.new_space(4, frozen=True, name="out")
    g.add_linear("fc", lin, junction, logits)
    return g


class TestConstruction:
    def test_space_ids_sequential(self):
        g = ModelGraph()
        assert g.new_space(4) == 0
        assert g.new_space(8) == 1

    def test_add_conv_validates_dims(self):
        g = ModelGraph()
        s1, s2 = g.new_space(3), g.new_space(8)
        bad = Conv2d(4, 8, 3)  # in_channels mismatch vs s1
        with pytest.raises(ValueError, match="in_space"):
            g.add_conv("bad", bad, None, s1, s2, 8)
        bad2 = Conv2d(3, 9, 3)  # out mismatch vs s2
        with pytest.raises(ValueError, match="out_space"):
            g.add_conv("bad2", bad2, None, s1, s2, 8)

    def test_conv_by_name(self):
        g = tiny_graph()
        assert g.conv_by_name("a").name == "a"
        with pytest.raises(KeyError):
            g.conv_by_name("nope")


class TestQueries:
    def test_writers_readers(self):
        g = tiny_graph()
        junction = 2
        assert {c.name for c in g.writers(junction)} == {"b", "c"}
        assert g.readers(junction) == []
        assert {l.name for l in g.linear_readers(junction)} == {"fc"}
        mid = 1
        assert {c.name for c in g.writers(mid)} == {"a"}
        assert {c.name for c in g.readers(mid)} == {"b"}

    def test_path_activity_filters(self):
        g = ModelGraph()
        s1, s2 = g.new_space(3, frozen=True), g.new_space(4)
        block = Block()
        pid = g.new_path("p", block, ["pc"])
        conv = Conv2d(3, 4, 3)
        g.add_conv("pc", conv, None, s1, s2, 8, path=pid)
        assert len(g.active_convs()) == 1
        block.active = False
        assert g.active_convs() == []
        assert g.writers(s2) == []
        assert g.removed_layers() == 1

    def test_total_conv_layers_counts_all(self):
        g = tiny_graph()
        assert g.total_conv_layers() == 3


class TestValidate:
    def test_passes_when_consistent(self):
        tiny_graph().validate()

    def test_detects_in_drift(self):
        g = tiny_graph()
        g.conv_by_name("b").conv.in_channels = 5
        with pytest.raises(AssertionError, match="in dim"):
            g.validate()

    def test_detects_bn_drift(self):
        g = tiny_graph()
        g.conv_by_name("a").bn.num_features = 3
        with pytest.raises(AssertionError, match="bn dim"):
            g.validate()

    def test_detects_linear_drift(self):
        g = tiny_graph()
        g.linears[0].linear.in_features = 99
        with pytest.raises(AssertionError, match="linear in dim"):
            g.validate()

    def test_skips_inactive_paths(self):
        g = ModelGraph()
        s1, s2 = g.new_space(3, frozen=True), g.new_space(4)
        block = Block()
        pid = g.new_path("p", block, ["pc"])
        conv = Conv2d(3, 4, 3)
        g.add_conv("pc", conv, None, s1, s2, 8, path=pid)
        block.active = False
        conv.in_channels = 99  # stale dims on a removed path: ignored
        g.validate()
