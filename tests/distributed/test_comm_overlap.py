"""Overlapped zero-copy gradient exchange: bucketed-ring bit-exactness,
bucket planning invariants, gradient-list validation, differential parity
of every {overlap, zero-copy, compile} engine flavor against the
simulation across the full PruneTrain schedule, mid-exchange fault
recovery, and shared-memory teardown robustness."""

import numpy as np
import pytest

from repro.data import make_synthetic
from repro.distributed import (COMM_STATS, ElasticEngine, FaultPlan,
                               allreduce_gradient_lists, data_parallel_step,
                               module_param_groups, plan_gradient_buckets,
                               ring_allreduce, ring_allreduce_range)
from repro.nn import resnet20
from repro.optim import SGD
from repro.prune import prune_and_reconfigure

from ..conftest import sparsify_space

pytestmark = pytest.mark.distributed

SMALL = dict(width_mult=0.25, input_hw=8)
SGD_KW = dict(lr=0.05, momentum=0.9, weight_decay=5e-4)


@pytest.fixture(scope="module")
def batch():
    ds = make_synthetic(10, 32, hw=8, noise=0.8, seed=0)
    return ds.x, ds.y


def fresh():
    m = resnet20(10, **SMALL, seed=3)
    m.train()
    return m, SGD(m.parameters(), **SGD_KW)


def _prune(m, opt):
    for sid, sp in list(m.graph.spaces.items()):
        if not sp.frozen:
            sparsify_space(m.graph, sid, [0, 1])
    rep = prune_and_reconfigure(m, opt, threshold=1e-3, remove_layers=True,
                                zero_sparse=True)
    assert rep.channels_pruned > 0


def momentum_by_name(model, opt):
    return {name: (None if opt.state_for(p) is None
                   else opt.state_for(p).copy())
            for name, p in model.named_parameters()}


def assert_state_equal(m1, opt1, m2, opt2):
    sd1, sd2 = m1.state_dict(), m2.state_dict()
    assert sd1.keys() == sd2.keys()
    for k in sd1:
        np.testing.assert_array_equal(sd1[k], sd2[k], err_msg=k)
    v1, v2 = momentum_by_name(m1, opt1), momentum_by_name(m2, opt2)
    assert v1.keys() == v2.keys()
    for k in v1:
        if v1[k] is None:
            assert v2[k] is None, k
        else:
            np.testing.assert_array_equal(v1[k], v2[k], err_msg=k)


def metrics_equal(a, b):
    return [tuple(map(float, t)) for t in a] == \
        [tuple(map(float, t)) for t in b]


# The full PruneTrain schedule in miniature: shrinking batch -> pruning
# reconfiguration (payload + layout change) -> batch growth (new shard
# shapes force plan recapture in the workers).
def schedule(batch, steps=7, prune_at=3, grow_at=5):
    x, y = batch
    for s in range(steps):
        n = 16 if s < grow_at else len(x)
        yield s, (s == prune_at), x[:n], y[:n]


def run_sim(batch, workers_at=lambda s: 2, **sched_kw):
    m, opt = fresh()
    out = []
    for s, do_prune, xb, yb in schedule(batch, **sched_kw):
        if do_prune:
            _prune(m, opt)
        res, _ = data_parallel_step(m, xb, yb, workers=workers_at(s))
        opt.step()
        out.append((res.loss, res.accuracy, res.comm_bytes_per_worker))
    return m, opt, out


def run_elastic(batch, workers=2, plan=None, timeout=10.0, sched_kw=None,
                **engine_kw):
    m, opt = fresh()
    with ElasticEngine(m, workers=workers, heartbeat_timeout=timeout,
                       fault_plan=plan, **engine_kw) as eng:
        out = []
        for s, do_prune, xb, yb in schedule(batch, **(sched_kw or {})):
            if do_prune:
                _prune(m, opt)
            r = eng.step(xb, yb)
            opt.step()
            out.append((r.loss, r.accuracy, r.comm_bytes_per_worker))
        failures = list(eng.failures)
        active = eng.active_workers
    return m, opt, out, failures, active


# -- bucketed ring == monolithic ring (the overlap correctness kernel) -------

class TestBucketedRing:
    def test_any_partition_any_order_matches_monolithic(self):
        """Reducing a payload bucket by bucket — arbitrary cuts, shuffled
        launch order, any worker count — must reproduce the monolithic
        ring's bits exactly."""
        rng = np.random.default_rng(7)
        for p in (2, 3, 4, 5):
            total = int(rng.integers(50, 400))
            base = rng.standard_normal((p, total)).astype(np.float32)
            mono = [b.copy() for b in base]
            ring_allreduce(mono, average=True)
            for trial in range(3):
                ncuts = int(rng.integers(0, 6))
                cuts = sorted(rng.integers(0, total + 1, size=ncuts))
                bounds = [0] + list(cuts) + [total]
                ranges = [(int(bounds[i]), int(bounds[i + 1]))
                          for i in range(len(bounds) - 1)]
                rng.shuffle(ranges)
                bucketed = [b.copy() for b in base]
                moved = sum(ring_allreduce_range(bucketed, total, lo, hi)
                            for lo, hi in ranges)
                for w in range(p):
                    np.testing.assert_array_equal(bucketed[w], mono[w])
                # bytes moved sums exactly to the monolithic total
                assert moved == 2 * (p - 1) * total * 4

    def test_range_validation(self):
        flats = [np.zeros(8, np.float32) for _ in range(2)]
        with pytest.raises(ValueError, match="bad range"):
            ring_allreduce_range(flats, 8, 5, 3)
        with pytest.raises(ValueError, match="bad range"):
            ring_allreduce_range(flats, 8, 0, 9)
        assert ring_allreduce_range(flats, 8, 4, 4) == 0
        assert ring_allreduce_range([flats[0]], 8, 0, 8) == 0


class TestBucketPlanning:
    def test_buckets_cover_payload_in_backward_order(self):
        m, _ = fresh()
        params = m.parameters()
        sizes = [p.data.size for p in params]
        offsets = list(np.cumsum([0] + sizes[:-1]))
        groups = module_param_groups(m)
        buckets = plan_gradient_buckets(sizes, offsets, groups, 16384)
        assert len(buckets) > 1
        # backward order: bucket 0 holds the LAST parameters (produced
        # first by backward), and together they tile the payload exactly
        assert buckets[0].hi == sum(sizes)
        assert buckets[-1].lo == 0
        for a, b in zip(buckets, buckets[1:]):
            assert b.hi == a.lo           # contiguous, descending
        covered = sorted(i for b in buckets for i in b.param_indices)
        assert covered == list(range(len(params)))
        # module alignment: no group is split across buckets
        owner = {}
        for b in buckets:
            for i in b.param_indices:
                owner[i] = b.index
        for g0, g1 in groups:
            assert len({owner[i] for i in range(g0, g1)}) == 1

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError, match="target_bytes"):
            plan_gradient_buckets([4], [0], [(0, 1)], 0)


class TestGradientListValidation:
    def test_length_mismatch_rejected(self):
        g = lambda: [np.ones(3, np.float32)]
        with pytest.raises(ValueError, match="worker 1 has 2"):
            allreduce_gradient_lists([g(), g() + g()])

    def test_shape_mismatch_rejected(self):
        a = [np.ones((2, 3), np.float32)]
        b = [np.ones((3, 2), np.float32)]
        with pytest.raises(ValueError, match="out of sync"):
            allreduce_gradient_lists([a, b])


# -- differential parity across engine flavors -------------------------------

class TestOverlapParity:
    def test_full_schedule_k2_all_flavors_equal_sim(self, batch):
        """Pruning, layer removal, and batch growth: overlapped zero-copy,
        serial-comm, copy-path, and eager-worker engines all reproduce the
        simulation bit for bit."""
        ms, opts, outs = run_sim(batch)
        flavors = [dict(comm_overlap=True, zero_copy=True),
                   dict(comm_overlap=False, zero_copy=True),
                   dict(comm_overlap=True, zero_copy=False),
                   dict(comm_overlap=False, zero_copy=False,
                        compile_steps=False)]
        for kw in flavors:
            me, opte, oute, failures, active = run_elastic(
                batch, bucket_bytes=16384, **kw)
            assert failures == [] and active == 2, kw
            assert metrics_equal(outs, oute), kw
            assert_state_equal(ms, opts, me, opte)

    def test_full_schedule_k3_overlap_equals_sim(self, batch):
        ms, opts, outs = run_sim(batch, workers_at=lambda s: 3)
        me, opte, oute, failures, active = run_elastic(
            batch, workers=3, bucket_bytes=16384,
            comm_overlap=True, zero_copy=True)
        assert failures == [] and active == 3
        assert metrics_equal(outs, oute)
        assert_state_equal(ms, opts, me, opte)

    def test_overlap_actually_buckets(self, batch):
        """The overlapped engine exchanges bucket by bucket (no monolithic
        reduce) and moves the same bytes the serial path reports."""
        COMM_STATS.reset()
        _, _, oute, _, _ = run_elastic(batch, bucket_bytes=16384,
                                       comm_overlap=True, zero_copy=True)
        assert COMM_STATS.monolithic_reduces == 0
        assert COMM_STATS.buckets_reduced > 0
        assert COMM_STATS.bucket_launches >= COMM_STATS.buckets_reduced
        COMM_STATS.reset()
        _, _, outs, _, _ = run_elastic(batch, bucket_bytes=16384,
                                       comm_overlap=False, zero_copy=True)
        assert COMM_STATS.buckets_reduced == 0
        assert COMM_STATS.monolithic_reduces > 0
        # identical per-step comm-byte accounting either way
        assert [t[2] for t in oute] == [t[2] for t in outs]


# -- faults across the overlapped exchange -----------------------------------

class TestOverlapFaults:
    def test_kill_resume_across_overlap_boundary(self, batch):
        """A kill/resume sequence produces the same degraded trajectory
        whether the exchange is overlapped or serial."""
        ms, opts, outs = run_sim(batch,
                                 workers_at=lambda s: 2 if s < 2 else 1)
        for overlap in (True, False):
            plan = FaultPlan().kill(1, at_step=2)
            me, opte, oute, failures, active = run_elastic(
                batch, plan=plan, timeout=5.0, bucket_bytes=16384,
                comm_overlap=overlap)
            assert active == 1
            assert [(f.rank, f.step) for f in failures] == [(1, 2)]
            assert metrics_equal(outs, oute)
            assert_state_equal(ms, opts, me, opte)

    def test_kill_between_bucket_launches(self, batch):
        """A worker dying mid-backward — after announcing one bucket, with
        that bucket possibly already reduced in place — voids the attempt;
        the retry equals a clean smaller-K step."""
        ms, opts, outs = run_sim(batch,
                                 workers_at=lambda s: 2 if s < 1 else 1)
        plan = FaultPlan().kill_after_bucket(1, at_step=1, bucket=1)
        me, opte, oute, failures, active = run_elastic(
            batch, plan=plan, timeout=5.0, bucket_bytes=16384,
            comm_overlap=True, zero_copy=True)
        assert active == 1
        assert [(f.rank, f.step, f.reason, f.phase) for f in failures] == \
            [(1, 1, "died", "step")]
        assert metrics_equal(outs, oute)
        assert_state_equal(ms, opts, me, opte)


# -- teardown robustness (shared-memory lifecycle) ---------------------------

class TestTeardown:
    def test_shutdown_releases_segments_and_is_reentrant(self, batch):
        x, y = batch
        m, _ = fresh()
        eng = ElasticEngine(m, workers=2)
        eng.step(x, y)
        eng.shutdown()
        assert eng._param_mm is None and eng._hb_mm is None
        assert eng._handles == []
        eng.shutdown()            # double close must be a no-op
        eng.shutdown()

    def test_shutdown_without_start(self):
        m, _ = fresh()
        eng = ElasticEngine(m, workers=2)
        eng.shutdown()
        eng.shutdown()

    def test_evict_then_shutdown_double_release(self, batch):
        """Eviction closes the dead worker's gradient segment; shutdown
        must not trip over the already-released handle."""
        x, y = batch
        m, _ = fresh()
        plan = FaultPlan().kill(1, at_step=0)
        eng = ElasticEngine(m, workers=2, heartbeat_timeout=5.0,
                            fault_plan=plan)
        eng.step(x, y)
        assert [f.rank for f in eng.failures] == [1]
        assert eng._handles[1].grad_mm is None   # released at eviction
        eng.shutdown()
        eng.shutdown()

    def test_restart_after_shutdown(self, batch):
        """The engine can start a fresh pool after a full teardown."""
        x, y = batch
        m, _ = fresh()
        eng = ElasticEngine(m, workers=2)
        r1 = eng.step(x, y)
        eng.shutdown()
        r2 = eng.step(x, y)       # auto-restarts around the updated model
        eng.shutdown()
        assert r2.active_workers == 2
        assert r1.comm_bytes_per_worker == r2.comm_bytes_per_worker
